#!/usr/bin/env bash
# Runs the throughput + concurrency perf harness in Release and records the
# results as BENCH_throughput.json (the repo's perf trajectory record).
#
#   tools/run_bench.sh              # full run -> BENCH_throughput.json
#   tools/run_bench.sh --quick      # CI smoke (short measurement windows)
#
# Interpreting the numbers: see README.md "Performance harness".
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-bench}"
output="${BENCH_OUTPUT:-$repo_root/BENCH_throughput.json}"
quick_flag=""
if [[ "${1:-}" == "--quick" ]]; then
  quick_flag="--quick"
fi

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release \
  -DGENAS_BUILD_TESTS=OFF \
  -DGENAS_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)" --target bench_perf_report bench_mesh \
  bench_composite

"$build_dir/bench/bench_perf_report" "$output" $quick_flag
# Mesh runtime numbers (4-node line/star across routing modes) merge into
# the same JSON, after the single-broker report has written it.
"$build_dir/bench/bench_mesh" "$output" $quick_flag
# Composite-detection throughput (detector + reorder stage on top of
# publish_batch, vs. the plain-leaf baseline) merges last.
"$build_dir/bench/bench_composite" "$output" $quick_flag
echo "--- $output ---"
cat "$output"

# The google-benchmark thread sweep, when the library is available (gives
# the per-thread-count breakdown behind the JSON aggregates).
bench="$build_dir/bench/bench_concurrent"
[[ -x "$bench" ]] ||
  cmake --build "$build_dir" -j "$(nproc)" --target bench_concurrent \
    2>/dev/null || true
if [[ -x "$bench" ]]; then
  if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
    # BENCH_MIN_TIME holds the value only, e.g. "0.05" or "0.05s".
    "$bench" "--benchmark_min_time=$BENCH_MIN_TIME"
  elif [[ -n "$quick_flag" ]]; then
    # google-benchmark >= 1.8 wants a "0.01s" suffix, older builds a bare
    # double — try the modern spelling first, fall back to the old one.
    "$bench" --benchmark_min_time=0.01s 2>/dev/null ||
      "$bench" --benchmark_min_time=0.01
  else
    "$bench"
  fi
fi
