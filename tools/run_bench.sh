#!/usr/bin/env bash
# Runs the throughput + concurrency perf harness in Release and records the
# results as BENCH_throughput.json (the repo's perf trajectory record),
# including the observability numbers: delivery_latency_p50_ns/p99 from the
# broker's trace histograms and obs_overhead_pct (what default trace
# sampling costs the single-thread publish path).
#
#   tools/run_bench.sh              # full run -> BENCH_throughput.json
#   tools/run_bench.sh --quick      # CI smoke (short measurement windows)
#
# Fails loudly: any missing bench binary or crashed run exits non-zero and
# leaves the previous BENCH_throughput.json untouched (the report is staged
# in a temp file and only moved into place once every stage succeeded).
# Before the fresh report replaces the committed one, every *_per_sec key
# is diffed against it and a >30% drop aborts the run (BENCH_SKIP_GUARD=1
# re-baselines; see the guard below for the same-host caveat).
#
# Interpreting the numbers: see README.md "Performance harness".
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-bench}"
output="${BENCH_OUTPUT:-$repo_root/BENCH_throughput.json}"
quick_flag=""
if [[ "${1:-}" == "--quick" ]]; then
  quick_flag="--quick"
fi

fail() {
  echo "run_bench.sh: error: $*" >&2
  exit 1
}

tmp_output="$(mktemp "${output}.XXXXXX.tmp")"
trap 'rm -f "$tmp_output"' EXIT

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release \
  -DGENAS_BUILD_TESTS=OFF \
  -DGENAS_BUILD_EXAMPLES=OFF ||
  fail "cmake configure failed"
cmake --build "$build_dir" -j "$(nproc)" --target bench_perf_report bench_mesh \
  bench_composite ||
  fail "building the bench targets failed"

for binary in bench_perf_report bench_mesh bench_composite; do
  [[ -x "$build_dir/bench/$binary" ]] ||
    fail "$build_dir/bench/$binary is missing or not executable after the build"
done

# The three reporters merge into one JSON file, staged in a temp path so a
# crash mid-sequence cannot leave a truncated BENCH_throughput.json behind.
"$build_dir/bench/bench_perf_report" "$tmp_output" $quick_flag ||
  fail "bench_perf_report exited with status $?"
# Mesh runtime numbers (4-node line/star across routing modes) merge into
# the same JSON, after the single-broker report has written it.
"$build_dir/bench/bench_mesh" "$tmp_output" $quick_flag ||
  fail "bench_mesh exited with status $?"
# Composite-detection throughput (detector + reorder stage on top of
# publish_batch, vs. the plain-leaf baseline) merges last.
"$build_dir/bench/bench_composite" "$tmp_output" $quick_flag ||
  fail "bench_composite exited with status $?"

[[ -s "$tmp_output" ]] || fail "bench run produced an empty report"

# Regression guard: before the fresh report replaces the committed one,
# compare every throughput key (*_per_sec — higher is better) against the
# committed BENCH_throughput.json and fail loudly on a >30% drop. The
# committed numbers are only meaningful on the host that produced them, so
# a different machine (or a noisy CI neighbour) can trip this spuriously —
# set BENCH_SKIP_GUARD=1 to record a fresh baseline instead of failing.
if [[ -f "$output" && -z "${BENCH_SKIP_GUARD:-}" ]]; then
  python3 - "$output" "$tmp_output" <<'PY' ||
import json, sys

THRESHOLD = 0.70  # fresh must reach 70% of committed, i.e. <=30% regression
with open(sys.argv[1]) as f:
    committed = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

regressions = []
for key, base in committed.items():
    if not key.endswith("_per_sec") or not isinstance(base, (int, float)):
        continue
    if base <= 0 or key not in fresh:
        continue
    now = fresh[key]
    if now < base * THRESHOLD:
        drop = (1.0 - now / base) * 100.0
        regressions.append(f"  {key}: {base:.1f} -> {now:.1f} (-{drop:.0f}%)")

if regressions:
    print("bench regression(s) beyond 30% vs committed report:",
          file=sys.stderr)
    print("\n".join(regressions), file=sys.stderr)
    print("(same-host caveat: baselines are host-specific; "
          "BENCH_SKIP_GUARD=1 re-baselines)", file=sys.stderr)
    sys.exit(1)
PY
    fail "throughput regressed past the 30% guard (see above)"
fi

mv "$tmp_output" "$output"
trap - EXIT
echo "--- $output ---"
cat "$output"

# The google-benchmark thread sweep, when the library is available (gives
# the per-thread-count breakdown behind the JSON aggregates). This stage is
# optional — the library may be absent — but once the binary exists, a
# crashing sweep fails the script like everything else.
bench="$build_dir/bench/bench_concurrent"
[[ -x "$bench" ]] ||
  cmake --build "$build_dir" -j "$(nproc)" --target bench_concurrent \
    2>/dev/null || true
if [[ -x "$bench" ]]; then
  if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
    # BENCH_MIN_TIME holds the value only, e.g. "0.05" or "0.05s".
    "$bench" "--benchmark_min_time=$BENCH_MIN_TIME" ||
      fail "bench_concurrent exited with status $?"
  elif [[ -n "$quick_flag" ]]; then
    # google-benchmark >= 1.8 wants a "0.01s" suffix, older builds a bare
    # double — try the modern spelling first, fall back to the old one.
    "$bench" --benchmark_min_time=0.01s 2>/dev/null ||
      "$bench" --benchmark_min_time=0.01 ||
      fail "bench_concurrent exited with status $?"
  else
    "$bench" || fail "bench_concurrent exited with status $?"
  fi
fi
