// Node-search strategy sweep — the paper's conclusion (§5) names
// "selectivity-based reorderings of attributes and values, binary-,
// interpolation-, or hash-based search within attribute-values" as the
// sensible strategy space. This bench measures all of them across
// distribution families (TV4, exact expectation).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace genas;
  using namespace genas::bench;

  constexpr std::int64_t kDomain = 100;
  constexpr std::size_t kProfiles = 250;

  OrderingPolicy v1_linear;
  v1_linear.value_order = ValueOrder::kEventProbability;
  OrderingPolicy natural_linear;
  OrderingPolicy binary;
  binary.strategy = SearchStrategy::kBinary;
  OrderingPolicy interpolation;
  interpolation.strategy = SearchStrategy::kInterpolation;
  OrderingPolicy hash;
  hash.strategy = SearchStrategy::kHash;

  const std::vector<PolicyColumn> columns = {
      {"linear natural", natural_linear},
      {"linear V1", v1_linear},
      {"binary", binary},
      {"interpolation", interpolation},
      {"hash (idealized)", hash},
  };

  const std::vector<std::pair<std::string, std::string>> combos = {
      {"equal", "equal"},   {"gauss", "equal"},  {"gauss", "gauss"},
      {"95% high", "equal"}, {"d37", "equal"},   {"d39", "d18"},
      {"falling", "95% low"},
  };

  sim::print_heading(std::cout,
                     "Strategy sweep — node search strategies x event "
                     "distributions (TV4, exact)");
  std::cout << "single attribute, domain " << kDomain << ", p = " << kProfiles
            << " equality profiles\n\n";

  sim::Table table(headers_for(columns));
  for (const auto& [pe, pp] : combos) {
    const sim::Workload workload =
        sim::single_attribute(kDomain, kProfiles, pe, pp, 4);
    add_policy_row(table, workload, columns,
                   [](const CostReport& r) { return r.ops_per_event; });
  }
  table.print(std::cout);
  std::cout << "\nHash is the idealized 1-probe lower bound (equality "
               "domains only); interpolation approaches binary from below "
               "on smooth distributions and degrades on skewed ones.\n";
  return 0;
}
