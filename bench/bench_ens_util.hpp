// Shared fixture for the concurrency benches: the ISSUE-2 reference
// workload (10,000 equality profiles over a 3-attribute schema, gaussian
// event feed) served by (a) the snapshot-based lock-free Broker and (b) a
// faithful reconstruction of the pre-snapshot single-mutex broker, so the
// scaling comparison measures exactly the change in concurrency design.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/filter_engine.hpp"
#include "dist/sampler.hpp"
#include "ens/broker.hpp"
#include "sim/workload.hpp"

namespace genas::bench {

/// The old broker's publish path, verbatim semantics: every publish takes
/// one global mutex, matches through the engine (heap-copying the matched
/// set), copies the callbacks under the lock, and only delivers outside it.
class MutexSerializedBroker {
 public:
  explicit MutexSerializedBroker(SchemaPtr schema)
      : engine_(std::move(schema)) {}

  void subscribe(Profile profile, NotificationCallback callback) {
    const std::scoped_lock lock(mutex_);
    const ProfileId id = engine_.subscribe(std::move(profile));
    if (callbacks_.size() <= id) callbacks_.resize(id + 1);
    callbacks_[id] = std::move(callback);
  }

  std::size_t publish(const Event& event) {
    std::vector<std::pair<NotificationCallback, Notification>> deliveries;
    {
      const std::scoped_lock lock(mutex_);
      const EngineMatch outcome = engine_.match(event);
      deliveries.reserve(outcome.matched.size());
      for (const ProfileId profile : outcome.matched) {
        deliveries.emplace_back(callbacks_[profile],
                                Notification{profile, event});
      }
    }
    for (const auto& [callback, notification] : deliveries) {
      callback(notification);
    }
    return deliveries.size();
  }

 private:
  std::mutex mutex_;
  FilterEngine engine_;
  std::vector<NotificationCallback> callbacks_;
};

/// The 10,000-profile equality workload of bench_throughput, wired into
/// both broker designs with a delivery-counting callback.
struct EnsFixture {
  SchemaPtr schema;
  JointDistribution joint;
  std::vector<Event> events;
  std::unique_ptr<Broker> snapshot_broker;
  std::unique_ptr<MutexSerializedBroker> mutex_broker;
  std::atomic<std::uint64_t> delivered{0};

  explicit EnsFixture(std::size_t profile_count = 10000,
                      std::size_t event_count = 4096)
      : schema(SchemaBuilder()
                   .add_integer("a", 0, 99)
                   .add_integer("b", 0, 99)
                   .add_integer("c", 0, 99)
                   .build()),
        joint(make_event_distribution(schema, {"gauss"})) {
    ProfileWorkloadOptions options;
    options.count = profile_count;
    options.dont_care_probability = 0.2;
    options.equality_only = true;
    options.seed = 21;
    const ProfileSet profiles = generate_profiles(
        schema, make_profile_distributions(schema, {"gauss"}), options);

    snapshot_broker = std::make_unique<Broker>(schema);
    mutex_broker = std::make_unique<MutexSerializedBroker>(schema);
    const auto callback = [this](const Notification&) {
      delivered.fetch_add(1, std::memory_order_relaxed);
    };
    for (const ProfileId id : profiles.active_ids()) {
      snapshot_broker->subscribe(profiles.profile(id), callback);
      mutex_broker->subscribe(profiles.profile(id), callback);
    }

    EventSampler sampler(joint, 22);
    events = sampler.sample_batch(event_count);

    // Prime both trees so the (expensive, one-off) 10k-profile build stays
    // out of the timed region.
    snapshot_broker->publish(events[0]);
    mutex_broker->publish(events[0]);
  }
};

}  // namespace genas::bench
