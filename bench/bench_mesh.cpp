// Standalone mesh throughput report: aggregate events/sec of the concurrent
// broker mesh on 4-node line and star topologies across the three routing
// modes, merged into BENCH_throughput.json next to the single-broker
// numbers (tools/run_bench.sh runs this after bench_perf_report).
//
//   ./bench_mesh [output.json] [--quick]
//
// Workload: 240 range profiles (don't-cares + overlaps, so covering has
// state to elide) spread round-robin across the nodes, gauss events
// published round-robin; the rate includes wire encode/decode on every hop
// and wait_idle() drain, i.e. it is end-to-end delivered throughput.
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dist/sampler.hpp"
#include "mesh/mesh.hpp"
#include "sim/workload.hpp"

namespace {

using namespace genas;
using Clock = std::chrono::steady_clock;

struct Topology {
  const char* name;
  std::size_t nodes;
  std::vector<std::pair<net::NodeId, net::NodeId>> links;
};

double measure_mode(const Topology& topology, net::RoutingMode mode,
                    const SchemaPtr& schema, const ProfileSet& profiles,
                    const std::vector<Event>& events) {
  mesh::MeshOptions options;
  options.mode = mode;
  options.mailbox_capacity = 4096;
  mesh::MeshNetwork net(schema, options);
  for (std::size_t n = 0; n < topology.nodes; ++n) net.add_node();
  for (const auto& [a, b] : topology.links) net.connect(a, b);
  net.start();

  std::atomic<std::uint64_t> delivered{0};
  std::size_t at = 0;
  for (const ProfileId id : profiles.active_ids()) {
    net.subscribe(at++ % topology.nodes, profiles.profile(id),
                  [&delivered](net::NodeId, SubscriptionId, const Event&) {
                    delivered.fetch_add(1, std::memory_order_relaxed);
                  });
  }
  net.wait_idle();

  // Warm-up: routing tables, matchers, broker snapshots.
  for (std::size_t i = 0; i < 256 && i < events.size(); ++i) {
    net.publish(i % topology.nodes, events[i]);
  }
  net.wait_idle();

  const auto start = Clock::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    net.publish(i % topology.nodes, events[i]);
  }
  net.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  net.shutdown();
  if (!net.first_error().empty()) {
    std::cerr << "worker error: " << net.first_error() << "\n";
    std::abort();
  }
  return static_cast<double>(events.size()) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_throughput.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      output = argv[i];
    }
  }

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a0", 0, 99)
                               .add_integer("a1", 0, 99)
                               .add_integer("a2", 0, 99)
                               .build();
  ProfileWorkloadOptions profile_options;
  profile_options.count = 240;
  profile_options.dont_care_probability = 0.3;
  profile_options.equality_only = false;
  profile_options.range_width_mean = 0.15;
  profile_options.seed = 33;
  const ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), profile_options);

  const JointDistribution joint =
      make_event_distribution(schema, {"gauss"});
  EventSampler sampler(joint, 7);
  const std::vector<Event> events =
      sampler.sample_batch(quick ? 2000 : 20000);

  const std::vector<Topology> topologies = {
      {"line4", 4, {{0, 1}, {1, 2}, {2, 3}}},
      {"star4", 4, {{0, 1}, {0, 2}, {0, 3}}},
  };
  const std::vector<std::pair<const char*, net::RoutingMode>> modes = {
      {"flooding", net::RoutingMode::kFlooding},
      {"routing", net::RoutingMode::kRouting},
      {"covered", net::RoutingMode::kRoutingCovered},
  };

  std::vector<std::pair<std::string, double>> entries;
  for (const Topology& topology : topologies) {
    for (const auto& [mode_name, mode] : modes) {
      const double rate =
          measure_mode(topology, mode, schema, profiles, events);
      const std::string key = std::string("mesh_") + topology.name + "_" +
                              mode_name + "_events_per_sec";
      std::cerr << key << " = " << static_cast<std::uint64_t>(rate) << "\n";
      entries.emplace_back(key, rate);
    }
  }
  benchutil::merge_json(output, entries);
  std::cout << "merged " << entries.size() << " mesh entries into " << output
            << "\n";
  return 0;
}
