// Standalone mesh throughput report: aggregate events/sec of the concurrent
// broker mesh on 4-node line and star topologies across the three routing
// modes, merged into BENCH_throughput.json next to the single-broker
// numbers (tools/run_bench.sh runs this after bench_perf_report).
//
//   ./bench_mesh [output.json] [--quick]
//
// Workload: 240 range profiles (don't-cares + overlaps, so covering has
// state to elide) spread round-robin across the nodes, gauss events
// published round-robin; the rate includes wire encode/decode on every hop
// and wait_idle() drain, i.e. it is end-to-end delivered throughput.
//
// Each topology/mode pair is measured twice: `mesh_*_events_per_sec` pins
// link_batch_max = 1 and publishes single events — the pre-batching wire
// traffic, one frame per event, kept comparable with earlier reports —
// while `mesh_*_batched_events_per_sec` leaves link batching at its
// default and feeds the ingress through publish_batch. The gap between the
// two is what batched link frames buy. The batched runs also merge the
// measured coalescing ratio as mesh_link_events_per_frame_avg.
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dist/sampler.hpp"
#include "mesh/mesh.hpp"
#include "obs/metrics.hpp"
#include "sim/workload.hpp"

namespace {

using namespace genas;
using Clock = std::chrono::steady_clock;

struct Topology {
  const char* name;
  std::size_t nodes;
  std::vector<std::pair<net::NodeId, net::NodeId>> links;
};

struct ModeResult {
  double events_per_sec = 0;
  double frames = 0;        ///< link frames sent during the timed window
  double frame_events = 0;  ///< events those frames carried
  double elapsed = 0;       ///< timed-window seconds
};

/// `batched` = false: link_batch_max = 1 and per-event publish (the legacy
/// wire traffic). `batched` = true: default link batching, ingress through
/// publish_batch in 256-event chunks.
ModeResult measure_mode(const Topology& topology, net::RoutingMode mode,
                        const SchemaPtr& schema, const ProfileSet& profiles,
                        const std::vector<Event>& events, bool batched) {
  mesh::MeshOptions options;
  options.mode = mode;
  options.mailbox_capacity = 4096;
  if (!batched) options.link_batch_max = 1;
  mesh::MeshNetwork net(schema, options);
  for (std::size_t n = 0; n < topology.nodes; ++n) net.add_node();
  for (const auto& [a, b] : topology.links) net.connect(a, b);
  net.start();

  std::atomic<std::uint64_t> delivered{0};
  std::size_t at = 0;
  for (const ProfileId id : profiles.active_ids()) {
    net.subscribe(at++ % topology.nodes, profiles.profile(id),
                  [&delivered](net::NodeId, SubscriptionId, const Event&) {
                    delivered.fetch_add(1, std::memory_order_relaxed);
                  });
  }
  net.wait_idle();

  constexpr std::size_t kChunk = 256;
  const auto pump = [&](std::size_t limit) {
    if (!batched) {
      for (std::size_t i = 0; i < limit; ++i) {
        net.publish(i % topology.nodes, events[i]);
      }
      return;
    }
    std::size_t round = 0;
    for (std::size_t base = 0; base < limit; base += kChunk, ++round) {
      const std::size_t end = std::min(base + kChunk, limit);
      std::vector<Event> chunk(
          events.begin() + static_cast<std::ptrdiff_t>(base),
          events.begin() + static_cast<std::ptrdiff_t>(end));
      net.publish_batch(round % topology.nodes, std::move(chunk));
    }
  };

  // Warm-up: routing tables, matchers, broker snapshots, decode arenas.
  // Ingress must hit every node (one chunk each in the batched shape) —
  // each link direction's forwarding matcher builds lazily on first use,
  // and a warm-up that only feeds node 0 would leave the reverse-direction
  // builds inside the measured window.
  pump(std::min<std::size_t>(topology.nodes * kChunk, events.size()));
  net.wait_idle();

  // Coalescing stats are diffed across the timed window only, so the
  // warm-up's frames do not dilute the measured events-per-frame ratio or
  // the link-transmission rate.
  const auto per_frame_totals = [&net] {
    std::pair<double, double> totals{0, 0};  // frames, events carried
    const obs::StatsSnapshot snapshot = net.stats_snapshot();
    if (const obs::MetricSnapshot* per_frame =
            snapshot.find("genas_mesh_link_events_per_frame")) {
      totals.first = static_cast<double>(per_frame->count());
      totals.second = static_cast<double>(per_frame->sum);
    }
    return totals;
  };
  const auto before = per_frame_totals();

  const auto start = Clock::now();
  pump(events.size());
  net.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  ModeResult result;
  result.events_per_sec = static_cast<double>(events.size()) / elapsed;
  result.elapsed = elapsed;
  const auto after = per_frame_totals();
  result.frames = after.first - before.first;
  result.frame_events = after.second - before.second;

  net.shutdown();
  if (!net.first_error().empty()) {
    std::cerr << "worker error: " << net.first_error() << "\n";
    std::abort();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_throughput.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      output = argv[i];
    }
  }

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a0", 0, 99)
                               .add_integer("a1", 0, 99)
                               .add_integer("a2", 0, 99)
                               .build();
  ProfileWorkloadOptions profile_options;
  profile_options.count = 240;
  profile_options.dont_care_probability = 0.3;
  profile_options.equality_only = false;
  profile_options.range_width_mean = 0.15;
  profile_options.seed = 33;
  const ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), profile_options);

  const JointDistribution joint =
      make_event_distribution(schema, {"gauss"});
  EventSampler sampler(joint, 7);
  const std::vector<Event> events =
      sampler.sample_batch(quick ? 2000 : 20000);

  const std::vector<Topology> topologies = {
      {"line4", 4, {{0, 1}, {1, 2}, {2, 3}}},
      {"star4", 4, {{0, 1}, {0, 2}, {0, 3}}},
  };
  const std::vector<std::pair<const char*, net::RoutingMode>> modes = {
      {"flooding", net::RoutingMode::kFlooding},
      {"routing", net::RoutingMode::kRouting},
      {"covered", net::RoutingMode::kRoutingCovered},
  };

  std::vector<std::pair<std::string, double>> entries;
  double total_frames = 0;
  double total_frame_events = 0;
  for (const Topology& topology : topologies) {
    for (const auto& [mode_name, mode] : modes) {
      const std::string base =
          std::string("mesh_") + topology.name + "_" + mode_name;

      const ModeResult legacy =
          measure_mode(topology, mode, schema, profiles, events, false);
      std::cerr << base << "_events_per_sec = "
                << static_cast<std::uint64_t>(legacy.events_per_sec) << "\n";
      entries.emplace_back(base + "_events_per_sec", legacy.events_per_sec);

      const ModeResult batched =
          measure_mode(topology, mode, schema, profiles, events, true);
      std::cerr << base << "_batched_events_per_sec = "
                << static_cast<std::uint64_t>(batched.events_per_sec) << "\n";
      entries.emplace_back(base + "_batched_events_per_sec",
                           batched.events_per_sec);
      // Link-layer rate: event transmissions the wire path encoded,
      // framed, and decoded per second — the figure comparable to the
      // local snapshot_batch256 path (each event counts once per link it
      // crosses, which is what the link layer actually moves).
      if (batched.elapsed > 0) {
        const double link_rate = batched.frame_events / batched.elapsed;
        std::cerr << base << "_batched_link_events_per_sec = "
                  << static_cast<std::uint64_t>(link_rate) << "\n";
        entries.emplace_back(base + "_batched_link_events_per_sec",
                             link_rate);
      }
      total_frames += batched.frames;
      total_frame_events += batched.frame_events;
    }
  }
  if (total_frames > 0) {
    const double avg = total_frame_events / total_frames;
    std::cerr << "mesh_link_events_per_frame_avg = " << avg << "\n";
    entries.emplace_back("mesh_link_events_per_frame_avg", avg);
  }
  benchutil::merge_json(output, entries);
  std::cout << "merged " << entries.size() << " mesh entries into " << output
            << "\n";
  return 0;
}
