// Reproduces Fig. 6(b), experiment TA2: attribute reordering with small
// differences in attribute selectivities (peak widths 40%-60%).
//
// Expected shape: the same ordering pattern as Fig. 6(a) but compressed —
// with lightly varying selectivities the reordering gain shrinks.
#include <iostream>

#include "bench_fig6_common.hpp"

int main() {
  using namespace genas;
  sim::print_heading(std::cout,
                     "Fig. 6(b) — attribute reordering, TA2 (small "
                     "differences in attribute distributions)");
  std::cout << "5 attributes, domain 60 each, 400 equality profiles; exact "
               "expected #operations per event\n\n";
  bench::run_fig6(/*wide=*/false, /*profiles_per_attribute=*/400);
  return 0;
}
