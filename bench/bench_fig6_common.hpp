// Shared harness for Fig. 6(a)/(b): attribute reordering under Measure A2
// with three event-distribution families and three level orders.
#pragma once

#include <iostream>

#include "bench_util.hpp"
#include "core/selectivity.hpp"

namespace genas::bench {

/// Runs one Fig. 6 experiment (TA1 when `wide`, else TA2) and prints the
/// table: rows = event family × attribute order (natural / ascending /
/// descending by A2), columns = event-descending-order linear search and
/// binary search.
inline void run_fig6(bool wide, std::size_t profiles_per_attribute) {
  const sim::EventFamily families[] = {sim::EventFamily::kEqual,
                                       sim::EventFamily::kGauss,
                                       sim::EventFamily::kRelocatedGauss};
  const OrderDirection directions[] = {OrderDirection::kNatural,
                                       OrderDirection::kAscending,
                                       OrderDirection::kDescending};
  const char* direction_names[] = {"natur.", "asc.", "desc."};

  sim::Table table({"events / tree-order", "event desc order search",
                    "binary search"});
  for (const sim::EventFamily family : families) {
    for (std::size_t d = 0; d < 3; ++d) {
      const sim::Workload workload = sim::attribute_scenario(
          wide, family, profiles_per_attribute, 60, 1);

      OrderingPolicy linear;
      linear.value_order = ValueOrder::kEventProbability;
      linear.attribute_measure = AttributeMeasure::kA2;
      linear.direction = directions[d];

      OrderingPolicy binary = linear;
      binary.strategy = SearchStrategy::kBinary;

      table.add_row(
          std::string(sim::to_string(family)) + " / " + direction_names[d],
          {run_policy(workload, linear).ops_per_event,
           run_policy(workload, binary).ops_per_event});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
}

}  // namespace genas::bench
