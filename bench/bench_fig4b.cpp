// Reproduces Fig. 4(b): Measures V1–V3 vs binary search — average operations
// per event for eight P_e/P_p combinations (TV4).
//
// Expected shape: V1 (event order) best for peaked event distributions;
// V2 (profile order) trades average event cost for profile priority; V3
// follows a middle course; binary search stays balanced.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace genas;
  using namespace genas::bench;

  constexpr std::int64_t kDomain = 100;
  constexpr std::size_t kProfiles = 250;

  const std::vector<std::pair<std::string, std::string>> combos = {
      {"d14", "gauss"}, {"d2", "gauss"},  {"d4", "gauss"}, {"d16", "d39"},
      {"d9", "gauss"},  {"d39", "gauss"}, {"d4", "d37"},   {"d17", "d34"},
  };

  sim::print_heading(std::cout,
                     "Fig. 4(b) — value reordering, Measures V1-V3 (TV4)");
  std::cout << "single attribute, domain " << kDomain << ", p = " << kProfiles
            << " equality profiles; exact expected #operations per event\n\n";

  const auto columns = fig4b_columns();
  sim::Table table(headers_for(columns));
  for (const auto& [pe, pp] : combos) {
    const sim::Workload workload =
        sim::single_attribute(kDomain, kProfiles, pe, pp, 2);
    add_policy_row(table, workload, columns,
                   [](const CostReport& r) { return r.ops_per_event; });
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
