// Ablation benches beyond the paper's figures:
//   (1) A1 vs A2 vs A3 attribute measures (the design space of §4.1)
//   (2) the adaptive filter under distribution drift (§5: "the algorithm
//       ... has to maintain a history of events"): a static tree optimized
//       for the old regime vs the adaptive engine that restructures.
#include <iostream>

#include "core/filter_engine.hpp"
#include "core/ordering_policy.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"
#include "tree/expected_cost.hpp"

namespace {

using namespace genas;

void measure_ablation() {
  sim::print_heading(std::cout,
                     "Ablation — attribute measures A1 / A2 / A3 (exact "
                     "E[#ops/event], TA workloads)");
  sim::Table table({"workload", "natural", "A1 desc", "A2 desc", "A3"});
  for (const bool wide : {true, false}) {
    for (const sim::EventFamily family :
         {sim::EventFamily::kEqual, sim::EventFamily::kGauss,
          sim::EventFamily::kRelocatedGauss}) {
      const sim::Workload workload =
          sim::attribute_scenario(wide, family, 300, 40, 1);
      const auto cost = [&](std::optional<AttributeMeasure> measure) {
        OrderingPolicy policy;
        policy.value_order = ValueOrder::kEventProbability;
        policy.attribute_measure = measure;
        policy.direction = OrderDirection::kDescending;
        return expected_cost(build_tree(workload.profiles, policy,
                                        workload.events),
                             workload.events)
            .ops_per_event;
      };
      table.add_row(workload.label,
                    {cost(std::nullopt), cost(AttributeMeasure::kA1),
                     cost(AttributeMeasure::kA2), cost(AttributeMeasure::kA3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nA3 is the exhaustive optimum (O(n! * (2p-1)) as per the "
               "paper); A2 should track it closely, A1 ignores P_e.\n";
}

void adaptive_drift() {
  sim::print_heading(std::cout,
                     "Adaptive filter under drift — static vs adaptive "
                     "(measured ops/event per phase of 2,000 events)");

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("x", 0, 79)
                               .add_integer("y", 0, 79)
                               .build();

  const auto regime = [&](bool high) {
    return JointDistribution::independent(
        schema, {shapes::percent_peak(80, 0.95, high, 0.08),
                 shapes::gauss(80)});
  };

  // Subscriptions interested in both ends of x.
  const auto subscribe_all = [&](FilterEngine& engine) {
    for (int v = 0; v < 8; ++v) {
      engine.subscribe("x = " + std::to_string(v));
      engine.subscribe("x = " + std::to_string(79 - v));
      engine.subscribe("x >= " + std::to_string(70) +
                       " && y >= " + std::to_string(80 - 8 * (v + 1) % 60));
    }
  };

  EngineOptions static_options;
  static_options.policy.value_order = ValueOrder::kEventProbability;
  static_options.prior = regime(false);  // optimized for the low regime only
  FilterEngine static_engine(schema, static_options);
  subscribe_all(static_engine);

  EngineOptions adaptive_options = static_options;
  AdaptiveOptions adaptive;
  adaptive.min_observations = 300;
  adaptive.rebuild_cooldown = 300;
  adaptive.drift_threshold = 0.3;
  adaptive.decay = 0.995;
  adaptive_options.adaptive = adaptive;
  FilterEngine adaptive_engine(schema, adaptive_options);
  subscribe_all(adaptive_engine);

  sim::Table table({"phase", "static ops/event", "adaptive ops/event",
                    "adaptive rebuilds"});
  constexpr int kPhaseEvents = 2000;
  int phase_index = 0;
  for (const bool high : {false, true, true}) {
    EventSampler sampler(regime(high), 100 + phase_index);
    std::uint64_t static_ops = 0;
    std::uint64_t adaptive_ops = 0;
    for (int i = 0; i < kPhaseEvents; ++i) {
      const Event event = sampler.sample();
      static_ops += static_engine.match(event).operations;
      adaptive_ops += adaptive_engine.match(event).operations;
    }
    const std::string label = "phase " + std::to_string(++phase_index) +
                              (high ? " (high regime)" : " (low regime)");
    const std::uint64_t rebuilds =
        adaptive_engine.adaptive() ? adaptive_engine.adaptive()->rebuilds() : 0;
    table.add_row(label,
                  {static_cast<double>(static_ops) / kPhaseEvents,
                   static_cast<double>(adaptive_ops) / kPhaseEvents,
                   static_cast<double>(rebuilds)});
  }
  table.print(std::cout);
  std::cout << "\nAfter the regime change (phase 2) the adaptive engine "
               "restructures and its cost falls back toward the phase-1 "
               "level; the static engine keeps paying for the stale order.\n";
}

}  // namespace

int main() {
  measure_ablation();
  adaptive_drift();
  return 0;
}
