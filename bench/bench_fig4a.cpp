// Reproduces Fig. 4(a): influence of value reordering (Measure V1) — average
// operations per event for natural-order scan, event-order scan, and binary
// search across seven P_e/P_p distribution combinations (scenario TV4:
// single-attribute tree, exact expectation).
//
// Expected shape: natural and event order oscillate across combinations,
// binary search is balanced, and event order wins where events concentrate
// on few profile-covered subranges (E(X) < log2(2p−1)).
#include <iostream>

#include "bench_util.hpp"
#include "core/analytical.hpp"

int main() {
  using namespace genas;
  using namespace genas::bench;

  constexpr std::int64_t kDomain = 100;
  constexpr std::size_t kProfiles = 250;

  const std::vector<std::pair<std::string, std::string>> combos = {
      {"d37", "equal"}, {"d5", "d41"},  {"d3", "d39"}, {"d39", "d18"},
      {"d40", "d17"},   {"d42", "d1"},  {"d39", "d1"},
  };

  sim::print_heading(std::cout,
                     "Fig. 4(a) — value reordering, Measure V1 (TV4)");
  std::cout << "single attribute, domain " << kDomain << ", p = " << kProfiles
            << " equality profiles; exact expected #operations per event\n\n";

  const auto columns = fig4a_columns();
  sim::Table table(headers_for(columns));
  for (const auto& [pe, pp] : combos) {
    const sim::Workload workload =
        sim::single_attribute(kDomain, kProfiles, pe, pp, 1);
    add_policy_row(table, workload, columns,
                   [](const CostReport& r) { return r.ops_per_event; });
  }
  table.print(std::cout);

  std::cout << "\nbreak-even bound log2(2p-1) = "
            << binary_threshold(kProfiles) << " operations\n";

  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
