// Don't-care-edge study — the paper's outlook (§5): "We also investigate
// the influence of don't care-edges and different operators on the
// performance." Sweeps the per-attribute don't-care probability and the
// operator family (equality vs range tests) and reports exact expected
// cost plus tree shape (TV4 over a 3-attribute workload).
#include <iostream>

#include "bench_util.hpp"
#include "common/text.hpp"

int main() {
  using namespace genas;
  using namespace genas::bench;

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a1", 0, 59)
                               .add_integer("a2", 0, 59)
                               .add_integer("a3", 0, 59)
                               .build();
  const JointDistribution joint = make_event_distribution(schema, {"gauss"});

  sim::print_heading(std::cout,
                     "Don't-care edges and operator families — 3 attributes, "
                     "domain 60, p = 400 (TV4, exact; V1 + A2-desc policy)");

  sim::Table table({"don't-care prob", "operators", "ops/event",
                    "match prob", "nodes", "leaves"});
  for (const bool equality : {true, false}) {
    for (const double dc : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      ProfileWorkloadOptions options;
      options.count = 400;
      options.dont_care_probability = dc;
      options.equality_only = equality;
      options.range_width_mean = 0.08;
      options.seed = 31;
      const ProfileSet profiles = generate_profiles(
          schema, make_profile_distributions(schema, {"95% high"}), options);

      OrderingPolicy policy;
      policy.value_order = ValueOrder::kEventProbability;
      policy.attribute_measure = AttributeMeasure::kA2;
      policy.direction = OrderDirection::kDescending;
      const ProfileTree tree = build_tree(profiles, policy, joint);
      const CostReport report = expected_cost(tree, joint);

      table.add_row({format_double(dc, 1),
                     equality ? "equality" : "ranges",
                     format_double(report.ops_per_event, 3),
                     format_double(report.match_probability, 4),
                     std::to_string(tree.build_stats().node_count),
                     std::to_string(tree.build_stats().leaf_count)});
    }
  }
  table.print(std::cout);
  std::cout << "\nMore don't-care edges shrink the zero-subdomains (a '*' "
               "profile accepts everything), weakening early rejection: "
               "ops/event and match probability rise together; range "
               "operators widen cells and amplify the effect.\n";
  return 0;
}
