// Standalone composite-detection throughput report: events/sec through
// Broker::publish_batch with a population of composite subscriptions driving
// the detector, against the plain-subscription baseline on the identical
// workload. Merged into BENCH_throughput.json (tools/run_bench.sh runs this
// after bench_mesh).
//
//   ./bench_composite [output.json] [--quick]
//
// Workload: 3-attribute schema, gauss events with an increasing timestamp
// axis; the composite population mixes seq/conj/disj/neg over range leaves.
// The baseline registers the same leaf profiles as plain subscriptions, so
// the delta is the detector + reorder-stage cost per delivered primitive.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dist/sampler.hpp"
#include "ens/broker.hpp"
#include "sim/workload.hpp"

namespace {

using namespace genas;
using Clock = std::chrono::steady_clock;

std::vector<Event> make_events(const SchemaPtr& schema, std::size_t count) {
  const JointDistribution joint = make_event_distribution(schema, {"gauss"});
  EventSampler sampler(joint, 11);
  std::vector<Event> events = sampler.sample_batch(count);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].set_time(static_cast<Timestamp>(i));
  }
  return events;
}

/// Composite population: `count` subscriptions cycling through the four
/// operators, leaves sweeping the domain so selectivity varies.
void add_composites(Broker& broker, const SchemaPtr& schema,
                    std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>((i * 7) % 80);
    const auto leaf = [&](const char* attr, std::int64_t at) {
      return primitive(ProfileBuilder(schema)
                           .where(attr, Op::kGe, Value(at))
                           .build());
    };
    CompositeExprPtr expr;
    switch (i % 4) {
      case 0:
        expr = seq(leaf("a0", lo), leaf("a1", lo / 2), 64);
        break;
      case 1:
        expr = conj(leaf("a1", lo), leaf("a2", lo / 2), 64);
        break;
      case 2:
        expr = disj(leaf("a0", lo + 10), leaf("a2", lo));
        break;
      default:
        expr = neg(leaf("a2", 90), leaf("a0", lo), 32);
        break;
    }
    broker.subscribe_composite(std::move(expr), [](const CompositeFiring&) {});
  }
}

/// The same leaves as plain subscriptions (the no-detector baseline).
void add_plain_leaves(Broker& broker, const SchemaPtr& schema,
                      std::size_t composites) {
  for (std::size_t i = 0; i < composites; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>((i * 7) % 80);
    const auto sub = [&](const char* attr, std::int64_t at) {
      broker.subscribe(ProfileBuilder(schema)
                           .where(attr, Op::kGe, Value(at))
                           .build(),
                       [](const Notification&) {});
    };
    switch (i % 4) {
      case 0: sub("a0", lo); sub("a1", lo / 2); break;
      case 1: sub("a1", lo); sub("a2", lo / 2); break;
      case 2: sub("a0", lo + 10); sub("a2", lo); break;
      default: sub("a2", 90); sub("a0", lo); break;
    }
  }
}

double measure(Broker& broker, const std::vector<Event>& events,
               bool flush_composites) {
  constexpr std::size_t kBatch = 256;
  // Warm-up pass builds trees and snapshots.
  broker.publish_batch({events.data(), std::min(kBatch, events.size())});

  const auto start = Clock::now();
  for (std::size_t at = 0; at < events.size(); at += kBatch) {
    const std::size_t n = std::min(kBatch, events.size() - at);
    broker.publish_batch({events.data() + at, n});
  }
  if (flush_composites) broker.flush_composites();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(events.size()) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_throughput.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      output = argv[i];
    }
  }

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a0", 0, 99)
                               .add_integer("a1", 0, 99)
                               .add_integer("a2", 0, 99)
                               .build();
  const std::vector<Event> events =
      make_events(schema, quick ? 20000 : 200000);
  const std::size_t composites = 120;

  std::vector<std::pair<std::string, double>> entries;

  {
    Broker broker(schema);
    add_plain_leaves(broker, schema, composites);
    const double rate = measure(broker, events, false);
    entries.emplace_back("composite_baseline_plain_events_per_sec", rate);
  }
  {
    Broker broker(schema);  // streaming detection: watermark at skew 64
    broker.set_composite_skew(64);
    add_composites(broker, schema, composites);
    const double rate = measure(broker, events, true);
    entries.emplace_back("composite_detect_skew64_events_per_sec", rate);
  }
  {
    Broker broker(schema);  // buffer-until-flush detection
    broker.set_composite_skew(1 << 30);
    add_composites(broker, schema, composites);
    const double rate = measure(broker, events, true);
    entries.emplace_back("composite_detect_flush_events_per_sec", rate);
  }

  for (const auto& [key, rate] : entries) {
    std::cerr << key << " = " << static_cast<std::uint64_t>(rate) << "\n";
  }
  genas::benchutil::merge_json(output, entries);
  std::cout << "merged " << entries.size() << " composite entries into "
            << output << "\n";
  return 0;
}
