// Standalone composite-detection throughput report: events/sec through
// Broker::publish_batch with a population of composite subscriptions driving
// the detector, against the plain-subscription baseline on the identical
// workload. Merged into BENCH_throughput.json (tools/run_bench.sh runs this
// after bench_mesh).
//
//   ./bench_composite [output.json] [--quick]
//
// Workload: 3-attribute schema, gauss events with an increasing timestamp
// axis; the composite population mixes seq/conj/disj/neg over range leaves.
// The baseline registers the same leaf profiles as plain subscriptions, so
// the delta is the detector + reorder-stage cost per delivered primitive.
//
// The *wide* workload is the dispatch-index case: hundreds of composites
// over selective bucket leaves, so each stimulus affects a handful of
// entries. It runs twice — per-leaf dispatch index on (the default) and off
// (the O(subscriptions) sweep) — and aborts unless both produce the
// identical firing multiset; the two entries' ratio is the index speedup.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dist/sampler.hpp"
#include "ens/broker.hpp"
#include "sim/workload.hpp"

namespace {

using namespace genas;
using Clock = std::chrono::steady_clock;

std::vector<Event> make_events(const SchemaPtr& schema, std::size_t count) {
  const JointDistribution joint = make_event_distribution(schema, {"gauss"});
  EventSampler sampler(joint, 11);
  std::vector<Event> events = sampler.sample_batch(count);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].set_time(static_cast<Timestamp>(i));
  }
  return events;
}

/// Composite population: `count` subscriptions cycling through the four
/// operators, leaves sweeping the domain so selectivity varies.
void add_composites(Broker& broker, const SchemaPtr& schema,
                    std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>((i * 7) % 80);
    const auto leaf = [&](const char* attr, std::int64_t at) {
      return primitive(ProfileBuilder(schema)
                           .where(attr, Op::kGe, Value(at))
                           .build());
    };
    CompositeExprPtr expr;
    switch (i % 4) {
      case 0:
        expr = seq(leaf("a0", lo), leaf("a1", lo / 2), 64);
        break;
      case 1:
        expr = conj(leaf("a1", lo), leaf("a2", lo / 2), 64);
        break;
      case 2:
        expr = disj(leaf("a0", lo + 10), leaf("a2", lo));
        break;
      default:
        expr = neg(leaf("a2", 90), leaf("a0", lo), 32);
        break;
    }
    broker.subscribe_composite(std::move(expr), [](const CompositeFiring&) {});
  }
}

/// The same leaves as plain subscriptions (the no-detector baseline).
void add_plain_leaves(Broker& broker, const SchemaPtr& schema,
                      std::size_t composites) {
  for (std::size_t i = 0; i < composites; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>((i * 7) % 80);
    const auto sub = [&](const char* attr, std::int64_t at) {
      broker.subscribe(ProfileBuilder(schema)
                           .where(attr, Op::kGe, Value(at))
                           .build(),
                       [](const Notification&) {});
    };
    switch (i % 4) {
      case 0: sub("a0", lo); sub("a1", lo / 2); break;
      case 1: sub("a1", lo); sub("a2", lo / 2); break;
      case 2: sub("a0", lo + 10); sub("a2", lo); break;
      default: sub("a2", 90); sub("a0", lo); break;
    }
  }
}

/// Firing record of one run: count plus an order-insensitive multiset hash,
/// so index and sweep runs can assert bit-identical detection.
struct FiringDigest {
  std::uint64_t count = 0;
  std::uint64_t hash = 0;

  void record(const CompositeFiring& firing) {
    ++count;
    std::uint64_t h = firing.subscription * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(firing.time) + 0x517CC1B727220A95ull +
         (h << 6) + (h >> 2);
    hash += h;  // commutative: multiset equality, not order
  }

  bool operator==(const FiringDigest&) const = default;
};

/// Wide-subscription population: `count` composites over selective 2-wide
/// bucket leaves tiling each attribute domain, cycling the four operators.
/// Every event matches exactly one bucket per attribute, so a stimulus
/// affects ~count/50 entries — the workload the per-leaf dispatch index
/// exists for. Equal bucket leaves recur across composites, so the
/// refcounted dedup collapses the engine population to the distinct
/// buckets.
void add_wide_composites(Broker& broker, const SchemaPtr& schema,
                         std::size_t count, FiringDigest& digest) {
  const auto leaf = [&](const char* attr, std::size_t i,
                        std::size_t stride) {
    const auto lo = static_cast<std::int64_t>(((i + stride) * 2) % 100);
    return primitive(ProfileBuilder(schema)
                         .between(attr, Value(lo), Value(lo + 1))
                         .build());
  };
  for (std::size_t i = 0; i < count; ++i) {
    CompositeExprPtr expr;
    switch (i % 4) {
      case 0:
        expr = seq(leaf("a0", i, 0), leaf("a1", i, 17), 16);
        break;
      case 1:
        expr = conj(leaf("a1", i, 0), leaf("a2", i, 29), 16);
        break;
      case 2:
        expr = disj(leaf("a0", i, 11), leaf("a2", i, 0));
        break;
      default:
        expr = neg(leaf("a2", i, 7), leaf("a0", i, 3), 8);
        break;
    }
    broker.subscribe_composite(
        std::move(expr),
        [&digest](const CompositeFiring& f) { digest.record(f); });
  }
}

double measure(Broker& broker, const std::vector<Event>& events,
               bool flush_composites) {
  constexpr std::size_t kBatch = 256;
  // Warm-up pass builds trees and snapshots.
  broker.publish_batch({events.data(), std::min(kBatch, events.size())});

  const auto start = Clock::now();
  for (std::size_t at = 0; at < events.size(); at += kBatch) {
    const std::size_t n = std::min(kBatch, events.size() - at);
    broker.publish_batch({events.data() + at, n});
  }
  if (flush_composites) broker.flush_composites();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(events.size()) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_throughput.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      output = argv[i];
    }
  }

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a0", 0, 99)
                               .add_integer("a1", 0, 99)
                               .add_integer("a2", 0, 99)
                               .build();
  const std::vector<Event> events =
      make_events(schema, quick ? 20000 : 200000);
  const std::size_t composites = 120;

  std::vector<std::pair<std::string, double>> entries;

  {
    Broker broker(schema);
    add_plain_leaves(broker, schema, composites);
    const double rate = measure(broker, events, false);
    entries.emplace_back("composite_baseline_plain_events_per_sec", rate);
  }
  {
    Broker broker(schema);  // streaming detection: watermark at skew 64
    broker.set_composite_skew(64);
    add_composites(broker, schema, composites);
    const double rate = measure(broker, events, true);
    entries.emplace_back("composite_detect_skew64_events_per_sec", rate);
  }
  {
    Broker broker(schema);  // buffer-until-flush detection
    broker.set_composite_skew(1 << 30);
    add_composites(broker, schema, composites);
    const double rate = measure(broker, events, true);
    entries.emplace_back("composite_detect_flush_events_per_sec", rate);
  }

  // Wide-subscription case: dispatch index vs. the swept oracle baseline on
  // the identical workload; the firing multisets must agree exactly.
  const std::size_t wide = 480;
  FiringDigest index_digest;
  FiringDigest sweep_digest;
  {
    Broker broker(schema);
    broker.set_composite_skew(64);
    add_wide_composites(broker, schema, wide, index_digest);
    const double rate = measure(broker, events, true);
    entries.emplace_back("composite_detect_wide_index_events_per_sec", rate);
  }
  {
    Broker broker(schema);
    broker.set_composite_skew(64);
    broker.set_composite_index_enabled(false);  // O(subscriptions) sweep
    add_wide_composites(broker, schema, wide, sweep_digest);
    const double rate = measure(broker, events, true);
    entries.emplace_back("composite_detect_wide_sweep_events_per_sec", rate);
  }
  if (!(index_digest == sweep_digest)) {
    std::cerr << "FATAL: index and sweep firing multisets diverge ("
              << index_digest.count << " vs " << sweep_digest.count
              << " firings)\n";
    return 1;
  }
  std::cerr << "wide firing multiset identical across index/sweep: "
            << index_digest.count << " firings\n";

  for (const auto& [key, rate] : entries) {
    std::cerr << key << " = " << static_cast<std::uint64_t>(rate) << "\n";
  }
  genas::benchutil::merge_json(output, entries);
  std::cout << "merged " << entries.size() << " composite entries into "
            << output << "\n";
  return 0;
}
