// Shared helper for the standalone bench reports: merges key/value entries
// into an existing top-level JSON object file (or starts a fresh one) by
// textual splice, matching the writer in bench_perf_report.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace genas::benchutil {

inline void merge_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& entries) {
  std::string text;
  {
    std::ifstream is(path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    text = buffer.str();
  }
  const auto rstrip = [&text] {
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == ' ' || text.back() == '\t')) {
      text.pop_back();
    }
  };
  rstrip();
  if (!text.empty() && text.back() == '}') {
    text.pop_back();  // only the object's own closing brace, never a nested one
    rstrip();
  }
  std::ofstream os(path);
  if (text.empty()) {
    os << "{\n";
  } else if (text.back() == '{') {
    os << text << '\n';  // existing object was empty: no separating comma
  } else {
    os << text << ",\n";
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.1f", entries[i].second);
    os << "  \"" << entries[i].first << "\": " << buffer
       << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "}\n";
}

}  // namespace genas::benchutil
