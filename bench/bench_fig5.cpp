// Reproduces Fig. 5(a)-(c): value reordering measured per event, per
// profile, and per event-and-profile on the paper's six named distribution
// combinations (events/profiles: equal with 90%/95% peaks, falling, ...).
//
// Expected shape: per event (a), V1 is strongest; per profile (b), the
// profile-dependent orders V2/V3 notify high-priority profiles after far
// fewer operations; the per-event-and-profile view (c) shows V3's middle
// course ("frequent events of high user interest are supported").
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace genas;
  using namespace genas::bench;

  constexpr std::int64_t kDomain = 100;
  constexpr std::size_t kProfiles = 250;

  // P_e / P_p pairs as labelled in the paper.
  const std::vector<std::pair<std::string, std::string>> combos = {
      {"equal", "90% high"},    {"equal", "95% high"},
      {"equal", "95% low"},     {"falling", "95% high"},
      {"95% high", "95% low"},  {"95% low", "95% low"},
  };

  const auto columns = fig4b_columns();

  const auto make_table = [&](const char* title, auto select) {
    sim::print_heading(std::cout, title);
    sim::Table table(headers_for(columns));
    for (const auto& [pe, pp] : combos) {
      const sim::Workload workload =
          sim::single_attribute(kDomain, kProfiles, pe, pp, 3);
      add_policy_row(table, workload, columns, select);
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
  };

  make_table("Fig. 5(a) — average filter operations per event (TV4)",
             [](const CostReport& r) { return r.ops_per_event; });
  make_table("Fig. 5(b) — average filter operations per profile (TV4)",
             [](const CostReport& r) { return r.ops_per_profile; });
  make_table(
      "Fig. 5(c) — average filter operations per event and profile (TV4)",
      [](const CostReport& r) { return r.ops_per_event_and_profile; });
  return 0;
}
