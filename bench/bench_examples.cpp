// Reproduces the paper's worked Examples 2-4 (its numeric "tables"):
//   Example 2 — single-attribute expected costs (exact reproduction)
//   Example 3 — attribute reordering on the Example 1 toy system
//   Example 4 — combined value + attribute reordering
#include <iostream>

#include "core/analytical.hpp"
#include "core/ordering_policy.hpp"
#include "dist/distribution.hpp"
#include "sim/report.hpp"
#include "tree/expected_cost.hpp"

namespace {

using namespace genas;

SchemaPtr example1_schema() {
  return SchemaBuilder()
      .add_integer("temperature", -30, 50)
      .add_integer("humidity", 0, 100)
      .add_integer("radiation", 1, 100)
      .build();
}

ProfileSet example1_profiles(const SchemaPtr& schema) {
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema)
              .where("temperature", Op::kGe, 35)
              .where("humidity", Op::kGe, 90)
              .build());
  set.add(ProfileBuilder(schema)
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 90)
              .build());
  set.add(ProfileBuilder(schema)
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 90)
              .between("radiation", 35, 50)
              .build());
  set.add(ProfileBuilder(schema)
              .between("temperature", -30, -20)
              .where("humidity", Op::kLe, 5)
              .between("radiation", 40, 100)
              .build());
  set.add(ProfileBuilder(schema)
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 80)
              .build());
  return set;
}

void spread(std::vector<double>& w, DomainIndex lo, DomainIndex hi,
            double mass) {
  for (DomainIndex v = lo; v <= hi; ++v) {
    w[static_cast<std::size_t>(v)] = mass / static_cast<double>(hi - lo + 1);
  }
}

JointDistribution example3_distribution(const SchemaPtr& schema) {
  std::vector<double> t(81, 0.0);
  spread(t, 0, 10, 0.02);
  spread(t, 11, 59, 0.17);
  spread(t, 60, 64, 0.01);
  spread(t, 65, 80, 0.80);
  std::vector<double> h(101, 0.0);
  spread(h, 0, 29, 0.05);
  spread(h, 30, 79, 0.60);
  spread(h, 80, 89, 0.25);
  spread(h, 90, 100, 0.10);
  std::vector<double> r(100, 0.0);
  spread(r, 0, 33, 0.90);
  spread(r, 34, 38, 0.05);
  spread(r, 39, 48, 0.02);
  spread(r, 49, 99, 0.03);
  return JointDistribution::independent(
      schema, {DiscreteDistribution::from_weights(t),
               DiscreteDistribution::from_weights(h),
               DiscreteDistribution::from_weights(r)});
}

void example2() {
  sim::print_heading(std::cout, "Example 2 — single-attribute model (exact)");
  const std::vector<ModelCell> cells = {
      {{0, 10}, 0.02, 1.0 / 3, true},
      {{11, 59}, 0.17, 0.0, false},
      {{60, 64}, 0.01, 1.0 / 3, true},
      {{65, 80}, 0.80, 1.0 / 3, true},
  };
  const auto v1 = response_time(cells, ValueOrder::kEventProbability,
                                SearchStrategy::kLinear);
  const auto binary = response_time(cells, ValueOrder::kNaturalAscending,
                                    SearchStrategy::kBinary);
  sim::Table table({"ordering", "E(X)", "R0", "R", "paper R"});
  table.add_row("event order (V1)",
                {v1.expectation, v1.r0, v1.total(), 1.21});
  table.add_row("binary search", {binary.expectation, binary.r0,
                                  binary.total(), 1.99});
  table.print(std::cout);
}

void examples34() {
  const SchemaPtr schema = example1_schema();
  const ProfileSet profiles = example1_profiles(schema);
  const JointDistribution joint = example3_distribution(schema);

  const auto cost = [&](const OrderingPolicy& policy) {
    return expected_cost(build_tree(profiles, policy, joint), joint)
        .ops_per_event;
  };

  OrderingPolicy natural;

  OrderingPolicy a1;
  a1.attribute_measure = AttributeMeasure::kA1;

  OrderingPolicy a2;
  a2.attribute_measure = AttributeMeasure::kA2;

  OrderingPolicy v1_a2 = a2;
  v1_a2.value_order = ValueOrder::kEventProbability;

  OrderingPolicy binary_a2 = a2;
  binary_a2.strategy = SearchStrategy::kBinary;

  sim::print_heading(
      std::cout, "Examples 3 & 4 — reordering the Example 1 profile tree");
  std::cout << "(paper values use continuous-measure bucket arithmetic; our\n"
               " discrete model reproduces the effect and ranking, see\n"
               " EXPERIMENTS.md)\n\n";
  sim::Table table({"tree configuration", "E[#ops/event]", "paper"});
  table.add_row("natural order (Fig. 1 tree)", {cost(natural), 3.371});
  table.add_row("attribute reorder A1 desc", {cost(a1), 1.91});
  table.add_row("attribute reorder A2 desc", {cost(a2), 1.91});
  table.add_row("V1 + A2 (Example 4, Fig. 2 tree)", {cost(v1_a2), 1.08});
  table.add_row("binary search + A2", {cost(binary_a2), 1.616});
  table.print(std::cout);

  // Per-level decomposition E(X_j | ...) — the terms Example 3 sums.
  std::cout << "\nper-attribute decomposition (E contribution per level):\n";
  sim::Table levels({"tree configuration", "temperature", "humidity",
                     "radiation"});
  const auto decompose_row = [&](const std::string& label,
                                 const OrderingPolicy& policy) {
    const CostReport report =
        expected_cost(build_tree(profiles, policy, joint), joint);
    levels.add_row(label, {report.per_attribute_ops[0],
                           report.per_attribute_ops[1],
                           report.per_attribute_ops[2]});
  };
  decompose_row("natural order", natural);
  decompose_row("A2 desc (humidity at root)", a2);
  levels.print(std::cout);
}

}  // namespace

int main() {
  example2();
  examples34();
  return 0;
}
