// Shared helpers for the figure benches: run a set of ordering policies over
// a workload and collect the paper's cost metrics.
#pragma once

#include <string>
#include <vector>

#include "core/ordering_policy.hpp"
#include "sim/scenarios.hpp"
#include "sim/report.hpp"
#include "tree/expected_cost.hpp"

namespace genas::bench {

/// A named policy column of a figure.
struct PolicyColumn {
  std::string name;
  OrderingPolicy policy;
};

/// The strategy columns of Fig. 4(a): natural order scan, event-order scan
/// (V1), binary search.
inline std::vector<PolicyColumn> fig4a_columns() {
  OrderingPolicy natural;
  OrderingPolicy event;
  event.value_order = ValueOrder::kEventProbability;
  OrderingPolicy binary;
  binary.strategy = SearchStrategy::kBinary;
  return {{"natural order search", natural},
          {"event order search", event},
          {"binary search", binary}};
}

/// The strategy columns of Figs. 4(b)/5: V2, V3, V1, binary.
inline std::vector<PolicyColumn> fig4b_columns() {
  OrderingPolicy v2;
  v2.value_order = ValueOrder::kProfileProbability;
  OrderingPolicy v3;
  v3.value_order = ValueOrder::kCombinedProbability;
  OrderingPolicy v1;
  v1.value_order = ValueOrder::kEventProbability;
  OrderingPolicy binary;
  binary.strategy = SearchStrategy::kBinary;
  return {{"profile order search", v2},
          {"event * profile order search", v3},
          {"events order search", v1},
          {"binary search", binary}};
}

/// Exact TV4 cost of one policy on one workload.
inline CostReport run_policy(const sim::Workload& workload,
                             const OrderingPolicy& policy) {
  const ProfileTree tree =
      build_tree(workload.profiles, policy, workload.events);
  return expected_cost(tree, workload.events);
}

/// Fills one table row: the metric selected by `select` per policy column.
template <typename Select>
void add_policy_row(sim::Table& table, const sim::Workload& workload,
                    const std::vector<PolicyColumn>& columns,
                    const Select& select) {
  std::vector<double> values;
  values.reserve(columns.size());
  for (const PolicyColumn& column : columns) {
    values.push_back(select(run_policy(workload, column.policy)));
  }
  table.add_row(workload.label, values);
}

/// Header row: "combination" + policy names.
inline std::vector<std::string> headers_for(
    const std::vector<PolicyColumn>& columns) {
  std::vector<std::string> headers = {"P_e / P_p"};
  for (const PolicyColumn& column : columns) headers.push_back(column.name);
  return headers;
}

}  // namespace genas::bench
