// Standalone perf report: measures the ISSUE-2 acceptance numbers and emits
// them as JSON (BENCH_throughput.json), seeding the perf trajectory.
//
//   ./bench_perf_report [output.json] [--quick]
//
// Measured on the 10,000-equality-profile workload:
//   * matcher_node_events_per_sec / matcher_flat_events_per_sec — raw
//     single-thread match throughput of the node-form vs flat-form tree
//     (the flat/node ratio is the cache-layout win);
//   * broker "mutex" vs "snapshot" aggregate events/sec at 1 and 4
//     publisher threads (the concurrency win — meaningful only when the
//     host grants ≥4 hardware threads, see hardware_threads);
//   * snapshot_batch256_events_per_sec — the amortized batch pipeline;
//   * delivery_latency_p50_ns / p99 — publish-to-callback latency from the
//     broker's trace histogram (trace period 1 for the measurement window);
//   * obs_overhead_pct — what the default trace sampling costs the
//     single-thread snapshot path (vs. tracing disabled); the observability
//     acceptance budget is a few percent.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_ens_util.hpp"
#include "match/tree_matcher.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace genas;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body(i)` repeatedly for ~`budget` seconds; returns iterations/sec.
template <typename Body>
double measure_rate(double budget, const Body& body) {
  // Warm-up pass.
  for (std::size_t i = 0; i < 1024; ++i) body(i);
  std::size_t iterations = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while ((elapsed = seconds_since(start)) < budget) {
    for (std::size_t k = 0; k < 512; ++k) body(iterations++);
  }
  return static_cast<double>(iterations) / elapsed;
}

/// Aggregate events/sec of `threads` publishers calling `publish(i)`.
template <typename Publish>
double measure_threaded_rate(int threads, double budget,
                             const Publish& publish) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t) * 997;
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < 256; ++k) publish(i++);
        local += 256;
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(budget));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();
  return static_cast<double>(total.load()) / seconds_since(start);
}

void put(std::ostream& os, const char* key, double value, bool last = false) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.1f", value);
  os << "  \"" << key << "\": " << buffer << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_throughput.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      output = argv[i];
    }
  }
  const double budget = quick ? 0.1 : 1.5;

  std::cerr << "building 10,000-profile fixture...\n";
  bench::EnsFixture fixture;
  const std::size_t mask = fixture.events.size() - 1;

  // Raw matcher throughput: node layout vs flat layout, single thread.
  OrderingPolicy policy;
  policy.strategy = SearchStrategy::kBinary;
  ProfileWorkloadOptions options;
  options.count = 10000;
  options.dont_care_probability = 0.2;
  options.equality_only = true;
  options.seed = 21;
  const ProfileSet profiles = generate_profiles(
      fixture.schema, make_profile_distributions(fixture.schema, {"gauss"}),
      options);
  TreeMatcher matcher(profiles, policy, fixture.joint);

  matcher.use_flat_layout(false);
  const double node_rate = measure_rate(budget, [&](std::size_t i) {
    const MatchOutcome outcome = matcher.match(fixture.events[i & mask]);
    if (outcome.operations == UINT64_MAX) std::abort();  // keep it live
  });
  matcher.use_flat_layout(true);
  const double flat_rate = measure_rate(budget, [&](std::size_t i) {
    const MatchOutcome outcome = matcher.match(fixture.events[i & mask]);
    if (outcome.operations == UINT64_MAX) std::abort();
  });
  // Allocation-free variant: match the flat tree directly, as the broker's
  // lock-free publish path does (no MatchOutcome heap copy).
  const FlatProfileTree& flat_tree = matcher.flat();
  const double flat_span_rate = measure_rate(budget, [&](std::size_t i) {
    const FlatMatch match = flat_tree.match(fixture.events[i & mask]);
    if (match.operations == UINT64_MAX) std::abort();
  });

  const auto publish_mutex = [&](std::size_t i) {
    fixture.mutex_broker->publish(fixture.events[i & mask]);
  };
  const auto publish_snapshot = [&](std::size_t i) {
    fixture.snapshot_broker->publish(fixture.events[i & mask]);
  };
  const double mutex_1t = measure_threaded_rate(1, budget, publish_mutex);
  const double mutex_4t = measure_threaded_rate(4, budget, publish_mutex);
  const double snapshot_1t = measure_threaded_rate(1, budget, publish_snapshot);
  const double snapshot_4t = measure_threaded_rate(4, budget, publish_snapshot);

  // Observability overhead: the same single-thread loop with trace sampling
  // off, against the headline run's default period. Positive = sampling
  // cost; small negative values are run-to-run noise.
  fixture.snapshot_broker->set_trace_period(0);
  const double snapshot_1t_untraced =
      measure_threaded_rate(1, budget, publish_snapshot);
  const double obs_overhead_pct =
      snapshot_1t_untraced > 0
          ? 100.0 * (1.0 - snapshot_1t / snapshot_1t_untraced)
          : 0.0;

  // Delivery latency quantiles: trace every publish for one window, then
  // read the publish-to-callback histogram.
  fixture.snapshot_broker->set_trace_period(1);
  measure_threaded_rate(1, budget, publish_snapshot);
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  {
    const obs::StatsSnapshot snap =
        fixture.snapshot_broker->metrics().snapshot();
    if (const obs::MetricSnapshot* delivery =
            snap.find("genas_broker_delivery_latency_ns")) {
      latency_p50 = obs::quantile(*delivery, 0.5);
      latency_p99 = obs::quantile(*delivery, 0.99);
    }
  }
  fixture.snapshot_broker->set_trace_period(obs::kDefaultTracePeriod);

  constexpr std::size_t kBatch = 256;
  const double batch_rate =
      kBatch * measure_rate(budget, [&](std::size_t i) {
        const std::size_t begin =
            (i * kBatch) % (fixture.events.size() - kBatch + 1);
        fixture.snapshot_broker->publish_batch(
            {fixture.events.data() + begin, kBatch});
      });

  std::ofstream os(output);
  os << "{\n";
  os << "  \"workload\": \"10000 equality profiles, 3x[0,99] schema, "
        "gauss events\",\n";
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  os << "  \"hardware_threads\": " << hardware_threads << ",\n";
  if (hardware_threads < 4) {
    os << "  \"note\": \"this host grants only " << hardware_threads
       << " hardware thread(s); multi-thread ratios are not meaningful "
          "here — see README 'Performance harness'\",\n";
  }
  put(os, "matcher_node_events_per_sec", node_rate);
  put(os, "matcher_flat_events_per_sec", flat_rate);
  put(os, "matcher_flat_span_events_per_sec", flat_span_rate);
  put(os, "flat_over_node_speedup", node_rate > 0 ? flat_rate / node_rate : 0);
  put(os, "broker_mutex_1thread_events_per_sec", mutex_1t);
  put(os, "broker_mutex_4thread_events_per_sec", mutex_4t);
  put(os, "broker_snapshot_1thread_events_per_sec", snapshot_1t);
  put(os, "broker_snapshot_4thread_events_per_sec", snapshot_4t);
  put(os, "snapshot_over_mutex_4thread_speedup",
      mutex_4t > 0 ? snapshot_4t / mutex_4t : 0);
  put(os, "snapshot_batch256_events_per_sec", batch_rate);
  put(os, "delivery_latency_p50_ns", latency_p50);
  put(os, "delivery_latency_p99_ns", latency_p99);
  put(os, "obs_overhead_pct", obs_overhead_pct, true);
  os << "}\n";
  std::cout << "wrote " << output << "\n";
  return 0;
}
