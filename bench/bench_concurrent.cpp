// Multi-threaded wall-clock throughput of the broker designs
// (google-benchmark ->Threads sweep): the pre-snapshot single-mutex broker
// vs the lock-free snapshot broker, plus the batch publish pipeline. The
// ISSUE-2 acceptance workload: 10,000 equality profiles, gaussian events.
//
//   ./bench_concurrent                        # full run
//   ./bench_concurrent --benchmark_min_time=0.01s   # CI smoke
//
// Aggregate items/sec across threads is the figure of merit; on a
// multi-core host the snapshot broker's aggregate events/sec should scale
// with cores while the mutex broker's stays flat.
#include <benchmark/benchmark.h>

#include "bench_ens_util.hpp"

namespace {

using namespace genas;
using bench::EnsFixture;

EnsFixture& fixture() {
  static EnsFixture f;  // magic static: thread-safe one-time build
  return f;
}

void BM_MutexBrokerPublish(benchmark::State& state) {
  EnsFixture& f = fixture();
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 997;
  std::uint64_t notified = 0;
  for (auto _ : state) {
    notified += f.mutex_broker->publish(f.events[i++ & 4095]);
    benchmark::DoNotOptimize(notified);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SnapshotBrokerPublish(benchmark::State& state) {
  EnsFixture& f = fixture();
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 997;
  std::uint64_t notified = 0;
  for (auto _ : state) {
    notified += f.snapshot_broker->publish(f.events[i++ & 4095]).notified;
    benchmark::DoNotOptimize(notified);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SnapshotBrokerPublishBatch(benchmark::State& state) {
  EnsFixture& f = fixture();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 997;
  for (auto _ : state) {
    const std::size_t begin = i % (f.events.size() - batch + 1);
    const std::span<const Event> events(f.events.data() + begin, batch);
    benchmark::DoNotOptimize(f.snapshot_broker->publish_batch(events));
    i += batch;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

}  // namespace

BENCHMARK(BM_MutexBrokerPublish)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_SnapshotBrokerPublish)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();
BENCHMARK(BM_SnapshotBrokerPublishBatch)->Arg(256)->Threads(1)->Threads(4)
    ->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fixture();  // one-off 10k-profile build, outside every timed region
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
