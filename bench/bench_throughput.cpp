// Wall-clock throughput of the three matcher families (google-benchmark):
// tree (binary / V1-ordered linear) vs counting vs naive, sweeping the
// number of profiles. The paper reports operation counts; this bench
// confirms the operation-count advantage translates into wall-clock wins on
// real hardware.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "dist/sampler.hpp"
#include "match/counting_matcher.hpp"
#include "match/naive_matcher.hpp"
#include "match/tree_matcher.hpp"
#include "sim/workload.hpp"

namespace {

using namespace genas;

struct Fixture {
  SchemaPtr schema;
  std::unique_ptr<ProfileSet> profiles;
  JointDistribution joint;
  std::vector<Event> events;
  /// Matchers cached per fixture: google-benchmark re-invokes each
  /// benchmark function several times and the 10,000-profile tree build is
  /// far too expensive to repeat outside BM_TreeBuild.
  std::map<std::string, std::unique_ptr<Matcher>> matchers;

  explicit Fixture(std::size_t p)
      : schema(SchemaBuilder()
                   .add_integer("a", 0, 99)
                   .add_integer("b", 0, 99)
                   .add_integer("c", 0, 99)
                   .build()),
        joint(make_event_distribution(schema, {"gauss"})) {
    // Equality profiles — the paper prototype's mode (§4.2). Range profiles
    // are supported by the engine but inflate the DFSA at p = 10,000; the
    // range path is exercised by the tests and figure benches instead.
    ProfileWorkloadOptions options;
    options.count = p;
    options.dont_care_probability = 0.2;
    options.equality_only = true;
    options.seed = 21;
    profiles = std::make_unique<ProfileSet>(generate_profiles(
        schema, make_profile_distributions(schema, {"gauss"}), options));
    EventSampler sampler(joint, 22);
    events = sampler.sample_batch(1024);
  }
};

Fixture& fixture_for(std::size_t p) {
  // One fixture per profile count, built lazily and reused across benchmark
  // repetitions (construction is excluded from timing).
  static std::map<std::size_t, std::unique_ptr<Fixture>> cache;
  auto& slot = cache[p];
  if (!slot) slot = std::make_unique<Fixture>(p);
  return *slot;
}

template <typename MakeMatcher>
void run_matcher(benchmark::State& state, const std::string& key,
                 const MakeMatcher& make) {
  Fixture& fixture = fixture_for(static_cast<std::size_t>(state.range(0)));
  auto& matcher = fixture.matchers[key];
  if (!matcher) matcher = make(fixture);
  std::size_t i = 0;
  std::uint64_t matches = 0;
  for (auto _ : state) {
    const MatchOutcome outcome =
        matcher->match(fixture.events[i++ & 1023]);
    matches += outcome.matched.size();
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Naive(benchmark::State& state) {
  run_matcher(state, "naive", [](Fixture& f) {
    return std::make_unique<NaiveMatcher>(*f.profiles);
  });
}

void BM_Counting(benchmark::State& state) {
  run_matcher(state, "counting", [](Fixture& f) {
    return std::make_unique<CountingMatcher>(*f.profiles);
  });
}

void BM_TreeBinary(benchmark::State& state) {
  run_matcher(state, "tree-binary", [](Fixture& f) {
    OrderingPolicy policy;
    policy.strategy = SearchStrategy::kBinary;
    return std::make_unique<TreeMatcher>(*f.profiles, policy, f.joint);
  });
}

void BM_TreeEventOrder(benchmark::State& state) {
  run_matcher(state, "tree-v1", [](Fixture& f) {
    OrderingPolicy policy;
    policy.value_order = ValueOrder::kEventProbability;
    return std::make_unique<TreeMatcher>(*f.profiles, policy, f.joint);
  });
}

void BM_TreeBuild(benchmark::State& state) {
  Fixture& fixture = fixture_for(static_cast<std::size_t>(state.range(0)));
  OrderingPolicy policy;
  policy.strategy = SearchStrategy::kBinary;
  for (auto _ : state) {
    const TreeMatcher matcher(*fixture.profiles, policy, fixture.joint);
    benchmark::DoNotOptimize(&matcher);
  }
}

}  // namespace

BENCHMARK(BM_Naive)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Counting)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_TreeBinary)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_TreeEventOrder)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_TreeBuild)->Arg(1000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
