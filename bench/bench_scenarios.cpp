// Runs the paper's test scenarios TV1-TV3 (§4.3):
//   TV1 — tree creation over n attributes with 10,000 profiles from a given
//         distribution, then event tests until 95% precision is reached
//   TV2 — full profile tree, event tests until 95% precision
//   TV3 — single-attribute tree, 4,000 events from the given distribution,
//         cross-checked against the exact TV4 expectation
#include <iostream>

#include "core/ordering_policy.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"
#include "tree/expected_cost.hpp"

namespace {

using namespace genas;

void tv1() {
  sim::print_heading(std::cout,
                     "TV1 — tree creation, 10,000 profiles, then event "
                     "tests to 95% precision");
  sim::Table table({"profile distr.", "nodes", "leaves", "memo hits",
                    "max width", "events to 95% prec.", "ops/event"});
  for (const char* pp : {"equal", "gauss", "95% high", "d21"}) {
    const sim::Workload workload =
        sim::multi_attribute(3, 80, 10000, "gauss", pp, 0.4, 7);
    OrderingPolicy policy;
    policy.value_order = ValueOrder::kEventProbability;
    const ProfileTree tree =
        build_tree(workload.profiles, policy, workload.events);
    const TreeBuildStats& stats = tree.build_stats();

    EventSampler sampler(workload.events, 11);
    const PrecisionRun run = empirical_cost_to_precision(tree, sampler, 0.05);
    table.add_row(pp, {static_cast<double>(stats.node_count),
                       static_cast<double>(stats.leaf_count),
                       static_cast<double>(stats.memo_hits),
                       static_cast<double>(stats.max_node_width),
                       static_cast<double>(run.events_posted),
                       run.report.ops_per_event});
  }
  table.print(std::cout);
}

void tv2() {
  sim::print_heading(
      std::cout, "TV2 — full profile tree, event tests to 95% precision");
  sim::Table table({"P_e / P_p", "events posted", "ops/event (measured)",
                    "ops/event (exact TV4)"});
  const std::vector<std::pair<std::string, std::string>> combos = {
      {"gauss", "equal"}, {"equal", "95% high"}, {"d39", "d18"}};
  for (const auto& [pe, pp] : combos) {
    const sim::Workload workload =
        sim::multi_attribute(3, 60, 2000, pe, pp, 0.3, 5);
    OrderingPolicy policy;
    policy.value_order = ValueOrder::kEventProbability;
    const ProfileTree tree =
        build_tree(workload.profiles, policy, workload.events);
    EventSampler sampler(workload.events, 13);
    const PrecisionRun run = empirical_cost_to_precision(tree, sampler, 0.05);
    table.add_row(pe + "/" + pp,
                  {static_cast<double>(run.events_posted),
                   run.report.ops_per_event,
                   expected_cost(tree, workload.events).ops_per_event});
  }
  table.print(std::cout);
}

void tv3() {
  sim::print_heading(std::cout,
                     "TV3 — single attribute, 4,000 events vs exact TV4");
  sim::Table table({"P_e / P_p", "ops/event (4000 events)",
                    "ops/event (exact TV4)", "match rate"});
  const std::vector<std::pair<std::string, std::string>> combos = {
      {"d37", "equal"}, {"d39", "d1"}, {"gauss", "95% high"}};
  for (const auto& [pe, pp] : combos) {
    const sim::Workload workload = sim::single_attribute(100, 250, pe, pp, 9);
    OrderingPolicy policy;
    policy.value_order = ValueOrder::kEventProbability;
    const ProfileTree tree =
        build_tree(workload.profiles, policy, workload.events);
    EventSampler sampler(workload.events, 17);
    const CostReport measured = empirical_cost(tree, sampler, 4000);
    table.add_row(workload.label,
                  {measured.ops_per_event,
                   expected_cost(tree, workload.events).ops_per_event,
                   measured.match_probability});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  tv1();
  tv2();
  tv3();
  return 0;
}
