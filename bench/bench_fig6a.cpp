// Reproduces Fig. 6(a), experiment TA1: attribute reordering with wide
// differences in attribute selectivities (profile-interest peak widths
// 10%-80% across the five attributes).
//
// Expected shape: descending-selectivity order (Measure A2) beats natural;
// ascending is the worst case; the effect is strongest for the relocated
// Gauss events, where most event mass falls into zero-subdomains and the
// reordered linear search also beats binary search.
#include <iostream>

#include "bench_fig6_common.hpp"

int main() {
  using namespace genas;
  sim::print_heading(std::cout,
                     "Fig. 6(a) — attribute reordering, TA1 (wide "
                     "differences in attribute distributions)");
  std::cout << "5 attributes, domain 60 each, 400 equality profiles; exact "
               "expected #operations per event\n\n";
  bench::run_fig6(/*wide=*/true, /*profiles_per_attribute=*/400);
  return 0;
}
