// Distributed filtering extension (the Siena-style setting of the paper's
// related work, §2): a chain-of-stars broker overlay where subscriptions
// cluster at the edge brokers. Compares flooding, content-based routing,
// and routing with covering-based subscription propagation, all using the
// distribution-based profile trees at every broker.
#include <iostream>

#include "common/rng.hpp"
#include "dist/sampler.hpp"
#include "net/overlay.hpp"
#include "profile/parser.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"

namespace {

using namespace genas;

net::OverlayNetwork build_network(const SchemaPtr& schema,
                                  net::RoutingMode mode,
                                  const JointDistribution& joint) {
  net::OverlayOptions options;
  options.mode = mode;
  options.policy.value_order = ValueOrder::kEventProbability;
  options.event_distribution = joint;
  net::OverlayNetwork network(schema, options);

  // Backbone chain of 4 hubs, each with 3 edge brokers.
  std::vector<net::NodeId> hubs;
  std::vector<net::NodeId> edges;
  for (int h = 0; h < 4; ++h) {
    const net::NodeId hub = network.add_broker();
    if (!hubs.empty()) network.connect(hubs.back(), hub);
    hubs.push_back(hub);
    for (int e = 0; e < 3; ++e) {
      const net::NodeId edge = network.add_broker();
      network.connect(hub, edge);
      edges.push_back(edge);
    }
  }

  // Subscriptions at edge brokers: clustered interest in high temperatures,
  // with many narrow profiles covered by broader ones at the same site.
  Rng rng(99);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    std::string attr = "a";
    attr += std::to_string(1 + i % 3);
    const std::int64_t base = 60 + static_cast<std::int64_t>(rng.below(20));
    network.subscribe(edges[i],
                      parse_profile(schema, attr + " >= " +
                                                std::to_string(base)));
    for (int k = 0; k < 6; ++k) {
      const std::int64_t lo = base + static_cast<std::int64_t>(rng.below(30));
      network.subscribe(
          edges[i], parse_profile(schema, attr + " >= " + std::to_string(
                                              std::min<std::int64_t>(lo, 99))));
    }
  }
  return network;
}

}  // namespace

int main() {
  using namespace genas;

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a1", 0, 99)
                               .add_integer("a2", 0, 99)
                               .add_integer("a3", 0, 99)
                               .build();
  const JointDistribution joint = make_event_distribution(schema, {"gauss"});

  sim::print_heading(std::cout,
                     "Distributed filtering — 16-broker overlay (4-hub "
                     "backbone, 12 edge brokers), 4,000 events");
  sim::Table table({"mode", "profile msgs", "event msgs", "filter ops/event",
                    "deliveries"});

  for (const auto mode :
       {net::RoutingMode::kFlooding, net::RoutingMode::kRouting,
        net::RoutingMode::kRoutingCovered}) {
    net::OverlayNetwork network = build_network(schema, mode, joint);
    const std::uint64_t profile_msgs = network.stats().profile_messages;

    EventSampler sampler(joint, 7);
    constexpr int kEvents = 4000;
    for (int i = 0; i < kEvents; ++i) {
      network.publish(i % network.broker_count(), sampler.sample());
    }
    const net::OverlayStats& stats = network.stats();
    table.add_row(std::string(net::to_string(mode)),
                  {static_cast<double>(profile_msgs),
                   static_cast<double>(stats.event_messages),
                   static_cast<double>(stats.filter_operations) / kEvents,
                   static_cast<double>(stats.deliveries)});
  }
  table.print(std::cout);
  std::cout << "\nAll modes deliver identical notifications; routing trades "
               "subscription state for event traffic, covering shrinks that "
               "state without changing semantics.\n";
  return 0;
}
