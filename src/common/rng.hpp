// GENAS — deterministic pseudo-random number generation.
//
// All stochastic machinery in GENAS (workload generation, samplers, the
// distribution catalog) uses this RNG so that every test, example, and
// benchmark is bit-reproducible across runs and platforms. The generator is
// xoshiro256**, seeded through SplitMix64 — both are public-domain
// algorithms with excellent statistical quality and trivial state.
#pragma once

#include <cstdint>
#include <limits>

namespace genas {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it can
/// be plugged into <random> distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Uses Lemire's unbiased method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace genas
