#include "common/text.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace genas {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(trim(s.substr(start)));
      break;
    }
    out.push_back(trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

bool is_integer(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  return ec == std::errc{} && ptr == last;
}

bool is_number(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  return ec == std::errc{} && ptr == last;
}

}  // namespace genas
