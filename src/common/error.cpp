#include "common/error.hpp"

#include <sstream>

namespace genas {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound:        return "not_found";
    case ErrorCode::kDomainViolation: return "domain_violation";
    case ErrorCode::kParse:           return "parse_error";
    case ErrorCode::kState:           return "invalid_state";
    case ErrorCode::kTimeout:         return "timeout";
    case ErrorCode::kInternal:        return "internal_error";
  }
  return "unknown_error";
}

namespace {
std::string decorate(ErrorCode code, const std::string& message) {
  std::ostringstream os;
  os << "genas: [" << to_string(code) << "] " << message;
  return os.str();
}
}  // namespace

Error::Error(ErrorCode code, std::string message)
    : std::runtime_error(decorate(code, message)), code_(code) {}

void throw_error(ErrorCode code, std::string message) {
  throw Error(code, std::move(message));
}

namespace detail {
void fail_check(const char* expr, const char* file, int line,
                std::string message) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line << " — "
     << message;
  throw Error(ErrorCode::kInternal, os.str());
}
}  // namespace detail

}  // namespace genas
