#include "common/interval.hpp"

#include <ostream>
#include <sstream>

namespace genas {

std::string Interval::to_string() const {
  if (empty()) return "[]";
  std::ostringstream os;
  os << '[' << lo << ',' << hi << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << iv.to_string();
}

}  // namespace genas
