// GENAS — small string utilities shared by the parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace genas {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Case-sensitive prefix test.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// Formats a double with the given precision, trimming trailing zeros
/// ("1.50" -> "1.5", "2.00" -> "2").
std::string format_double(double v, int precision = 4);

/// True when the string is a valid integer literal (optional sign).
bool is_integer(std::string_view s) noexcept;

/// True when the string parses as a floating-point literal.
bool is_number(std::string_view s) noexcept;

}  // namespace genas
