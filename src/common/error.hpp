// GENAS — error handling.
//
// All API-misuse and configuration failures are reported via genas::Error,
// which carries a category and a formatted message. Hot-path filtering code
// never throws; errors are confined to construction / configuration time.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace genas {

/// Broad classification of a failure, used by callers that want to react
/// differently to user mistakes vs. internal invariant violations.
enum class ErrorCode {
  kInvalidArgument,  ///< caller passed a value that violates a precondition
  kNotFound,         ///< named entity (attribute, profile, ...) does not exist
  kDomainViolation,  ///< value lies outside the declared attribute domain
  kParse,            ///< text could not be parsed as schema/profile/event
  kState,            ///< operation invalid in the object's current state
  kTimeout,          ///< a bounded wait expired before the operation finished
  kInternal,         ///< invariant violation inside the library (a bug)
};

/// Human-readable name of an ErrorCode ("invalid_argument", ...).
std::string_view to_string(ErrorCode code) noexcept;

/// Exception type thrown by all GENAS components.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, std::string message);

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Throws Error{code, message}. Out-of-line so call sites stay small.
[[noreturn]] void throw_error(ErrorCode code, std::string message);

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             std::string message);
}  // namespace detail

/// Internal invariant check: throws ErrorCode::kInternal when violated.
/// Used for conditions that indicate a bug in GENAS itself, never for
/// validating user input.
#define GENAS_CHECK(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::genas::detail::fail_check(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)

/// Validates user input; throws the given ErrorCode when violated.
#define GENAS_REQUIRE(expr, code, msg)         \
  do {                                         \
    if (!(expr)) {                             \
      ::genas::throw_error((code), (msg));     \
    }                                          \
  } while (false)

}  // namespace genas
