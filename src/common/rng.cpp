#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace genas {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace genas
