// GENAS — closed integer intervals over domain index space.
//
// Every attribute domain is mapped to dense indices [0, d). Predicates,
// tree-edge labels, elementary subranges, and zero-subdomains are all
// expressed as closed intervals [lo, hi] (inclusive on both ends) over that
// index space. Keeping a single interval vocabulary throughout the library
// avoids off-by-one translation bugs between modules.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace genas {

/// Index of a value within a domain: dense, 0-based.
using DomainIndex = std::int64_t;

/// Closed interval [lo, hi] over domain indices. Empty iff lo > hi.
struct Interval {
  DomainIndex lo = 0;
  DomainIndex hi = -1;  // default-constructed interval is empty

  constexpr Interval() = default;
  constexpr Interval(DomainIndex lo_in, DomainIndex hi_in) noexcept
      : lo(lo_in), hi(hi_in) {}

  /// Single-point interval [v, v].
  static constexpr Interval point(DomainIndex v) noexcept { return {v, v}; }

  constexpr bool empty() const noexcept { return lo > hi; }

  /// Number of indices covered; 0 for empty intervals.
  constexpr std::int64_t size() const noexcept {
    return empty() ? 0 : hi - lo + 1;
  }

  constexpr bool contains(DomainIndex v) const noexcept {
    return lo <= v && v <= hi;
  }

  constexpr bool contains(const Interval& other) const noexcept {
    return other.empty() || (lo <= other.lo && other.hi <= hi);
  }

  constexpr bool overlaps(const Interval& other) const noexcept {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }

  /// Intersection; empty when the intervals do not overlap.
  constexpr Interval intersect(const Interval& other) const noexcept {
    return {lo > other.lo ? lo : other.lo, hi < other.hi ? hi : other.hi};
  }

  /// True when `other` starts exactly where this interval ends (so the two
  /// can be merged into a single interval without a gap).
  constexpr bool adjacent_before(const Interval& other) const noexcept {
    return !empty() && !other.empty() && hi + 1 == other.lo;
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;

  /// Orders by lo, then hi; empty intervals sort first.
  friend constexpr bool operator<(const Interval& a,
                                  const Interval& b) noexcept {
    return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
  }

  /// Renders as "[lo,hi]", or "[]" when empty.
  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace genas
