#include "tree/decomposition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace genas {

std::int64_t Decomposition::zero_size() const noexcept {
  std::int64_t total = 0;
  for (const Cell& cell : cells) {
    if (cell.is_zero()) total += cell.interval.size();
  }
  return total;
}

std::size_t Decomposition::covered_cell_count() const noexcept {
  std::size_t count = 0;
  for (const Cell& cell : cells) {
    if (!cell.is_zero()) ++count;
  }
  return count;
}

IntervalSet Decomposition::zero_subdomain() const {
  std::vector<Interval> zeros;
  for (const Cell& cell : cells) {
    if (cell.is_zero()) zeros.push_back(cell.interval);
  }
  return IntervalSet(std::move(zeros));
}

std::size_t Decomposition::locate(DomainIndex v) const noexcept {
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), v,
      [](const Cell& cell, DomainIndex x) { return cell.interval.hi < x; });
  return static_cast<std::size_t>(it - cells.begin());
}

Decomposition decompose(const Interval& universe,
                        const std::vector<const IntervalSet*>& constraints) {
  GENAS_REQUIRE(!universe.empty(), ErrorCode::kInvalidArgument,
                "decomposition requires a non-empty universe");

  // Collect elementary boundaries: starts of intervals and one-past ends.
  std::vector<DomainIndex> bounds;
  bounds.push_back(universe.lo);
  bounds.push_back(universe.hi + 1);
  for (const IntervalSet* set : constraints) {
    GENAS_CHECK(set != nullptr, "null constraint in decomposition");
    for (const Interval& iv : set->intervals()) {
      const Interval clipped = iv.intersect(universe);
      if (clipped.empty()) continue;
      bounds.push_back(clipped.lo);
      bounds.push_back(clipped.hi + 1);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Build raw cells between consecutive boundaries and attach accepters.
  Decomposition out;
  out.cells.reserve(bounds.size());
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    Cell cell;
    cell.interval = {bounds[b], bounds[b + 1] - 1};
    for (std::uint32_t c = 0; c < constraints.size(); ++c) {
      // Elementary cells never straddle a constraint boundary, so covering
      // the cell is equivalent to containing its low end.
      if (constraints[c]->contains(cell.interval.lo)) {
        cell.accepters.push_back(c);
      }
    }
    // Merge with the previous cell when the accepter sets coincide — keeps
    // cells maximal, matching the paper's subrange notion.
    if (!out.cells.empty() && out.cells.back().accepters == cell.accepters &&
        out.cells.back().interval.adjacent_before(cell.interval)) {
      out.cells.back().interval.hi = cell.interval.hi;
    } else {
      out.cells.push_back(std::move(cell));
    }
  }
  return out;
}

}  // namespace genas
