#include "tree/profile_tree.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tree/decomposition.hpp"

namespace genas {

std::string_view to_string(ValueOrder order) noexcept {
  switch (order) {
    case ValueOrder::kNaturalAscending:    return "natural-asc";
    case ValueOrder::kNaturalDescending:   return "natural-desc";
    case ValueOrder::kEventProbability:    return "event-prob (V1)";
    case ValueOrder::kProfileProbability:  return "profile-prob (V2)";
    case ValueOrder::kCombinedProbability: return "combined-prob (V3)";
  }
  return "?";
}

namespace {

/// Memoization key: (level, alive profile set) with a precomputed hash.
struct MemoKey {
  std::size_t level = 0;
  std::vector<ProfileId> alive;

  friend bool operator==(const MemoKey& a, const MemoKey& b) noexcept {
    return a.level == b.level && a.alive == b.alive;
  }
};

struct ProfileVecHash {
  std::size_t operator()(const std::vector<ProfileId>& ids) const noexcept {
    std::uint64_t h = 0x243F6A8885A308D3ULL;
    for (const ProfileId id : ids) {
      std::uint64_t x = h ^ (id + 0x9E3779B97F4A7C15ULL);
      h = splitmix64(x);
    }
    return static_cast<std::size_t>(h);
  }
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& key) const noexcept {
    return ProfileVecHash{}(key.alive) ^ (key.level * 0x9E3779B97F4A7C15ULL);
  }
};

/// Merges two sorted ProfileId lists into one sorted list.
std::vector<ProfileId> merge_sorted(const std::vector<ProfileId>& a,
                                    const std::vector<ProfileId>& b) {
  std::vector<ProfileId> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

class TreeBuilder {
 public:
  TreeBuilder(const ProfileSet& profiles, const TreeConfig& config,
              ProfileTree::Node* /*tag*/ = nullptr)
      : profiles_(profiles), schema_(*profiles.schema()), config_(config) {
    if (config_.event_distribution.has_value()) {
      const JointDistribution& joint = *config_.event_distribution;
      GENAS_REQUIRE(joint.schema() == profiles.schema(),
                    ErrorCode::kInvalidArgument,
                    "event distribution schema differs from profile schema");
      marginals_.reserve(schema_.attribute_count());
      for (AttributeId id = 0; id < schema_.attribute_count(); ++id) {
        marginals_.push_back(joint.marginal(id));
      }
    }
    GENAS_REQUIRE(!needs_event_distribution(config_.value_order) ||
                      config_.event_distribution.has_value(),
                  ErrorCode::kInvalidArgument,
                  "value order requires an event distribution");
  }

  std::int32_t run(std::vector<ProfileId> alive, std::vector<ProfileTree::Node>& nodes,
                   std::vector<ProfileTree::Leaf>& leaves, TreeBuildStats& stats) {
    nodes_ = &nodes;
    leaves_ = &leaves;
    stats_ = &stats;
    if (alive.empty()) return ProfileTree::kMiss;
    return build_slot(0, std::move(alive));
  }

 private:
  std::int32_t build_slot(std::size_t level, std::vector<ProfileId> alive) {
    GENAS_CHECK(!alive.empty(), "build_slot requires a non-empty alive set");
    if (level == order().size()) return build_leaf(std::move(alive));

    MemoKey key{level, std::move(alive)};
    if (const auto it = memo_.find(key); it != memo_.end()) {
      ++stats_->memo_hits;
      return it->second;
    }

    const AttributeId attribute = order()[level];
    const Domain& domain = schema_.attribute(attribute).domain;

    // Split the alive set into profiles constraining this attribute and
    // don't-care profiles (which flow into every cell).
    std::vector<ProfileId> constrained_ids;
    std::vector<const IntervalSet*> constraints;
    std::vector<ProfileId> dont_care;
    for (const ProfileId id : key.alive) {
      const Predicate* predicate = profiles_.profile(id).predicate(attribute);
      if (predicate != nullptr) {
        constrained_ids.push_back(id);
        constraints.push_back(&predicate->accepted());
      } else {
        dont_care.push_back(id);
      }
    }

    const Decomposition decomp = decompose(domain.full(), constraints);
    const std::size_t cell_count = decomp.cells.size();

    ProfileTree::Node node;
    node.attribute = attribute;
    node.cells.reserve(cell_count);
    node.child.reserve(cell_count);

    CellLayout layout;
    layout.cells.reserve(cell_count);
    layout.is_edge.reserve(cell_count);
    layout.order_key.reserve(cell_count);

    for (const Cell& cell : decomp.cells) {
      std::vector<ProfileId> cell_alive = dont_care;
      if (!cell.accepters.empty()) {
        std::vector<ProfileId> accepted;
        accepted.reserve(cell.accepters.size());
        for (const std::uint32_t c : cell.accepters) {
          accepted.push_back(constrained_ids[c]);
        }
        cell_alive = merge_sorted(dont_care, accepted);
      }

      const bool edge = !cell_alive.empty();
      node.cells.push_back(cell.interval);
      node.child.push_back(edge ? build_slot(level + 1, std::move(cell_alive))
                                : ProfileTree::kMiss);

      layout.cells.push_back(cell.interval);
      layout.is_edge.push_back(edge);
      layout.order_key.push_back(order_key(attribute, cell, constrained_ids));
      if (edge) ++stats_->edge_count;
    }

    const CellCosts costs = plan_costs(layout, config_.strategy);
    node.cost = costs.cost;
    node.scan_rank = costs.scan_rank;

    stats_->cell_count += cell_count;
    stats_->max_node_width = std::max(stats_->max_node_width, cell_count);
    ++stats_->node_count;

    const auto index = static_cast<std::int32_t>(nodes_->size());
    nodes_->push_back(std::move(node));
    memo_.emplace(std::move(key), index);
    return index;
  }

  std::int32_t build_leaf(std::vector<ProfileId> alive) {
    if (const auto it = leaf_memo_.find(alive); it != leaf_memo_.end()) {
      ++stats_->memo_hits;
      return it->second;
    }
    const std::int32_t ref = ProfileTree::make_leaf_ref(leaves_->size());
    leaves_->push_back(ProfileTree::Leaf{alive});
    ++stats_->leaf_count;
    leaf_memo_.emplace(std::move(alive), ref);
    return ref;
  }

  /// Scan-priority key of a cell under the configured value order. Higher
  /// keys are scanned earlier; ties resolve to natural interval order.
  double order_key(AttributeId attribute, const Cell& cell,
                   const std::vector<ProfileId>& constrained_ids) const {
    switch (config_.value_order) {
      case ValueOrder::kNaturalAscending:
        return 0.0;  // all ties -> stable sort keeps natural order
      case ValueOrder::kNaturalDescending:
        return static_cast<double>(cell.interval.lo);
      case ValueOrder::kEventProbability:
        return event_mass(attribute, cell.interval);
      case ValueOrder::kProfileProbability:
        return profile_share(cell, constrained_ids);
      case ValueOrder::kCombinedProbability:
        return event_mass(attribute, cell.interval) *
               profile_share(cell, constrained_ids);
    }
    return 0.0;
  }

  double event_mass(AttributeId attribute, const Interval& iv) const {
    GENAS_CHECK(attribute < marginals_.size(),
                "event distribution missing for ordering key");
    return marginals_[attribute].mass(iv);
  }

  /// P_p(x_i): priority-weighted share of constraining profiles that
  /// reference this cell (every profile weighs 1.0 unless the application
  /// raised its priority).
  double profile_share(const Cell& cell,
                       const std::vector<ProfileId>& constrained_ids) const {
    if (constrained_ids.empty()) return 0.0;
    double total = 0.0;
    for (const ProfileId id : constrained_ids) total += profiles_.weight(id);
    double referenced = 0.0;
    for (const std::uint32_t c : cell.accepters) {
      referenced += profiles_.weight(constrained_ids[c]);
    }
    return total > 0.0 ? referenced / total : 0.0;
  }

  const std::vector<AttributeId>& order() const noexcept {
    return config_.attribute_order;
  }

  const ProfileSet& profiles_;
  const Schema& schema_;
  const TreeConfig& config_;
  std::vector<DiscreteDistribution> marginals_;

  std::vector<ProfileTree::Node>* nodes_ = nullptr;
  std::vector<ProfileTree::Leaf>* leaves_ = nullptr;
  TreeBuildStats* stats_ = nullptr;
  std::unordered_map<MemoKey, std::int32_t, MemoKeyHash> memo_;
  std::unordered_map<std::vector<ProfileId>, std::int32_t, ProfileVecHash>
      leaf_memo_;
};

}  // namespace

ProfileTree ProfileTree::build(const ProfileSet& profiles, TreeConfig config) {
  const std::size_t n = profiles.schema()->attribute_count();
  if (config.attribute_order.empty()) {
    config.attribute_order.resize(n);
    for (std::size_t j = 0; j < n; ++j) config.attribute_order[j] = j;
  }
  GENAS_REQUIRE(config.attribute_order.size() == n, ErrorCode::kInvalidArgument,
                "attribute order must cover every schema attribute");
  std::vector<bool> seen(n, false);
  for (const AttributeId id : config.attribute_order) {
    GENAS_REQUIRE(id < n, ErrorCode::kInvalidArgument,
                  "attribute order contains an out-of-range id");
    GENAS_REQUIRE(!seen[id], ErrorCode::kInvalidArgument,
                  "attribute order repeats an attribute");
    seen[id] = true;
  }

  ProfileTree tree;
  tree.schema_ = profiles.schema();
  tree.profile_count_ = profiles.active_count();
  tree.source_version_ = profiles.version();

  TreeBuilder builder(profiles, config);
  tree.root_ = builder.run(profiles.active_ids(), tree.nodes_, tree.leaves_,
                           tree.stats_);
  tree.config_ = std::move(config);
  return tree;
}

TreeMatch ProfileTree::match(const Event& event) const noexcept {
  TreeMatch result;
  std::int32_t slot = root_;
  while (slot >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(slot)];
    const DomainIndex v = event.index(node.attribute);
    // Locate the containing cell: binary search by interval upper bound.
    // This is the prototype's O(1) lookup-table access and is not counted
    // as a filter operation (see DESIGN.md §5.6).
    auto it = std::lower_bound(
        node.cells.begin(), node.cells.end(), v,
        [](const Interval& cell, DomainIndex x) { return cell.hi < x; });
    if (it == node.cells.end()) --it;  // defensive: v beyond domain edge
    const auto idx = static_cast<std::size_t>(it - node.cells.begin());
    result.operations += node.cost[idx];
    slot = node.child[idx];
  }
  if (is_leaf_ref(slot)) {
    result.matched = &leaves_[leaf_index(slot)].matched;
  }
  return result;
}

std::string ProfileTree::dump() const {
  std::ostringstream os;
  os << "ProfileTree(p=" << profile_count_ << ", nodes=" << nodes_.size()
     << ", leaves=" << leaves_.size() << ", order=" << to_string(config_.value_order)
     << ", search=" << to_string(config_.strategy) << ")\n";

  // Recursive textual rendering; nodes_ forms a DAG, so shared subtrees are
  // printed once per reference (fine for the small trees this is used on).
  const auto render = [&](auto&& self, std::int32_t slot, int depth) -> void {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    if (slot == kMiss) {
      os << pad << "-> miss\n";
      return;
    }
    if (is_leaf_ref(slot)) {
      os << pad << "-> leaf{";
      const Leaf& leaf = leaves_[leaf_index(slot)];
      for (std::size_t i = 0; i < leaf.matched.size(); ++i) {
        if (i > 0) os << ',';
        os << 'p' << leaf.matched[i];
      }
      os << "}\n";
      return;
    }
    const Node& node = nodes_[static_cast<std::size_t>(slot)];
    os << pad << "node[" << schema_->attribute(node.attribute).name << "]\n";
    for (std::size_t i = 0; i < node.cells.size(); ++i) {
      os << pad << "  " << node.cells[i].to_string() << " cost="
         << node.cost[i];
      if (node.scan_rank[i] > 0) os << " rank=" << node.scan_rank[i];
      os << '\n';
      self(self, node.child[i], depth + 2);
    }
  };
  render(render, root_, 0);
  return os.str();
}

}  // namespace genas
