#include "tree/expected_cost.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace genas {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Largest profile id appearing in any leaf, or -1 when none.
std::int64_t max_profile_id(const ProfileTree& tree) {
  std::int64_t top = -1;
  for (const ProfileTree::Leaf& leaf : tree.leaves()) {
    for (const ProfileId id : leaf.matched) {
      top = std::max<std::int64_t>(top, id);
    }
  }
  return top;
}

/// Shared tail: turns per-profile numerator/denominator accumulators into
/// the report's profile metrics.
void finalize_profile_metrics(const std::vector<double>& num,
                              const std::vector<double>& den,
                              CostReport& report) {
  report.per_profile_ops.assign(num.size(), kNaN);
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < num.size(); ++i) {
    if (den[i] > 0.0) {
      report.per_profile_ops[i] = num[i] / den[i];
      sum += report.per_profile_ops[i];
      ++counted;
    }
  }
  report.ops_per_profile = counted > 0 ? sum / static_cast<double>(counted) : 0.0;
  report.ops_per_event_and_profile =
      report.pairs_per_event > 0.0 ? report.ops_per_event / report.pairs_per_event
                                   : 0.0;
}

}  // namespace

CostReport expected_cost(const ProfileTree& tree,
                         const JointDistribution& joint) {
  GENAS_REQUIRE(joint.schema() == tree.schema(), ErrorCode::kInvalidArgument,
                "distribution schema differs from tree schema");

  CostReport report;
  report.per_attribute_ops.assign(tree.schema()->attribute_count(), 0.0);
  const std::int32_t root = tree.root();
  const std::int64_t top_profile = max_profile_id(tree);
  std::vector<double> num(static_cast<std::size_t>(top_profile + 1), 0.0);
  std::vector<double> den(num.size(), 0.0);
  if (root == ProfileTree::kMiss) {
    finalize_profile_metrics(num, den, report);
    return report;
  }

  const auto& nodes = tree.nodes();
  const auto& leaves = tree.leaves();
  const std::size_t components = joint.component_count();

  // Per-component reach probability and accumulated expected operations
  // E[ops(path) · 1{path reaches slot, component c}]. Children always have
  // smaller indices than parents, so one descending sweep from the root
  // (the last node) visits parents before children.
  std::vector<std::vector<double>> reach(nodes.size(),
                                         std::vector<double>(components, 0.0));
  std::vector<std::vector<double>> acc(nodes.size(),
                                       std::vector<double>(components, 0.0));
  std::vector<std::vector<double>> leaf_reach(
      leaves.size(), std::vector<double>(components, 0.0));
  std::vector<std::vector<double>> leaf_acc(
      leaves.size(), std::vector<double>(components, 0.0));

  GENAS_CHECK(root == static_cast<std::int32_t>(nodes.size()) - 1,
              "root must be the last node built");
  for (std::size_t c = 0; c < components; ++c) {
    reach[static_cast<std::size_t>(root)][c] = joint.component_weight(c);
  }

  for (std::int64_t i = root; i >= 0; --i) {
    const auto ui = static_cast<std::size_t>(i);
    const ProfileTree::Node& node = nodes[ui];
    for (std::size_t c = 0; c < components; ++c) {
      const double q = reach[ui][c];
      const double a = acc[ui][c];
      if (q == 0.0 && a == 0.0) continue;
      const DiscreteDistribution& marginal =
          joint.component_marginal(c, node.attribute);
      for (std::size_t cell = 0; cell < node.cells.size(); ++cell) {
        const double mass = marginal.mass(node.cells[cell]);
        if (mass == 0.0) continue;
        const double cost = static_cast<double>(node.cost[cell]);
        report.ops_per_event += q * mass * cost;
        report.per_attribute_ops[node.attribute] += q * mass * cost;

        const std::int32_t child = node.child[cell];
        if (child == ProfileTree::kMiss) continue;
        const double dq = q * mass;
        const double da = a * mass + dq * cost;
        if (child >= 0) {
          reach[static_cast<std::size_t>(child)][c] += dq;
          acc[static_cast<std::size_t>(child)][c] += da;
        } else {
          const std::size_t leaf = ProfileTree::leaf_index(child);
          leaf_reach[leaf][c] += dq;
          leaf_acc[leaf][c] += da;
        }
      }
    }
  }

  for (std::size_t leaf = 0; leaf < leaves.size(); ++leaf) {
    double q = 0.0;
    double a = 0.0;
    for (std::size_t c = 0; c < components; ++c) {
      q += leaf_reach[leaf][c];
      a += leaf_acc[leaf][c];
    }
    if (q == 0.0) continue;
    report.match_probability += q;
    report.pairs_per_event +=
        q * static_cast<double>(leaves[leaf].matched.size());
    for (const ProfileId id : leaves[leaf].matched) {
      num[id] += a;
      den[id] += q;
    }
  }

  finalize_profile_metrics(num, den, report);
  return report;
}

namespace {

/// Accumulates empirical metrics event by event.
class EmpiricalAccumulator {
 public:
  explicit EmpiricalAccumulator(std::int64_t top_profile)
      : num_(static_cast<std::size_t>(top_profile + 1), 0.0),
        den_(num_.size(), 0.0) {}

  void add(const TreeMatch& match) {
    const auto ops = static_cast<double>(match.operations);
    ++events_;
    sum_ops_ += ops;
    sum_ops_sq_ += ops * ops;
    if (match.matched != nullptr && !match.matched->empty()) {
      ++matched_events_;
      pairs_ += static_cast<double>(match.matched->size());
      for (const ProfileId id : *match.matched) {
        num_[id] += ops;
        den_[id] += 1.0;
      }
    }
  }

  std::size_t events() const noexcept { return events_; }
  double mean_ops() const noexcept {
    return events_ > 0 ? sum_ops_ / static_cast<double>(events_) : 0.0;
  }

  /// Half-width of the 95% CI of mean ops per event.
  double ci_half_width() const noexcept {
    if (events_ < 2) return std::numeric_limits<double>::infinity();
    const auto n = static_cast<double>(events_);
    const double mean = sum_ops_ / n;
    const double variance =
        std::max(0.0, (sum_ops_sq_ - n * mean * mean) / (n - 1.0));
    return 1.96 * std::sqrt(variance / n);
  }

  CostReport report() const {
    CostReport out;
    if (events_ > 0) {
      const auto n = static_cast<double>(events_);
      out.ops_per_event = sum_ops_ / n;
      out.match_probability = static_cast<double>(matched_events_) / n;
      out.pairs_per_event = pairs_ / n;
    }
    // finalize derives ops_per_profile / per_profile_ops from the raw
    // accumulators and ops_per_event_and_profile from the fields just set.
    finalize_profile_metrics(num_, den_, out);
    return out;
  }

 private:
  std::vector<double> num_;
  std::vector<double> den_;
  std::size_t events_ = 0;
  std::size_t matched_events_ = 0;
  double sum_ops_ = 0.0;
  double sum_ops_sq_ = 0.0;
  double pairs_ = 0.0;
};

}  // namespace

CostReport empirical_cost(const ProfileTree& tree, EventSampler& sampler,
                          std::size_t count) {
  GENAS_REQUIRE(sampler.joint().schema() == tree.schema(),
                ErrorCode::kInvalidArgument,
                "sampler schema differs from tree schema");
  EmpiricalAccumulator accum(max_profile_id(tree));
  for (std::size_t i = 0; i < count; ++i) {
    accum.add(tree.match(sampler.sample()));
  }
  return accum.report();
}

PrecisionRun empirical_cost_to_precision(const ProfileTree& tree,
                                         EventSampler& sampler,
                                         double relative_precision,
                                         std::size_t min_events,
                                         std::size_t max_events) {
  GENAS_REQUIRE(relative_precision > 0.0, ErrorCode::kInvalidArgument,
                "relative precision must be positive");
  GENAS_REQUIRE(sampler.joint().schema() == tree.schema(),
                ErrorCode::kInvalidArgument,
                "sampler schema differs from tree schema");
  EmpiricalAccumulator accum(max_profile_id(tree));
  while (accum.events() < max_events) {
    accum.add(tree.match(sampler.sample()));
    if (accum.events() >= min_events) {
      const double mean = accum.mean_ops();
      if (mean == 0.0) break;  // degenerate: every event costs zero
      if (accum.ci_half_width() <= relative_precision * mean) break;
    }
  }
  return PrecisionRun{accum.report(), accum.events()};
}

}  // namespace genas
