// GENAS — FlatProfileTree: the cache-friendly compiled form of a tree.
//
// ProfileTree::Node keeps five std::vectors per node, so a root-to-leaf walk
// chases one heap pointer per vector per level. FlatProfileTree compiles the
// built tree into one contiguous arena with SoA cell slabs — `upper_[]`,
// `child_[]`, `cost_[]` indexed by a per-node cell offset — plus a CSR
// posting slab for the leaves. Cells partition each node's domain, so the
// upper bounds alone locate a cell; lower bounds are never materialized.
// A match then touches a handful of cache lines: the node directory entry,
// the upper-bound slab span it binary searches, and (on a hit) the leaf
// posting span.
//
// Node indices, child-slot encoding, and per-cell costs are copied verbatim
// from the source ProfileTree, so flat matching reports bit-identical
// matched sets and operation counts. The node form remains the build /
// expected-cost / dump representation; the flat form is the hot match path
// used by TreeMatcher, FilterEngine, and the broker snapshots.
//
// Immutable after compile(); matching is allocation-free, noexcept, and
// safe to run from any number of threads concurrently.
#pragma once

#include <cstdint>
#include <span>

#include "tree/profile_tree.hpp"

namespace genas {

/// Result of matching one event against the flat tree. `matched` points into
/// the tree's posting slab and stays valid while the tree lives.
struct FlatMatch {
  const ProfileId* matched = nullptr;
  std::uint32_t matched_count = 0;
  /// Counted comparison operations, identical to the node form's accounting.
  std::uint64_t operations = 0;

  std::span<const ProfileId> span() const noexcept {
    return {matched, matched_count};
  }
};

/// Immutable SoA compilation of a ProfileTree.
class FlatProfileTree {
 public:
  /// Directory entry of one node: where its cells live in the slabs.
  struct NodeRef {
    AttributeId attribute = 0;
    std::uint32_t first_cell = 0;
    std::uint32_t cell_count = 0;
  };

  /// Compiles the built node-form tree. The flat tree is self-contained; the
  /// source may be destroyed afterwards.
  static FlatProfileTree compile(const ProfileTree& tree);

  /// Matches one event along the single DFSA path.
  FlatMatch match(const Event& event) const noexcept;

  const SchemaPtr& schema() const noexcept { return schema_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept {
    return leaf_offsets_.empty() ? 0 : leaf_offsets_.size() - 1;
  }
  std::size_t cell_count() const noexcept { return upper_.size(); }
  std::size_t profile_count() const noexcept { return profile_count_; }

  /// Profile-set version of the source tree (staleness detection).
  std::uint64_t source_version() const noexcept { return source_version_; }

  /// Root slot (node index, leaf ref, or ProfileTree::kMiss), same encoding
  /// as the node form.
  std::int32_t root() const noexcept { return root_; }

  /// Total bytes of the slab arenas (diagnostics / perf reports).
  std::size_t arena_bytes() const noexcept;

 private:
  FlatProfileTree() = default;

  SchemaPtr schema_;
  std::vector<NodeRef> nodes_;           // indexed like ProfileTree::nodes()
  std::vector<DomainIndex> upper_;       // cell slabs, per-node contiguous
  std::vector<std::int32_t> child_;
  std::vector<std::uint32_t> cost_;
  std::vector<std::uint32_t> leaf_offsets_;  // CSR: leaves + 1 entries
  std::vector<ProfileId> postings_;          // concatenated leaf match sets
  std::int32_t root_ = ProfileTree::kMiss;
  std::size_t profile_count_ = 0;
  std::uint64_t source_version_ = 0;
};

}  // namespace genas
