// GENAS — elementary subrange decomposition.
//
// Given p profiles constraining an attribute, the domain D splits into at
// most 2p−1 elementary subranges referenced by profiles plus the
// zero-subdomain D_0 of values no profile refers to (paper §3). Cells are
// maximal intervals whose accepting-profile sets are identical; the tree
// builds one local decomposition per node, and the attribute-selectivity
// measures (A1/A2) use the global decomposition of the full profile set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/interval.hpp"
#include "profile/interval_set.hpp"

namespace genas {

/// One elementary cell of a decomposition.
struct Cell {
  Interval interval;
  /// Positions (into the caller's constraint list) of constraints whose
  /// accepted set covers this cell; empty for zero-subdomain cells.
  std::vector<std::uint32_t> accepters;

  bool is_zero() const noexcept { return accepters.empty(); }
};

/// Partition of `universe` into maximal same-accepter-set cells.
struct Decomposition {
  std::vector<Cell> cells;  // sorted by interval, covering universe exactly

  /// Total size of zero cells — d_0 in the paper.
  std::int64_t zero_size() const noexcept;

  /// Number of non-zero cells (≤ 2p−1 for p interval constraints).
  std::size_t covered_cell_count() const noexcept;

  /// The zero-subdomain D_0 as an interval set.
  IntervalSet zero_subdomain() const;

  /// Index of the cell containing `v` (cells partition the universe, so a
  /// containing cell always exists for in-universe v). Binary search; this
  /// is the O(1)-amortized "lookup table" access of the paper's prototype
  /// and is not a counted filter operation.
  std::size_t locate(DomainIndex v) const noexcept;
};

/// Computes the decomposition of `universe` induced by the accepted sets of
/// the given constraints. Accepted sets must be subsets of the universe.
Decomposition decompose(const Interval& universe,
                        const std::vector<const IntervalSet*>& constraints);

}  // namespace genas
