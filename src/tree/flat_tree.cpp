#include "tree/flat_tree.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace genas {

FlatProfileTree FlatProfileTree::compile(const ProfileTree& tree) {
  FlatProfileTree flat;
  flat.schema_ = tree.schema();
  flat.root_ = tree.root();
  flat.profile_count_ = tree.profile_count();
  flat.source_version_ = tree.source_version();

  const std::vector<ProfileTree::Node>& nodes = tree.nodes();
  std::size_t total_cells = 0;
  for (const ProfileTree::Node& node : nodes) total_cells += node.cells.size();

  flat.nodes_.reserve(nodes.size());
  flat.upper_.reserve(total_cells);
  flat.child_.reserve(total_cells);
  flat.cost_.reserve(total_cells);

  for (const ProfileTree::Node& node : nodes) {
    GENAS_CHECK(flat.upper_.size() <= UINT32_MAX - node.cells.size(),
                "flat tree cell slab exceeds 2^32 cells");
    NodeRef ref;
    ref.attribute = node.attribute;
    ref.first_cell = static_cast<std::uint32_t>(flat.upper_.size());
    ref.cell_count = static_cast<std::uint32_t>(node.cells.size());
    flat.nodes_.push_back(ref);
    for (std::size_t i = 0; i < node.cells.size(); ++i) {
      flat.upper_.push_back(node.cells[i].hi);
      flat.child_.push_back(node.child[i]);
      flat.cost_.push_back(node.cost[i]);
    }
  }

  const std::vector<ProfileTree::Leaf>& leaves = tree.leaves();
  std::size_t total_postings = 0;
  for (const ProfileTree::Leaf& leaf : leaves) {
    total_postings += leaf.matched.size();
  }
  GENAS_CHECK(total_postings <= UINT32_MAX,
              "flat tree posting slab exceeds 2^32 entries");
  flat.leaf_offsets_.reserve(leaves.size() + 1);
  flat.postings_.reserve(total_postings);
  flat.leaf_offsets_.push_back(0);
  for (const ProfileTree::Leaf& leaf : leaves) {
    flat.postings_.insert(flat.postings_.end(), leaf.matched.begin(),
                          leaf.matched.end());
    flat.leaf_offsets_.push_back(static_cast<std::uint32_t>(flat.postings_.size()));
  }
  return flat;
}

FlatMatch FlatProfileTree::match(const Event& event) const noexcept {
  FlatMatch result;
  const DomainIndex* indices = event.indices().data();
  std::int32_t slot = root_;
  while (slot >= 0) {
    const NodeRef node = nodes_[static_cast<std::size_t>(slot)];
    const DomainIndex v = indices[node.attribute];
    // Locate the containing cell: binary search by upper bound over the
    // node's contiguous slab span — the same uncounted lookup-table access
    // as the node form (see profile_tree.cpp).
    const DomainIndex* upper = upper_.data() + node.first_cell;
    const DomainIndex* it = std::lower_bound(upper, upper + node.cell_count, v);
    if (it == upper + node.cell_count) --it;  // defensive: v beyond domain edge
    const auto idx =
        node.first_cell + static_cast<std::uint32_t>(it - upper);
    result.operations += cost_[idx];
    slot = child_[idx];
  }
  if (ProfileTree::is_leaf_ref(slot)) {
    const std::size_t leaf = ProfileTree::leaf_index(slot);
    const std::uint32_t begin = leaf_offsets_[leaf];
    result.matched = postings_.data() + begin;
    result.matched_count = leaf_offsets_[leaf + 1] - begin;
  }
  return result;
}

std::size_t FlatProfileTree::arena_bytes() const noexcept {
  return nodes_.size() * sizeof(NodeRef) +
         upper_.size() * sizeof(DomainIndex) +
         child_.size() * sizeof(std::int32_t) +
         cost_.size() * sizeof(std::uint32_t) +
         leaf_offsets_.size() * sizeof(std::uint32_t) +
         postings_.size() * sizeof(ProfileId);
}

}  // namespace genas
