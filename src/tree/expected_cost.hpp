// GENAS — exact expected filter cost (the TV4 engine).
//
// Implements the paper's response-time model (Eq. 2 summed over all levels):
// given the tree and a joint event distribution, the expected number of
// comparison operations per event is computed exactly by propagating reach
// probabilities through the DFSA. The paper's prototype approximates the
// same quantity by manipulating statistic counters ("the result is similar
// to posting the events with the given distribution, which requires a
// multiple number of events", §4.2); here the expectation is closed-form.
//
// Mixture distributions are handled exactly: reach probabilities are kept
// per mixture component, which makes P(cell | path) exact without
// enumerating paths (linear in nodes × components × cells).
//
// The report also contains the per-profile metrics behind the paper's
// Fig. 5: expected operations conditioned on matching each profile, and the
// per-event-and-profile normalization.
#pragma once

#include <vector>

#include "dist/joint.hpp"
#include "dist/sampler.hpp"
#include "tree/profile_tree.hpp"

namespace genas {

/// Cost metrics of one tree under one event distribution.
struct CostReport {
  /// E[comparisons] per posted event, including non-matching events
  /// (the paper's "average # operations per event").
  double ops_per_event = 0.0;
  /// P(event matches at least one profile).
  double match_probability = 0.0;
  /// E[# matched profiles per event].
  double pairs_per_event = 0.0;
  /// Mean over profiles of E[comparisons | event matches the profile]
  /// (the paper's "average # operations per profile", Fig. 5(b)).
  /// Profiles never matched under the distribution are excluded.
  double ops_per_profile = 0.0;
  /// ops_per_event normalized by pairs_per_event (Fig. 5(c)); 0 when no
  /// profile can match.
  double ops_per_event_and_profile = 0.0;
  /// Per-profile E[comparisons | match]; NaN for profiles that cannot match
  /// under the distribution (indexed by ProfileId up to the set capacity).
  std::vector<double> per_profile_ops;
  /// Expected comparisons attributable to each attribute's tree levels —
  /// the paper's per-level decomposition E(X_j | X_{j-1}..) of Example 3.
  /// Indexed by AttributeId; sums to ops_per_event. Exact runs only (empty
  /// in empirical reports).
  std::vector<double> per_attribute_ops;
};

/// Exact expectation under `joint` (TV4).
CostReport expected_cost(const ProfileTree& tree,
                         const JointDistribution& joint);

/// Monte-Carlo counterpart (TV3): posts `count` sampled events through the
/// tree and measures the same metrics empirically.
CostReport empirical_cost(const ProfileTree& tree, EventSampler& sampler,
                          std::size_t count);

/// Posts sampled events until the half-width of the 95% confidence interval
/// of ops-per-event falls below `relative_precision` × mean (the paper's
/// "event tests until 95% precision ... is reached", TV1/TV2), or until
/// `max_events`. Returns the report plus the number of events posted.
struct PrecisionRun {
  CostReport report;
  std::size_t events_posted = 0;
};
PrecisionRun empirical_cost_to_precision(const ProfileTree& tree,
                                         EventSampler& sampler,
                                         double relative_precision = 0.05,
                                         std::size_t min_events = 200,
                                         std::size_t max_events = 200000);

}  // namespace genas
