// GENAS — node search strategies and their operation-cost models.
//
// At each tree node the event value falls into exactly one cell of the
// node's partition. Which cell is found — and how many comparison operations
// finding it costs — depends on the search strategy (paper §4.2):
//
//   * linear scan of the edges in a configured order, with the
//     lookup-table early-stop rule of Example 5: every cell (edge or gap)
//     has a scan position; scanning stops at the first edge whose position
//     exceeds the target's, and that stop-triggering comparison is counted;
//   * binary search over the interval-sorted edge list (cost simulated
//     probe by probe, giving the paper's E = 1.65 / r_0 = log2(2p−1));
//   * interpolation search (listed as a sensible strategy in §5);
//   * hash lookup (idealized: one operation per probe; §5).
//
// Because the cost of landing in a cell depends only on the cell, costs are
// precomputed per cell at tree-build time; matching and the analytical model
// then share one cost table.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/interval.hpp"

namespace genas {

/// How edges are searched within a node.
enum class SearchStrategy : std::uint8_t {
  kLinear,         ///< ordered scan with early stop (lookup table)
  kBinary,         ///< binary search on natural interval order
  kInterpolation,  ///< interpolation search on natural interval order
  kHash,           ///< idealized hash probe: 1 operation per lookup
};

std::string_view to_string(SearchStrategy strategy) noexcept;

/// Input to cost planning: the node's cells in interval order.
struct CellLayout {
  std::vector<Interval> cells;  ///< partition of the domain, sorted
  std::vector<bool> is_edge;    ///< cell leads to a child (vs. miss gap)
  /// Scan-priority key per cell; higher keys are scanned earlier. Produced
  /// by the value-ordering measure (V1–V3 / natural). Ties break toward the
  /// natural (interval) order.
  std::vector<double> order_key;
};

/// Per-cell operation counts for one node under one strategy.
struct CellCosts {
  /// cost[i]: comparisons counted when the event value lands in cell i.
  std::vector<std::uint32_t> cost;
  /// scan_rank[i]: 1-based rank of edge cells in scan order (0 for gaps);
  /// exposed for tests and tree dumps.
  std::vector<std::uint32_t> scan_rank;
};

/// Computes the cost table for a node. `layout` vectors must be equal-sized
/// and the cells must partition the node's domain.
CellCosts plan_costs(const CellLayout& layout, SearchStrategy strategy);

}  // namespace genas
