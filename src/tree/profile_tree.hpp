// GENAS — the profile tree (distribution-aware DFSA matcher).
//
// From a profile set a deterministic finite state automaton of height n is
// created (paper §3, after [Gough & Smith]): level j tests attribute
// order[j]; a node partitions that attribute's domain into cells; edge cells
// descend to child nodes, gap cells reject. Don't-care profiles flow into
// every cell (the '*' / '(*)' edges of the paper's Fig. 1), so matching an
// event follows exactly one root-to-leaf path. Nodes are memoized on
// (level, alive-profile-set): structurally identical subtrees are shared,
// which keeps 10,000-profile trees tractable.
//
// Distribution awareness enters in two places (paper §4.1):
//   * the attribute order (TreeConfig::attribute_order — computed by the
//     core selectivity measures A1–A3), and
//   * the per-node value order (TreeConfig::value_order — natural, V1
//     event-probability, V2 profile-probability, V3 combined) together with
//     the search strategy (linear/binary/interpolation/hash).
//
// The tree is immutable after build(); matching is allocation-free,
// noexcept, and thread-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/joint.hpp"
#include "profile/profile.hpp"
#include "tree/search.hpp"

namespace genas {

/// Value-ordering measure applied within each node (paper §4.1).
enum class ValueOrder : std::uint8_t {
  kNaturalAscending,    ///< domain order, as in the base algorithm
  kNaturalDescending,   ///< reversed domain order
  kEventProbability,    ///< V1: descending P_e(x_i)
  kProfileProbability,  ///< V2: descending P_p(x_i)
  kCombinedProbability, ///< V3: descending P_e(x_i) * P_p(x_i)
};

std::string_view to_string(ValueOrder order) noexcept;

/// True when the value order requires an event distribution.
constexpr bool needs_event_distribution(ValueOrder order) noexcept {
  return order == ValueOrder::kEventProbability ||
         order == ValueOrder::kCombinedProbability;
}

/// Build-time configuration of a profile tree.
struct TreeConfig {
  /// Permutation of attribute ids, root level first. Empty = schema order.
  std::vector<AttributeId> attribute_order;
  ValueOrder value_order = ValueOrder::kNaturalAscending;
  SearchStrategy strategy = SearchStrategy::kLinear;
  /// Event distribution used by V1/V3 ordering; ignored otherwise.
  std::optional<JointDistribution> event_distribution;
};

/// Build statistics (TV1 measures tree construction).
struct TreeBuildStats {
  std::size_t node_count = 0;
  std::size_t leaf_count = 0;
  std::size_t cell_count = 0;   ///< total cells across nodes
  std::size_t edge_count = 0;   ///< total edge cells across nodes
  std::size_t memo_hits = 0;    ///< shared-subtree reuses
  std::size_t max_node_width = 0;  ///< most cells in one node
};

/// Result of matching one event.
struct TreeMatch {
  /// Profiles matched by the event; points into the tree's leaf storage
  /// (valid while the tree lives). Null when nothing matched.
  const std::vector<ProfileId>* matched = nullptr;
  /// Counted comparison operations (the paper's performance measure).
  std::uint64_t operations = 0;

  std::size_t matched_count() const noexcept {
    return matched ? matched->size() : 0;
  }
};

/// Immutable matching automaton over a snapshot of a profile set.
class ProfileTree {
 public:
  /// Internal node: one attribute test over a cell partition.
  struct Node {
    AttributeId attribute = 0;
    std::vector<Interval> cells;          // sorted, partition the domain
    std::vector<std::int32_t> child;      // per cell; see Child encoding
    std::vector<std::uint32_t> cost;      // counted ops when landing in cell
    std::vector<std::uint32_t> scan_rank; // 1-based edge rank in scan order
  };

  /// Leaf: the set of profiles matched by any event reaching it.
  struct Leaf {
    std::vector<ProfileId> matched;
  };

  /// Child-slot encoding within Node::child.
  static constexpr std::int32_t kMiss = -1;
  static constexpr bool is_leaf_ref(std::int32_t c) noexcept { return c <= -2; }
  static constexpr std::size_t leaf_index(std::int32_t c) noexcept {
    return static_cast<std::size_t>(-c - 2);
  }
  static constexpr std::int32_t make_leaf_ref(std::size_t index) noexcept {
    return -static_cast<std::int32_t>(index) - 2;
  }

  /// Builds the tree over the currently active profiles. Throws on invalid
  /// configuration (bad permutation, missing event distribution for V1/V3).
  static ProfileTree build(const ProfileSet& profiles, TreeConfig config);

  /// Matches one event along the single DFSA path.
  TreeMatch match(const Event& event) const noexcept;

  const SchemaPtr& schema() const noexcept { return schema_; }
  const TreeConfig& config() const noexcept { return config_; }
  const TreeBuildStats& build_stats() const noexcept { return stats_; }

  /// Profile-set version this tree was built from (staleness detection).
  std::uint64_t source_version() const noexcept { return source_version_; }

  /// Node storage. Children always have smaller indices than their parents;
  /// the root is the last node. Exposed for the expected-cost traversal,
  /// selectivity measure A3, and tests.
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<Leaf>& leaves() const noexcept { return leaves_; }

  /// Root slot: node index, leaf ref, or kMiss for an empty profile set.
  std::int32_t root() const noexcept { return root_; }

  /// Number of profiles the tree was built over (p in the paper).
  std::size_t profile_count() const noexcept { return profile_count_; }

  /// Multi-line structural dump for debugging and documentation.
  std::string dump() const;

 private:
  ProfileTree() = default;

  SchemaPtr schema_;
  TreeConfig config_;
  TreeBuildStats stats_;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
  std::int32_t root_ = kMiss;
  std::size_t profile_count_ = 0;
  std::uint64_t source_version_ = 0;
};

}  // namespace genas
