#include "tree/search.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace genas {

std::string_view to_string(SearchStrategy strategy) noexcept {
  switch (strategy) {
    case SearchStrategy::kLinear:        return "linear";
    case SearchStrategy::kBinary:        return "binary";
    case SearchStrategy::kInterpolation: return "interpolation";
    case SearchStrategy::kHash:          return "hash";
  }
  return "?";
}

namespace {

/// Indices of edge cells in interval order.
std::vector<std::size_t> edge_indices(const CellLayout& layout) {
  std::vector<std::size_t> edges;
  for (std::size_t i = 0; i < layout.cells.size(); ++i) {
    if (layout.is_edge[i]) edges.push_back(i);
  }
  return edges;
}

CellCosts plan_linear(const CellLayout& layout) {
  const std::size_t k = layout.cells.size();
  CellCosts out;
  out.cost.assign(k, 0);
  out.scan_rank.assign(k, 0);

  // Scan positions over ALL cells: sort by key descending, ties by natural
  // interval order (paper: "the order of values with equal selectivity is
  // arbitrary (such as the natural order)").
  std::vector<std::size_t> by_position(k);
  std::iota(by_position.begin(), by_position.end(), 0);
  std::stable_sort(by_position.begin(), by_position.end(),
                   [&](std::size_t a, std::size_t b) {
                     return layout.order_key[a] > layout.order_key[b];
                   });
  std::uint32_t edge_count = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (layout.is_edge[i]) ++edge_count;
  }

  // One pass in scan-position order. Edges get their 1-based rank in the
  // scan list (which contains only edges); a gap cell at this position obeys
  // the early-stop rule of Example 5: the edges with smaller positions are
  // scanned, then one more comparison against the first edge with a larger
  // position reveals the miss — capped at the full list when every edge
  // precedes the target.
  std::uint32_t edges_seen = 0;
  for (std::size_t p = 0; p < k; ++p) {
    const std::size_t cell = by_position[p];
    if (layout.is_edge[cell]) {
      out.scan_rank[cell] = ++edges_seen;
      out.cost[cell] = edges_seen;
    } else {
      out.cost[cell] = std::min<std::uint32_t>(edge_count, edges_seen + 1);
    }
  }
  return out;
}

CellCosts plan_binary(const CellLayout& layout) {
  const std::size_t k = layout.cells.size();
  const std::vector<std::size_t> edges = edge_indices(layout);
  CellCosts out;
  out.cost.assign(k, 0);
  out.scan_rank.assign(k, 0);
  for (std::size_t r = 0; r < edges.size(); ++r) {
    out.scan_rank[edges[r]] = static_cast<std::uint32_t>(r + 1);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const DomainIndex v = layout.cells[i].lo;  // any representative works:
    // cells are elementary, so all their values relate identically to edges
    std::uint32_t ops = 0;
    std::int64_t lo = 0;
    auto hi = static_cast<std::int64_t>(edges.size()) - 1;
    while (lo <= hi) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      const Interval& probe = layout.cells[edges[static_cast<std::size_t>(mid)]];
      ++ops;
      if (probe.contains(v)) break;
      if (v < probe.lo) {
        hi = mid - 1;
      } else {
        lo = mid + 1;
      }
    }
    out.cost[i] = ops;
  }
  return out;
}

CellCosts plan_interpolation(const CellLayout& layout) {
  const std::size_t k = layout.cells.size();
  const std::vector<std::size_t> edges = edge_indices(layout);
  CellCosts out;
  out.cost.assign(k, 0);
  out.scan_rank.assign(k, 0);
  for (std::size_t r = 0; r < edges.size(); ++r) {
    out.scan_rank[edges[r]] = static_cast<std::uint32_t>(r + 1);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const DomainIndex v = layout.cells[i].lo;
    std::uint32_t ops = 0;
    std::int64_t lo = 0;
    auto hi = static_cast<std::int64_t>(edges.size()) - 1;
    while (lo <= hi) {
      const DomainIndex lo_val = layout.cells[edges[static_cast<std::size_t>(lo)]].lo;
      const DomainIndex hi_val = layout.cells[edges[static_cast<std::size_t>(hi)]].hi;
      std::int64_t probe_at = lo;
      if (hi_val > lo_val && v >= lo_val && v <= hi_val) {
        const double frac = static_cast<double>(v - lo_val) /
                            static_cast<double>(hi_val - lo_val);
        probe_at = lo + static_cast<std::int64_t>(
                            frac * static_cast<double>(hi - lo));
        probe_at = std::clamp(probe_at, lo, hi);
      } else if (v > hi_val) {
        probe_at = hi;
      }
      const Interval& probe =
          layout.cells[edges[static_cast<std::size_t>(probe_at)]];
      ++ops;
      if (probe.contains(v)) break;
      if (v < probe.lo) {
        hi = probe_at - 1;
      } else {
        lo = probe_at + 1;
      }
    }
    out.cost[i] = ops;
  }
  return out;
}

CellCosts plan_hash(const CellLayout& layout) {
  // Idealized hash table over cells: one probe resolves edge or miss.
  const std::size_t k = layout.cells.size();
  CellCosts out;
  out.cost.assign(k, 1);
  out.scan_rank.assign(k, 0);
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (layout.is_edge[i]) out.scan_rank[i] = ++rank;
  }
  return out;
}

}  // namespace

CellCosts plan_costs(const CellLayout& layout, SearchStrategy strategy) {
  const std::size_t k = layout.cells.size();
  GENAS_REQUIRE(layout.is_edge.size() == k && layout.order_key.size() == k,
                ErrorCode::kInvalidArgument,
                "cell layout vectors must be equal-sized");
  for (std::size_t i = 1; i < k; ++i) {
    GENAS_REQUIRE(layout.cells[i - 1].hi + 1 == layout.cells[i].lo,
                  ErrorCode::kInvalidArgument,
                  "cells must partition the domain contiguously");
  }
  switch (strategy) {
    case SearchStrategy::kLinear:        return plan_linear(layout);
    case SearchStrategy::kBinary:        return plan_binary(layout);
    case SearchStrategy::kInterpolation: return plan_interpolation(layout);
    case SearchStrategy::kHash:          return plan_hash(layout);
  }
  throw_error(ErrorCode::kInternal, "unknown search strategy");
}

}  // namespace genas
