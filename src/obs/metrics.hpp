// GENAS — low-overhead metrics: named counters, gauges, and fixed-bucket
// latency histograms behind one registry, scrapeable locally or over the
// wire (kStatsRequest/kStatsSnapshot) and renderable as Prometheus text.
//
// Design: the hot path takes no locks and performs no shared RMW beyond a
// relaxed fetch_add on a per-thread shard. Every counter and histogram
// bucket is split into kShards cache-line-sized cells; a thread picks its
// shard once (round-robin at first use, cached in a thread_local) and all
// its increments land there, so concurrent publishers on different cores
// never contend on a metric cell. Reads aggregate across shards with
// relaxed loads — a snapshot is a consistent-enough sum for monitoring,
// not a linearizable cut (the oracle tests quiesce writers first, where
// the sums are exact).
//
// Gauges are last-write-wins (set/add/update_max on one relaxed atomic);
// they record queue depths and high-waters, which are maintained at points
// that already pay a lock or run on one thread, so sharding them would buy
// nothing.
//
// Registration is the cold path: registry lookups take a mutex and return
// stable lightweight handles (a single pointer; default-constructed
// handles are inert no-ops). Metrics live as long as their Registry;
// handles must not outlive it. Re-requesting a name returns the existing
// metric — mismatched kind or bucket bounds throw Error{kInvalidArgument}.
//
// A registry may carry a label set (e.g. `node="3"`) stamped into every
// metric name it registers, so per-node registries merge into one snapshot
// without name collisions (Prometheus-style `name{labels}` keys).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace genas::obs {

/// Shard count per counter/histogram metric (power of two; 8 shards of one
/// cache line bound the per-metric footprint while de-contending the
/// realistic worker counts).
inline constexpr std::size_t kShards = 8;

/// Upper bound on histogram bucket-bound counts, enforced at registration
/// and on wire decode (a hostile snapshot frame cannot over-allocate).
inline constexpr std::size_t kMaxHistogramBuckets = 64;

/// The calling thread's shard slot (assigned round-robin at first use).
inline std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

std::string_view to_string(MetricKind kind) noexcept;

namespace detail {

struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

/// Storage of one registered metric. Counters use cells[shard]; gauges use
/// the single `gauge` atomic; histograms use buckets[shard * stride + b]
/// plus per-shard sums in cells[shard].
struct Metric {
  std::string name;  ///< decorated name (labels included)
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<std::uint64_t> bounds;  ///< histogram upper bounds, ascending
  std::vector<Cell> cells;            ///< counter shards / histogram sums
  std::atomic<std::int64_t> gauge{0};
  /// Histogram bucket cells, kShards * (bounds.size() + 1) relaxed atomics;
  /// the last bucket per shard is +Inf.
  std::vector<std::atomic<std::uint64_t>> buckets;
};

}  // namespace detail

/// Monotone event count. add() is one relaxed fetch_add on the caller's
/// shard; value() sums shards.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) noexcept {
    if (metric_ != nullptr) {
      metric_->cells[shard_index()].value.fetch_add(n,
                                                    std::memory_order_relaxed);
    }
  }

  std::uint64_t value() const noexcept {
    if (metric_ == nullptr) return 0;
    std::uint64_t total = 0;
    for (const auto& cell : metric_->cells) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class Registry;
  explicit Counter(detail::Metric* metric) : metric_(metric) {}
  detail::Metric* metric_ = nullptr;
};

/// Instantaneous level (queue depth, high-water, lag). Not sharded:
/// set/update_max race benignly under relaxed ordering.
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) noexcept {
    if (metric_ != nullptr) metric_->gauge.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (metric_ != nullptr) {
      metric_->gauge.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  /// Raises the gauge to `v` if above the current value (high-water mark).
  void update_max(std::int64_t v) noexcept {
    if (metric_ == nullptr) return;
    std::int64_t cur = metric_->gauge.load(std::memory_order_relaxed);
    while (v > cur && !metric_->gauge.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return metric_ == nullptr ? 0
                              : metric_->gauge.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(detail::Metric* metric) : metric_(metric) {}
  detail::Metric* metric_ = nullptr;
};

/// Fixed-bucket distribution (cumulative `le` semantics: bucket b counts
/// observations <= bounds[b]; the implicit last bucket is +Inf). observe()
/// is a bounds binary search plus two relaxed fetch_adds on the caller's
/// shard.
class Histogram {
 public:
  Histogram() = default;

  void observe(std::uint64_t v) noexcept;

 private:
  friend class Registry;
  explicit Histogram(detail::Metric* metric) : metric_(metric) {}
  detail::Metric* metric_ = nullptr;
};

/// Aggregated value of one metric, as captured by Registry::snapshot() or
/// decoded from a kStatsSnapshot frame.
struct MetricSnapshot {
  std::string name;  ///< decorated name (labels included)
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;             ///< counter total or gauge level
  std::vector<std::uint64_t> bounds;  ///< histogram only
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries (+Inf)
  std::uint64_t sum = 0;              ///< histogram sum of observations

  /// Histogram observation count (sum of buckets).
  std::uint64_t count() const noexcept;

  bool operator==(const MetricSnapshot&) const = default;
};

/// One scrape: every metric of a registry (or several merged registries),
/// sorted by name.
struct StatsSnapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* find(std::string_view name) const noexcept;
  /// Counter/gauge value by decorated name; 0 when absent.
  std::int64_t value(std::string_view name) const noexcept;
  /// Appends another snapshot's metrics and restores name order.
  void merge(StatsSnapshot other);
  /// Restores the sorted-by-name invariant after manual appends.
  void sort();

  bool operator==(const StatsSnapshot&) const = default;
};

/// Names and owns metrics. Thread-safe; registration is mutexed, handles
/// are lock-free. See the header comment for the sharding contract.
class Registry {
 public:
  /// `labels` (e.g. `node="3"`) is stamped into every registered metric
  /// name: `name` becomes `name{labels}`, and names that already carry
  /// labels become `name{labels,existing}`.
  explicit Registry(std::string labels = "");

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(std::string_view name, std::string_view help = {});
  Gauge gauge(std::string_view name, std::string_view help = {});
  /// `bounds` are the ascending bucket upper bounds (1..kMaxHistogramBuckets
  /// entries; Error{kInvalidArgument} otherwise). The +Inf bucket is
  /// implicit.
  Histogram histogram(std::string_view name,
                      std::span<const std::uint64_t> bounds,
                      std::string_view help = {});

  /// Aggregates every metric across shards (relaxed reads).
  StatsSnapshot snapshot() const;

 private:
  detail::Metric* find_or_create(std::string_view name, MetricKind kind,
                                 std::span<const std::uint64_t> bounds,
                                 std::string_view help);
  std::string decorate(std::string_view name) const;

  const std::string labels_;
  mutable std::mutex mutex_;
  std::deque<detail::Metric> metrics_;  ///< stable addresses for handles
  std::unordered_map<std::string_view, detail::Metric*> by_name_;
};

/// The default latency bucket bounds (nanoseconds): powers of two from
/// 512 ns to ~8.6 s — 25 buckets spanning a cache miss to a stuck flush.
std::span<const std::uint64_t> default_latency_bounds() noexcept;

/// Quantile estimate from a histogram snapshot (linear interpolation
/// within the containing bucket; q clamped to [0,1]). 0 when empty.
double quantile(const MetricSnapshot& hist, double q) noexcept;

/// Prometheus text exposition (# TYPE lines, _bucket/_sum/_count expansion
/// for histograms, labels preserved and merged with `le`).
std::string render_prometheus(const StatsSnapshot& snapshot);

}  // namespace genas::obs
