#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "common/error.hpp"

namespace genas::obs {

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void Histogram::observe(std::uint64_t v) noexcept {
  detail::Metric* m = metric_;
  if (m == nullptr) return;
  const auto it = std::lower_bound(m->bounds.begin(), m->bounds.end(), v);
  const auto b = static_cast<std::size_t>(it - m->bounds.begin());
  const std::size_t shard = shard_index();
  const std::size_t stride = m->bounds.size() + 1;
  m->buckets[shard * stride + b].fetch_add(1, std::memory_order_relaxed);
  m->cells[shard].value.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t MetricSnapshot::count() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

const MetricSnapshot* StatsSnapshot::find(
    std::string_view name) const noexcept {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::int64_t StatsSnapshot::value(std::string_view name) const noexcept {
  const MetricSnapshot* m = find(name);
  return m == nullptr ? 0 : m->value;
}

void StatsSnapshot::merge(StatsSnapshot other) {
  metrics.insert(metrics.end(), std::make_move_iterator(other.metrics.begin()),
                 std::make_move_iterator(other.metrics.end()));
  sort();
}

void StatsSnapshot::sort() {
  std::sort(metrics.begin(), metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
}

Registry::Registry(std::string labels) : labels_(std::move(labels)) {}

std::string Registry::decorate(std::string_view name) const {
  if (labels_.empty()) return std::string(name);
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    std::string decorated(name);
    decorated += '{';
    decorated += labels_;
    decorated += '}';
    return decorated;
  }
  // name{existing} -> name{registry_labels,existing}
  std::string decorated(name.substr(0, brace + 1));
  decorated += labels_;
  decorated += ',';
  decorated += name.substr(brace + 1);
  return decorated;
}

detail::Metric* Registry::find_or_create(std::string_view name,
                                         MetricKind kind,
                                         std::span<const std::uint64_t> bounds,
                                         std::string_view help) {
  const std::string decorated = decorate(name);
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_name_.find(std::string_view(decorated));
      it != by_name_.end()) {
    detail::Metric* existing = it->second;
    GENAS_REQUIRE(existing->kind == kind, ErrorCode::kInvalidArgument,
                  "metric '" + decorated + "' already registered as " +
                      std::string(to_string(existing->kind)));
    GENAS_REQUIRE(
        kind != MetricKind::kHistogram ||
            std::equal(existing->bounds.begin(), existing->bounds.end(),
                       bounds.begin(), bounds.end()),
        ErrorCode::kInvalidArgument,
        "histogram '" + decorated + "' re-registered with different buckets");
    return existing;
  }
  if (kind == MetricKind::kHistogram) {
    GENAS_REQUIRE(!bounds.empty() && bounds.size() <= kMaxHistogramBuckets,
                  ErrorCode::kInvalidArgument,
                  "histogram '" + decorated + "' needs 1.." +
                      std::to_string(kMaxHistogramBuckets) + " bucket bounds");
    GENAS_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()) &&
                      std::adjacent_find(bounds.begin(), bounds.end()) ==
                          bounds.end(),
                  ErrorCode::kInvalidArgument,
                  "histogram '" + decorated +
                      "' bucket bounds must be strictly ascending");
  }
  detail::Metric& metric = metrics_.emplace_back();
  metric.name = decorated;
  metric.help = std::string(help);
  metric.kind = kind;
  metric.bounds.assign(bounds.begin(), bounds.end());
  if (kind != MetricKind::kGauge) {
    metric.cells = std::vector<detail::Cell>(kShards);
  }
  if (kind == MetricKind::kHistogram) {
    metric.buckets =
        std::vector<std::atomic<std::uint64_t>>(kShards * (bounds.size() + 1));
  }
  by_name_.emplace(std::string_view(metric.name), &metric);
  return &metric;
}

Counter Registry::counter(std::string_view name, std::string_view help) {
  return Counter(find_or_create(name, MetricKind::kCounter, {}, help));
}

Gauge Registry::gauge(std::string_view name, std::string_view help) {
  return Gauge(find_or_create(name, MetricKind::kGauge, {}, help));
}

Histogram Registry::histogram(std::string_view name,
                              std::span<const std::uint64_t> bounds,
                              std::string_view help) {
  return Histogram(find_or_create(name, MetricKind::kHistogram, bounds, help));
}

StatsSnapshot Registry::snapshot() const {
  StatsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.metrics.reserve(metrics_.size());
  for (const detail::Metric& m : metrics_) {
    MetricSnapshot& out = snap.metrics.emplace_back();
    out.name = m.name;
    out.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const detail::Cell& cell : m.cells) {
          total += cell.value.load(std::memory_order_relaxed);
        }
        out.value = static_cast<std::int64_t>(total);
        break;
      }
      case MetricKind::kGauge:
        out.value = m.gauge.load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        const std::size_t stride = m.bounds.size() + 1;
        out.bounds = m.bounds;
        out.counts.assign(stride, 0);
        for (std::size_t shard = 0; shard < kShards; ++shard) {
          for (std::size_t b = 0; b < stride; ++b) {
            out.counts[b] += m.buckets[shard * stride + b].load(
                std::memory_order_relaxed);
          }
          out.sum += m.cells[shard].value.load(std::memory_order_relaxed);
        }
        out.value = static_cast<std::int64_t>(out.count());
        break;
      }
    }
  }
  snap.sort();
  return snap;
}

std::span<const std::uint64_t> default_latency_bounds() noexcept {
  // Powers of two, 512 ns .. 2^33 ns (~8.6 s).
  static const std::array<std::uint64_t, 25> kBounds = [] {
    std::array<std::uint64_t, 25> b{};
    std::uint64_t v = 512;
    for (std::size_t i = 0; i < b.size(); ++i, v <<= 1) b[i] = v;
    return b;
  }();
  return kBounds;
}

double quantile(const MetricSnapshot& hist, double q) noexcept {
  const std::uint64_t total = hist.count();
  if (total == 0 || hist.counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    const std::uint64_t in_bucket = hist.counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(hist.bounds[b - 1]);
      // The +Inf bucket has no upper bound; report its lower edge.
      const double hi = b < hist.bounds.size()
                            ? static_cast<double>(hist.bounds[b])
                            : lo;
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(hist.bounds.empty() ? 0 : hist.bounds.back());
}

namespace {

/// Splits a decorated name into base and label list: `a{b="c"}` -> (a, b="c").
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) noexcept {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

void append_labeled(std::string& out, std::string_view base,
                    std::string_view suffix, std::string_view labels,
                    std::string_view extra_label) {
  out += base;
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string render_prometheus(const StatsSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.metrics.size() * 64);
  std::string last_base;
  for (const MetricSnapshot& m : snapshot.metrics) {
    const auto [base, labels] = split_labels(m.name);
    if (base != last_base) {
      out += "# TYPE ";
      out += base;
      out += ' ';
      out += to_string(m.kind);
      out += '\n';
      last_base = std::string(base);
    }
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        append_labeled(out, base, "", labels, "");
        out += ' ';
        out += std::to_string(m.value);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.counts.size(); ++b) {
          cumulative += m.counts[b];
          std::string le = b < m.bounds.size()
                               ? "le=\"" + std::to_string(m.bounds[b]) + "\""
                               : std::string("le=\"+Inf\"");
          append_labeled(out, base, "_bucket", labels, le);
          out += ' ';
          append_u64(out, cumulative);
          out += '\n';
        }
        append_labeled(out, base, "_sum", labels, "");
        out += ' ';
        append_u64(out, m.sum);
        out += '\n';
        append_labeled(out, base, "_count", labels, "");
        out += ' ';
        append_u64(out, cumulative);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace genas::obs
