// GENAS — sampled event-path tracing.
//
// Latency histograms are cheap to record but now() calls are not free at
// millions of events per second, so stage timing is sampled: every Nth
// publish *per thread* stamps a wall-clock (steady) timestamp and records
// the publish→match→route→deliver stage latencies into the obs histograms;
// the other N-1 publishes pay one relaxed load and one thread-local
// increment (~1 ns). N is the trace period — configurable per component
// (Broker::set_trace_period, MeshOptions::trace_period), 0 disables
// tracing entirely.
//
// The per-thread countdown lives at the call site (a `thread_local
// std::uint32_t` the caller passes in), not in the sampler: a member
// thread_local is impossible and a shared counter would put one contended
// RMW back on the hot path — the very thing the sharded metrics avoid.
// Sampling is therefore per-thread periodic, which is statistically
// equivalent for latency distributions and deterministic per thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace genas::obs {

/// Default trace period: 1 of every 64 publishes per thread is timed.
inline constexpr std::uint32_t kDefaultTracePeriod = 64;

/// Monotonic wall clock in nanoseconds (steady_clock; comparable only
/// within one process).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Decides which calls are traced. Thread-safe: the period is one relaxed
/// atomic, reconfigurable while traffic runs.
class TraceSampler {
 public:
  explicit TraceSampler(std::uint32_t period = kDefaultTracePeriod) noexcept
      : period_(period) {}

  void set_period(std::uint32_t period) noexcept {
    period_.store(period, std::memory_order_relaxed);
  }
  std::uint32_t period() const noexcept {
    return period_.load(std::memory_order_relaxed);
  }

  /// Counts one call against `countdown` (a call-site `thread_local`);
  /// true when this call is the sampled one. Period 0 never samples;
  /// period 1 samples every call.
  bool sample(std::uint32_t& countdown) const noexcept {
    const std::uint32_t p = period_.load(std::memory_order_relaxed);
    if (p == 0) return false;
    if (++countdown < p) return false;
    countdown = 0;
    return true;
  }

 private:
  std::atomic<std::uint32_t> period_;
};

}  // namespace genas::obs
