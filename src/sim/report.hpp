// GENAS — report tables for the benchmark harness.
//
// Every figure bench prints the series the paper plots as an aligned text
// table (rows = distribution combinations, columns = strategies) plus an
// optional CSV block for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace genas::sim {

/// Simple aligned-column table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have one entry per header.
  void add_row(std::vector<std::string> row);

  /// Convenience: first column label, remaining columns formatted doubles.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with padded columns and a header rule.
  void print(std::ostream& os) const;

  /// Renders as CSV (comma-separated, no quoting of commas — labels must
  /// not contain commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section heading ("== Fig. 4(a) ... ==") used by all benches.
void print_heading(std::ostream& os, const std::string& title);

}  // namespace genas::sim
