#include "sim/workload.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace genas {

ProfileSet generate_profiles(
    SchemaPtr schema,
    const std::vector<DiscreteDistribution>& profile_distributions,
    const ProfileWorkloadOptions& options) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "workload requires a schema");
  const std::size_t n = schema->attribute_count();
  GENAS_REQUIRE(profile_distributions.size() == n, ErrorCode::kInvalidArgument,
                "one profile distribution per attribute required");
  for (AttributeId a = 0; a < n; ++a) {
    GENAS_REQUIRE(
        profile_distributions[a].size() == schema->attribute(a).domain.size(),
        ErrorCode::kInvalidArgument,
        "profile distribution size mismatch for attribute '" +
            schema->attribute(a).name + "'");
  }
  GENAS_REQUIRE(options.dont_care_probability >= 0.0 &&
                    options.dont_care_probability < 1.0,
                ErrorCode::kInvalidArgument,
                "don't-care probability must be in [0,1)");

  Rng rng(options.seed);
  ProfileSet set(schema);
  for (std::size_t i = 0; i < options.count; ++i) {
    ProfileBuilder builder(schema);
    std::size_t constrained = 0;
    // Pre-pick one attribute that must be constrained so no profile is a
    // match-everything subscription.
    const auto forced = static_cast<AttributeId>(rng.below(n));
    for (AttributeId a = 0; a < n; ++a) {
      if (a != forced && rng.chance(options.dont_care_probability)) continue;
      const Domain& domain = schema->attribute(a).domain;
      const DomainIndex center =
          profile_distributions[a].quantile(rng.uniform());
      if (options.equality_only || domain.kind() == ValueKind::kCategory) {
        builder.where(schema->attribute(a).name, Op::kEq,
                      domain.value_at(center));
      } else {
        // Exponential-ish width around the mean, at least one value wide.
        const double width_norm =
            options.range_width_mean * (0.25 + 1.5 * rng.uniform());
        const auto half = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(width_norm *
                                         static_cast<double>(domain.size()) /
                                         2.0));
        const DomainIndex lo = std::max<DomainIndex>(0, center - half);
        const DomainIndex hi =
            std::min<DomainIndex>(domain.size() - 1, center + half);
        builder.between(schema->attribute(a).name, domain.value_at(lo),
                        domain.value_at(hi));
      }
      ++constrained;
    }
    GENAS_CHECK(constrained > 0, "generated profile must be constrained");
    set.add(builder.build());
  }
  return set;
}

JointDistribution make_event_distribution(
    const SchemaPtr& schema, const std::vector<std::string>& names) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "event distribution requires a schema");
  const std::size_t n = schema->attribute_count();
  GENAS_REQUIRE(names.size() == 1 || names.size() == n,
                ErrorCode::kInvalidArgument,
                "provide one distribution name, or one per attribute");
  std::vector<DiscreteDistribution> marginals;
  marginals.reserve(n);
  for (AttributeId a = 0; a < n; ++a) {
    const std::string& name = names.size() == 1 ? names[0] : names[a];
    DistributionCatalog catalog(schema->attribute(a).domain.size());
    marginals.push_back(catalog.by_name(name));
  }
  return JointDistribution::independent(schema, std::move(marginals));
}

std::vector<DiscreteDistribution> make_profile_distributions(
    const SchemaPtr& schema, const std::vector<std::string>& names) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "profile distributions require a schema");
  const std::size_t n = schema->attribute_count();
  GENAS_REQUIRE(names.size() == 1 || names.size() == n,
                ErrorCode::kInvalidArgument,
                "provide one distribution name, or one per attribute");
  std::vector<DiscreteDistribution> out;
  out.reserve(n);
  for (AttributeId a = 0; a < n; ++a) {
    const std::string& name = names.size() == 1 ? names[0] : names[a];
    DistributionCatalog catalog(schema->attribute(a).domain.size());
    out.push_back(catalog.by_name(name));
  }
  return out;
}

}  // namespace genas
