// GENAS — workload generation.
//
// Builds the synthetic profile sets and event distributions the paper's
// evaluation uses: profiles drawn from a per-attribute profile distribution
// P_p (equality tests in the prototype's mode, or range tests in the general
// mode), and events drawn from per-attribute event distributions P_e
// (assumed independent across attributes, as in §4.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/catalog.hpp"
#include "dist/joint.hpp"
#include "profile/profile.hpp"

namespace genas {

/// Options for synthetic profile generation.
struct ProfileWorkloadOptions {
  std::size_t count = 1000;  ///< number of profiles, p
  /// Probability that a profile leaves an attribute unspecified ('*').
  double dont_care_probability = 0.0;
  /// true: equality tests only (the paper's prototype mode); false: range
  /// tests centred on the drawn value.
  bool equality_only = true;
  /// Mean normalized width of range tests (range mode only).
  double range_width_mean = 0.05;
  std::uint64_t seed = 1;
};

/// Draws `options.count` profiles; attribute j's test values come from
/// `profile_distributions[j]`. Every profile constrains at least one
/// attribute (a fully-don't-care profile carries no selectivity signal).
ProfileSet generate_profiles(
    SchemaPtr schema,
    const std::vector<DiscreteDistribution>& profile_distributions,
    const ProfileWorkloadOptions& options);

/// Independent joint event distribution with per-attribute catalog names
/// (e.g. {"d37", "gauss"}); one name may be given for all attributes.
JointDistribution make_event_distribution(
    const SchemaPtr& schema, const std::vector<std::string>& names);

/// Per-attribute profile-value distributions by catalog name.
std::vector<DiscreteDistribution> make_profile_distributions(
    const SchemaPtr& schema, const std::vector<std::string>& names);

}  // namespace genas
