// GENAS — hostile-scenario harness: deterministic fault drills with an
// exactness oracle.
//
// run_hostile_mesh builds one canonical workload — a chain of broker nodes
// with overlapping plain subscriptions and composite expressions spread
// across them, plus a seeded event stream — and runs it through a real
// MeshNetwork under a caller-supplied fault plan. Everything observable is
// returned as sorted multisets (delivery records, composite firings), so a
// test can run the same seed twice — once pristine, once with drops,
// duplicates, delays, or mid-stream subscription churn — and assert the
// multisets are identical: with reliable links, injected faults must be
// invisible to subscribers.
//
// The harness is deliberately deterministic end to end: the workload
// derives from the seed alone, churn points are barriered with wait_idle()
// (which also waits for link-level acknowledgement), and fault plans are
// budget-bounded by construction (net::FaultPlan enforces it), so a failing
// seed reproduces byte-for-byte.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event/schema.hpp"
#include "mesh/mesh.hpp"
#include "net/fault.hpp"

namespace genas::sim {

/// One hostile mesh drill.
struct HostileMeshConfig {
  std::uint64_t seed = 1;
  /// Chain topology 0-1-...-(nodes-1); subscriptions round-robin over it.
  std::size_t nodes = 4;
  std::size_t events = 160;
  mesh::RoutingMode mode = mesh::RoutingMode::kRoutingCovered;
  /// At-least-once links (required for the exactness oracle under faults).
  bool reliable_links = true;
  std::size_t link_window = 16;
  /// Aggressive by default so dropped frames recover within test budgets.
  std::chrono::microseconds retransmit_interval{500};
  /// Faults injected per transmission; null runs pristine.
  std::shared_ptr<net::FaultPlan> fault_plan;
  /// Mid-stream churn: after the first half of the stream (barriered),
  /// every other plain subscription is withdrawn and re-registered, so
  /// unsubscribe/resubscribe propagation runs under the fault plan too.
  bool churn = false;
};

/// Sorted observations of one run (multiset-comparable across runs).
struct HostileMeshRun {
  /// "s<sub index>@n<node>:e<event id>" per plain delivery. Subscriptions
  /// are labeled by workload index, stable across churned re-registration.
  std::vector<std::string> deliveries;
  /// "c<composite index>:t<firing time>" per composite firing.
  std::vector<std::string> firings;
  net::FaultPlan::Stats faults{};  ///< zeros when no plan was injected
  std::string first_error;         ///< mesh-internal error, if any
};

/// The harness schema (shared by baseline and hostile runs).
SchemaPtr hostile_schema();

/// Runs the canonical workload under `config`; see the header comment.
HostileMeshRun run_hostile_mesh(const HostileMeshConfig& config);

}  // namespace genas::sim
