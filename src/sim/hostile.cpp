#include "sim/hostile.hpp"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <utility>

#include "common/rng.hpp"
#include "event/event.hpp"
#include "profile/parser.hpp"
#include "profile/profile.hpp"

namespace genas::sim {

namespace {

/// Thread-safe observation sink (callbacks arrive from mesh workers).
class Log {
 public:
  void record(std::string entry) {
    const std::scoped_lock lock(mutex_);
    entries_.push_back(std::move(entry));
  }
  std::vector<std::string> sorted() {
    const std::scoped_lock lock(mutex_);
    std::vector<std::string> copy = entries_;
    std::sort(copy.begin(), copy.end());
    return copy;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> entries_;
};

/// Overlapping plain subscriptions: coverage relations occur (kind >= 10
/// covers kind >= 40, …), so churn exercises promotion too.
const char* const kPlainProfiles[] = {
    "kind >= 10", "kind >= 40", "kind >= 70", "kind >= 85",
    "kind <= 25", "kind <= 55",
};

/// Composite expressions over the same attribute; windows generous enough
/// that the seeded stream completes them many times.
const char* const kComposites[] = {
    "seq({kind >= 60}, {kind <= 30}, w=40)",
    "conj({kind <= 20}, {kind >= 75}, w=60)",
    "disj({kind >= 90}, {kind <= 5})",
};

}  // namespace

SchemaPtr hostile_schema() {
  return SchemaBuilder()
      .add_integer("kind", 0, 99)
      .add_integer("id", 0, 1 << 20)
      .build();
}

HostileMeshRun run_hostile_mesh(const HostileMeshConfig& config) {
  const SchemaPtr schema = hostile_schema();
  constexpr std::size_t kPlainCount = std::size(kPlainProfiles);
  constexpr std::size_t kCompositeCount = std::size(kComposites);

  mesh::MeshOptions options;
  options.mode = config.mode;
  options.reliable_links = config.reliable_links;
  options.fault_plan = config.fault_plan;
  options.link_window = config.link_window;
  options.link_retransmit_interval = config.retransmit_interval;
  options.composite_skew = 1 << 20;  // buffer everything until flush

  mesh::MeshNetwork mesh(schema, options);
  for (std::size_t n = 0; n < config.nodes; ++n) mesh.add_node();
  for (std::size_t n = 1; n < config.nodes; ++n) {
    mesh.connect(static_cast<mesh::NodeId>(n - 1),
                 static_cast<mesh::NodeId>(n));
  }
  mesh.start();

  Log deliveries;
  Log firings;

  // Plain subscriptions round-robin over the chain, labeled by workload
  // index (stable across churn). Propagation is serialized per install —
  // covering state is install-order sensitive and the oracle needs both
  // runs to install identically.
  std::vector<SubscriptionId> plain_keys(kPlainCount);
  const auto subscribe_plain = [&](std::size_t index) {
    const auto at = static_cast<mesh::NodeId>(index % config.nodes);
    plain_keys[index] = mesh.subscribe(
        at, kPlainProfiles[index],
        [&deliveries, index, at](mesh::NodeId, SubscriptionId,
                                 const Event& event) {
          std::string entry = "s";
          entry += std::to_string(index);
          entry += "@n";
          entry += std::to_string(at);
          entry += ":e";
          entry += std::to_string(event.value("id").as_int());
          deliveries.record(std::move(entry));
        });
    mesh.wait_idle();
  };
  for (std::size_t i = 0; i < kPlainCount; ++i) subscribe_plain(i);

  for (std::size_t i = 0; i < kCompositeCount; ++i) {
    const auto at =
        static_cast<mesh::NodeId>((config.nodes - 1) - i % config.nodes);
    mesh.subscribe_composite(
        at, kComposites[i],
        [&firings, i](mesh::NodeId, SubscriptionId, Timestamp time) {
          std::string entry = "c";
          entry += std::to_string(i);
          entry += ":t";
          entry += std::to_string(time);
          firings.record(std::move(entry));
        });
    mesh.wait_idle();
  }

  // Seeded stream: publish at rotating nodes with unique timestamps.
  Rng rng(config.seed);
  const auto publish_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Event event = Event::from_pairs(
          schema, {{"kind", static_cast<std::int64_t>(rng.below(100))},
                   {"id", static_cast<std::int64_t>(i)}});
      event.set_time(static_cast<Timestamp>(i + 1));
      mesh.publish(static_cast<mesh::NodeId>(i % config.nodes),
                   std::move(event));
    }
  };

  const std::size_t half = config.events / 2;
  publish_range(0, half);

  if (config.churn) {
    // Barrier, then withdraw and re-register every other plain
    // subscription: unsubscribe propagation, covering promotion, and fresh
    // installs all run under the fault plan.
    mesh.wait_idle();
    for (std::size_t i = 0; i < kPlainCount; i += 2) {
      mesh.unsubscribe(plain_keys[i]);
      mesh.wait_idle();
    }
    for (std::size_t i = 0; i < kPlainCount; i += 2) subscribe_plain(i);
  }

  publish_range(half, config.events);

  mesh.wait_idle();
  mesh.flush_composites();
  mesh.shutdown();

  HostileMeshRun run;
  run.deliveries = deliveries.sorted();
  run.firings = firings.sorted();
  if (config.fault_plan != nullptr) run.faults = config.fault_plan->stats();
  run.first_error = mesh.first_error();
  return run;
}

}  // namespace genas::sim
