// GENAS — the paper's test scenarios (§4.3).
//
//   TV1  tree creation over n attributes, 10,000 profiles from a given
//        distribution, then event tests to 95% precision
//   TV2  full profile tree, event tests to 95% precision
//   TV3  single-attribute tree, 4,000 sampled events
//   TV4  single-attribute tree, all possible events — the exact expectation
//        of Eq. 2 (this library computes it in closed form)
//   TA1  5 attributes with widely differing selectivities (profile-value
//        peak widths 10%–80%)
//   TA2  5 attributes with lightly varying selectivities
//
// Scenario factories return a self-contained Workload (profile set + event
// distribution + labels) that the figure benches and integration tests run
// through the ordering policies under study.
#pragma once

#include <string>
#include <vector>

#include "dist/joint.hpp"
#include "profile/profile.hpp"
#include "sim/workload.hpp"

namespace genas::sim {

/// A ready-to-run experiment input.
struct Workload {
  ProfileSet profiles;
  JointDistribution events;
  std::string label;
};

/// Single-attribute workload (TV3/TV4 style): `p` equality profiles over an
/// integer domain of `domain_size` values; event values from the catalog
/// entry `event_name`, profile values from `profile_name`.
Workload single_attribute(std::int64_t domain_size, std::size_t p,
                          const std::string& event_name,
                          const std::string& profile_name,
                          std::uint64_t seed = 1);

/// Multi-attribute workload (TV1/TV2 style): `n` attributes, each with the
/// same catalog names; `dont_care` probability per attribute.
Workload multi_attribute(std::size_t n, std::int64_t domain_size,
                         std::size_t p, const std::string& event_name,
                         const std::string& profile_name, double dont_care,
                         std::uint64_t seed = 1);

/// Event-marginal families used by the attribute-reordering figures.
enum class EventFamily { kEqual, kGauss, kRelocatedGauss };

std::string to_string(EventFamily family);

/// TA1/TA2 workload: 5 attributes whose profile-value distributions are
/// peaks of configured widths — `wide` spreads widths 10%..80% (TA1),
/// otherwise 40%..60% (TA2) — so zero-subdomain selectivities differ widely
/// or lightly. Events follow `family` on every attribute.
Workload attribute_scenario(bool wide, EventFamily family, std::size_t p,
                            std::int64_t domain_size = 60,
                            std::uint64_t seed = 1);

}  // namespace genas::sim
