#include "sim/scenarios.hpp"

#include "common/error.hpp"
#include "dist/shapes.hpp"
#include "event/schema.hpp"

namespace genas::sim {

Workload single_attribute(std::int64_t domain_size, std::size_t p,
                          const std::string& event_name,
                          const std::string& profile_name,
                          std::uint64_t seed) {
  SchemaPtr schema =
      SchemaBuilder().add_integer("a1", 0, domain_size - 1).build();

  ProfileWorkloadOptions options;
  options.count = p;
  options.equality_only = true;
  options.seed = seed;
  ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {profile_name}), options);

  JointDistribution events = make_event_distribution(schema, {event_name});
  return Workload{std::move(profiles), std::move(events),
                  event_name + "/" + profile_name};
}

Workload multi_attribute(std::size_t n, std::int64_t domain_size,
                         std::size_t p, const std::string& event_name,
                         const std::string& profile_name, double dont_care,
                         std::uint64_t seed) {
  GENAS_REQUIRE(n >= 1, ErrorCode::kInvalidArgument,
                "multi_attribute requires n >= 1");
  SchemaBuilder builder;
  for (std::size_t j = 0; j < n; ++j) {
    std::string attr_name = "a";
    attr_name += std::to_string(j + 1);
    builder.add_integer(std::move(attr_name), 0, domain_size - 1);
  }
  SchemaPtr schema = builder.build();

  ProfileWorkloadOptions options;
  options.count = p;
  options.equality_only = true;
  options.dont_care_probability = dont_care;
  options.seed = seed;
  ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {profile_name}), options);

  JointDistribution events = make_event_distribution(schema, {event_name});
  return Workload{std::move(profiles), std::move(events),
                  event_name + "/" + profile_name + " n=" + std::to_string(n)};
}

std::string to_string(EventFamily family) {
  switch (family) {
    case EventFamily::kEqual:          return "equal distr.";
    case EventFamily::kGauss:          return "gauss distr.";
    case EventFamily::kRelocatedGauss: return "relocated gauss";
  }
  return "?";
}

Workload attribute_scenario(bool wide, EventFamily family, std::size_t p,
                            std::int64_t domain_size, std::uint64_t seed) {
  constexpr std::size_t kAttributes = 5;
  SchemaBuilder builder;
  for (std::size_t j = 0; j < kAttributes; ++j) {
    std::string attr_name = "a";
    attr_name += std::to_string(j + 1);
    builder.add_integer(std::move(attr_name), 0, domain_size - 1);
  }
  SchemaPtr schema = builder.build();

  // Profile-value peaks: all profile interest sits in a band near the high
  // end of each domain; band width controls the zero-subdomain size and so
  // the attribute's selectivity. TA1 spreads widths 10%..80% (wide
  // selectivity differences); TA2 keeps them between 40%..60%. The widths
  // are deliberately not monotone in the schema order, so the natural level
  // order is neither the best nor the worst case (as in the paper's
  // Fig. 6 bars).
  const std::vector<double> widths =
      wide ? std::vector<double>{0.45, 0.10, 0.80, 0.25, 0.65}
           : std::vector<double>{0.50, 0.40, 0.60, 0.45, 0.55};
  std::vector<DiscreteDistribution> profile_dists;
  profile_dists.reserve(kAttributes);
  for (std::size_t j = 0; j < kAttributes; ++j) {
    const double width = widths[j];
    profile_dists.push_back(
        shapes::peak(domain_size, 1.0 - width / 2.0, width, 1.0));
  }

  ProfileWorkloadOptions options;
  options.count = p;
  options.equality_only = true;
  options.seed = seed;
  ProfileSet profiles = generate_profiles(schema, profile_dists, options);

  // Event marginals: equal / centred Gauss / relocated Gauss whose mass
  // sits at the low end — squarely inside the zero-subdomains, the case
  // where early rejection matters most (paper Fig. 6(a) right).
  std::vector<DiscreteDistribution> marginals;
  marginals.reserve(kAttributes);
  for (std::size_t j = 0; j < kAttributes; ++j) {
    switch (family) {
      case EventFamily::kEqual:
        marginals.push_back(shapes::equal(domain_size));
        break;
      case EventFamily::kGauss:
        marginals.push_back(shapes::gauss(domain_size));
        break;
      case EventFamily::kRelocatedGauss:
        marginals.push_back(shapes::relocated_gauss(domain_size, false));
        break;
    }
  }
  JointDistribution events =
      JointDistribution::independent(schema, std::move(marginals));

  return Workload{std::move(profiles), std::move(events),
                  std::string(wide ? "TA1" : "TA2") + " / " +
                      to_string(family)};
}

}  // namespace genas::sim
