#include "sim/report.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "common/text.hpp"

namespace genas::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GENAS_REQUIRE(!headers_.empty(), ErrorCode::kInvalidArgument,
                "table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  GENAS_REQUIRE(row.size() == headers_.size(), ErrorCode::kInvalidArgument,
                "row width does not match header count");
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_heading(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace genas::sim
