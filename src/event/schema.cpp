#include "event/schema.hpp"

#include <sstream>

#include "common/error.hpp"

namespace genas {

const Attribute& Schema::attribute(AttributeId id) const {
  GENAS_REQUIRE(id < attributes_.size(), ErrorCode::kInvalidArgument,
                "attribute id " + std::to_string(id) + " out of range");
  return attributes_[id];
}

AttributeId Schema::id_of(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  GENAS_REQUIRE(it != by_name_.end(), ErrorCode::kNotFound,
                "unknown attribute '" + std::string(name) + "'");
  return it->second;
}

bool Schema::has_attribute(std::string_view name) const noexcept {
  return by_name_.find(std::string(name)) != by_name_.end();
}

std::string Schema::to_string() const {
  std::ostringstream os;
  os << "schema(";
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) os << "; ";
    os << attributes_[i].name << ": " << attributes_[i].domain.to_string();
  }
  os << ')';
  return os.str();
}

SchemaBuilder& SchemaBuilder::add(std::string name, Domain domain) {
  GENAS_REQUIRE(!built_, ErrorCode::kState,
                "SchemaBuilder already consumed by build()");
  GENAS_REQUIRE(!name.empty(), ErrorCode::kInvalidArgument,
                "attribute name must not be empty");
  GENAS_REQUIRE(!schema_->has_attribute(name), ErrorCode::kInvalidArgument,
                "duplicate attribute '" + name + "'");
  const AttributeId id = schema_->attributes_.size();
  schema_->by_name_.emplace(name, id);
  schema_->attributes_.push_back(Attribute{std::move(name), std::move(domain)});
  return *this;
}

SchemaPtr SchemaBuilder::build() {
  GENAS_REQUIRE(!built_, ErrorCode::kState,
                "SchemaBuilder already consumed by build()");
  GENAS_REQUIRE(schema_->attribute_count() > 0, ErrorCode::kInvalidArgument,
                "schema requires at least one attribute");
  built_ = true;
  return SchemaPtr(schema_.release());
}

}  // namespace genas
