// GENAS — attribute domains.
//
// A Domain defines the finite, ordered set of values an attribute can take
// and the bijection between those values and dense indices [0, d). Three
// flavours exist (paper §3 uses integer-bounded numeric domains; the
// "generic service" requirement of §4.2 adds categories):
//
//   * integer domains  [lo, hi], index = v - lo
//   * real domains     [lo, hi] at resolution r, index = round((v - lo)/r)
//   * categorical domains, index = position in the declared category list
//
// The domain size d_j and the index mapping are what the rest of the library
// consumes; distributions, trees and selectivity measures never see raw
// values.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "event/value.hpp"

namespace genas {

/// Finite ordered value set with a dense index mapping.
class Domain {
 public:
  /// Integer domain covering [lo, hi] inclusive.
  static Domain integer(std::int64_t lo, std::int64_t hi);

  /// Real domain covering [lo, hi] discretized at `resolution` (> 0). The
  /// domain has round((hi-lo)/resolution) + 1 representable points.
  static Domain real(double lo, double hi, double resolution);

  /// Categorical domain over the given distinct names (order = index order).
  static Domain categorical(std::vector<std::string> categories);

  ValueKind kind() const noexcept { return kind_; }

  /// Number of representable values, d_j in the paper.
  std::int64_t size() const noexcept { return size_; }

  /// Whole domain as an index interval [0, size-1].
  Interval full() const noexcept { return {0, size_ - 1}; }

  /// True when the value belongs to the domain (kind matches and the value
  /// is within bounds / a known category).
  bool contains(const Value& v) const noexcept;

  /// Value -> dense index. Throws Error{kDomainViolation} when !contains(v).
  DomainIndex index_of(const Value& v) const;

  /// Dense index -> value. Throws Error{kInvalidArgument} out of range.
  Value value_at(DomainIndex index) const;

  /// For numeric domains: lower/upper bounds as declared.
  double numeric_lo() const noexcept { return lo_; }
  double numeric_hi() const noexcept { return hi_; }
  double resolution() const noexcept { return resolution_; }

  /// Renders "[lo,hi]" / "{a,b,c}" for diagnostics.
  std::string to_string() const;

 private:
  Domain() = default;

  ValueKind kind_ = ValueKind::kInt;
  std::int64_t size_ = 0;
  double lo_ = 0.0;          // numeric domains
  double hi_ = 0.0;          // numeric domains
  double resolution_ = 1.0;  // real domains
  std::vector<std::string> categories_;  // categorical domains
};

}  // namespace genas
