#include "event/event.hpp"

#include <sstream>

#include "common/error.hpp"

namespace genas {

Event Event::from_pairs(
    const SchemaPtr& schema,
    const std::vector<std::pair<std::string, Value>>& pairs, Timestamp time) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "event requires a schema");
  const std::size_t n = schema->attribute_count();
  std::vector<DomainIndex> indices(n, -1);
  for (const auto& [name, value] : pairs) {
    const AttributeId id = schema->id_of(name);
    GENAS_REQUIRE(indices[id] < 0, ErrorCode::kInvalidArgument,
                  "attribute '" + name + "' assigned twice in event");
    indices[id] = schema->attribute(id).domain.index_of(value);
  }
  for (AttributeId id = 0; id < n; ++id) {
    GENAS_REQUIRE(indices[id] >= 0, ErrorCode::kInvalidArgument,
                  "event missing value for attribute '" +
                      schema->attribute(id).name + "'");
  }
  return Event(schema, std::move(indices), time);
}

Event Event::from_indices(SchemaPtr schema, std::vector<DomainIndex> indices,
                          Timestamp time) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "event requires a schema");
  GENAS_REQUIRE(indices.size() == schema->attribute_count(),
                ErrorCode::kInvalidArgument,
                "event index vector size does not match schema");
  for (AttributeId id = 0; id < indices.size(); ++id) {
    const auto size = schema->attribute(id).domain.size();
    GENAS_REQUIRE(indices[id] >= 0 && indices[id] < size,
                  ErrorCode::kDomainViolation,
                  "event index out of domain for attribute '" +
                      schema->attribute(id).name + "'");
  }
  return Event(std::move(schema), std::move(indices), time);
}

Value Event::value(AttributeId id) const {
  GENAS_REQUIRE(id < indices_.size(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  return schema_->attribute(id).domain.value_at(indices_[id]);
}

Value Event::value(std::string_view name) const {
  return value(schema_->id_of(name));
}

std::string Event::to_string() const {
  std::ostringstream os;
  os << "event(";
  for (AttributeId id = 0; id < indices_.size(); ++id) {
    if (id > 0) os << "; ";
    os << schema_->attribute(id).name << "=" << value(id).to_string();
  }
  os << ")@" << time_;
  return os.str();
}

}  // namespace genas
