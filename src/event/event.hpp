// GENAS — primitive events.
//
// An event is "the occurrence of a state transition at a certain point in
// time", described as a full assignment of values to the schema's attributes
// (paper §3, Eq. (1)). Internally an event stores the dense domain index per
// attribute; a logical timestamp supports the composite-event detector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/schema.hpp"

namespace genas {

/// Monotonic logical timestamp (broker-assigned sequence number or
/// user-provided clock reading).
using Timestamp = std::int64_t;

/// Fully-specified primitive event over a schema.
class Event {
 public:
  /// Builds an event from (attribute name, value) pairs. Every schema
  /// attribute must be assigned exactly once.
  static Event from_pairs(
      const SchemaPtr& schema,
      const std::vector<std::pair<std::string, Value>>& pairs,
      Timestamp time = 0);

  /// Builds an event directly from per-attribute domain indices (the fast
  /// path used by samplers and workload generators).
  static Event from_indices(SchemaPtr schema, std::vector<DomainIndex> indices,
                            Timestamp time = 0);

  const SchemaPtr& schema() const noexcept { return schema_; }
  Timestamp time() const noexcept { return time_; }
  void set_time(Timestamp t) noexcept { time_ = t; }

  /// Dense index of the value for attribute `id`.
  DomainIndex index(AttributeId id) const noexcept { return indices_[id]; }

  const std::vector<DomainIndex>& indices() const noexcept { return indices_; }

  /// Releases the index storage, leaving this event empty. Lets a decoder
  /// arena recycle the heap allocation across batches (wire::EventArena);
  /// the drained event must not be read again.
  std::vector<DomainIndex> take_indices() noexcept { return std::move(indices_); }

  /// Typed value for attribute `id` (reconstructed from the index).
  Value value(AttributeId id) const;

  /// Typed value by attribute name.
  Value value(std::string_view name) const;

  std::string to_string() const;

 private:
  Event(SchemaPtr schema, std::vector<DomainIndex> indices, Timestamp time)
      : schema_(std::move(schema)), indices_(std::move(indices)), time_(time) {}

  SchemaPtr schema_;
  std::vector<DomainIndex> indices_;
  Timestamp time_ = 0;
};

}  // namespace genas
