// GENAS — typed attribute values.
//
// The public API speaks typed values (integers, reals, category names); all
// internal machinery (trees, distributions) works on dense domain indices.
// Value is a small sum type with total ordering within a kind.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>

namespace genas {

/// Kind of a value / domain. Real-valued attributes are discretized by their
/// domain at a declared resolution, so ValueKind::kReal values are exact
/// multiples of that resolution after round-tripping through a domain.
enum class ValueKind : std::uint8_t { kInt, kReal, kCategory };

std::string_view to_string(ValueKind kind) noexcept;

/// A single typed attribute value.
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  Value(std::int64_t v) : data_(v) {}                     // NOLINT(google-explicit-constructor)
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}   // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}                           // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}           // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}         // NOLINT(google-explicit-constructor)

  ValueKind kind() const noexcept;

  bool is_int() const noexcept { return kind() == ValueKind::kInt; }
  bool is_real() const noexcept { return kind() == ValueKind::kReal; }
  bool is_category() const noexcept { return kind() == ValueKind::kCategory; }

  /// Accessors throw Error{kInvalidArgument} when the kind does not match.
  std::int64_t as_int() const;
  double as_real() const;
  const std::string& as_category() const;

  /// Numeric view: int and real values as double; throws for categories.
  double numeric() const;

  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.data_ == b.data_;
  }

 private:
  std::variant<std::int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace genas
