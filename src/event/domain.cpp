#include "event/domain.hpp"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"

namespace genas {

Domain Domain::integer(std::int64_t lo, std::int64_t hi) {
  GENAS_REQUIRE(lo <= hi, ErrorCode::kInvalidArgument,
                "integer domain requires lo <= hi");
  Domain d;
  d.kind_ = ValueKind::kInt;
  d.lo_ = static_cast<double>(lo);
  d.hi_ = static_cast<double>(hi);
  d.size_ = hi - lo + 1;
  return d;
}

Domain Domain::real(double lo, double hi, double resolution) {
  GENAS_REQUIRE(lo <= hi, ErrorCode::kInvalidArgument,
                "real domain requires lo <= hi");
  GENAS_REQUIRE(resolution > 0.0, ErrorCode::kInvalidArgument,
                "real domain requires a positive resolution");
  Domain d;
  d.kind_ = ValueKind::kReal;
  d.lo_ = lo;
  d.hi_ = hi;
  d.resolution_ = resolution;
  d.size_ = static_cast<std::int64_t>(std::llround((hi - lo) / resolution)) + 1;
  return d;
}

Domain Domain::categorical(std::vector<std::string> categories) {
  GENAS_REQUIRE(!categories.empty(), ErrorCode::kInvalidArgument,
                "categorical domain requires at least one category");
  std::unordered_set<std::string> seen;
  for (const auto& c : categories) {
    GENAS_REQUIRE(seen.insert(c).second, ErrorCode::kInvalidArgument,
                  "duplicate category '" + c + "' in domain");
  }
  Domain d;
  d.kind_ = ValueKind::kCategory;
  d.size_ = static_cast<std::int64_t>(categories.size());
  d.categories_ = std::move(categories);
  return d;
}

bool Domain::contains(const Value& v) const noexcept {
  switch (kind_) {
    case ValueKind::kInt: {
      if (!v.is_int()) return false;
      const auto x = static_cast<double>(v.as_int());
      return x >= lo_ && x <= hi_;
    }
    case ValueKind::kReal: {
      if (!v.is_real() && !v.is_int()) return false;
      const double x = v.numeric();
      return x >= lo_ - resolution_ / 2 && x <= hi_ + resolution_ / 2;
    }
    case ValueKind::kCategory: {
      if (!v.is_category()) return false;
      for (const auto& c : categories_) {
        if (c == v.as_category()) return true;
      }
      return false;
    }
  }
  return false;
}

DomainIndex Domain::index_of(const Value& v) const {
  GENAS_REQUIRE(contains(v), ErrorCode::kDomainViolation,
                "value " + v.to_string() + " outside domain " + to_string());
  switch (kind_) {
    case ValueKind::kInt:
      return v.as_int() - static_cast<std::int64_t>(lo_);
    case ValueKind::kReal:
      return static_cast<DomainIndex>(
          std::llround((v.numeric() - lo_) / resolution_));
    case ValueKind::kCategory: {
      for (std::size_t i = 0; i < categories_.size(); ++i) {
        if (categories_[i] == v.as_category()) {
          return static_cast<DomainIndex>(i);
        }
      }
      break;
    }
  }
  throw_error(ErrorCode::kInternal, "index_of: unreachable");
}

Value Domain::value_at(DomainIndex index) const {
  GENAS_REQUIRE(index >= 0 && index < size_, ErrorCode::kInvalidArgument,
                "domain index " + std::to_string(index) + " out of range for " +
                    to_string());
  switch (kind_) {
    case ValueKind::kInt:
      return Value(static_cast<std::int64_t>(lo_) + index);
    case ValueKind::kReal:
      return Value(lo_ + static_cast<double>(index) * resolution_);
    case ValueKind::kCategory:
      return Value(categories_[static_cast<std::size_t>(index)]);
  }
  throw_error(ErrorCode::kInternal, "value_at: unreachable");
}

std::string Domain::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case ValueKind::kInt:
      os << "int[" << static_cast<std::int64_t>(lo_) << ","
         << static_cast<std::int64_t>(hi_) << "]";
      break;
    case ValueKind::kReal:
      os << "real[" << lo_ << "," << hi_ << " @" << resolution_ << "]";
      break;
    case ValueKind::kCategory: {
      os << '{';
      for (std::size_t i = 0; i < categories_.size(); ++i) {
        if (i > 0) os << ',';
        os << categories_[i];
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

}  // namespace genas
