// GENAS — runtime-definable event schemas.
//
// The paper's prototype is a "generic service: all events, attributes,
// domains, and compare operators can be created and specified at runtime"
// (§4.2). A Schema is the firm attribute set A = {a_1..a_n} with domains
// D_1..D_n shared by events and profiles of one application. Schemas are
// immutable once built and shared via std::shared_ptr, so trees and brokers
// can hold them safely across threads.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "event/domain.hpp"

namespace genas {

/// Position of an attribute within a schema (j-1 for the paper's a_j).
using AttributeId = std::size_t;

/// Named attribute with its domain.
struct Attribute {
  std::string name;
  Domain domain;
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// Immutable ordered attribute set. Build with SchemaBuilder.
class Schema {
 public:
  std::size_t attribute_count() const noexcept { return attributes_.size(); }

  const Attribute& attribute(AttributeId id) const;

  /// Id lookup by name; throws Error{kNotFound} for unknown names.
  AttributeId id_of(std::string_view name) const;

  /// True when an attribute with this name exists.
  bool has_attribute(std::string_view name) const noexcept;

  const std::vector<Attribute>& attributes() const noexcept {
    return attributes_;
  }

  std::string to_string() const;

 private:
  friend class SchemaBuilder;
  Schema() = default;

  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, AttributeId> by_name_;
};

/// Incremental schema construction with validation.
class SchemaBuilder {
 public:
  SchemaBuilder& add(std::string name, Domain domain);

  SchemaBuilder& add_integer(std::string name, std::int64_t lo,
                             std::int64_t hi) {
    return add(std::move(name), Domain::integer(lo, hi));
  }
  SchemaBuilder& add_real(std::string name, double lo, double hi,
                          double resolution) {
    return add(std::move(name), Domain::real(lo, hi, resolution));
  }
  SchemaBuilder& add_categorical(std::string name,
                                 std::vector<std::string> categories) {
    return add(std::move(name), Domain::categorical(std::move(categories)));
  }

  /// Finalizes the schema; the builder may not be reused afterwards.
  SchemaPtr build();

 private:
  std::unique_ptr<Schema> schema_ = std::unique_ptr<Schema>(new Schema());
  bool built_ = false;
};

}  // namespace genas
