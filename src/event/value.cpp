#include "event/value.hpp"

#include <ostream>

#include "common/error.hpp"
#include "common/text.hpp"

namespace genas {

std::string_view to_string(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kInt:      return "int";
    case ValueKind::kReal:     return "real";
    case ValueKind::kCategory: return "category";
  }
  return "unknown";
}

ValueKind Value::kind() const noexcept {
  switch (data_.index()) {
    case 0:  return ValueKind::kInt;
    case 1:  return ValueKind::kReal;
    default: return ValueKind::kCategory;
  }
}

std::int64_t Value::as_int() const {
  GENAS_REQUIRE(is_int(), ErrorCode::kInvalidArgument,
                "value is not an integer: " + to_string());
  return std::get<std::int64_t>(data_);
}

double Value::as_real() const {
  GENAS_REQUIRE(is_real(), ErrorCode::kInvalidArgument,
                "value is not a real: " + to_string());
  return std::get<double>(data_);
}

const std::string& Value::as_category() const {
  GENAS_REQUIRE(is_category(), ErrorCode::kInvalidArgument,
                "value is not a category: " + to_string());
  return std::get<std::string>(data_);
}

double Value::numeric() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  GENAS_REQUIRE(is_real(), ErrorCode::kInvalidArgument,
                "value has no numeric interpretation: " + to_string());
  return std::get<double>(data_);
}

std::string Value::to_string() const {
  switch (kind()) {
    case ValueKind::kInt:
      return std::to_string(std::get<std::int64_t>(data_));
    case ValueKind::kReal:
      return format_double(std::get<double>(data_), 6);
    case ValueKind::kCategory:
      return std::get<std::string>(data_);
  }
  return {};
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.to_string();
}

}  // namespace genas
