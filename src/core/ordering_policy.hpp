// GENAS — ordering policies: the full strategy surface of the paper.
//
// A policy bundles the three independent choices §4 studies — value order
// (natural / V1 / V2 / V3), attribute order (natural / A1 / A2 / A3,
// ascending or descending), and node search strategy (linear / binary /
// interpolation / hash) — and materializes them into a TreeConfig for a
// concrete profile set and event distribution.
#pragma once

#include <optional>
#include <string>

#include "core/selectivity.hpp"
#include "tree/profile_tree.hpp"

namespace genas {

/// Complete filter-ordering strategy.
struct OrderingPolicy {
  ValueOrder value_order = ValueOrder::kNaturalAscending;
  SearchStrategy strategy = SearchStrategy::kLinear;
  /// Attribute reordering; nullopt keeps the schema order.
  std::optional<AttributeMeasure> attribute_measure;
  OrderDirection direction = OrderDirection::kDescending;

  /// Short label such as "V1/linear + A2-desc" for reports.
  std::string label() const;
};

/// Materializes the policy. The event distribution is required whenever the
/// value order (V1/V3) or attribute measure (A2/A3) depends on it; pass the
/// best available estimate otherwise (it is stored for cost accounting).
TreeConfig make_tree_config(const ProfileSet& profiles,
                            const OrderingPolicy& policy,
                            std::optional<JointDistribution> event_distribution);

/// Convenience: build a tree directly from a policy.
ProfileTree build_tree(const ProfileSet& profiles, const OrderingPolicy& policy,
                       std::optional<JointDistribution> event_distribution);

}  // namespace genas
