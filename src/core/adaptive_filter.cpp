#include "core/adaptive_filter.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace genas {

AdaptiveController::AdaptiveController(SchemaPtr schema,
                                       AdaptiveOptions options)
    : schema_(std::move(schema)),
      options_(options),
      estimator_(schema_, options.decay) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "adaptive controller requires a schema");
  GENAS_REQUIRE(options_.drift_threshold >= 0.0, ErrorCode::kInvalidArgument,
                "drift threshold must be non-negative");
}

void AdaptiveController::observe(const Event& event) {
  estimator_.observe(event);
  ++observations_;
}

JointDistribution AdaptiveController::estimate() const {
  return estimator_.estimate_joint(options_.smoothing);
}

double AdaptiveController::drift() const {
  if (!baseline_.has_value() || observations_ == 0) return 0.0;
  double worst = 0.0;
  for (AttributeId id = 0; id < schema_->attribute_count(); ++id) {
    const DiscreteDistribution current =
        estimator_.attribute(id).estimate(options_.smoothing);
    const DiscreteDistribution base = baseline_->marginal(id);
    worst = std::max(worst,
                     DiscreteDistribution::l1_distance(current, base));
  }
  return worst;
}

bool AdaptiveController::should_rebuild() const {
  if (observations_ < options_.min_observations) return false;
  // Before the first optimization only min_observations gates the rebuild;
  // the cooldown throttles subsequent ones.
  if (!baseline_.has_value()) return true;
  if (observations_ - observations_at_rebuild_ < options_.rebuild_cooldown) {
    return false;
  }
  return drift() > options_.drift_threshold;
}

void AdaptiveController::mark_rebuilt(const JointDistribution& baseline) {
  baseline_ = baseline;
  observations_at_rebuild_ = observations_;
  ++rebuilds_;
}

}  // namespace genas
