// GENAS — selectivity measures (the paper's core contribution, §4.1).
//
// Attribute selectivity decides the vertical shape of the tree: attributes
// whose zero-subdomain D_0 is large (many event values no profile accepts)
// should sit near the root so non-matching events are rejected early.
//
//   A1: s(a_j) = d_0(a_j) / d_j                    (structure only)
//   A2: s(a_j) = d_0(a_j) · P_e(D_0(a_j)) / d_j    (event-distribution aware)
//   A3: exhaustive search over attribute permutations minimizing the exact
//       expected cost — O(n! · (2p−1)), "only sensible for applications
//       with stable distributions".
//
// D_0(a) is the set of values accepted by no profile, where a don't-care
// profile accepts every value — hence D_0 = ∅ as soon as one active profile
// leaves the attribute unspecified (this reproduces d_0(a_3) = 0 in the
// paper's Example 3).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "dist/joint.hpp"
#include "profile/profile.hpp"
#include "tree/profile_tree.hpp"

namespace genas {

/// Attribute-selectivity measure.
enum class AttributeMeasure : std::uint8_t { kA1, kA2, kA3 };

std::string_view to_string(AttributeMeasure measure) noexcept;

/// How the computed selectivities translate into a level order.
enum class OrderDirection : std::uint8_t {
  kNatural,     ///< schema order (the "natur." bars of Fig. 6)
  kAscending,   ///< least selective first — the paper's worst case
  kDescending,  ///< most selective first — the proposed ordering
};

std::string_view to_string(OrderDirection direction) noexcept;

/// Per-attribute selectivity summary.
struct AttributeSelectivity {
  AttributeId attribute = 0;
  std::int64_t domain_size = 0;   ///< d_j
  std::int64_t zero_size = 0;     ///< d_0(a_j)
  double zero_probability = 0.0;  ///< P_e(D_0(a_j)); 0 when no distribution
  double selectivity = 0.0;       ///< the measure's value
};

/// Zero-subdomain of one attribute under the active profiles.
IntervalSet zero_subdomain(const ProfileSet& profiles, AttributeId attribute);

/// Computes A1 or A2 for every attribute. A2 requires `event_distribution`.
std::vector<AttributeSelectivity> attribute_selectivities(
    const ProfileSet& profiles, AttributeMeasure measure,
    const JointDistribution* event_distribution = nullptr);

/// Orders attribute ids by the given selectivities and direction.
std::vector<AttributeId> attribute_order(
    const std::vector<AttributeSelectivity>& selectivities,
    OrderDirection direction);

/// Measure A3: exhaustively searches attribute permutations for the one
/// minimizing exact expected operations per event under `joint`, building a
/// tree per permutation with the given value order / strategy. Throws when
/// the schema has more than `max_attributes` attributes (n! blow-up guard).
std::vector<AttributeId> best_attribute_order_exhaustive(
    const ProfileSet& profiles, const JointDistribution& joint,
    ValueOrder value_order, SearchStrategy strategy,
    std::size_t max_attributes = 8);

}  // namespace genas
