#include "core/filter_engine.hpp"

#include "common/error.hpp"
#include "dist/shapes.hpp"

namespace genas {

FilterEngine::FilterEngine(SchemaPtr schema, EngineOptions options)
    : schema_(std::move(schema)),
      options_(std::move(options)),
      profiles_(schema_) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "filter engine requires a schema");
  if (options_.prior.has_value()) {
    GENAS_REQUIRE(options_.prior->schema() == schema_,
                  ErrorCode::kInvalidArgument,
                  "prior distribution schema differs from engine schema");
  }
  if (options_.adaptive.has_value()) {
    adaptive_.emplace(schema_, *options_.adaptive);
  }
}

ProfileId FilterEngine::subscribe(Profile profile) {
  return profiles_.add(std::move(profile));
}

ProfileId FilterEngine::subscribe(std::string_view expression) {
  return subscribe(parse_profile(schema_, expression));
}

void FilterEngine::unsubscribe(ProfileId id) { profiles_.remove(id); }

void FilterEngine::set_priority(ProfileId id, double weight) {
  profiles_.set_weight(id, weight);
}

JointDistribution FilterEngine::effective_distribution() const {
  if (adaptive_.has_value() &&
      adaptive_->observations() >= adaptive_->options().min_observations) {
    return adaptive_->estimate();
  }
  if (options_.prior.has_value()) return *options_.prior;
  std::vector<DiscreteDistribution> marginals;
  marginals.reserve(schema_->attribute_count());
  for (const Attribute& attribute : schema_->attributes()) {
    marginals.push_back(shapes::equal(attribute.domain.size()));
  }
  return JointDistribution::independent(schema_, std::move(marginals));
}

void FilterEngine::rebuild_locked(const JointDistribution& distribution) {
  // Build off to the side, then swap the snapshot pointer in one shot: a
  // caller holding the previous snapshot keeps matching against it.
  auto tree = std::make_shared<const ProfileTree>(
      build_tree(profiles_, options_.policy, distribution));
  auto flat = std::make_shared<const FlatProfileTree>(
      FlatProfileTree::compile(*tree));
  snapshot_ = std::make_shared<const MatchSnapshot>(
      MatchSnapshot{std::move(tree), std::move(flat)});
  ++rebuild_count_;
  if (adaptive_.has_value()) adaptive_->mark_rebuilt(distribution);
}

void FilterEngine::rebuild() { rebuild_locked(effective_distribution()); }

void FilterEngine::ensure_fresh() {
  if (snapshot_ == nullptr ||
      snapshot_->tree->source_version() != profiles_.version()) {
    rebuild();
  }
}

const ProfileTree& FilterEngine::tree() {
  ensure_fresh();
  return *snapshot_->tree;
}

std::shared_ptr<const MatchSnapshot> FilterEngine::snapshot() {
  ensure_fresh();
  return snapshot_;
}

bool FilterEngine::observe_adaptive(const Event& event) {
  if (!adaptive_.has_value()) return false;
  adaptive_->observe(event);
  if (adaptive_->should_rebuild()) {
    rebuild_locked(adaptive_->estimate());
    return true;
  }
  return false;
}

EngineMatch FilterEngine::match(const Event& event) {
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "event schema differs from engine schema");
  ensure_fresh();

  EngineMatch outcome;
  const FlatMatch result = snapshot_->flat->match(event);
  outcome.operations = result.operations;
  outcome.matched.assign(result.matched, result.matched + result.matched_count);
  ++events_matched_;

  outcome.rebuilt = observe_adaptive(event);
  return outcome;
}

EngineBatchMatch FilterEngine::match_batch(std::span<const Event> events,
                                           std::vector<ProfileId>& matched,
                                           std::vector<std::size_t>& offsets) {
  matched.clear();
  offsets.clear();
  offsets.reserve(events.size() + 1);
  offsets.push_back(0);

  EngineBatchMatch outcome;
  if (events.empty()) return outcome;

  for (const Event& event : events) {
    GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                  "event schema differs from engine schema");
  }
  ensure_fresh();

  // One snapshot serves the whole batch; the shared_ptr keeps the posting
  // slabs alive even if the deferred adaptive rebuild below swaps snapshot_.
  const std::shared_ptr<const MatchSnapshot> snapshot = snapshot_;
  for (const Event& event : events) {
    const FlatMatch result = snapshot->flat->match(event);
    outcome.operations += result.operations;
    if (result.matched_count > 0) ++outcome.matched_events;
    matched.insert(matched.end(), result.matched,
                   result.matched + result.matched_count);
    offsets.push_back(matched.size());
  }
  events_matched_ += events.size();

  // The adaptive controller observes every event, but a drift rebuild is
  // deferred to the batch boundary so the batch matches one consistent tree.
  if (adaptive_.has_value()) {
    for (const Event& event : events) adaptive_->observe(event);
    if (adaptive_->should_rebuild()) {
      rebuild_locked(adaptive_->estimate());
      outcome.rebuilt = true;
    }
  }
  return outcome;
}

void FilterEngine::set_policy(OrderingPolicy policy) {
  options_.policy = std::move(policy);
  snapshot_.reset();  // force rebuild on next use
}

}  // namespace genas
