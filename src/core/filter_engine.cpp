#include "core/filter_engine.hpp"

#include "common/error.hpp"
#include "dist/shapes.hpp"

namespace genas {

FilterEngine::FilterEngine(SchemaPtr schema, EngineOptions options)
    : schema_(std::move(schema)),
      options_(std::move(options)),
      profiles_(schema_) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "filter engine requires a schema");
  if (options_.prior.has_value()) {
    GENAS_REQUIRE(options_.prior->schema() == schema_,
                  ErrorCode::kInvalidArgument,
                  "prior distribution schema differs from engine schema");
  }
  if (options_.adaptive.has_value()) {
    adaptive_.emplace(schema_, *options_.adaptive);
  }
}

ProfileId FilterEngine::subscribe(Profile profile) {
  return profiles_.add(std::move(profile));
}

ProfileId FilterEngine::subscribe(std::string_view expression) {
  return subscribe(parse_profile(schema_, expression));
}

void FilterEngine::unsubscribe(ProfileId id) { profiles_.remove(id); }

void FilterEngine::set_priority(ProfileId id, double weight) {
  profiles_.set_weight(id, weight);
}

JointDistribution FilterEngine::effective_distribution() const {
  if (adaptive_.has_value() &&
      adaptive_->observations() >= adaptive_->options().min_observations) {
    return adaptive_->estimate();
  }
  if (options_.prior.has_value()) return *options_.prior;
  std::vector<DiscreteDistribution> marginals;
  marginals.reserve(schema_->attribute_count());
  for (const Attribute& attribute : schema_->attributes()) {
    marginals.push_back(shapes::equal(attribute.domain.size()));
  }
  return JointDistribution::independent(schema_, std::move(marginals));
}

void FilterEngine::rebuild_locked(const JointDistribution& distribution) {
  tree_ = std::make_shared<const ProfileTree>(
      build_tree(profiles_, options_.policy, distribution));
  ++rebuild_count_;
  if (adaptive_.has_value()) adaptive_->mark_rebuilt(distribution);
}

void FilterEngine::rebuild() { rebuild_locked(effective_distribution()); }

void FilterEngine::ensure_fresh() {
  if (tree_ == nullptr || tree_->source_version() != profiles_.version()) {
    rebuild();
  }
}

const ProfileTree& FilterEngine::tree() {
  ensure_fresh();
  return *tree_;
}

EngineMatch FilterEngine::match(const Event& event) {
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "event schema differs from engine schema");
  ensure_fresh();

  EngineMatch outcome;
  const TreeMatch result = tree_->match(event);
  outcome.operations = result.operations;
  if (result.matched != nullptr) outcome.matched = *result.matched;
  ++events_matched_;

  if (adaptive_.has_value()) {
    adaptive_->observe(event);
    if (adaptive_->should_rebuild()) {
      rebuild_locked(adaptive_->estimate());
      outcome.rebuilt = true;
    }
  }
  return outcome;
}

void FilterEngine::set_policy(OrderingPolicy policy) {
  options_.policy = std::move(policy);
  tree_.reset();  // force rebuild on next use
}

}  // namespace genas
