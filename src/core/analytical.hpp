// GENAS — the closed-form single-attribute response-time model (Eq. 2).
//
// R(a, P_p, P_e) = E(X) + R_0(P_e, x_0),  E(X) = Σ x_o(i) P_e(x_o(i))
//
// This standalone model works directly on an explicit cell structure (the
// (≤2p−1) subranges W plus zero cells) without building a tree. It exists
// for three reasons: it reproduces the paper's worked Example 2 exactly
// (tests pin those numbers), it powers the formal comparison "event-based
// order is faster than binary search iff E(X) < log2(2p−1)" (§4.3), and it
// documents the cost accounting the tree engine implements per node.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/profile_tree.hpp"
#include "tree/search.hpp"

namespace genas {

/// One subrange of the single-attribute model.
struct ModelCell {
  Interval interval;       ///< elementary subrange (index space)
  double event_mass = 0.0; ///< P_e of the subrange
  double profile_mass = 0.0;  ///< P_p of the subrange (0 for zero cells)
  bool referenced = false; ///< true for W-cells, false for zero cells (D_0)
};

/// Decomposed response time of one attribute.
struct ResponseTime {
  double expectation = 0.0;  ///< E(X): expected ops of referenced events
  double r0 = 0.0;           ///< R_0(P_e, x_0): expected ops of zero events
  double total() const noexcept { return expectation + r0; }
};

/// Evaluates Eq. 2 for the cells under a value order and search strategy.
/// Cells must be contiguous (partition of the attribute's index space).
ResponseTime response_time(const std::vector<ModelCell>& cells,
                           ValueOrder order, SearchStrategy strategy);

/// The paper's binary-search break-even bound log2(2p−1): event-probability
/// order beats binary search when E(X) < binary_threshold(p).
double binary_threshold(std::size_t profile_count) noexcept;

}  // namespace genas
