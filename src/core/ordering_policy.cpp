#include "core/ordering_policy.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace genas {

std::string OrderingPolicy::label() const {
  std::ostringstream os;
  os << to_string(value_order) << '/' << to_string(strategy);
  if (attribute_measure.has_value()) {
    os << " + " << to_string(*attribute_measure) << '-'
       << to_string(direction);
  }
  return os.str();
}

TreeConfig make_tree_config(
    const ProfileSet& profiles, const OrderingPolicy& policy,
    std::optional<JointDistribution> event_distribution) {
  const bool needs_dist =
      needs_event_distribution(policy.value_order) ||
      (policy.attribute_measure.has_value() &&
       *policy.attribute_measure != AttributeMeasure::kA1);
  GENAS_REQUIRE(!needs_dist || event_distribution.has_value(),
                ErrorCode::kInvalidArgument,
                "policy '" + policy.label() + "' requires an event distribution");

  TreeConfig config;
  config.value_order = policy.value_order;
  config.strategy = policy.strategy;

  if (policy.attribute_measure.has_value()) {
    switch (*policy.attribute_measure) {
      case AttributeMeasure::kA1:
      case AttributeMeasure::kA2: {
        const auto selectivities = attribute_selectivities(
            profiles, *policy.attribute_measure,
            event_distribution.has_value() ? &*event_distribution : nullptr);
        config.attribute_order =
            attribute_order(selectivities, policy.direction);
        break;
      }
      case AttributeMeasure::kA3: {
        config.attribute_order = best_attribute_order_exhaustive(
            profiles, *event_distribution, policy.value_order,
            policy.strategy);
        // A3 always optimizes; ascending direction inverts the result to
        // expose the worst case (used by the Fig. 6 worst-case bars).
        if (policy.direction == OrderDirection::kAscending) {
          std::reverse(config.attribute_order.begin(),
                       config.attribute_order.end());
        }
        break;
      }
    }
  }
  config.event_distribution = std::move(event_distribution);
  return config;
}

ProfileTree build_tree(const ProfileSet& profiles, const OrderingPolicy& policy,
                       std::optional<JointDistribution> event_distribution) {
  return ProfileTree::build(
      profiles,
      make_tree_config(profiles, policy, std::move(event_distribution)));
}

}  // namespace genas
