// GENAS — FilterEngine: the library's primary facade.
//
// Owns the profile set and the current profile tree, applies an
// OrderingPolicy, and optionally runs the adaptive loop: observe events,
// detect distribution drift, restructure the tree. The engine rebuilds
// lazily — subscription changes mark the tree stale and the next match (or
// an explicit rebuild()) refreshes it.
//
// Thread-safety: FilterEngine is single-threaded by design; the ENS broker
// (src/ens/broker.hpp) adds synchronization and atomic tree swapping on top.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/adaptive_filter.hpp"
#include "core/ordering_policy.hpp"
#include "profile/parser.hpp"
#include "tree/profile_tree.hpp"

namespace genas {

/// Engine construction options.
struct EngineOptions {
  OrderingPolicy policy;
  /// Prior event distribution (e.g., known sensor characteristics). Used
  /// until the adaptive estimate (if enabled) takes over.
  std::optional<JointDistribution> prior;
  /// Adaptive restructuring; disabled when nullopt.
  std::optional<AdaptiveOptions> adaptive;
};

/// Outcome of matching one event through the engine.
struct EngineMatch {
  std::vector<ProfileId> matched;  ///< owned copy, safe across rebuilds
  std::uint64_t operations = 0;
  bool rebuilt = false;  ///< this match triggered an adaptive rebuild
};

/// High-level distribution-based filter (the paper's "adaptive filter
/// component", §1).
class FilterEngine {
 public:
  explicit FilterEngine(SchemaPtr schema, EngineOptions options = {});

  const SchemaPtr& schema() const noexcept { return schema_; }
  const ProfileSet& profiles() const noexcept { return profiles_; }

  /// Registers a profile; the tree refreshes lazily.
  ProfileId subscribe(Profile profile);
  /// Parses and registers a profile expression ("temp >= 35 && hum = 90").
  ProfileId subscribe(std::string_view expression);
  void unsubscribe(ProfileId id);

  /// Sets a subscription's priority weight (V2/V3 value ordering scans the
  /// subranges of heavier profiles earlier). The tree refreshes lazily.
  void set_priority(ProfileId id, double weight);

  /// Matches an event: refreshes a stale tree, feeds the adaptive
  /// controller, and rebuilds when drift demands it.
  EngineMatch match(const Event& event);

  /// Forces an immediate rebuild against the best-known distribution.
  void rebuild();

  /// Replaces the ordering policy (takes effect on the next rebuild).
  void set_policy(OrderingPolicy policy);
  const OrderingPolicy& policy() const noexcept { return options_.policy; }

  /// Distribution the engine would build against right now: the adaptive
  /// estimate when available, else the prior, else uniform.
  JointDistribution effective_distribution() const;

  /// Current tree (rebuilds first if stale).
  const ProfileTree& tree();

  std::uint64_t rebuild_count() const noexcept { return rebuild_count_; }
  std::uint64_t events_matched() const noexcept { return events_matched_; }

  /// Adaptive controller, when enabled (for diagnostics).
  const AdaptiveController* adaptive() const noexcept {
    return adaptive_ ? &*adaptive_ : nullptr;
  }

 private:
  void ensure_fresh();
  void rebuild_locked(const JointDistribution& distribution);

  SchemaPtr schema_;
  EngineOptions options_;
  ProfileSet profiles_;
  std::optional<AdaptiveController> adaptive_;
  std::shared_ptr<const ProfileTree> tree_;
  std::uint64_t rebuild_count_ = 0;
  std::uint64_t events_matched_ = 0;
};

}  // namespace genas
