// GENAS — FilterEngine: the library's primary facade.
//
// Owns the profile set and the current profile tree, applies an
// OrderingPolicy, and optionally runs the adaptive loop: observe events,
// detect distribution drift, restructure the tree. The engine rebuilds
// lazily — subscription changes mark the tree stale and the next match (or
// an explicit rebuild()) refreshes it.
//
// Every rebuild produces an immutable MatchSnapshot: the node-form tree
// (build / expected-cost / dump representation) plus its FlatProfileTree
// compilation (the cache-friendly hot match path). snapshot() hands the
// current one out as a shared_ptr, so a caller can keep matching against a
// consistent tree while the engine mutates and rebuilds off to the side —
// this is what the broker's lock-free publish path is built on.
//
// Thread-safety: FilterEngine itself is single-threaded by design (callers
// serialize mutations); but a MatchSnapshot, once obtained, is immutable and
// safe to match against from any number of threads. The ENS broker
// (src/ens/broker.hpp) layers the mutation mutex and atomic snapshot
// publication on top.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/adaptive_filter.hpp"
#include "core/ordering_policy.hpp"
#include "profile/parser.hpp"
#include "tree/flat_tree.hpp"
#include "tree/profile_tree.hpp"

namespace genas {

/// Engine construction options.
struct EngineOptions {
  OrderingPolicy policy;
  /// Prior event distribution (e.g., known sensor characteristics). Used
  /// until the adaptive estimate (if enabled) takes over.
  std::optional<JointDistribution> prior;
  /// Adaptive restructuring; disabled when nullopt.
  std::optional<AdaptiveOptions> adaptive;
};

/// Outcome of matching one event through the engine.
struct EngineMatch {
  std::vector<ProfileId> matched;  ///< owned copy, safe across rebuilds
  std::uint64_t operations = 0;
  bool rebuilt = false;  ///< this match triggered an adaptive rebuild
};

/// Aggregate outcome of matching a batch of events (match_batch).
struct EngineBatchMatch {
  std::size_t matched_events = 0;  ///< events that matched ≥ 1 profile
  std::uint64_t operations = 0;
  bool rebuilt = false;  ///< the batch triggered an adaptive rebuild
};

/// Immutable (tree, flat tree) pair produced by one rebuild. Matching
/// against it is thread-safe and allocation-free; `flat->match()` results
/// point into the snapshot, so hold the shared_ptr while using them.
struct MatchSnapshot {
  std::shared_ptr<const ProfileTree> tree;
  std::shared_ptr<const FlatProfileTree> flat;
};

/// High-level distribution-based filter (the paper's "adaptive filter
/// component", §1).
class FilterEngine {
 public:
  explicit FilterEngine(SchemaPtr schema, EngineOptions options = {});

  const SchemaPtr& schema() const noexcept { return schema_; }
  const ProfileSet& profiles() const noexcept { return profiles_; }

  /// Registers a profile; the tree refreshes lazily.
  ProfileId subscribe(Profile profile);
  /// Parses and registers a profile expression ("temp >= 35 && hum = 90").
  ProfileId subscribe(std::string_view expression);
  void unsubscribe(ProfileId id);

  /// Sets a subscription's priority weight (V2/V3 value ordering scans the
  /// subranges of heavier profiles earlier). The tree refreshes lazily.
  void set_priority(ProfileId id, double weight);

  /// Matches an event: refreshes a stale tree, feeds the adaptive
  /// controller, and rebuilds when drift demands it.
  EngineMatch match(const Event& event);

  /// Matches a batch of events against one snapshot acquisition. Matched
  /// profile ids are appended CSR-style into caller-owned buffers that are
  /// cleared and reused across calls (no per-event allocation once their
  /// capacity is warm): after the call, the ids matched by events[i] are
  /// matched[offsets[i] .. offsets[i+1]). The adaptive controller observes
  /// every event, but a drift rebuild is deferred to the end of the batch.
  EngineBatchMatch match_batch(std::span<const Event> events,
                               std::vector<ProfileId>& matched,
                               std::vector<std::size_t>& offsets);

  /// Forces an immediate rebuild against the best-known distribution.
  void rebuild();

  /// Replaces the ordering policy (takes effect on the next rebuild).
  void set_policy(OrderingPolicy policy);
  const OrderingPolicy& policy() const noexcept { return options_.policy; }

  /// Distribution the engine would build against right now: the adaptive
  /// estimate when available, else the prior, else uniform.
  JointDistribution effective_distribution() const;

  /// Current tree (rebuilds first if stale).
  const ProfileTree& tree();

  /// Current immutable snapshot (rebuilds first if stale). Never null. The
  /// caller may match against it concurrently with engine mutations; it
  /// simply keeps seeing the profile set as of this call.
  std::shared_ptr<const MatchSnapshot> snapshot();

  std::uint64_t rebuild_count() const noexcept { return rebuild_count_; }
  std::uint64_t events_matched() const noexcept { return events_matched_; }

  /// Adaptive controller, when enabled (for diagnostics).
  const AdaptiveController* adaptive() const noexcept {
    return adaptive_ ? &*adaptive_ : nullptr;
  }

  /// True when the adaptive loop is enabled — matching then mutates the
  /// drift estimator, so callers that share the engine across threads must
  /// serialize match() as well (the broker checks exactly this).
  bool adaptive_enabled() const noexcept { return adaptive_.has_value(); }

 private:
  void ensure_fresh();
  void rebuild_locked(const JointDistribution& distribution);
  /// Feeds one event to the adaptive controller; returns true when drift
  /// triggered a rebuild.
  bool observe_adaptive(const Event& event);

  SchemaPtr schema_;
  EngineOptions options_;
  ProfileSet profiles_;
  std::optional<AdaptiveController> adaptive_;
  std::shared_ptr<const MatchSnapshot> snapshot_;
  std::uint64_t rebuild_count_ = 0;
  std::uint64_t events_matched_ = 0;
};

}  // namespace genas
