#include "core/analytical.hpp"

#include <cmath>

#include "common/error.hpp"

namespace genas {

ResponseTime response_time(const std::vector<ModelCell>& cells,
                           ValueOrder order, SearchStrategy strategy) {
  GENAS_REQUIRE(!cells.empty(), ErrorCode::kInvalidArgument,
                "response_time requires at least one cell");

  CellLayout layout;
  layout.cells.reserve(cells.size());
  layout.is_edge.reserve(cells.size());
  layout.order_key.reserve(cells.size());
  for (const ModelCell& cell : cells) {
    layout.cells.push_back(cell.interval);
    layout.is_edge.push_back(cell.referenced);
    switch (order) {
      case ValueOrder::kNaturalAscending:
        layout.order_key.push_back(0.0);
        break;
      case ValueOrder::kNaturalDescending:
        layout.order_key.push_back(static_cast<double>(cell.interval.lo));
        break;
      case ValueOrder::kEventProbability:
        layout.order_key.push_back(cell.event_mass);
        break;
      case ValueOrder::kProfileProbability:
        layout.order_key.push_back(cell.profile_mass);
        break;
      case ValueOrder::kCombinedProbability:
        layout.order_key.push_back(cell.event_mass * cell.profile_mass);
        break;
    }
  }

  const CellCosts costs = plan_costs(layout, strategy);
  ResponseTime rt;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double contribution =
        cells[i].event_mass * static_cast<double>(costs.cost[i]);
    if (cells[i].referenced) {
      rt.expectation += contribution;
    } else {
      rt.r0 += contribution;
    }
  }
  return rt;
}

double binary_threshold(std::size_t profile_count) noexcept {
  if (profile_count == 0) return 0.0;
  return std::log2(static_cast<double>(2 * profile_count - 1));
}

}  // namespace genas
