#include "core/selectivity.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "tree/expected_cost.hpp"

namespace genas {

std::string_view to_string(AttributeMeasure measure) noexcept {
  switch (measure) {
    case AttributeMeasure::kA1: return "A1";
    case AttributeMeasure::kA2: return "A2";
    case AttributeMeasure::kA3: return "A3";
  }
  return "?";
}

std::string_view to_string(OrderDirection direction) noexcept {
  switch (direction) {
    case OrderDirection::kNatural:    return "natural";
    case OrderDirection::kAscending:  return "ascending";
    case OrderDirection::kDescending: return "descending";
  }
  return "?";
}

IntervalSet zero_subdomain(const ProfileSet& profiles, AttributeId attribute) {
  const Domain& domain = profiles.schema()->attribute(attribute).domain;
  const Interval full = domain.full();

  // With no profiles at all, every value is unreferenced.
  if (profiles.active_count() == 0) return IntervalSet::single(full);

  IntervalSet referenced;
  for (const ProfileId id : profiles.active_ids()) {
    const Predicate* predicate = profiles.profile(id).predicate(attribute);
    if (predicate == nullptr) {
      // A don't-care profile accepts every value: D_0 collapses to empty
      // (no event can be rejected early on this attribute).
      return IntervalSet::empty();
    }
    referenced = referenced.unite(predicate->accepted());
    if (referenced.covers(full)) return IntervalSet::empty();
  }
  return referenced.complement(full);
}

std::vector<AttributeSelectivity> attribute_selectivities(
    const ProfileSet& profiles, AttributeMeasure measure,
    const JointDistribution* event_distribution) {
  GENAS_REQUIRE(measure != AttributeMeasure::kA3, ErrorCode::kInvalidArgument,
                "A3 is a search, use best_attribute_order_exhaustive");
  GENAS_REQUIRE(
      measure == AttributeMeasure::kA1 || event_distribution != nullptr,
      ErrorCode::kInvalidArgument, "measure A2 requires an event distribution");

  const Schema& schema = *profiles.schema();
  std::vector<AttributeSelectivity> out;
  out.reserve(schema.attribute_count());
  for (AttributeId id = 0; id < schema.attribute_count(); ++id) {
    AttributeSelectivity s;
    s.attribute = id;
    s.domain_size = schema.attribute(id).domain.size();
    const IntervalSet zero = zero_subdomain(profiles, id);
    s.zero_size = zero.size();
    if (event_distribution != nullptr) {
      s.zero_probability = event_distribution->marginal(id).mass(zero);
    }
    const double ratio =
        static_cast<double>(s.zero_size) / static_cast<double>(s.domain_size);
    s.selectivity =
        measure == AttributeMeasure::kA1 ? ratio : ratio * s.zero_probability;
    out.push_back(s);
  }
  return out;
}

std::vector<AttributeId> attribute_order(
    const std::vector<AttributeSelectivity>& selectivities,
    OrderDirection direction) {
  std::vector<AttributeId> order(selectivities.size());
  std::iota(order.begin(), order.end(), 0);
  if (direction == OrderDirection::kNatural) return order;

  // Stable sort keeps schema order among equal selectivities, matching the
  // paper's "order of values with equal selectivity is arbitrary".
  std::stable_sort(order.begin(), order.end(),
                   [&](AttributeId a, AttributeId b) {
                     const double sa = selectivities[a].selectivity;
                     const double sb = selectivities[b].selectivity;
                     return direction == OrderDirection::kDescending ? sa > sb
                                                                     : sa < sb;
                   });
  return order;
}

std::vector<AttributeId> best_attribute_order_exhaustive(
    const ProfileSet& profiles, const JointDistribution& joint,
    ValueOrder value_order, SearchStrategy strategy,
    std::size_t max_attributes) {
  const std::size_t n = profiles.schema()->attribute_count();
  GENAS_REQUIRE(n <= max_attributes, ErrorCode::kInvalidArgument,
                "A3 exhaustive search limited to " +
                    std::to_string(max_attributes) + " attributes (n! cost)");

  std::vector<AttributeId> permutation(n);
  std::iota(permutation.begin(), permutation.end(), 0);
  std::vector<AttributeId> best = permutation;
  double best_cost = std::numeric_limits<double>::infinity();

  do {
    TreeConfig config;
    config.attribute_order = permutation;
    config.value_order = value_order;
    config.strategy = strategy;
    config.event_distribution = joint;
    const ProfileTree tree = ProfileTree::build(profiles, std::move(config));
    const double cost = expected_cost(tree, joint).ops_per_event;
    if (cost < best_cost) {
      best_cost = cost;
      best = permutation;
    }
  } while (std::next_permutation(permutation.begin(), permutation.end()));
  return best;
}

}  // namespace genas
