// GENAS — the adaptive filter component (paper §1, §5).
//
// "The algorithm can either work based on predefined distributions for the
// observed events, or it has to maintain a history of events in order to
// determine the event distribution." The AdaptiveController maintains that
// history (decayed per-attribute histograms), remembers the distribution the
// current tree was optimized for, and signals a rebuild when the observed
// distribution has drifted past a threshold — with a cooldown so bursty
// noise cannot thrash the tree. The paper notes event-order selectivity "is
// a fragile measure, not robust to changes in the distributions"; the drift
// threshold + cooldown are exactly the stability guard that observation
// calls for.
#pragma once

#include <cstdint>
#include <optional>

#include "dist/estimator.hpp"
#include "dist/joint.hpp"

namespace genas {

/// Tuning of the adaptive rebuild loop.
struct AdaptiveOptions {
  /// Rebuild when max-over-attributes L1(baseline marginal, estimate) grows
  /// past this (L1 ∈ [0,2]).
  double drift_threshold = 0.25;
  /// Observations required before the first adaptive rebuild.
  std::size_t min_observations = 500;
  /// Minimum observations between consecutive rebuilds.
  std::size_t rebuild_cooldown = 500;
  /// Per-observation decay of the history (1.0 = never forget).
  double decay = 1.0;
  /// Laplace smoothing of the estimate.
  double smoothing = 0.5;
};

/// Watches the event stream and decides when the tree should be rebuilt.
class AdaptiveController {
 public:
  AdaptiveController(SchemaPtr schema, AdaptiveOptions options);

  /// Folds one event into the history.
  void observe(const Event& event);

  /// Current independent estimate of the event distribution.
  JointDistribution estimate() const;

  /// Max-over-attributes L1 distance between the estimate and the baseline
  /// the current tree was built for; 0 before any baseline is set.
  double drift() const;

  /// True when drift exceeds the threshold and enough observations have
  /// accumulated since the last rebuild.
  bool should_rebuild() const;

  /// Records that the tree was rebuilt against `baseline`.
  void mark_rebuilt(const JointDistribution& baseline);

  std::uint64_t observations() const noexcept { return observations_; }
  std::uint64_t rebuilds() const noexcept { return rebuilds_; }
  const AdaptiveOptions& options() const noexcept { return options_; }

 private:
  SchemaPtr schema_;
  AdaptiveOptions options_;
  SchemaEstimator estimator_;
  std::optional<JointDistribution> baseline_;
  std::uint64_t observations_ = 0;
  std::uint64_t observations_at_rebuild_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace genas
