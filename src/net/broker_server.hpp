// GENAS — broker server mode: the event notification service on a TCP port.
//
// BrokerServer accepts client connections on a loopback listener and maps
// decoded wire frames onto the service API — either a standalone
// ens::Broker or one node of a running mesh::MeshNetwork (so a socket
// client participates in distributed routing exactly like a local
// subscriber at that node). Deliveries and composite firings stream back to
// the owning client as kDelivery / kCompositeFiring frames.
//
// Protocol (one TCP connection per client, frames from src/wire):
//   server -> client   kSchema            handshake: the service schema;
//                                         the client decodes everything
//                                         against it
//   client -> server   kSubscribe(key, profile)
//                      kUnsubscribe(key)
//                      kCompositeSubscribe(key, expr)
//                      kCompositeUnsubscribe(key)
//                      kEvent             publish at the served broker/node
//                      kFlush(token)      barrier (see below)
//                      kHello(session)    open/resume an at-least-once
//                                         session (reconnect-mode clients)
//                      kLinkFrame(seq, kEvent)
//                                         sequenced publish: dropped when
//                                         seq is under the session's
//                                         watermark (replay dedup), else
//                                         published with a dedup token
//                                         mixed from (session, seq)
//   server -> client   kDelivery(key, event)
//                      kCompositeFiring(key, time)
//                      kFlushDone(token)
//                      kHelloAck(resumed, session, publish watermark)
//
// Keys are chosen by the client (any uint64 it has not used on this
// connection); the server maps them onto service-side subscription ids.
// Reusing a live key, or any frame type not listed above, is a protocol
// error: the connection is closed and the error recorded.
//
// Flush barrier: frames on a connection are processed in order, so when the
// server reaches a kFlush it has fully processed every earlier frame of
// that client. It then quiesces the service (mesh mode: wait_idle), drains
// buffered composite instants (flush_composites — service-wide, like the
// broker API it calls), and replies kFlushDone. Deliveries triggered by the
// client's own earlier publishes are written before the reply, so a client
// that reads until the matching kFlushDone has observed all of them.
// Deliveries caused by *other* clients' publishes are asynchronous, as in
// any distributed pub/sub.
//
// Client lifecycle: when a connection ends — cleanly, by abrupt disconnect,
// or mid-frame — the server retracts everything the client registered
// exactly once: plain subscriptions unsubscribe, composite subscriptions
// retract their refcounted decomposed leaves (broker dedup and, in mesh
// mode, the per-link routing entries they installed). A delivery that was
// in flight during the teardown is dropped, never misdirected.
//
// Threading: one accept thread plus one handler thread per live
// connection. Delivery callbacks run on the publishing thread (broker
// mode) or a mesh worker (mesh mode) and perform a bounded-time socket
// write; a client that stalls past the write timeout is disconnected
// rather than allowed to wedge the service.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ens/broker.hpp"
#include "mesh/mesh.hpp"
#include "net/socket_channel.hpp"
#include "obs/metrics.hpp"

namespace genas::net {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  SocketTimeouts timeouts{};
  /// Accept-loop poll slice; also bounds stop() latency.
  std::chrono::milliseconds accept_poll{100};
  /// When non-negative, a client that does not start a frame within this
  /// bound is disconnected (half-open and slow-loris defense; a mid-frame
  /// stall is already bounded by timeouts.read). Use only where clients
  /// are expected to keep traffic (or flush heartbeats) flowing: an idle
  /// but healthy subscriber trips it too. Negative (default) never evicts.
  std::chrono::milliseconds client_idle_timeout{-1};
  /// Resume-session registry bound; the oldest session falls out first.
  std::size_t max_sessions = 1024;
  /// Deliveries staged into one kDeliveryBatch frame before it goes out.
  /// The stage also flushes at the end of every publish (broker drain
  /// hook) and before any non-delivery frame, so batching never delays a
  /// notification past the publish that produced it or reorders it against
  /// a flush barrier. 1 = every delivery rides its own legacy kDelivery
  /// frame (the pre-batching wire traffic, byte for byte).
  std::size_t delivery_batch_max = 64;
};

class BrokerServer {
 public:
  /// Serves a standalone broker. The broker must outlive the server.
  BrokerServer(Broker& broker, ServerOptions options = {});
  /// Serves node `node` of a started mesh: client subscriptions propagate
  /// through the mesh with covering, publishes enter at that node. The
  /// mesh must outlive the server and stay running while it serves.
  BrokerServer(mesh::MeshNetwork& mesh, NodeId node,
               ServerOptions options = {});
  ~BrokerServer();

  BrokerServer(const BrokerServer&) = delete;
  BrokerServer& operator=(const BrokerServer&) = delete;

  /// The bound port (valid immediately after construction).
  std::uint16_t port() const noexcept;

  /// Starts the accept loop. Throws Error{kState} if already started.
  void start();

  /// Stops accepting, disconnects every client (running their lifecycle
  /// cleanup), and joins all threads. Idempotent; implied by destruction.
  void stop();

  /// Severs every live connection (lifecycle cleanup runs as usual) while
  /// the listener keeps accepting — a deterministic "link cut" for fault
  /// drills. Reconnect-mode clients redial and resume their sessions.
  void disconnect_all();

  std::size_t active_connections() const;
  std::uint64_t connections_accepted() const noexcept;
  /// Sequenced publishes dropped as session duplicates (replays the
  /// watermark already covered).
  std::uint64_t duplicate_publishes() const noexcept;

  /// Merged observability snapshot: the server's own registry
  /// (genas_server_* connection/frame/byte/error counters, flush-barrier
  /// latency) plus the served broker's registry — or, in mesh mode, the
  /// whole mesh's stats_snapshot(). This is also what a kStatsRequest
  /// frame returns to a remote scraper.
  obs::StatsSnapshot stats_snapshot() const;
  /// The server-level registry (for tests and local scraping).
  obs::Registry& metrics() const noexcept;

  /// First internal/protocol error observed (empty when healthy). Client
  /// disconnects are normal lifecycle, not errors.
  std::string first_error() const;

 private:
  struct Connection;
  struct Impl;

  void run_accept_loop();
  void run_connection(std::shared_ptr<Connection> connection);
  void cleanup_connection(Connection& connection);
  void record_error(const std::string& what);
  void reap_finished_locked();

  std::unique_ptr<Impl> impl_;
};

}  // namespace genas::net
