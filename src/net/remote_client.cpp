#include "net/remote_client.hpp"

#include <utility>
#include <variant>

#include "common/error.hpp"
#include "ens/composite.hpp"
#include "profile/parser.hpp"
#include "wire/codec.hpp"

namespace genas::net {

RemoteBrokerClient::RemoteBrokerClient(const std::string& host,
                                       std::uint16_t port,
                                       SocketTimeouts timeouts)
    : channel_(SocketChannel::connect_to(host, port, timeouts)) {
  // Handshake: the first frame must be the service schema; everything the
  // client encodes or decodes afterwards validates against it.
  std::optional<std::vector<std::uint8_t>> frame =
      channel_.read_frame(timeouts.read);
  GENAS_REQUIRE(frame.has_value(), ErrorCode::kState,
                "remote broker: server closed before the schema handshake");
  wire::Message message = wire::decode_message(*frame, nullptr);
  auto* schema_msg = std::get_if<wire::SchemaMsg>(&message);
  GENAS_REQUIRE(schema_msg != nullptr, ErrorCode::kState,
                "remote broker: expected a schema handshake frame");
  schema_ = schema_msg->schema;
  connected_.store(true);
  reader_ = std::thread([this] { run_reader(); });
}

RemoteBrokerClient::~RemoteBrokerClient() { close(); }

void RemoteBrokerClient::close() {
  if (closing_.exchange(true)) {
    if (reader_.joinable()) reader_.join();
    return;
  }
  connected_.store(false);
  channel_.shutdown();  // wakes the reader's blocked read with EOF
  if (reader_.joinable()) reader_.join();
  channel_.close();
  flush_cv_.notify_all();
}

void RemoteBrokerClient::fail(const std::string& why) {
  {
    const std::scoped_lock lock(state_mutex_);
    if (last_error_.empty()) last_error_ = why;
  }
  connected_.store(false);
  channel_.shutdown();
  flush_cv_.notify_all();
}

std::string RemoteBrokerClient::last_error() const {
  const std::scoped_lock lock(state_mutex_);
  return last_error_;
}

void RemoteBrokerClient::send_frame(const std::vector<std::uint8_t>& frame) {
  GENAS_REQUIRE(connected_.load(), ErrorCode::kState,
                "remote broker: connection is down" +
                    (last_error().empty() ? "" : " (" + last_error() + ")"));
  const std::scoped_lock lock(write_mutex_);
  try {
    channel_.write_frame(frame);
  } catch (const std::exception& e) {
    fail(e.what());
    throw;
  }
}

SubscriptionId RemoteBrokerClient::subscribe(Profile profile,
                                             NotificationCallback callback) {
  GENAS_REQUIRE(profile.schema() == schema_, ErrorCode::kInvalidArgument,
                "remote broker: profile schema differs from service schema");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "remote broker: subscription requires a callback");
  const SubscriptionId key = next_key_.fetch_add(1, std::memory_order_relaxed);
  {
    // Register before sending: a delivery can arrive the moment the server
    // installs the subscription.
    const std::scoped_lock lock(state_mutex_);
    callbacks_.emplace(key, std::make_shared<const NotificationCallback>(
                                std::move(callback)));
  }
  try {
    send_frame(wire::frame_subscribe(key, profile));
  } catch (...) {
    const std::scoped_lock lock(state_mutex_);
    callbacks_.erase(key);
    throw;
  }
  return key;
}

SubscriptionId RemoteBrokerClient::subscribe(std::string_view expression,
                                             NotificationCallback callback) {
  return subscribe(parse_profile(schema_, expression), std::move(callback));
}

void RemoteBrokerClient::unsubscribe(SubscriptionId id) {
  {
    const std::scoped_lock lock(state_mutex_);
    GENAS_REQUIRE(callbacks_.erase(id) == 1, ErrorCode::kNotFound,
                  "remote broker: unknown subscription " + std::to_string(id));
  }
  send_frame(wire::frame_unsubscribe(id));
}

SubscriptionId RemoteBrokerClient::subscribe_composite(
    CompositeExprPtr expression, CompositeCallback callback) {
  GENAS_REQUIRE(expression != nullptr, ErrorCode::kInvalidArgument,
                "remote broker: composite subscription needs an expression");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "remote broker: subscription requires a callback");
  const SubscriptionId key = next_key_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(state_mutex_);
    composite_callbacks_.emplace(
        key, std::make_shared<const CompositeCallback>(std::move(callback)));
  }
  try {
    send_frame(wire::frame_composite_subscribe(key, *expression));
  } catch (...) {
    const std::scoped_lock lock(state_mutex_);
    composite_callbacks_.erase(key);
    throw;
  }
  return key;
}

SubscriptionId RemoteBrokerClient::subscribe_composite(
    std::string_view expression, CompositeCallback callback) {
  return subscribe_composite(parse_composite(schema_, expression),
                             std::move(callback));
}

void RemoteBrokerClient::unsubscribe_composite(SubscriptionId id) {
  {
    const std::scoped_lock lock(state_mutex_);
    GENAS_REQUIRE(composite_callbacks_.erase(id) == 1, ErrorCode::kNotFound,
                  "remote broker: unknown composite subscription " +
                      std::to_string(id));
  }
  send_frame(wire::frame_composite_unsubscribe(id));
}

void RemoteBrokerClient::publish(const Event& event) {
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "remote broker: event schema differs from service schema");
  send_frame(wire::frame_event(event));
}

void RemoteBrokerClient::publish(std::string_view event_text, Timestamp time) {
  publish(parse_event(schema_, event_text, time));
}

void RemoteBrokerClient::flush() {
  const std::uint64_t token =
      next_flush_token_.fetch_add(1, std::memory_order_relaxed);
  send_frame(wire::frame_flush(token));
  std::unique_lock<std::mutex> lock(state_mutex_);
  flush_cv_.wait(lock, [&] {
    return flush_acked_ >= token || !connected_.load();
  });
  if (flush_acked_ < token) {
    throw_error(ErrorCode::kState,
                "remote broker: connection dropped during flush" +
                    (last_error_.empty() ? "" : " (" + last_error_ + ")"));
  }
}

void RemoteBrokerClient::run_reader() {
  try {
    for (;;) {
      std::optional<std::vector<std::uint8_t>> frame = channel_.read_frame();
      if (!frame) {
        if (!closing_.load()) fail("remote broker: server closed the stream");
        return;
      }
      wire::Message message = wire::decode_message(*frame, schema_);

      if (auto* delivery = std::get_if<wire::DeliveryMsg>(&message)) {
        std::shared_ptr<const NotificationCallback> callback;
        {
          const std::scoped_lock lock(state_mutex_);
          const auto it = callbacks_.find(delivery->key);
          if (it != callbacks_.end()) callback = it->second;
          // Unknown key: the delivery raced its own unsubscribe — drop.
        }
        if (callback != nullptr) {
          deliveries_.fetch_add(1, std::memory_order_relaxed);
          (*callback)(Notification{delivery->key, std::move(delivery->event)});
        }
        continue;
      }

      if (auto* firing = std::get_if<wire::CompositeFiringMsg>(&message)) {
        std::shared_ptr<const CompositeCallback> callback;
        {
          const std::scoped_lock lock(state_mutex_);
          const auto it = composite_callbacks_.find(firing->key);
          if (it != composite_callbacks_.end()) callback = it->second;
        }
        if (callback != nullptr) {
          firings_.fetch_add(1, std::memory_order_relaxed);
          (*callback)(CompositeFiring{firing->key, firing->time});
        }
        continue;
      }

      if (auto* done = std::get_if<wire::FlushDoneMsg>(&message)) {
        {
          const std::scoped_lock lock(state_mutex_);
          if (done->token > flush_acked_) flush_acked_ = done->token;
        }
        flush_cv_.notify_all();
        continue;
      }

      throw_error(ErrorCode::kState,
                  "remote broker: unexpected frame from the server");
    }
  } catch (const std::exception& e) {
    if (!closing_.load()) fail(e.what());
  }
}

}  // namespace genas::net
