#include "net/remote_client.hpp"

#include <algorithm>
#include <random>
#include <thread>
#include <utility>
#include <variant>

#include "common/error.hpp"
#include "ens/composite.hpp"
#include "profile/parser.hpp"
#include "wire/codec.hpp"

namespace genas::net {

namespace {

std::uint64_t random_session_id() {
  std::random_device rd;
  std::uint64_t id =
      (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
  return id == 0 ? 1 : id;
}

/// Reads and validates the server's schema handshake on a fresh channel.
SchemaPtr read_schema_handshake(SocketChannel& channel,
                                std::chrono::milliseconds read_timeout) {
  std::optional<std::vector<std::uint8_t>> frame =
      channel.read_frame(read_timeout);
  GENAS_REQUIRE(frame.has_value(), ErrorCode::kState,
                "remote broker: server closed before the schema handshake");
  wire::Message message = wire::decode_message(*frame, nullptr);
  auto* schema_msg = std::get_if<wire::SchemaMsg>(&message);
  GENAS_REQUIRE(schema_msg != nullptr, ErrorCode::kState,
                "remote broker: expected a schema handshake frame");
  return schema_msg->schema;
}

/// Sends kHello and reads the kHelloAck; returns the server's publish
/// watermark for this session.
wire::HelloAckMsg hello_handshake(SocketChannel& channel,
                                  const SchemaPtr& schema,
                                  std::uint64_t session_id,
                                  std::chrono::milliseconds read_timeout) {
  channel.write_frame(wire::frame_hello(session_id));
  std::optional<std::vector<std::uint8_t>> frame =
      channel.read_frame(read_timeout);
  GENAS_REQUIRE(frame.has_value(), ErrorCode::kState,
                "remote broker: server closed before the hello ack");
  wire::Message message = wire::decode_message(*frame, schema);
  auto* ack = std::get_if<wire::HelloAckMsg>(&message);
  GENAS_REQUIRE(ack != nullptr, ErrorCode::kState,
                "remote broker: expected a hello ack frame");
  GENAS_REQUIRE(ack->session_id == session_id || session_id == 0,
                ErrorCode::kState,
                "remote broker: hello ack for a different session");
  return *ack;
}

}  // namespace

RemoteBrokerClient::RemoteBrokerClient(const std::string& host,
                                       std::uint16_t port,
                                       SocketTimeouts timeouts)
    : RemoteBrokerClient(host, port, ClientOptions{timeouts}) {}

RemoteBrokerClient::RemoteBrokerClient(const std::string& host,
                                       std::uint16_t port,
                                       ClientOptions options)
    : host_(host),
      port_(port),
      options_(options),
      channel_(SocketChannel::connect_to(host, port, options.timeouts)) {
  // Handshake: the first frame must be the service schema; everything the
  // client encodes or decodes afterwards validates against it.
  schema_ = read_schema_handshake(channel_, options_.timeouts.read);
  if (options_.reconnect) {
    session_id_ = options_.session_id != 0 ? options_.session_id
                                           : random_session_id();
    const wire::HelloAckMsg ack = hello_handshake(
        channel_, schema_, session_id_, options_.timeouts.read);
    // A resumed session (same explicit id, fresh client process) continues
    // the sequence from the server's watermark so new publishes are not
    // mistaken for replayed duplicates.
    publish_seq_ = ack.publish_watermark;
  }
  connected_.store(true);
  reader_ = std::thread([this] { run_reader(); });
}

RemoteBrokerClient::~RemoteBrokerClient() { close(); }

void RemoteBrokerClient::close() {
  if (closing_.exchange(true)) {
    if (reader_.joinable()) reader_.join();
    return;
  }
  connected_.store(false);
  {
    // A reconnect episode owns the channel under write_mutex_; it aborts
    // promptly on closing_, after which the shutdown below wakes a reader
    // blocked in read_frame.
    const std::scoped_lock lock(write_mutex_);
    channel_.shutdown();
  }
  if (reader_.joinable()) reader_.join();
  channel_.close();
  flush_cv_.notify_all();
}

void RemoteBrokerClient::fail(const std::string& why) {
  {
    const std::scoped_lock lock(state_mutex_);
    if (last_error_.empty()) last_error_ = why;
  }
  failed_.store(true);
  connected_.store(false);
  channel_.shutdown();
  flush_cv_.notify_all();
}

std::string RemoteBrokerClient::last_error() const {
  const std::scoped_lock lock(state_mutex_);
  return last_error_;
}

void RemoteBrokerClient::send_frame(const Frame& frame) {
  GENAS_REQUIRE(!failed_.load() && !closing_.load() &&
                    (connected_.load() || options_.reconnect),
                ErrorCode::kState,
                "remote broker: connection is down" +
                    (last_error().empty() ? "" : " (" + last_error() + ")"));
  const std::scoped_lock lock(write_mutex_);
  GENAS_REQUIRE(!failed_.load() && !closing_.load(), ErrorCode::kState,
                "remote broker: connection is down" +
                    (last_error().empty() ? "" : " (" + last_error() + ")"));
  try {
    channel_.write_frame(frame);
  } catch (const std::exception& e) {
    if (options_.reconnect) {
      // The reader notices the dead stream and redials; state registered
      // before this send is in the mirror and will be re-sent.
      connected_.store(false);
      channel_.shutdown();
      return;
    }
    fail(e.what());
    throw;
  }
}

void RemoteBrokerClient::send_subscription(SubscriptionId key, Frame frame,
                                           bool composite) {
  GENAS_REQUIRE(!failed_.load() && !closing_.load() &&
                    (connected_.load() || options_.reconnect),
                ErrorCode::kState,
                "remote broker: connection is down" +
                    (last_error().empty() ? "" : " (" + last_error() + ")"));
  const std::scoped_lock lock(write_mutex_);
  GENAS_REQUIRE(!failed_.load() && !closing_.load(), ErrorCode::kState,
                "remote broker: connection is down" +
                    (last_error().empty() ? "" : " (" + last_error() + ")"));
  // Mirror first, under the same hold: a reconnect (which also owns
  // write_mutex_) either sees this key in the mirror after its frame went
  // out, or not at all — never a half-registered subscription.
  if (options_.reconnect) {
    auto& mirror = composite ? csub_frames_ : sub_frames_;
    mirror.emplace(key, frame);
  }
  try {
    channel_.write_frame(frame);
  } catch (const std::exception& e) {
    if (options_.reconnect) {
      connected_.store(false);
      channel_.shutdown();  // the mirror entry replays on reconnect
      return;
    }
    fail(e.what());
    throw;
  }
}

SubscriptionId RemoteBrokerClient::subscribe(Profile profile,
                                             NotificationCallback callback) {
  GENAS_REQUIRE(profile.schema() == schema_, ErrorCode::kInvalidArgument,
                "remote broker: profile schema differs from service schema");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "remote broker: subscription requires a callback");
  const SubscriptionId key = next_key_.fetch_add(1, std::memory_order_relaxed);
  {
    // Register before sending: a delivery can arrive the moment the server
    // installs the subscription.
    const std::scoped_lock lock(state_mutex_);
    callbacks_.emplace(key, std::make_shared<const NotificationCallback>(
                                std::move(callback)));
  }
  try {
    send_subscription(key, wire::frame_subscribe(key, profile), false);
  } catch (...) {
    const std::scoped_lock lock(state_mutex_);
    callbacks_.erase(key);
    throw;
  }
  return key;
}

SubscriptionId RemoteBrokerClient::subscribe(std::string_view expression,
                                             NotificationCallback callback) {
  return subscribe(parse_profile(schema_, expression), std::move(callback));
}

void RemoteBrokerClient::unsubscribe(SubscriptionId id) {
  {
    const std::scoped_lock lock(state_mutex_);
    GENAS_REQUIRE(callbacks_.erase(id) == 1, ErrorCode::kNotFound,
                  "remote broker: unknown subscription " + std::to_string(id));
  }
  {
    const std::scoped_lock lock(write_mutex_);
    sub_frames_.erase(id);
  }
  // A lost unsubscribe is safe either way: the server retracts everything
  // on disconnect, and the reconnect mirror no longer holds the key.
  send_frame(wire::frame_unsubscribe(id));
}

SubscriptionId RemoteBrokerClient::subscribe_composite(
    CompositeExprPtr expression, CompositeCallback callback) {
  GENAS_REQUIRE(expression != nullptr, ErrorCode::kInvalidArgument,
                "remote broker: composite subscription needs an expression");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "remote broker: subscription requires a callback");
  const SubscriptionId key = next_key_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(state_mutex_);
    composite_callbacks_.emplace(
        key, std::make_shared<const CompositeCallback>(std::move(callback)));
  }
  try {
    send_subscription(key, wire::frame_composite_subscribe(key, *expression),
                      true);
  } catch (...) {
    const std::scoped_lock lock(state_mutex_);
    composite_callbacks_.erase(key);
    throw;
  }
  return key;
}

SubscriptionId RemoteBrokerClient::subscribe_composite(
    std::string_view expression, CompositeCallback callback) {
  return subscribe_composite(parse_composite(schema_, expression),
                             std::move(callback));
}

void RemoteBrokerClient::unsubscribe_composite(SubscriptionId id) {
  {
    const std::scoped_lock lock(state_mutex_);
    GENAS_REQUIRE(composite_callbacks_.erase(id) == 1, ErrorCode::kNotFound,
                  "remote broker: unknown composite subscription " +
                      std::to_string(id));
  }
  {
    const std::scoped_lock lock(write_mutex_);
    csub_frames_.erase(id);
  }
  send_frame(wire::frame_composite_unsubscribe(id));
}

void RemoteBrokerClient::publish(const Event& event) {
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "remote broker: event schema differs from service schema");
  if (!options_.reconnect) {
    send_frame(wire::frame_event(event));
    return;
  }
  GENAS_REQUIRE(!failed_.load() && !closing_.load(), ErrorCode::kState,
                "remote broker: connection is down" +
                    (last_error().empty() ? "" : " (" + last_error() + ")"));
  const std::scoped_lock lock(write_mutex_);
  GENAS_REQUIRE(!failed_.load() && !closing_.load(), ErrorCode::kState,
                "remote broker: connection is down" +
                    (last_error().empty() ? "" : " (" + last_error() + ")"));
  // Sequence assignment, window append, and the send share one hold so the
  // server observes strictly increasing sequences.
  const std::uint64_t seq = ++publish_seq_;
  Frame envelope = wire::frame_link(seq, wire::frame_event(event));
  sent_window_.emplace(seq, envelope);
  while (sent_window_.size() > options_.publish_window) {
    sent_window_.erase(sent_window_.begin());
  }
  try {
    channel_.write_frame(envelope);
  } catch (const std::exception&) {
    // Buffered for replay; the reader redials and re-sends it.
    connected_.store(false);
    channel_.shutdown();
  }
}

void RemoteBrokerClient::publish(std::string_view event_text, Timestamp time) {
  publish(parse_event(schema_, event_text, time));
}

void RemoteBrokerClient::flush() { flush(std::chrono::milliseconds{-1}); }

void RemoteBrokerClient::flush(std::chrono::milliseconds timeout) {
  const std::uint64_t token =
      next_flush_token_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(state_mutex_);
    if (token > highest_flush_token_) highest_flush_token_ = token;
  }
  send_frame(wire::frame_flush(token));
  std::unique_lock<std::mutex> lock(state_mutex_);
  const auto settled = [&] {
    return flush_acked_ >= token || failed_.load() || closing_.load();
  };
  if (timeout.count() < 0) {
    flush_cv_.wait(lock, settled);
  } else if (!flush_cv_.wait_for(lock, timeout, settled)) {
    throw_error(ErrorCode::kTimeout,
                "remote broker: flush deadline expired after " +
                    std::to_string(timeout.count()) + "ms");
  }
  if (flush_acked_ < token) {
    throw_error(ErrorCode::kState,
                "remote broker: connection dropped during flush" +
                    (last_error_.empty() ? "" : " (" + last_error_ + ")"));
  }
}

obs::StatsSnapshot RemoteBrokerClient::stats(std::chrono::milliseconds timeout) {
  const std::scoped_lock request_lock(stats_mutex_);
  std::uint64_t seen;
  {
    const std::scoped_lock lock(state_mutex_);
    seen = stats_generation_;
  }
  send_frame(wire::frame_stats_request());
  std::unique_lock<std::mutex> lock(state_mutex_);
  const auto settled = [&] {
    return stats_generation_ > seen || failed_.load() || closing_.load();
  };
  if (timeout.count() < 0) {
    flush_cv_.wait(lock, settled);
  } else if (!flush_cv_.wait_for(lock, timeout, settled)) {
    throw_error(ErrorCode::kTimeout,
                "remote broker: stats deadline expired after " +
                    std::to_string(timeout.count()) + "ms");
  }
  if (stats_generation_ <= seen) {
    throw_error(ErrorCode::kState,
                "remote broker: connection dropped during stats scrape" +
                    (last_error_.empty() ? "" : " (" + last_error_ + ")"));
  }
  return stats_reply_;
}

void RemoteBrokerClient::run_reader() {
  for (;;) {
    std::string why = "remote broker: server closed the stream";
    try {
      read_loop();
    } catch (const std::exception& e) {
      why = e.what();
    }
    if (closing_.load()) return;
    connected_.store(false);
    if (!options_.reconnect) {
      fail(why);
      return;
    }
    if (!reconnect_session()) {
      if (!closing_.load()) {
        fail("remote broker: session lost after " +
             std::to_string(options_.max_redials) + " redials (" + why + ")");
      }
      return;
    }
  }
}

void RemoteBrokerClient::read_loop() {
  for (;;) {
    std::optional<Frame> frame = channel_.read_frame();
    if (!frame) return;  // end of stream
    wire::Message message = wire::decode_message(*frame, schema_);

    if (auto* delivery = std::get_if<wire::DeliveryMsg>(&message)) {
      std::shared_ptr<const NotificationCallback> callback;
      {
        const std::scoped_lock lock(state_mutex_);
        const auto it = callbacks_.find(delivery->key);
        if (it != callbacks_.end()) callback = it->second;
        // Unknown key: the delivery raced its own unsubscribe — drop.
      }
      if (callback != nullptr) {
        deliveries_.fetch_add(1, std::memory_order_relaxed);
        (*callback)(Notification{delivery->key, std::move(delivery->event)});
      }
      continue;
    }

    if (auto* batch = std::get_if<wire::DeliveryBatchMsg>(&message)) {
      // One callback lookup per delivery: entries of one batch may belong
      // to different subscriptions, and any of them may race its own
      // unsubscribe independently.
      for (std::size_t i = 0; i < batch->keys.size(); ++i) {
        std::shared_ptr<const NotificationCallback> callback;
        {
          const std::scoped_lock lock(state_mutex_);
          const auto it = callbacks_.find(batch->keys[i]);
          if (it != callbacks_.end()) callback = it->second;
        }
        if (callback != nullptr) {
          deliveries_.fetch_add(1, std::memory_order_relaxed);
          (*callback)(
              Notification{batch->keys[i], std::move(batch->events[i])});
        }
      }
      continue;
    }

    if (auto* firing = std::get_if<wire::CompositeFiringMsg>(&message)) {
      std::shared_ptr<const CompositeCallback> callback;
      {
        const std::scoped_lock lock(state_mutex_);
        const auto it = composite_callbacks_.find(firing->key);
        if (it != composite_callbacks_.end()) callback = it->second;
      }
      if (callback != nullptr) {
        firings_.fetch_add(1, std::memory_order_relaxed);
        (*callback)(CompositeFiring{firing->key, firing->time});
      }
      continue;
    }

    if (auto* done = std::get_if<wire::FlushDoneMsg>(&message)) {
      {
        const std::scoped_lock lock(state_mutex_);
        if (done->token > flush_acked_) flush_acked_ = done->token;
      }
      flush_cv_.notify_all();
      continue;
    }

    if (auto* snap = std::get_if<wire::StatsSnapshotMsg>(&message)) {
      {
        const std::scoped_lock lock(state_mutex_);
        stats_reply_ = std::move(snap->stats);
        ++stats_generation_;
      }
      flush_cv_.notify_all();
      continue;
    }

    throw_error(ErrorCode::kState,
                "remote broker: unexpected frame from the server");
  }
}

bool RemoteBrokerClient::reconnect_session() {
  // Own the write side for the whole episode: API writes queue behind the
  // recovery and resume on the fresh channel.
  const std::scoped_lock lock(write_mutex_);
  auto backoff = options_.redial_backoff;
  for (std::size_t attempt = 0; attempt < options_.max_redials; ++attempt) {
    if (closing_.load()) return false;
    if (attempt > 0) {
      // Sleep in slices so close() is never stuck behind a long backoff.
      auto remaining = backoff;
      while (remaining.count() > 0 && !closing_.load()) {
        const auto slice = std::min(remaining, std::chrono::milliseconds{10});
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
      backoff = std::min(backoff * 2, options_.redial_backoff_cap);
      if (closing_.load()) return false;
    }
    try {
      SocketChannel fresh =
          SocketChannel::connect_to(host_, port_, options_.timeouts);
      const SchemaPtr schema =
          read_schema_handshake(fresh, options_.timeouts.read);
      (void)schema;  // decodes against the adopted schema_; shape validated
      const wire::HelloAckMsg ack = hello_handshake(
          fresh, schema_, session_id_, options_.timeouts.read);
      channel_ = std::move(fresh);

      // Resubscribe from the mirror, byte-for-byte.
      for (const auto& [key, frame] : sub_frames_) {
        channel_.write_frame(frame);
      }
      for (const auto& [key, frame] : csub_frames_) {
        channel_.write_frame(frame);
      }
      // Prune publishes the server already has; replay the rest in order.
      for (auto it = sent_window_.begin(); it != sent_window_.end();) {
        if (it->first <= ack.publish_watermark) {
          it = sent_window_.erase(it);
          continue;
        }
        channel_.write_frame(it->second);
        replayed_publishes_.fetch_add(1, std::memory_order_relaxed);
        ++it;
      }
      // A flush whose token (or reply) died with the old stream would wait
      // forever; re-arm the barrier at the highest outstanding token.
      std::uint64_t outstanding = 0;
      {
        const std::scoped_lock state(state_mutex_);
        if (highest_flush_token_ > flush_acked_) {
          outstanding = highest_flush_token_;
        }
      }
      if (outstanding != 0) {
        channel_.write_frame(wire::frame_flush(outstanding));
      }
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      connected_.store(true);
      return true;
    } catch (const std::exception&) {
      continue;  // next attempt after backoff
    }
  }
  return false;
}

}  // namespace genas::net
