#include "net/socket_channel.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "wire/codec.hpp"

namespace genas::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

[[noreturn]] void socket_fail(const std::string& what, int err = 0) {
  std::string message = "socket: " + what;
  if (err != 0) message += std::string(": ") + std::strerror(err);
  throw_error(ErrorCode::kState, std::move(message));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    socket_fail("fcntl(O_NONBLOCK)", errno);
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: latency tuning, not correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Polls `fd` for `events`, waiting up to `timeout` (< 0: forever).
/// Returns false on timeout; EINTR retries against the remaining budget.
bool poll_for(int fd, short events, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int wait_ms = -1;
    if (timeout.count() >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
    }
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready > 0) return true;   // readable/writable, or HUP/ERR — the
                                  // following recv/send reports the state
    if (ready == 0) return false;
    if (errno != EINTR) socket_fail("poll", errno);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketChannel

SocketChannel::SocketChannel(int fd, SocketTimeouts timeouts)
    : fd_(fd), timeouts_(timeouts) {
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

SocketChannel SocketChannel::connect_to(const std::string& host,
                                        std::uint16_t port,
                                        SocketTimeouts timeouts) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw_error(ErrorCode::kState, "socket: cannot resolve " + host + ": " +
                                       ::gai_strerror(rc));
  }

  int fd = -1;
  int last_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    try {
      set_nonblocking(fd);
    } catch (...) {
      ::close(fd);
      ::freeaddrinfo(results);
      throw;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS &&
        poll_for(fd, POLLOUT, timeouts.connect)) {
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
          so_error == 0) {
        break;  // connected
      }
      last_errno = so_error;
    } else {
      last_errno = errno == EINPROGRESS ? ETIMEDOUT : errno;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    socket_fail("connect to " + host + ":" + service, last_errno);
  }
  return SocketChannel(fd, timeouts);
}

SocketChannel connect_with_retry(const std::string& host, std::uint16_t port,
                                 std::size_t attempts,
                                 SocketTimeouts timeouts,
                                 std::chrono::milliseconds backoff,
                                 std::chrono::milliseconds backoff_cap,
                                 std::uint64_t jitter_seed) {
  GENAS_REQUIRE(attempts >= 1, ErrorCode::kInvalidArgument,
                "socket: connect_with_retry needs at least one attempt");
  std::uint64_t jitter_state = jitter_seed ^ 0x6A09E667F3BCC908ULL;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return SocketChannel::connect_to(host, port, timeouts);
    } catch (const Error&) {
      if (attempt >= attempts) throw;
    }
    // Full backoff plus up to 50% jitter so restarting clients don't all
    // redial in lockstep.
    const auto base = std::min(
        backoff * static_cast<std::int64_t>(
                      1LL << std::min<std::size_t>(attempt - 1, 20)),
        backoff_cap);
    const auto jitter = std::chrono::milliseconds(
        base.count() > 0 ? static_cast<std::int64_t>(
                               splitmix64(jitter_state) %
                               static_cast<std::uint64_t>(base.count() / 2 + 1))
                         : 0);
    std::this_thread::sleep_for(base + jitter);
  }
}

SocketChannel::~SocketChannel() { close(); }

SocketChannel::SocketChannel(SocketChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeouts_(other.timeouts_),
      buffer_(std::move(other.buffer_)),
      consumed_(std::exchange(other.consumed_, 0)) {}

SocketChannel& SocketChannel::operator=(SocketChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    timeouts_ = other.timeouts_;
    buffer_ = std::move(other.buffer_);
    consumed_ = std::exchange(other.consumed_, 0);
  }
  return *this;
}

void SocketChannel::shutdown() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void SocketChannel::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

bool SocketChannel::fill_some(std::chrono::milliseconds timeout) {
  GENAS_REQUIRE(valid(), ErrorCode::kState, "socket: channel is closed");
  for (;;) {
    if (!poll_for(fd_, POLLIN, timeout)) {
      socket_fail("read timed out");
    }
    std::uint8_t chunk[kReadChunk];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + got);
      return true;
    }
    if (got == 0) return false;  // end of stream
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      continue;  // spurious wakeup; poll again against the same deadline
    }
    socket_fail("recv", errno);
  }
}

std::optional<std::vector<std::uint8_t>> SocketChannel::read_frame(
    std::chrono::milliseconds idle_timeout) {
  for (;;) {
    const std::span<const std::uint8_t> pending(buffer_.data() + consumed_,
                                                buffer_.size() - consumed_);
    const wire::FrameProbe probe = wire::probe_frame(pending);
    if (probe.status == wire::FrameStatus::kCorrupt) {
      throw_error(ErrorCode::kParse,
                  std::string("socket: corrupt stream: ") + probe.error);
    }
    if (probe.status == wire::FrameStatus::kComplete) {
      std::vector<std::uint8_t> frame(
          pending.begin(),
          pending.begin() + static_cast<std::ptrdiff_t>(probe.size));
      consumed_ += probe.size;
      if (consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
      } else if (consumed_ >= kReadChunk) {
        // Compact occasionally so a long-lived stream doesn't grow the
        // buffer by the total bytes ever received.
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
      }
      return frame;
    }
    // Need more: between frames the idle timeout governs; once the first
    // byte of a frame is in, the peer must keep the bytes coming.
    const bool mid_frame = !pending.empty();
    const bool more =
        fill_some(mid_frame ? timeouts_.read : idle_timeout);
    if (!more) {
      if (!mid_frame) return std::nullopt;  // clean EOF at a boundary
      throw_error(ErrorCode::kState,
                  "socket: peer closed mid-frame (" +
                      std::to_string(pending.size()) + " bytes of a frame)");
    }
  }
}

void SocketChannel::write_frame(std::span<const std::uint8_t> frame) {
  write_bytes(frame);
}

void SocketChannel::write_bytes(std::span<const std::uint8_t> bytes) {
  GENAS_REQUIRE(valid(), ErrorCode::kState, "socket: channel is closed");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    if (!poll_for(fd_, POLLOUT, timeouts_.write)) {
      socket_fail("write timed out");
    }
    const ssize_t wrote = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    socket_fail("send", errno);
  }
}

// ---------------------------------------------------------------------------
// SocketListener

SocketListener::SocketListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) socket_fail("socket", errno);
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  set_nonblocking(fd_);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    close();
    socket_fail("bind port " + std::to_string(port), err);
  }
  if (::listen(fd_, backlog) < 0) {
    const int err = errno;
    close();
    socket_fail("listen", err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    close();
    socket_fail("getsockname", err);
  }
  port_ = ntohs(bound.sin_port);
}

SocketListener::~SocketListener() { close(); }

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

std::optional<SocketChannel> SocketListener::accept(
    std::chrono::milliseconds timeout, SocketTimeouts channel_timeouts) {
  GENAS_REQUIRE(fd_ >= 0, ErrorCode::kState, "socket: listener is closed");
  if (!poll_for(fd_, POLLIN, timeout)) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;  // raced away; the caller's accept loop retries
    }
    socket_fail("accept", errno);
  }
  return SocketChannel(client, channel_timeouts);
}

void SocketListener::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace genas::net
