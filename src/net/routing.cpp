#include "net/routing.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace genas::net {

std::string_view to_string(RoutingMode mode) noexcept {
  switch (mode) {
    case RoutingMode::kFlooding:        return "flooding";
    case RoutingMode::kRouting:         return "routing";
    case RoutingMode::kRoutingCovered:  return "routing+covering";
  }
  return "?";
}

LinkTable::LinkTable(SchemaPtr schema)
    : schema_(std::move(schema)),
      forwarded_(std::make_unique<ProfileSet>(schema_)) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "link table requires a schema");
}

bool LinkTable::add(std::uint64_t key, const Profile& profile, bool covering) {
  if (covering) {
    for (const Installed& existing : installed_) {
      if (covers(existing.profile, profile)) {
        suppressed_.push_back(Suppressed{key, profile, existing.key});
        return false;
      }
    }
  }
  const ProfileId id = forwarded_->add(profile);
  installed_.push_back(Installed{key, profile, id});
  return true;
}

LinkTable::Removal LinkTable::remove(std::uint64_t key) {
  Removal removal;

  const auto installed_it =
      std::find_if(installed_.begin(), installed_.end(),
                   [&](const Installed& e) { return e.key == key; });
  if (installed_it != installed_.end()) {
    removal.removed = true;
    removal.installed = true;
    forwarded_->remove(installed_it->id);
    installed_.erase(installed_it);

    // Promote entries this key had been covering: re-check each against the
    // remaining installed entries; still-covered ones just switch their
    // recorded coverer, the rest are installed and reported to the caller.
    for (auto it = suppressed_.begin(); it != suppressed_.end();) {
      if (it->covered_by != key) {
        ++it;
        continue;
      }
      const auto coverer =
          std::find_if(installed_.begin(), installed_.end(),
                       [&](const Installed& e) {
                         return covers(e.profile, it->profile);
                       });
      if (coverer != installed_.end()) {
        it->covered_by = coverer->key;
        ++it;
        continue;
      }
      const ProfileId id = forwarded_->add(it->profile);
      installed_.push_back(Installed{it->key, it->profile, id});
      removal.promoted.emplace_back(it->key, std::move(it->profile));
      it = suppressed_.erase(it);
    }
    return removal;
  }

  const auto suppressed_it =
      std::find_if(suppressed_.begin(), suppressed_.end(),
                   [&](const Suppressed& e) { return e.key == key; });
  if (suppressed_it != suppressed_.end()) {
    removal.removed = true;
    suppressed_.erase(suppressed_it);
  }
  return removal;
}

const TreeMatcher& LinkTable::matcher(
    const OrderingPolicy& policy,
    const std::optional<JointDistribution>& dist) {
  if (matcher_ == nullptr || matcher_version_ != forwarded_->version()) {
    matcher_ = std::make_unique<TreeMatcher>(*forwarded_, policy, dist);
    matcher_version_ = forwarded_->version();
  }
  return *matcher_;
}

}  // namespace genas::net
