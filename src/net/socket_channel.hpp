// GENAS — thin TCP channel for the wire codec.
//
// SocketChannel puts the versioned, bounds-checked frames of src/wire on a
// real socket: a buffered reader reassembles length-prefixed frames
// incrementally (a partial read is need-more, never a parse error — see
// wire::probe_frame), and a buffered writer pushes whole frames through
// partial sends. All file descriptors are non-blocking; every operation is
// driven by poll(2) with an explicit timeout, so a stalled peer can never
// wedge a thread forever.
//
// Timeout semantics:
//   * connect: bounded by SocketTimeouts::connect.
//   * read_frame: waiting for the *first* byte of a frame blocks
//     indefinitely (an idle peer is healthy) unless an idle timeout is
//     passed; once a frame has started, the remaining bytes must arrive
//     within SocketTimeouts::read — a peer that stalls mid-frame is broken.
//   * write_frame: the whole frame must drain within SocketTimeouts::write.
//
// Thread safety: one reader thread and one writer thread may use a channel
// concurrently (reads and writes touch disjoint state); concurrent writers
// must serialize externally. shutdown() may be called from any thread to
// wake a blocked read_frame with end-of-stream — the idiom a server uses to
// stop a connection handler.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace genas::net {

struct SocketTimeouts {
  std::chrono::milliseconds connect{5000};
  std::chrono::milliseconds read{5000};   ///< mid-frame stall bound
  std::chrono::milliseconds write{5000};  ///< whole-frame drain bound
};

class SocketChannel {
 public:
  /// Invalid (unconnected) channel.
  SocketChannel() = default;

  /// Adopts an already-connected descriptor (listener accept path).
  SocketChannel(int fd, SocketTimeouts timeouts);

  /// Connects to host:port within timeouts.connect. Resolves names via
  /// getaddrinfo; throws Error{kState} on refusal or timeout.
  static SocketChannel connect_to(const std::string& host, std::uint16_t port,
                                  SocketTimeouts timeouts = {});

  ~SocketChannel();
  SocketChannel(SocketChannel&& other) noexcept;
  SocketChannel& operator=(SocketChannel&& other) noexcept;
  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }

  /// Reads one complete wire frame, reassembling across arbitrarily split
  /// reads. Returns nullopt on a clean end-of-stream at a frame boundary.
  /// Throws Error{kParse} when the stream turns corrupt (bad header bytes),
  /// Error{kState} on a mid-frame end-of-stream, a mid-frame read timeout,
  /// or — when `idle_timeout` is non-negative — when no frame starts within
  /// it. idle_timeout < 0 (default) waits for the first byte indefinitely.
  std::optional<std::vector<std::uint8_t>> read_frame(
      std::chrono::milliseconds idle_timeout = std::chrono::milliseconds{-1});

  /// Writes one frame fully (partial sends retried under the write
  /// timeout). Throws Error{kState} on timeout or a closed/reset peer.
  void write_frame(std::span<const std::uint8_t> frame);

  /// Raw buffered write of arbitrary bytes — exposed so tests can split a
  /// frame at any byte boundary; write_frame is this with a whole frame.
  void write_bytes(std::span<const std::uint8_t> bytes);

  /// Half-close both directions without releasing the descriptor: a reader
  /// blocked in read_frame observes end-of-stream. Safe to call from
  /// another thread while the reader is inside read_frame (the descriptor
  /// itself stays valid until destruction/close()).
  void shutdown() noexcept;

  /// Closes the descriptor. NOT safe while another thread is inside
  /// read_frame/write_frame — use shutdown() to interrupt them first.
  void close() noexcept;

 private:
  /// Appends whatever the socket has (≥ 1 byte) to buffer_, waiting up to
  /// `timeout` (< 0: forever). Returns false on end-of-stream; throws
  /// Error{kState} on timeout or a socket error.
  bool fill_some(std::chrono::milliseconds timeout);

  int fd_ = -1;
  SocketTimeouts timeouts_;
  std::vector<std::uint8_t> buffer_;  ///< read-side reassembly buffer
  std::size_t consumed_ = 0;          ///< bytes of buffer_ already returned
};

/// connect_to with capped exponential backoff: up to `attempts` dials, the
/// n-th preceded by a wait of `backoff * 2^(n-1)` (capped at `backoff_cap`)
/// plus deterministic jitter derived from `jitter_seed` — so a thundering
/// herd of restarting clients spreads out, reproducibly. Throws the last
/// attempt's Error when every dial fails; `attempts` must be >= 1.
SocketChannel connect_with_retry(
    const std::string& host, std::uint16_t port, std::size_t attempts,
    SocketTimeouts timeouts = {},
    std::chrono::milliseconds backoff = std::chrono::milliseconds{10},
    std::chrono::milliseconds backoff_cap = std::chrono::milliseconds{1000},
    std::uint64_t jitter_seed = 0);

/// Loopback TCP listener (binds 127.0.0.1 — the mesh transport is not an
/// exposed service; front it with real infrastructure for anything else).
class SocketListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  explicit SocketListener(std::uint16_t port, int backlog = 16);
  ~SocketListener();
  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&&) = delete;
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// The actually bound port (resolves an ephemeral bind).
  std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection, waiting up to `timeout`; nullopt on timeout.
  /// Throws Error{kState} once the listener is closed.
  std::optional<SocketChannel> accept(std::chrono::milliseconds timeout,
                                      SocketTimeouts channel_timeouts = {});

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace genas::net
