#include "net/broker_server.hpp"

#include <deque>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <variant>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "wire/batch.hpp"
#include "wire/codec.hpp"

namespace genas::net {

namespace {

using Frame = std::vector<std::uint8_t>;

/// Dedup token of one sequenced publish: a stable mix of session identity
/// and sequence, so a replay of the same publish — across reconnects and
/// even across a server restart that forgot the session — maps to the same
/// nonzero token and the composite ingress can drop the duplicate.
std::uint64_t publish_token(std::uint64_t session, std::uint64_t seq) {
  std::uint64_t state = session ^ (seq * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t token = splitmix64(state);
  return token == 0 ? 1 : token;
}

}  // namespace

/// One client connection. The handler thread owns the key maps and the
/// read side of the channel; delivery callbacks (arbitrary service threads)
/// share the write side behind write_mutex. `open` gates writes so a
/// delivery racing the teardown is dropped, not sent down a dying socket.
struct BrokerServer::Connection {
  explicit Connection(SocketChannel ch) : channel(std::move(ch)) {}

  SocketChannel channel;
  std::mutex write_mutex;
  std::atomic<bool> open{true};
  std::atomic<bool> done{false};     ///< handler thread has finished
  std::atomic<bool> cleaned{false};  ///< lifecycle cleanup ran (exactly once)
  std::thread thread;

  /// Server-registry handles (copied in at accept; inert until then).
  obs::Counter frames_written;
  obs::Counter bytes_written;

  /// Client-chosen key -> service-side id (handler-thread-owned).
  std::unordered_map<std::uint64_t, std::uint64_t> subs;
  std::unordered_map<std::uint64_t, std::uint64_t> csubs;

  /// At-least-once session this connection resumed or opened via kHello
  /// (0: plain connection, handler-thread-owned).
  std::uint64_t session_id = 0;

  /// Deliveries staged into the pending kDeliveryBatch frame; guarded by
  /// write_mutex. The stage flushes when it reaches stage_max, before any
  /// non-delivery frame (order preservation — kFlushDone and composite
  /// firings never overtake the deliveries staged ahead of them), and at
  /// the end of every publish via the served broker's drain hook.
  wire::DeliveryBatchBuilder delivery_stage;
  std::size_t stage_max = 1;
  /// Drain hook this connection registered on the served broker (0: none).
  DrainHookId drain_hook = 0;

  /// Writes one frame, flushing staged deliveries ahead of it; false (and
  /// a wake of the reader via shutdown) when the connection is closed,
  /// stalls past the write timeout, or errors.
  bool write(const Frame& frame) noexcept {
    if (!open.load(std::memory_order_acquire)) return false;
    const std::scoped_lock lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return false;
    return flush_locked() && write_locked(frame);
  }

  /// Stages one delivery, emitting the batch frame when the stage fills.
  bool write_delivery(std::uint64_t key, const Event& event) noexcept {
    if (!open.load(std::memory_order_acquire)) return false;
    const std::scoped_lock lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return false;
    try {
      delivery_stage.append(key, event);
    } catch (...) {
      open.store(false, std::memory_order_release);
      channel.shutdown();
      return false;
    }
    if (delivery_stage.pending() < stage_max) return true;
    return flush_locked();
  }

  /// Emits the staged delivery batch, if any (the drain-hook entry point).
  bool flush_deliveries() noexcept {
    if (!open.load(std::memory_order_acquire)) return false;
    const std::scoped_lock lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return false;
    return flush_locked();
  }

  bool flush_locked() noexcept {
    if (delivery_stage.empty()) return true;
    try {
      return write_locked(delivery_stage.take_frame());
    } catch (...) {
      open.store(false, std::memory_order_release);
      channel.shutdown();
      return false;
    }
  }

  bool write_locked(const Frame& frame) noexcept {
    try {
      channel.write_frame(frame);
      frames_written.add(1);
      bytes_written.add(frame.size());
      return true;
    } catch (...) {
      open.store(false, std::memory_order_release);
      channel.shutdown();  // the handler's blocked read observes EOF
      return false;
    }
  }
};

struct BrokerServer::Impl {
  Broker* broker = nullptr;             // exactly one of broker/mesh is set
  mesh::MeshNetwork* mesh = nullptr;
  NodeId node = 0;
  SchemaPtr schema;
  ServerOptions options;
  SocketListener listener;
  Frame schema_frame;

  std::thread accept_thread;
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  bool stopped = false;  // guarded by connections_mutex

  mutable std::mutex connections_mutex;
  std::vector<std::shared_ptr<Connection>> connections;

  /// Server-level metrics. The former plain service counters (accepted,
  /// duplicate publishes) live here now — sharded registry counters are as
  /// cheap as the atomics they replace, and the registry is what a
  /// kStatsRequest scrape serializes.
  std::shared_ptr<obs::Registry> metrics;
  obs::Counter connections_total;
  obs::Counter frames_read;
  obs::Counter bytes_read;
  obs::Counter frames_written;
  obs::Counter bytes_written;
  obs::Counter duplicates;
  obs::Counter errors_parse;
  obs::Counter errors_protocol;
  obs::Counter errors_internal;
  obs::Histogram flush_barrier;

  /// Resume-session registry: session id -> highest publish sequence
  /// processed. Outlives connections (that is the point); bounded by
  /// options.max_sessions with oldest-first eviction.
  std::mutex sessions_mutex;
  std::unordered_map<std::uint64_t, std::uint64_t> sessions;
  std::deque<std::uint64_t> session_order;
  std::atomic<std::uint64_t> next_session{1};

  mutable std::mutex error_mutex;
  std::string first_error;

  Impl(ServerOptions opts)
      : options(opts),
        listener(opts.port),
        metrics(std::make_shared<obs::Registry>()) {
    connections_total = metrics->counter("genas_server_connections_total",
                                         "client connections accepted");
    frames_read = metrics->counter("genas_server_frames_read_total",
                                   "wire frames read from clients");
    bytes_read = metrics->counter("genas_server_bytes_read_total",
                                  "frame payload bytes read from clients");
    frames_written = metrics->counter("genas_server_frames_written_total",
                                      "wire frames written to clients");
    bytes_written = metrics->counter("genas_server_bytes_written_total",
                                     "frame payload bytes written to clients");
    duplicates = metrics->counter(
        "genas_server_duplicate_publishes_total",
        "sequenced publishes dropped as session replays");
    errors_parse = metrics->counter(
        "genas_server_errors_total{category=\"parse\"}",
        "connections dropped on corrupt frames");
    errors_protocol = metrics->counter(
        "genas_server_errors_total{category=\"protocol\"}",
        "connections dropped on protocol violations");
    errors_internal = metrics->counter(
        "genas_server_errors_total{category=\"internal\"}",
        "connections dropped on internal service errors");
    flush_barrier = metrics->histogram("genas_server_flush_barrier_ns",
                                       obs::default_latency_bounds(),
                                       "kFlush quiesce-and-ack latency");
  }
};

BrokerServer::BrokerServer(Broker& broker, ServerOptions options)
    : impl_(std::make_unique<Impl>(options)) {
  impl_->broker = &broker;
  impl_->schema = broker.schema();
  impl_->schema_frame = wire::frame_schema(*impl_->schema);
}

BrokerServer::BrokerServer(mesh::MeshNetwork& mesh, NodeId node,
                           ServerOptions options)
    : impl_(std::make_unique<Impl>(options)) {
  GENAS_REQUIRE(node < mesh.node_count(), ErrorCode::kNotFound,
                "broker server: unknown mesh node id " + std::to_string(node));
  impl_->mesh = &mesh;
  impl_->node = node;
  impl_->schema = mesh.schema();
  impl_->schema_frame = wire::frame_schema(*impl_->schema);
}

BrokerServer::~BrokerServer() {
  try {
    stop();
  } catch (...) {
    // Destruction must not throw; stop failures are recorded first_error.
  }
}

std::uint16_t BrokerServer::port() const noexcept {
  return impl_->listener.port();
}

void BrokerServer::start() {
  GENAS_REQUIRE(!impl_->started.exchange(true), ErrorCode::kState,
                "broker server already started");
  impl_->accept_thread = std::thread([this] { run_accept_loop(); });
}

void BrokerServer::stop() {
  {
    const std::scoped_lock lock(impl_->connections_mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
  }
  impl_->stopping.store(true);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  impl_->listener.close();

  // Snapshot under the lock, tear down outside it (handler threads take
  // the lock indirectly only through record_error, never connections_mutex,
  // but keep the teardown lock-free anyway).
  std::vector<std::shared_ptr<Connection>> connections;
  {
    const std::scoped_lock lock(impl_->connections_mutex);
    connections.swap(impl_->connections);
  }
  for (const auto& connection : connections) {
    connection->open.store(false);
    connection->channel.shutdown();  // wakes the handler's blocked read
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void BrokerServer::disconnect_all() {
  std::vector<std::shared_ptr<Connection>> snapshot;
  {
    const std::scoped_lock lock(impl_->connections_mutex);
    snapshot = impl_->connections;
  }
  for (const auto& connection : snapshot) {
    connection->open.store(false);
    connection->channel.shutdown();  // handler observes EOF and cleans up
  }
  // Handler threads finish asynchronously; the accept loop reaps them.
}

std::size_t BrokerServer::active_connections() const {
  const std::scoped_lock lock(impl_->connections_mutex);
  std::size_t live = 0;
  for (const auto& connection : impl_->connections) {
    if (!connection->done.load()) ++live;
  }
  return live;
}

std::uint64_t BrokerServer::connections_accepted() const noexcept {
  return impl_->connections_total.value();
}

std::uint64_t BrokerServer::duplicate_publishes() const noexcept {
  return impl_->duplicates.value();
}

obs::Registry& BrokerServer::metrics() const noexcept {
  return *impl_->metrics;
}

obs::StatsSnapshot BrokerServer::stats_snapshot() const {
  obs::StatsSnapshot out = impl_->metrics->snapshot();
  {
    obs::MetricSnapshot active;
    active.name = "genas_server_active_connections";
    active.kind = obs::MetricKind::kGauge;
    active.value = static_cast<std::int64_t>(active_connections());
    out.metrics.push_back(std::move(active));
  }
  if (impl_->broker != nullptr) {
    out.merge(impl_->broker->metrics().snapshot());
  } else {
    out.merge(impl_->mesh->stats_snapshot());
  }
  out.sort();
  return out;
}

std::string BrokerServer::first_error() const {
  const std::scoped_lock lock(impl_->error_mutex);
  return impl_->first_error;
}

void BrokerServer::record_error(const std::string& what) {
  const std::scoped_lock lock(impl_->error_mutex);
  if (impl_->first_error.empty()) impl_->first_error = what;
}

void BrokerServer::reap_finished_locked() {
  auto& connections = impl_->connections;
  for (auto it = connections.begin(); it != connections.end();) {
    if ((*it)->done.load() && (*it)->thread.joinable()) {
      (*it)->thread.join();
      it = connections.erase(it);
    } else {
      ++it;
    }
  }
}

void BrokerServer::run_accept_loop() {
  while (!impl_->stopping.load()) {
    std::optional<SocketChannel> channel;
    try {
      channel = impl_->listener.accept(impl_->options.accept_poll,
                                       impl_->options.timeouts);
    } catch (const std::exception& e) {
      if (!impl_->stopping.load()) record_error(e.what());
      return;
    }
    {
      const std::scoped_lock lock(impl_->connections_mutex);
      reap_finished_locked();
      if (!channel) continue;
      if (impl_->stopping.load()) return;  // raced stop(); drop the socket
      auto connection = std::make_shared<Connection>(std::move(*channel));
      connection->frames_written = impl_->frames_written;
      connection->bytes_written = impl_->bytes_written;
      connection->stage_max =
          std::max<std::size_t>(impl_->options.delivery_batch_max, 1);
      if (connection->stage_max > 1) {
        // The served broker's drain hook closes every publish by flushing
        // this connection's staged deliveries, so a batch never outlives
        // the publish that filled it. (Cap 1 flushes inline — no hook.)
        Broker& broker = impl_->broker != nullptr
                             ? *impl_->broker
                             : impl_->mesh->node_broker(impl_->node);
        connection->drain_hook = broker.add_drain_hook(
            [connection] { connection->flush_deliveries(); });
      }
      impl_->connections.push_back(connection);
      impl_->connections_total.add(1);
      connection->thread =
          std::thread([this, connection] { run_connection(connection); });
    }
  }
}

void BrokerServer::run_connection(std::shared_ptr<Connection> connection) {
  Impl& impl = *impl_;
  Connection& c = *connection;
  try {
    if (!c.write(impl.schema_frame)) {
      throw_error(ErrorCode::kState, "broker server: schema handshake failed");
    }
    for (;;) {
      std::optional<Frame> frame =
          c.channel.read_frame(impl.options.client_idle_timeout);
      if (!frame) break;  // clean disconnect
      impl.frames_read.add(1);
      impl.bytes_read.add(frame->size());
      wire::Message message = wire::decode_message(*frame, impl.schema);

      if (auto* hello = std::get_if<wire::HelloMsg>(&message)) {
        std::uint64_t id = hello->session_id;
        bool resumed = false;
        std::uint64_t watermark = 0;
        {
          const std::scoped_lock lock(impl.sessions_mutex);
          if (id == 0) {
            id = impl.next_session.fetch_add(1, std::memory_order_relaxed);
          }
          const auto it = impl.sessions.find(id);
          if (it != impl.sessions.end()) {
            resumed = true;
            watermark = it->second;
          } else {
            // Unknown ids are adopted as fresh sessions — the client picks
            // its identity, which keeps dedup tokens stable even across a
            // server restart that lost this registry.
            if (impl.sessions.size() >= impl.options.max_sessions &&
                !impl.session_order.empty()) {
              impl.sessions.erase(impl.session_order.front());
              impl.session_order.pop_front();
            }
            impl.sessions.emplace(id, 0);
            impl.session_order.push_back(id);
          }
        }
        c.session_id = id;
        if (!c.write(wire::frame_hello_ack(resumed, id, watermark))) break;
        continue;
      }

      if (auto* link = std::get_if<wire::LinkFrameMsg>(&message)) {
        GENAS_REQUIRE(c.session_id != 0, ErrorCode::kState,
                      "broker server: sequenced publish before hello");
        wire::Message inner = wire::decode_message(link->inner, impl.schema);
        auto* event = std::get_if<wire::EventMsg>(&inner);
        GENAS_REQUIRE(event != nullptr, ErrorCode::kState,
                      "broker server: link envelope must carry an event");
        bool fresh = false;
        {
          const std::scoped_lock lock(impl.sessions_mutex);
          auto it = impl.sessions.find(c.session_id);
          if (it == impl.sessions.end()) {
            // Evicted mid-connection; re-adopt at the observed sequence.
            it = impl.sessions.emplace(c.session_id, 0).first;
            impl.session_order.push_back(c.session_id);
          }
          if (link->sequence > it->second) {
            it->second = link->sequence;
            fresh = true;
          }
        }
        if (!fresh) {
          impl.duplicates.add(1);
          continue;
        }
        const std::uint64_t token =
            publish_token(c.session_id, link->sequence);
        if (impl.broker != nullptr) {
          impl.broker->publish(event->event, token);
        } else {
          impl.mesh->publish(impl.node, std::move(event->event), token);
        }
        continue;
      }

      if (auto* sub = std::get_if<wire::SubscribeMsg>(&message)) {
        GENAS_REQUIRE(!c.subs.count(sub->key) && !c.csubs.count(sub->key),
                      ErrorCode::kState,
                      "broker server: client reused live key " +
                          std::to_string(sub->key));
        const std::uint64_t client_key = sub->key;
        std::uint64_t id;
        if (impl.broker != nullptr) {
          id = impl.broker->subscribe(
              std::move(sub->profile),
              [connection, client_key](const Notification& n) {
                connection->write_delivery(client_key, n.event);
              });
        } else {
          id = impl.mesh->subscribe(
              impl.node, std::move(sub->profile),
              [connection, client_key](NodeId, SubscriptionId,
                                       const Event& event) {
                connection->write_delivery(client_key, event);
              });
        }
        c.subs.emplace(client_key, id);
        continue;
      }

      if (auto* unsub = std::get_if<wire::UnsubscribeMsg>(&message)) {
        const auto it = c.subs.find(unsub->key);
        GENAS_REQUIRE(it != c.subs.end(), ErrorCode::kState,
                      "broker server: unsubscribe for unknown key " +
                          std::to_string(unsub->key));
        if (impl.broker != nullptr) {
          impl.broker->unsubscribe(it->second);
        } else {
          impl.mesh->unsubscribe(it->second);
        }
        c.subs.erase(it);
        continue;
      }

      if (auto* csub = std::get_if<wire::CompositeSubscribeMsg>(&message)) {
        GENAS_REQUIRE(!c.subs.count(csub->key) && !c.csubs.count(csub->key),
                      ErrorCode::kState,
                      "broker server: client reused live key " +
                          std::to_string(csub->key));
        const std::uint64_t client_key = csub->key;
        std::uint64_t id;
        if (impl.broker != nullptr) {
          id = impl.broker->subscribe_composite(
              std::move(csub->expression),
              [connection, client_key](const CompositeFiring& firing) {
                connection->write(
                    wire::frame_composite_firing(client_key, firing.time));
              });
        } else {
          id = impl.mesh->subscribe_composite(
              impl.node, std::move(csub->expression),
              [connection, client_key](NodeId, SubscriptionId,
                                       Timestamp time) {
                connection->write(
                    wire::frame_composite_firing(client_key, time));
              });
        }
        c.csubs.emplace(client_key, id);
        continue;
      }

      if (auto* cunsub =
              std::get_if<wire::CompositeUnsubscribeMsg>(&message)) {
        const auto it = c.csubs.find(cunsub->key);
        GENAS_REQUIRE(it != c.csubs.end(), ErrorCode::kState,
                      "broker server: composite unsubscribe for unknown key " +
                          std::to_string(cunsub->key));
        if (impl.broker != nullptr) {
          impl.broker->unsubscribe_composite(it->second);
        } else {
          impl.mesh->unsubscribe(it->second);
        }
        c.csubs.erase(it);
        continue;
      }

      if (auto* event = std::get_if<wire::EventMsg>(&message)) {
        if (impl.broker != nullptr) {
          impl.broker->publish(event->event);
        } else {
          impl.mesh->publish(impl.node, std::move(event->event));
        }
        continue;
      }

      if (auto* flush = std::get_if<wire::FlushMsg>(&message)) {
        // Everything this client sent earlier has been processed (in-order
        // handling); quiesce the service so the deliveries those frames
        // caused are on the stream, then acknowledge. Barriers are rare and
        // slow by design, so every one is timed (no sampling).
        const std::uint64_t flush_start = obs::now_ns();
        if (impl.mesh != nullptr) {
          impl.mesh->wait_idle();
          impl.mesh->flush_composites();
        } else {
          impl.broker->flush_composites();
        }
        const bool acked = c.write(wire::frame_flush_done(flush->token));
        impl.flush_barrier.observe(obs::now_ns() - flush_start);
        if (!acked) break;
        continue;
      }

      if (std::get_if<wire::StatsRequestMsg>(&message) != nullptr) {
        if (!c.write(wire::frame_stats_snapshot(stats_snapshot()))) break;
        continue;
      }

      throw_error(ErrorCode::kState,
                  "broker server: unexpected " +
                      std::string(wire::to_string(
                          wire::peek_type(*frame))) +
                      " frame from a client");
    }
  } catch (const Error& e) {
    // Peer-behavior socket kState (abrupt close mid-frame, resets,
    // timeouts) is normal client lifecycle; corrupt streams (kParse) and
    // protocol violations are worth surfacing — each categorized exactly
    // once per dropped connection in the error counters.
    // (what() carries the "genas: [code]" prefix, hence find, not
    // starts_with.)
    const bool peer_lifecycle =
        e.code() == ErrorCode::kState &&
        std::string_view(e.what()).find("socket:") != std::string_view::npos;
    if (!peer_lifecycle && !impl.stopping.load()) {
      if (e.code() == ErrorCode::kParse) {
        impl.errors_parse.add(1);
      } else if (e.code() == ErrorCode::kState) {
        impl.errors_protocol.add(1);
      } else {
        impl.errors_internal.add(1);
      }
      record_error(e.what());
    }
  } catch (const std::exception& e) {
    if (!impl.stopping.load()) {
      impl.errors_internal.add(1);
      record_error(e.what());
    }
  }
  cleanup_connection(c);
  c.done.store(true, std::memory_order_release);
}

void BrokerServer::cleanup_connection(Connection& connection) {
  if (connection.cleaned.exchange(true)) return;
  connection.open.store(false, std::memory_order_release);
  connection.channel.shutdown();
  Impl& impl = *impl_;
  if (connection.drain_hook != 0) {
    try {
      Broker& broker = impl.broker != nullptr
                           ? *impl.broker
                           : impl.mesh->node_broker(impl.node);
      broker.remove_drain_hook(connection.drain_hook);
    } catch (const std::exception&) {
      // A service already shut down discarded the hook wholesale.
    }
    connection.drain_hook = 0;
  }
  // Retract everything the client registered — exactly once; composite
  // retraction drops the broker's refcounted leaves (and, in mesh mode,
  // the per-link routing entries) with it. A service already shut down
  // has discarded the state wholesale, so kState here is benign.
  for (const auto& [key, id] : connection.subs) {
    try {
      if (impl.broker != nullptr) {
        impl.broker->unsubscribe(id);
      } else {
        impl.mesh->unsubscribe(id);
      }
    } catch (const std::exception&) {
    }
  }
  connection.subs.clear();
  for (const auto& [key, id] : connection.csubs) {
    try {
      if (impl.broker != nullptr) {
        impl.broker->unsubscribe_composite(id);
      } else {
        impl.mesh->unsubscribe(id);
      }
    } catch (const std::exception&) {
    }
  }
  connection.csubs.clear();
}

}  // namespace genas::net
