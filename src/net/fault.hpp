// GENAS — deterministic fault injection for links and transports.
//
// A FaultPlan is a seeded, declarative schedule of link misbehavior: "drop
// the 3rd frame from node 1 to node 2", "duplicate 1% of frames on every
// link, at most 50 times", "delay the 7th frame so it arrives after its
// successors". The mesh (MeshOptions::fault_plan) and the hostile scenario
// suite consult it once per frame send; the returned action is applied by
// the transport, so the plan itself stays transport-agnostic.
//
// Determinism is the whole point: the probabilistic rules draw from one
// seeded RNG in frame-send order, so a failing chaos run reproduces from
// its seed alone. Budgets bound every probabilistic rule — an unbounded
// drop rule would defeat quiescence (retransmission could never win), so
// the plan's total damage is always finite.
//
// Thread safety: apply() is called concurrently from every mesh worker;
// the plan serializes internally. Rule installation is expected before the
// traffic starts (it shares the same lock, but interleaving installs with
// traffic makes the schedule racy, which defeats reproducibility).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace genas::net {

/// Wildcard endpoint: a rule with kAnyLink matches every source/target.
inline constexpr std::uint64_t kAnyLink = ~std::uint64_t{0};

/// What the transport must do with the frame it is about to send.
enum class FaultAction : std::uint8_t {
  kNone,       ///< send normally
  kDrop,       ///< do not send (recovery = retransmission)
  kDuplicate,  ///< send twice
  kDelay,      ///< hold the frame; release it after later traffic (reorder)
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  // Deterministic rules: act on the n-th frame (1-based) sent on the
  // directed link source -> target. kAnyLink wildcards an endpoint; the
  // frame count is then still tracked per directed link.
  void drop_nth(std::uint64_t source, std::uint64_t target, std::uint64_t n);
  void duplicate_nth(std::uint64_t source, std::uint64_t target,
                     std::uint64_t n);
  void delay_nth(std::uint64_t source, std::uint64_t target, std::uint64_t n);

  // Probabilistic rules: act on each matching frame with `probability`,
  // at most `budget` times (Error{kInvalidArgument} for probability
  // outside [0,1] or a zero budget — unbounded damage is not a plan).
  void drop_chance(std::uint64_t source, std::uint64_t target,
                   double probability, std::uint64_t budget);
  void duplicate_chance(std::uint64_t source, std::uint64_t target,
                        double probability, std::uint64_t budget);
  void delay_chance(std::uint64_t source, std::uint64_t target,
                    double probability, std::uint64_t budget);

  /// Called by the transport once per frame send on source -> target;
  /// returns the action for this frame. The first matching rule wins.
  FaultAction apply(std::uint64_t source, std::uint64_t target);

  /// Injection totals so far.
  struct Stats {
    std::uint64_t frames = 0;      ///< apply() calls
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
  };
  Stats stats() const;

 private:
  struct Rule {
    std::uint64_t source = kAnyLink;
    std::uint64_t target = kAnyLink;
    FaultAction action = FaultAction::kNone;
    std::uint64_t nth = 0;         ///< 0 = probabilistic rule
    double probability = 0.0;
    std::uint64_t budget = 0;      ///< remaining applications (chance rules)
    bool spent = false;            ///< nth rules fire exactly once
  };

  void add_nth(std::uint64_t source, std::uint64_t target, FaultAction action,
               std::uint64_t n);
  void add_chance(std::uint64_t source, std::uint64_t target,
                  FaultAction action, double probability,
                  std::uint64_t budget);

  const std::uint64_t seed_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<Rule> rules_;
  /// Frames seen per directed link (key = source << 32 | target for real
  /// node ids; links are identified by their endpoints).
  std::unordered_map<std::uint64_t, std::uint64_t> frame_counts_;
  Stats stats_;
};

}  // namespace genas::net
