// GENAS — RemoteBrokerClient: the Broker API over a TCP connection.
//
// Connects to a BrokerServer, adopts the server's schema from the
// handshake frame, and mirrors the local service surface: subscribe /
// unsubscribe (plain and composite) and publish, with notifications and
// composite firings delivered to local callbacks from a background reader
// thread. flush() is the synchronization point: it round-trips a barrier
// token, and when it returns every delivery caused by this client's
// earlier publishes has already been dispatched to its callback (the
// server writes those deliveries before the barrier reply; see
// broker_server.hpp for the exact ordering contract).
//
// Threading: API calls are safe from any thread (writes serialize on an
// internal mutex). Callbacks run on the reader thread, one at a time, and
// may call subscribe/unsubscribe/publish — but not flush() or close(),
// which wait on the reader and would deadlock. A notification racing its
// own unsubscribe() may be dispatched once more after unsubscribe returns
// (the retraction is in flight to the server), mirroring the local
// broker's snapshot semantics.
//
// Failure model: when the connection drops — server gone, stream corrupt,
// write timeout — the client transitions to disconnected: pending and
// future flush() calls throw Error{kState}, sends throw, callbacks stop.
// last_error() keeps the reason.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "ens/broker.hpp"
#include "net/socket_channel.hpp"

namespace genas::net {

class RemoteBrokerClient {
 public:
  /// Connects and performs the schema handshake (bounded by
  /// timeouts.connect + timeouts.read).
  RemoteBrokerClient(const std::string& host, std::uint16_t port,
                     SocketTimeouts timeouts = {});
  ~RemoteBrokerClient();

  RemoteBrokerClient(const RemoteBrokerClient&) = delete;
  RemoteBrokerClient& operator=(const RemoteBrokerClient&) = delete;

  /// The service schema, adopted from the server's handshake.
  const SchemaPtr& schema() const noexcept { return schema_; }

  SubscriptionId subscribe(Profile profile, NotificationCallback callback);
  SubscriptionId subscribe(std::string_view expression,
                           NotificationCallback callback);
  void unsubscribe(SubscriptionId id);

  SubscriptionId subscribe_composite(CompositeExprPtr expression,
                                     CompositeCallback callback);
  SubscriptionId subscribe_composite(std::string_view expression,
                                     CompositeCallback callback);
  void unsubscribe_composite(SubscriptionId id);

  void publish(const Event& event);
  /// Parses "a=1; b=2" against the server schema, then publishes.
  void publish(std::string_view event_text, Timestamp time = 0);

  /// Barrier: returns once the server has processed every frame this
  /// client sent before the call and the resulting deliveries have been
  /// dispatched locally. Also drains the service's buffered composite
  /// instants (the server calls flush_composites). Throws Error{kState}
  /// when the connection is (or goes) down. Not callable from a callback.
  void flush();

  bool connected() const noexcept { return connected_.load(); }
  /// Why the connection ended (empty while connected / after close()).
  std::string last_error() const;

  /// Notifications dispatched to this client (plain deliveries only).
  std::uint64_t deliveries() const noexcept { return deliveries_.load(); }
  /// Composite firings dispatched to this client.
  std::uint64_t firings() const noexcept { return firings_.load(); }

  /// Graceful teardown: stops the reader and closes the socket. The server
  /// retracts this client's subscriptions on disconnect. Idempotent; not
  /// callable from a callback.
  void close();

 private:
  void run_reader();
  void send_frame(const std::vector<std::uint8_t>& frame);
  void fail(const std::string& why);

  SchemaPtr schema_;
  SocketChannel channel_;

  std::mutex write_mutex_;
  std::atomic<bool> connected_{false};
  std::atomic<bool> closing_{false};

  mutable std::mutex state_mutex_;  // callbacks map + flush bookkeeping + error
  std::unordered_map<SubscriptionId,
                     std::shared_ptr<const NotificationCallback>>
      callbacks_;
  std::unordered_map<SubscriptionId, std::shared_ptr<const CompositeCallback>>
      composite_callbacks_;
  std::condition_variable flush_cv_;
  std::uint64_t flush_acked_ = 0;
  std::string last_error_;

  std::atomic<std::uint64_t> next_key_{1};
  std::atomic<std::uint64_t> next_flush_token_{1};
  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> firings_{0};

  std::thread reader_;
};

}  // namespace genas::net
