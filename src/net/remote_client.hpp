// GENAS — RemoteBrokerClient: the Broker API over a TCP connection.
//
// Connects to a BrokerServer, adopts the server's schema from the
// handshake frame, and mirrors the local service surface: subscribe /
// unsubscribe (plain and composite) and publish, with notifications and
// composite firings delivered to local callbacks from a background reader
// thread. flush() is the synchronization point: it round-trips a barrier
// token, and when it returns every delivery caused by this client's
// earlier publishes has already been dispatched to its callback (the
// server writes those deliveries before the barrier reply; see
// broker_server.hpp for the exact ordering contract).
//
// Threading: API calls are safe from any thread (writes serialize on an
// internal mutex). Callbacks run on the reader thread, one at a time, and
// may call subscribe/unsubscribe/publish — but not flush() or close(),
// which wait on the reader and would deadlock. A notification racing its
// own unsubscribe() may be dispatched once more after unsubscribe returns
// (the retraction is in flight to the server), mirroring the local
// broker's snapshot semantics.
//
// Failure model without reconnect (the default): when the connection drops
// — server gone, stream corrupt, write timeout — the client transitions to
// disconnected: pending and future flush() calls throw Error{kState},
// sends throw, callbacks stop. last_error() keeps the reason.
//
// Reconnect mode (ClientOptions::reconnect): the client holds a session.
// On connect it sends a kHello carrying a random nonzero session id; the
// server acknowledges with kHelloAck{resumed, id, publish watermark}.
// Publishes travel in kLinkFrame envelopes carrying a per-session monotone
// sequence and are retained in a bounded replay window. When the stream
// dies the reader redials with capped exponential backoff, re-performs the
// schema + hello handshake, re-sends every live subscription byte-for-byte
// from the local mirror, and replays buffered publishes above the server's
// watermark. Against a live server (session resumed) the watermark makes
// replayed publishes exactly-once; against a restarted server (session
// unknown, adopted fresh) replays are at-least-once — duplicates are
// bounded by the window, counted by the server, and composite detection
// stays exact because the per-publish dedup token (a mix of session id and
// sequence, both stable across reconnects) lets the broker's composite
// ingress drop redelivered stimuli. API calls during a redial block on the
// write lock until the session is re-established or abandoned; only after
// the last redial fails does the client transition to disconnected.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ens/broker.hpp"
#include "net/socket_channel.hpp"
#include "obs/metrics.hpp"

namespace genas::net {

struct ClientOptions {
  SocketTimeouts timeouts{};
  /// Survive connection loss: redial, resubscribe, replay (see above).
  bool reconnect = false;
  /// Redial attempts per disconnect episode before giving up.
  std::size_t max_redials = 8;
  /// First redial backoff; doubles per attempt up to redial_backoff_cap.
  std::chrono::milliseconds redial_backoff{10};
  std::chrono::milliseconds redial_backoff_cap{1000};
  /// Sequenced publishes retained for replay. Older entries fall off: a
  /// reconnect replays at most this many publishes.
  std::size_t publish_window = 256;
  /// Session identity; 0 derives a random nonzero id. Pass an explicit id
  /// to resume a session across client restarts.
  std::uint64_t session_id = 0;
};

class RemoteBrokerClient {
 public:
  /// Connects and performs the schema handshake (bounded by
  /// timeouts.connect + timeouts.read).
  RemoteBrokerClient(const std::string& host, std::uint16_t port,
                     SocketTimeouts timeouts = {});
  /// Connects with full options (reconnect mode lives here).
  RemoteBrokerClient(const std::string& host, std::uint16_t port,
                     ClientOptions options);
  ~RemoteBrokerClient();

  RemoteBrokerClient(const RemoteBrokerClient&) = delete;
  RemoteBrokerClient& operator=(const RemoteBrokerClient&) = delete;

  /// The service schema, adopted from the server's handshake.
  const SchemaPtr& schema() const noexcept { return schema_; }

  SubscriptionId subscribe(Profile profile, NotificationCallback callback);
  SubscriptionId subscribe(std::string_view expression,
                           NotificationCallback callback);
  void unsubscribe(SubscriptionId id);

  SubscriptionId subscribe_composite(CompositeExprPtr expression,
                                     CompositeCallback callback);
  SubscriptionId subscribe_composite(std::string_view expression,
                                     CompositeCallback callback);
  void unsubscribe_composite(SubscriptionId id);

  void publish(const Event& event);
  /// Parses "a=1; b=2" against the server schema, then publishes.
  void publish(std::string_view event_text, Timestamp time = 0);

  /// Barrier: returns once the server has processed every frame this
  /// client sent before the call and the resulting deliveries have been
  /// dispatched locally. Also drains the service's buffered composite
  /// instants (the server calls flush_composites). Throws Error{kState}
  /// when the connection is (or goes) down. Not callable from a callback.
  void flush();
  /// flush() with a deadline: throws Error{kTimeout} when the barrier
  /// reply does not arrive within `timeout` (the connection stays up — a
  /// later flush can still succeed). Negative means wait forever.
  void flush(std::chrono::milliseconds timeout);

  /// Scrapes the service's observability snapshot (a kStatsRequest round
  /// trip): the server-level genas_server_* metrics merged with the served
  /// broker's — or whole mesh's — registries. Blocks until the snapshot
  /// frame arrives; a non-negative `timeout` throws Error{kTimeout} on
  /// expiry. Concurrent callers serialize (the request frame carries no
  /// token, so one scrape is outstanding at a time). Not callable from a
  /// callback; in reconnect mode a redial loses the in-flight request, so
  /// pass a timeout there.
  obs::StatsSnapshot stats(
      std::chrono::milliseconds timeout = std::chrono::milliseconds{-1});

  bool connected() const noexcept { return connected_.load(); }
  /// Why the connection ended (empty while connected / after close()).
  std::string last_error() const;

  /// Notifications dispatched to this client (plain deliveries only).
  std::uint64_t deliveries() const noexcept { return deliveries_.load(); }
  /// Composite firings dispatched to this client.
  std::uint64_t firings() const noexcept { return firings_.load(); }
  /// Successful session re-establishments (reconnect mode).
  std::uint64_t reconnects() const noexcept { return reconnects_.load(); }
  /// Publishes re-sent during reconnects — an upper bound on the
  /// at-least-once duplicates this client can have caused.
  std::uint64_t replayed_publishes() const noexcept {
    return replayed_publishes_.load();
  }
  /// The session identity (0 unless reconnect mode).
  std::uint64_t session_id() const noexcept { return session_id_; }

  /// Graceful teardown: stops the reader and closes the socket. The server
  /// retracts this client's subscriptions on disconnect. Idempotent; not
  /// callable from a callback.
  void close();

 private:
  using Frame = std::vector<std::uint8_t>;

  void run_reader();
  /// Drains the stream; returns on end-of-stream, throws on errors.
  void read_loop();
  /// Redials, re-handshakes, resubscribes, and replays. Holds write_mutex_
  /// for the whole episode so API writes queue behind the recovery.
  bool reconnect_session();
  void send_frame(const Frame& frame);
  /// Sends under one write_mutex_ hold and mirrors the frame for
  /// resubscribe-on-reconnect (composite selects the mirror map).
  void send_subscription(SubscriptionId key, Frame frame, bool composite);
  void fail(const std::string& why);

  SchemaPtr schema_;
  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  std::uint64_t session_id_ = 0;  // fixed after construction
  SocketChannel channel_;

  std::mutex write_mutex_;
  std::atomic<bool> connected_{false};
  std::atomic<bool> closing_{false};
  std::atomic<bool> failed_{false};

  // Session mirror and replay window (guarded by write_mutex_): the exact
  // frames a reconnect must re-send.
  std::unordered_map<SubscriptionId, Frame> sub_frames_;
  std::unordered_map<SubscriptionId, Frame> csub_frames_;
  std::uint64_t publish_seq_ = 0;
  std::map<std::uint64_t, Frame> sent_window_;  // seq -> envelope

  mutable std::mutex state_mutex_;  // callbacks map + flush bookkeeping + error
  std::unordered_map<SubscriptionId,
                     std::shared_ptr<const NotificationCallback>>
      callbacks_;
  std::unordered_map<SubscriptionId, std::shared_ptr<const CompositeCallback>>
      composite_callbacks_;
  std::condition_variable flush_cv_;
  std::uint64_t flush_acked_ = 0;
  std::uint64_t highest_flush_token_ = 0;  // re-flushed after a reconnect
  /// Stats scrape bookkeeping: the reader bumps the generation when a
  /// snapshot frame lands; stats() waits for a generation newer than the
  /// one it observed before sending its request.
  std::uint64_t stats_generation_ = 0;
  obs::StatsSnapshot stats_reply_;
  std::string last_error_;

  /// Serializes stats() callers (one untokened request outstanding).
  std::mutex stats_mutex_;

  std::atomic<std::uint64_t> next_key_{1};
  std::atomic<std::uint64_t> next_flush_token_{1};
  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> firings_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> replayed_publishes_{0};

  std::thread reader_;
};

}  // namespace genas::net
