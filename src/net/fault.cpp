#include "net/fault.hpp"

#include "common/error.hpp"

namespace genas::net {

namespace {

std::uint64_t link_key(std::uint64_t source, std::uint64_t target) noexcept {
  // Node ids are small and dense in practice; fold the pair into one key.
  return (source << 32) ^ (target + 0x9E3779B97F4A7C15ULL);
}

}  // namespace

void FaultPlan::add_nth(std::uint64_t source, std::uint64_t target,
                        FaultAction action, std::uint64_t n) {
  GENAS_REQUIRE(n >= 1, ErrorCode::kInvalidArgument,
                "fault rule frame index is 1-based");
  const std::scoped_lock lock(mutex_);
  rules_.push_back(Rule{source, target, action, n, 0.0, 0, false});
}

void FaultPlan::add_chance(std::uint64_t source, std::uint64_t target,
                           FaultAction action, double probability,
                           std::uint64_t budget) {
  GENAS_REQUIRE(probability >= 0.0 && probability <= 1.0,
                ErrorCode::kInvalidArgument,
                "fault probability must lie in [0, 1]");
  GENAS_REQUIRE(budget >= 1, ErrorCode::kInvalidArgument,
                "a probabilistic fault rule needs a finite nonzero budget");
  const std::scoped_lock lock(mutex_);
  rules_.push_back(Rule{source, target, action, 0, probability, budget, false});
}

void FaultPlan::drop_nth(std::uint64_t source, std::uint64_t target,
                         std::uint64_t n) {
  add_nth(source, target, FaultAction::kDrop, n);
}

void FaultPlan::duplicate_nth(std::uint64_t source, std::uint64_t target,
                              std::uint64_t n) {
  add_nth(source, target, FaultAction::kDuplicate, n);
}

void FaultPlan::delay_nth(std::uint64_t source, std::uint64_t target,
                          std::uint64_t n) {
  add_nth(source, target, FaultAction::kDelay, n);
}

void FaultPlan::drop_chance(std::uint64_t source, std::uint64_t target,
                            double probability, std::uint64_t budget) {
  add_chance(source, target, FaultAction::kDrop, probability, budget);
}

void FaultPlan::duplicate_chance(std::uint64_t source, std::uint64_t target,
                                 double probability, std::uint64_t budget) {
  add_chance(source, target, FaultAction::kDuplicate, probability, budget);
}

void FaultPlan::delay_chance(std::uint64_t source, std::uint64_t target,
                             double probability, std::uint64_t budget) {
  add_chance(source, target, FaultAction::kDelay, probability, budget);
}

FaultAction FaultPlan::apply(std::uint64_t source, std::uint64_t target) {
  const std::scoped_lock lock(mutex_);
  ++stats_.frames;
  const std::uint64_t frame = ++frame_counts_[link_key(source, target)];
  for (Rule& rule : rules_) {
    if (rule.source != kAnyLink && rule.source != source) continue;
    if (rule.target != kAnyLink && rule.target != target) continue;
    if (rule.nth != 0) {
      if (rule.spent || frame != rule.nth) continue;
      rule.spent = true;
    } else {
      if (rule.budget == 0 || !rng_.chance(rule.probability)) continue;
      --rule.budget;
    }
    switch (rule.action) {
      case FaultAction::kDrop:      ++stats_.dropped; break;
      case FaultAction::kDuplicate: ++stats_.duplicated; break;
      case FaultAction::kDelay:     ++stats_.delayed; break;
      case FaultAction::kNone:      break;
    }
    return rule.action;
  }
  return FaultAction::kNone;
}

FaultPlan::Stats FaultPlan::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace genas::net
