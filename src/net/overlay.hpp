// GENAS — distributed event filtering over a broker overlay.
//
// The paper situates its filter in distributed event services: Siena (its
// ref [3]) "implements profile and event propagation within a network" with
// early rejection on event level, and the conclusion targets "resource
// critical environments" where unnecessary event information is rejected as
// early as possible. This module provides that setting as a deterministic
// single-process simulation: an acyclic overlay of brokers, each running
// the distribution-based profile tree, with three routing modes:
//
//   kFlooding         events traverse every link (no routing state)
//   kRouting          subscriptions are propagated to every broker; events
//                     are forwarded over a link only when they match some
//                     profile registered behind it (content-based routing)
//   kRoutingCovered   like kRouting, but a subscription stops propagating
//                     at brokers where an already-forwarded profile covers
//                     it (Siena-style covering optimization)
//
// Costs are reported in the paper's currency: filter operations (summed
// over all brokers' trees) plus link messages. The per-link routing tables
// (LinkTable, src/net/routing.hpp) are shared with the concurrent mesh
// runtime (src/mesh/), which this simulation serves as the oracle for.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/ordering_policy.hpp"
#include "match/tree_matcher.hpp"
#include "net/routing.hpp"

namespace genas::net {

/// Overlay-wide configuration.
struct OverlayOptions {
  RoutingMode mode = RoutingMode::kRoutingCovered;
  /// Filter policy used by every broker's trees (local and per-link).
  OrderingPolicy policy;
  /// Event distribution handed to the trees (required by V1/V3/A2/A3).
  std::optional<JointDistribution> event_distribution;
};

/// Acyclic broker overlay (a tree of brokers).
class OverlayNetwork {
 public:
  OverlayNetwork(SchemaPtr schema, OverlayOptions options);

  /// Adds a broker; returns its id (0-based, dense).
  NodeId add_broker();

  /// Connects two brokers with a bidirectional link. Throws if the link
  /// would close a cycle (the overlay must stay a forest).
  void connect(NodeId a, NodeId b);

  /// Registers a subscription at `node` and propagates it per the routing
  /// mode. Returns a network-wide subscription handle.
  std::uint64_t subscribe(NodeId node, Profile profile);

  /// Publishes an event at `node`: local matching plus forwarding. Returns
  /// the number of deliveries network-wide.
  std::size_t publish(NodeId node, const Event& event);

  std::size_t broker_count() const noexcept { return brokers_.size(); }

  /// Number of profiles held in `node`'s routing table for all links
  /// (0 in flooding mode).
  std::size_t routing_entries(NodeId node) const;

  /// Local subscriptions registered at `node`.
  std::size_t local_subscriptions(NodeId node) const;

  const OverlayStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = OverlayStats{}; }

 private:
  struct Link {
    NodeId peer;
    /// Profiles interested in events flowing toward `peer` (routing modes).
    std::unique_ptr<LinkTable> table;
  };

  struct Broker {
    std::unique_ptr<ProfileSet> local;
    std::unique_ptr<TreeMatcher> matcher;
    std::uint64_t matcher_version = ~0ULL;
    std::vector<Link> links;
  };

  void validate_node(NodeId node) const;
  Link& link_to(NodeId from, NodeId to);

  /// Registers `profile` into `from`'s table toward `to` and recursively
  /// propagates behind `to`; covering may suppress it part-way.
  void propagate(NodeId from, NodeId to, std::uint64_t key,
                 const Profile& profile);

  /// Matching with lazy tree rebuild; counts operations into stats_.
  const TreeMatcher& local_matcher(NodeId node);

  void forward(NodeId node, NodeId from, const Event& event,
               std::size_t& deliveries);

  SchemaPtr schema_;
  OverlayOptions options_;
  std::vector<Broker> brokers_;
  std::vector<NodeId> forest_;  // union-find parent for cycle detection
  OverlayStats stats_;
  std::uint64_t next_subscription_ = 1;
};

}  // namespace genas::net
