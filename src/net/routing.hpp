// GENAS — content-based routing state shared by the overlay simulation and
// the concurrent broker mesh.
//
// Siena-style routing (the paper's ref [3]) keeps, per link, the set of
// profiles registered somewhere behind that link; an event crosses the link
// only when it matches one of them. The covering optimization suppresses a
// profile at a link whose table already holds a more general one, so only
// the most general profiles propagate through the network.
//
// LinkTable is that per-link table. Both src/net/overlay.* (the
// deterministic single-threaded simulation) and src/mesh/* (the
// multi-threaded runtime) build on it, so suppression order, entry counts,
// and matcher behavior are identical by construction — the property the
// mesh-vs-overlay oracle test asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "core/ordering_policy.hpp"
#include "match/tree_matcher.hpp"
#include "profile/covering.hpp"

namespace genas::net {

using NodeId = std::size_t;

enum class RoutingMode : std::uint8_t {
  kFlooding,
  kRouting,
  kRoutingCovered,
};

std::string_view to_string(RoutingMode mode) noexcept;

/// Aggregate cost counters in the paper's currency: filter operations plus
/// link messages. Shared by OverlayNetwork and MeshNetwork so their numbers
/// are directly comparable.
struct OverlayStats {
  std::uint64_t events_published = 0;
  std::uint64_t event_messages = 0;    ///< event transmissions over links
  std::uint64_t profile_messages = 0;  ///< routing-table entries installed
  std::uint64_t filter_operations = 0; ///< comparisons across all brokers
  std::uint64_t deliveries = 0;        ///< local notifications
};

/// Per-link routing table with covering.
///
/// Entries are keyed by a network-wide subscription id. An `add` either
/// installs the profile (it participates in forwarding decisions and must be
/// propagated onward by the caller) or — in covering mode — suppresses it
/// when an installed entry already covers it. Suppressed entries are
/// remembered so a later `remove` of the covering entry can promote them
/// back into the table (the caller then propagates the promoted profiles
/// onward, exactly like fresh subscriptions).
class LinkTable {
 public:
  explicit LinkTable(SchemaPtr schema);

  /// Installs `profile` under `key`, or suppresses it when `covering` is set
  /// and an installed entry covers it. Returns true when installed — the
  /// caller should propagate the profile onward; false means propagation
  /// stops here.
  bool add(std::uint64_t key, const Profile& profile, bool covering);

  /// Outcome of removing a key.
  struct Removal {
    bool removed = false;    ///< the key was present (installed or suppressed)
    bool installed = false;  ///< it was installed (so it had propagated onward)
    /// Entries previously suppressed by the removed key, now installed here;
    /// the caller must propagate them onward like fresh subscriptions.
    std::vector<std::pair<std::uint64_t, Profile>> promoted;
  };
  Removal remove(std::uint64_t key);

  /// Number of installed (forwarding-relevant) entries.
  std::size_t entry_count() const noexcept { return forwarded_->active_count(); }

  bool empty() const noexcept { return forwarded_->active_count() == 0; }

  /// Matcher over the installed entries, lazily rebuilt after mutations.
  const TreeMatcher& matcher(const OrderingPolicy& policy,
                             const std::optional<JointDistribution>& dist);

 private:
  struct Installed {
    std::uint64_t key;
    Profile profile;
    ProfileId id;  ///< id inside forwarded_
  };
  struct Suppressed {
    std::uint64_t key;
    Profile profile;
    std::uint64_t covered_by;  ///< key of the installed entry that covers it
  };

  SchemaPtr schema_;
  std::unique_ptr<ProfileSet> forwarded_;
  std::vector<Installed> installed_;
  std::vector<Suppressed> suppressed_;
  std::unique_ptr<TreeMatcher> matcher_;  // lazily rebuilt
  std::uint64_t matcher_version_ = ~0ULL;
};

}  // namespace genas::net
