#include "net/overlay.hpp"

#include "common/error.hpp"

namespace genas::net {

OverlayNetwork::OverlayNetwork(SchemaPtr schema, OverlayOptions options)
    : schema_(std::move(schema)), options_(std::move(options)) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "overlay requires a schema");
}

NodeId OverlayNetwork::add_broker() {
  Broker broker;
  broker.local = std::make_unique<ProfileSet>(schema_);
  brokers_.push_back(std::move(broker));
  forest_.push_back(forest_.size());  // own root
  return brokers_.size() - 1;
}

void OverlayNetwork::validate_node(NodeId node) const {
  GENAS_REQUIRE(node < brokers_.size(), ErrorCode::kNotFound,
                "unknown broker id " + std::to_string(node));
}

namespace {
NodeId find_root(std::vector<NodeId>& forest, NodeId x) {
  while (forest[x] != x) {
    forest[x] = forest[forest[x]];  // path halving
    x = forest[x];
  }
  return x;
}
}  // namespace

void OverlayNetwork::connect(NodeId a, NodeId b) {
  validate_node(a);
  validate_node(b);
  GENAS_REQUIRE(a != b, ErrorCode::kInvalidArgument,
                "cannot link a broker to itself");
  const NodeId ra = find_root(forest_, a);
  const NodeId rb = find_root(forest_, b);
  GENAS_REQUIRE(ra != rb, ErrorCode::kInvalidArgument,
                "link would close a cycle; the overlay must stay acyclic");
  forest_[ra] = rb;

  const auto make_link = [&](NodeId peer) {
    Link link;
    link.peer = peer;
    link.table = std::make_unique<LinkTable>(schema_);
    return link;
  };
  brokers_[a].links.push_back(make_link(b));
  brokers_[b].links.push_back(make_link(a));
}

OverlayNetwork::Link& OverlayNetwork::link_to(NodeId from, NodeId to) {
  for (Link& link : brokers_[from].links) {
    if (link.peer == to) return link;
  }
  throw_error(ErrorCode::kInternal, "missing link in overlay");
}

void OverlayNetwork::propagate(NodeId from, NodeId to, std::uint64_t key,
                               const Profile& profile) {
  // `to` learns that the subscriber is reachable via `from`: the routing
  // entry lives at `to`, on its link back toward `from`, so that events
  // arriving at `to` are forwarded toward the subscriber.
  Link& link = link_to(to, from);
  const bool covering = options_.mode == RoutingMode::kRoutingCovered;
  if (!link.table->add(key, profile, covering)) return;  // suppressed
  ++stats_.profile_messages;

  // Brokers behind `to` learn the profile the same way.
  for (const Link& onward : brokers_[to].links) {
    if (onward.peer == from) continue;
    propagate(to, onward.peer, key, profile);
  }
}

std::uint64_t OverlayNetwork::subscribe(NodeId node, Profile profile) {
  validate_node(node);
  GENAS_REQUIRE(profile.schema() == schema_, ErrorCode::kInvalidArgument,
                "profile schema differs from overlay schema");
  const std::uint64_t key = next_subscription_++;
  brokers_[node].local->add(profile);
  if (options_.mode != RoutingMode::kFlooding) {
    for (const Link& link : brokers_[node].links) {
      propagate(node, link.peer, key, profile);
    }
  }
  return key;
}

const TreeMatcher& OverlayNetwork::local_matcher(NodeId node) {
  Broker& broker = brokers_[node];
  if (broker.matcher == nullptr ||
      broker.matcher_version != broker.local->version()) {
    broker.matcher = std::make_unique<TreeMatcher>(
        *broker.local, options_.policy, options_.event_distribution);
    broker.matcher_version = broker.local->version();
  }
  return *broker.matcher;
}

void OverlayNetwork::forward(NodeId node, NodeId from, const Event& event,
                             std::size_t& deliveries) {
  // Local matching at this broker.
  const MatchOutcome local = local_matcher(node).match(event);
  stats_.filter_operations += local.operations;
  deliveries += local.matched.size();
  stats_.deliveries += local.matched.size();

  // Forwarding decision per outgoing link.
  for (std::size_t i = 0; i < brokers_[node].links.size(); ++i) {
    Link& link = brokers_[node].links[i];
    if (link.peer == from) continue;
    bool send = true;
    if (options_.mode != RoutingMode::kFlooding) {
      const MatchOutcome routed =
          link.table->matcher(options_.policy, options_.event_distribution)
              .match(event);
      stats_.filter_operations += routed.operations;
      send = !routed.matched.empty();
    }
    if (send) {
      ++stats_.event_messages;
      forward(link.peer, node, event, deliveries);
    }
  }
}

std::size_t OverlayNetwork::publish(NodeId node, const Event& event) {
  validate_node(node);
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "event schema differs from overlay schema");
  ++stats_.events_published;
  std::size_t deliveries = 0;
  forward(node, node, event, deliveries);
  return deliveries;
}

std::size_t OverlayNetwork::routing_entries(NodeId node) const {
  validate_node(node);
  std::size_t total = 0;
  for (const Link& link : brokers_[node].links) {
    total += link.table->entry_count();
  }
  return total;
}

std::size_t OverlayNetwork::local_subscriptions(NodeId node) const {
  validate_node(node);
  return brokers_[node].local->active_count();
}

}  // namespace genas::net
