// GENAS — Matcher adapter over the profile tree.
//
// Wraps a ProfileTree (with any ordering policy) behind the common Matcher
// interface so the benchmark harness and broker can swap algorithms freely.
#pragma once

#include <memory>
#include <optional>

#include "core/ordering_policy.hpp"
#include "match/matcher.hpp"
#include "tree/profile_tree.hpp"

namespace genas {

class TreeMatcher final : public Matcher {
 public:
  TreeMatcher(const ProfileSet& profiles, OrderingPolicy policy,
              std::optional<JointDistribution> event_distribution);

  std::string_view name() const noexcept override { return "tree"; }

  MatchOutcome match(const Event& event) const override;

  void rebuild(const ProfileSet& profiles) override;

  const ProfileTree& tree() const noexcept { return *tree_; }

 private:
  OrderingPolicy policy_;
  std::optional<JointDistribution> distribution_;
  std::unique_ptr<const ProfileTree> tree_;
};

}  // namespace genas
