// GENAS — Matcher adapter over the profile tree.
//
// Wraps a ProfileTree (with any ordering policy) behind the common Matcher
// interface so the benchmark harness and broker can swap algorithms freely.
#pragma once

#include <memory>
#include <optional>

#include "core/ordering_policy.hpp"
#include "match/matcher.hpp"
#include "tree/flat_tree.hpp"
#include "tree/profile_tree.hpp"

namespace genas {

class TreeMatcher final : public Matcher {
 public:
  TreeMatcher(const ProfileSet& profiles, OrderingPolicy policy,
              std::optional<JointDistribution> event_distribution);

  std::string_view name() const noexcept override { return "tree"; }

  /// Matches against the flat compiled form (the hot path). Set
  /// `use_flat_layout(false)` to force the node form (layout benchmarks).
  MatchOutcome match(const Event& event) const override;

  void rebuild(const ProfileSet& profiles) override;

  const ProfileTree& tree() const noexcept { return *tree_; }
  const FlatProfileTree& flat() const noexcept { return *flat_; }

  void use_flat_layout(bool flat) noexcept { use_flat_ = flat; }

 private:
  OrderingPolicy policy_;
  std::optional<JointDistribution> distribution_;
  std::unique_ptr<const ProfileTree> tree_;
  std::unique_ptr<const FlatProfileTree> flat_;
  bool use_flat_ = true;
};

}  // namespace genas
