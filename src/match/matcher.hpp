// GENAS — the common matcher interface.
//
// The paper compares the tree algorithm against the broader design space of
// main-memory matchers (§2: simple algorithms, clustering/counting,
// tree-based). Every matcher consumes a snapshot of a profile set and
// reports, per event, the matched profiles plus the number of elementary
// operations it performed — the paper's platform-independent cost metric.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "event/event.hpp"
#include "profile/profile.hpp"

namespace genas {

/// Result of matching one event through any matcher.
struct MatchOutcome {
  std::vector<ProfileId> matched;  ///< ascending profile ids
  std::uint64_t operations = 0;    ///< counted elementary operations
};

/// Abstract profile matcher over a snapshot of a ProfileSet.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Human-readable algorithm name ("naive", "counting", "tree").
  virtual std::string_view name() const noexcept = 0;

  /// Matches one event. Implementations are const and thread-safe.
  virtual MatchOutcome match(const Event& event) const = 0;

  /// Re-synchronizes with the profile set after add/remove.
  virtual void rebuild(const ProfileSet& profiles) = 0;
};

}  // namespace genas
