// GENAS — the naive baseline matcher.
//
// Evaluates every profile against every event, short-circuiting on the first
// failing predicate ("simple algorithms" in the paper's taxonomy, §2). One
// operation = one predicate evaluation. This is also the test oracle every
// other matcher is validated against.
#pragma once

#include <vector>

#include "match/matcher.hpp"

namespace genas {

class NaiveMatcher final : public Matcher {
 public:
  explicit NaiveMatcher(const ProfileSet& profiles) { rebuild(profiles); }

  std::string_view name() const noexcept override { return "naive"; }

  MatchOutcome match(const Event& event) const override;

  void rebuild(const ProfileSet& profiles) override;

 private:
  /// Flat snapshot: (profile id, its predicates).
  struct Entry {
    ProfileId id;
    std::vector<Predicate> predicates;
  };
  std::vector<Entry> entries_;
};

}  // namespace genas
