#include "match/tree_matcher.hpp"

namespace genas {

TreeMatcher::TreeMatcher(const ProfileSet& profiles, OrderingPolicy policy,
                         std::optional<JointDistribution> event_distribution)
    : policy_(std::move(policy)),
      distribution_(std::move(event_distribution)) {
  rebuild(profiles);
}

void TreeMatcher::rebuild(const ProfileSet& profiles) {
  tree_ = std::make_unique<const ProfileTree>(
      build_tree(profiles, policy_, distribution_));
  flat_ = std::make_unique<const FlatProfileTree>(
      FlatProfileTree::compile(*tree_));
}

MatchOutcome TreeMatcher::match(const Event& event) const {
  MatchOutcome outcome;
  if (use_flat_) {
    const FlatMatch result = flat_->match(event);
    outcome.operations = result.operations;
    outcome.matched.assign(result.matched,
                           result.matched + result.matched_count);
  } else {
    const TreeMatch result = tree_->match(event);
    outcome.operations = result.operations;
    if (result.matched != nullptr) outcome.matched = *result.matched;
  }
  return outcome;
}

}  // namespace genas
