#include "match/naive_matcher.hpp"

namespace genas {

void NaiveMatcher::rebuild(const ProfileSet& profiles) {
  entries_.clear();
  entries_.reserve(profiles.active_count());
  for (const ProfileId id : profiles.active_ids()) {
    entries_.push_back(Entry{id, profiles.profile(id).predicates()});
  }
}

MatchOutcome NaiveMatcher::match(const Event& event) const {
  MatchOutcome outcome;
  for (const Entry& entry : entries_) {
    bool ok = true;
    for (const Predicate& predicate : entry.predicates) {
      ++outcome.operations;
      if (!predicate.matches_index(event.index(predicate.attribute()))) {
        ok = false;
        break;
      }
    }
    if (ok) outcome.matched.push_back(entry.id);
  }
  return outcome;
}

}  // namespace genas
