// GENAS — the counting-algorithm baseline.
//
// The classic predicate-index matcher of the publish/subscribe literature
// (Yan & García-Molina's SIFT, Fabret et al. — the paper's refs [6,11,15],
// "clustering" family): per attribute, the domain is decomposed into
// elementary cells; each cell carries the posting list of profiles whose
// predicate accepts it. Matching looks up one cell per attribute, walks the
// posting lists incrementing per-profile hit counters, and reports profiles
// whose counter reaches their predicate count. Don't-care-only profiles
// match unconditionally.
//
// Operation accounting: one operation per posting visited (counter
// increment), mirroring the tree's per-comparison accounting; the per-
// attribute cell lookup is the same uncounted table access the tree uses.
#pragma once

#include <vector>

#include "match/matcher.hpp"
#include "tree/decomposition.hpp"

namespace genas {

class CountingMatcher final : public Matcher {
 public:
  explicit CountingMatcher(const ProfileSet& profiles) { rebuild(profiles); }

  std::string_view name() const noexcept override { return "counting"; }

  MatchOutcome match(const Event& event) const override;

  void rebuild(const ProfileSet& profiles) override;

 private:
  struct AttributeIndex {
    Decomposition decomposition;
    /// postings[cell]: profile ids accepting that cell.
    std::vector<std::vector<ProfileId>> postings;
  };

  // 16-bit counters: a profile constrains at most one predicate per schema
  // attribute, so 65,535 covers any realistic schema; 8 bits silently
  // wrapped past 255 predicates and could false-match (rebuild rejects
  // anything wider instead).
  std::vector<AttributeIndex> attributes_;      // one per schema attribute
  std::vector<std::uint16_t> required_;         // per profile id: #predicates
  std::vector<ProfileId> match_all_;            // zero-predicate profiles
  std::size_t capacity_ = 0;                    // profile id upper bound
  mutable std::vector<std::uint16_t> counters_; // scratch, reset per match
};

}  // namespace genas
