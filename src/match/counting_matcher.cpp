#include "match/counting_matcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace genas {

void CountingMatcher::rebuild(const ProfileSet& profiles) {
  const Schema& schema = *profiles.schema();
  attributes_.clear();
  attributes_.resize(schema.attribute_count());
  match_all_.clear();
  capacity_ = profiles.capacity();
  required_.assign(capacity_, 0);
  counters_.assign(capacity_, 0);

  const std::vector<ProfileId> active = profiles.active_ids();
  for (AttributeId a = 0; a < schema.attribute_count(); ++a) {
    std::vector<ProfileId> constrained;
    std::vector<const IntervalSet*> sets;
    for (const ProfileId id : active) {
      const Predicate* predicate = profiles.profile(id).predicate(a);
      if (predicate != nullptr) {
        constrained.push_back(id);
        sets.push_back(&predicate->accepted());
      }
    }
    AttributeIndex& index = attributes_[a];
    index.decomposition = decompose(schema.attribute(a).domain.full(), sets);
    index.postings.resize(index.decomposition.cells.size());
    for (std::size_t cell = 0; cell < index.postings.size(); ++cell) {
      index.postings[cell].reserve(
          index.decomposition.cells[cell].accepters.size());
      for (const std::uint32_t c : index.decomposition.cells[cell].accepters) {
        index.postings[cell].push_back(constrained[c]);
      }
    }
  }

  for (const ProfileId id : active) {
    const auto count = profiles.profile(id).constrained_count();
    GENAS_REQUIRE(count <= UINT16_MAX, ErrorCode::kInvalidArgument,
                  "counting matcher supports at most 65535 predicates/profile");
    required_[id] = static_cast<std::uint16_t>(count);
    if (count == 0) match_all_.push_back(id);
  }
}

MatchOutcome CountingMatcher::match(const Event& event) const {
  MatchOutcome outcome;
  outcome.matched = match_all_;  // don't-care-only profiles always match

  // Reset scratch counters lazily by tracking touched ids.
  std::vector<ProfileId> touched;
  for (AttributeId a = 0; a < attributes_.size(); ++a) {
    const AttributeIndex& index = attributes_[a];
    const std::size_t cell = index.decomposition.locate(event.index(a));
    for (const ProfileId id : index.postings[cell]) {
      ++outcome.operations;
      if (counters_[id] == 0) touched.push_back(id);
      if (++counters_[id] == required_[id]) {
        outcome.matched.push_back(id);
      }
    }
  }
  for (const ProfileId id : touched) counters_[id] = 0;
  std::sort(outcome.matched.begin(), outcome.matched.end());
  return outcome;
}

}  // namespace genas
