#include "profile/covering.hpp"

#include "common/error.hpp"

namespace genas {

bool covers(const Profile& general, const Profile& specific) {
  GENAS_REQUIRE(general.schema() == specific.schema(),
                ErrorCode::kInvalidArgument,
                "covering requires profiles over the same schema");
  const Schema& schema = *general.schema();
  for (AttributeId a = 0; a < schema.attribute_count(); ++a) {
    const Predicate* g = general.predicate(a);
    if (g == nullptr) continue;  // don't-care accepts everything
    const Predicate* s = specific.predicate(a);
    const Interval full = schema.attribute(a).domain.full();
    if (s == nullptr) {
      // specific accepts all values; general must too.
      if (!g->accepted().covers(full)) return false;
      continue;
    }
    for (const Interval& iv : s->accepted().intervals()) {
      if (!g->accepted().covers(iv)) return false;
    }
  }
  return true;
}

std::vector<std::size_t> covering_subset(
    const std::vector<Profile>& profiles) {
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < profiles.size() && !dominated; ++j) {
      if (i == j) continue;
      if (!covers(profiles[j], profiles[i])) continue;
      if (covers(profiles[i], profiles[j])) {
        // Mutually covering (equivalent): keep only the first.
        dominated = j < i;
      } else {
        dominated = true;
      }
    }
    if (!dominated) kept.push_back(i);
  }
  return kept;
}

}  // namespace genas
