// GENAS — sets of disjoint intervals over domain index space.
//
// Every predicate normalizes to an IntervalSet: the subset of the attribute
// domain it accepts. The profile-tree decomposition, selectivity measures
// (zero-subdomain size d_0), and the counting matcher are all expressed in
// terms of IntervalSet algebra.
#pragma once

#include <string>
#include <vector>

#include "common/interval.hpp"

namespace genas {

/// Canonical set of disjoint, non-adjacent, sorted closed intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds a canonical set from arbitrary (possibly overlapping, unsorted,
  /// empty) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  static IntervalSet empty() { return IntervalSet(); }
  static IntervalSet single(Interval iv) {
    return IntervalSet(std::vector<Interval>{iv});
  }
  static IntervalSet point(DomainIndex v) { return single(Interval::point(v)); }

  bool is_empty() const noexcept { return intervals_.empty(); }

  /// Total number of indices covered.
  std::int64_t size() const noexcept;

  bool contains(DomainIndex v) const noexcept;

  /// True when `iv` is entirely covered.
  bool covers(const Interval& iv) const noexcept;

  bool overlaps(const Interval& iv) const noexcept;

  IntervalSet unite(const IntervalSet& other) const;
  IntervalSet intersect(const IntervalSet& other) const;

  /// Complement relative to `universe` (typically the domain's full()).
  IntervalSet complement(const Interval& universe) const;

  const std::vector<Interval>& intervals() const noexcept { return intervals_; }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

  /// Renders "{[0,3],[7,7]}".
  std::string to_string() const;

 private:
  std::vector<Interval> intervals_;  // canonical form
};

}  // namespace genas
