// GENAS — profile covering (subsumption).
//
// Profile A covers profile B when every event matched by B is also matched
// by A — per attribute, A's accepted set (the full domain for don't-care)
// is a superset of B's. Covering is the relation distributed
// publish/subscribe systems (Siena, the paper's ref [3]) use to propagate
// only the most general profiles through the broker network: a broker that
// already forwards A to a neighbour need not forward any B covered by A.
#pragma once

#include <vector>

#include "profile/profile.hpp"

namespace genas {

/// True when `general` matches every event that `specific` matches.
bool covers(const Profile& general, const Profile& specific);

/// Indices of a minimal covering subset of `profiles`: every input profile
/// is covered by some member of the result, and no member is covered by
/// another (ties between mutually covering duplicates keep the first).
/// Quadratic in the number of profiles — intended for routing-table sizes.
std::vector<std::size_t> covering_subset(const std::vector<Profile>& profiles);

}  // namespace genas
