#include "profile/profile.hpp"

#include <sstream>

#include "common/error.hpp"

namespace genas {

bool Profile::matches(const Event& event) const noexcept {
  for (const Predicate& predicate : predicates_) {
    if (!predicate.matches_index(event.index(predicate.attribute()))) {
      return false;
    }
  }
  return true;
}

std::string Profile::to_string() const {
  std::ostringstream os;
  os << "profile(";
  bool first = true;
  for (const Predicate& predicate : predicates_) {
    if (!first) os << "; ";
    first = false;
    os << predicate.to_string(*schema_);
  }
  if (first) os << "*";
  os << ')';
  return os.str();
}

ProfileBuilder::ProfileBuilder(SchemaPtr schema)
    : schema_(std::move(schema)), profile_(schema_) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "profile requires a schema");
}

ProfileBuilder& ProfileBuilder::add(Predicate predicate) {
  const AttributeId id = predicate.attribute();
  GENAS_REQUIRE(profile_.is_dont_care(id), ErrorCode::kInvalidArgument,
                "attribute '" + schema_->attribute(id).name +
                    "' constrained twice; combine into one predicate");
  profile_.slots_[id] = profile_.predicates_.size();
  profile_.predicates_.push_back(std::move(predicate));
  return *this;
}

ProfileBuilder& ProfileBuilder::where(std::string_view attribute, Op op,
                                      const Value& v) {
  return add(Predicate::make(*schema_, schema_->id_of(attribute), op, v));
}

ProfileBuilder& ProfileBuilder::between(std::string_view attribute,
                                        const Value& lo, const Value& hi) {
  return add(Predicate::make_range(*schema_, schema_->id_of(attribute),
                                   Op::kBetween, lo, hi));
}

ProfileBuilder& ProfileBuilder::outside(std::string_view attribute,
                                        const Value& lo, const Value& hi) {
  return add(Predicate::make_range(*schema_, schema_->id_of(attribute),
                                   Op::kOutside, lo, hi));
}

ProfileBuilder& ProfileBuilder::in(std::string_view attribute,
                                   const std::vector<Value>& values) {
  return add(Predicate::make_in(*schema_, schema_->id_of(attribute), values));
}

Profile ProfileBuilder::build() { return std::move(profile_); }

ProfileSet::ProfileSet(SchemaPtr schema) : schema_(std::move(schema)) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "profile set requires a schema");
}

ProfileId ProfileSet::add(Profile profile) {
  GENAS_REQUIRE(profile.schema() == schema_, ErrorCode::kInvalidArgument,
                "profile schema differs from profile-set schema");
  const auto id = static_cast<ProfileId>(profiles_.size());
  profiles_.push_back(std::move(profile));
  active_.push_back(true);
  weights_.push_back(1.0);
  ++active_count_;
  ++version_;
  return id;
}

void ProfileSet::set_weight(ProfileId id, double weight) {
  GENAS_REQUIRE(id < profiles_.size() && active_[id], ErrorCode::kNotFound,
                "profile id " + std::to_string(id) + " is not active");
  GENAS_REQUIRE(weight > 0.0, ErrorCode::kInvalidArgument,
                "profile weight must be positive");
  weights_[id] = weight;
  ++version_;  // trees keyed on profile weights become stale
}

double ProfileSet::weight(ProfileId id) const {
  GENAS_REQUIRE(id < profiles_.size() && active_[id], ErrorCode::kNotFound,
                "profile id " + std::to_string(id) + " is not active");
  return weights_[id];
}

void ProfileSet::remove(ProfileId id) {
  GENAS_REQUIRE(id < profiles_.size(), ErrorCode::kNotFound,
                "profile id " + std::to_string(id) + " does not exist");
  GENAS_REQUIRE(active_[id], ErrorCode::kState,
                "profile id " + std::to_string(id) + " already removed");
  active_[id] = false;
  --active_count_;
  ++version_;
}

const Profile& ProfileSet::profile(ProfileId id) const {
  GENAS_REQUIRE(id < profiles_.size(), ErrorCode::kNotFound,
                "profile id " + std::to_string(id) + " does not exist");
  return profiles_[id];
}

std::vector<ProfileId> ProfileSet::active_ids() const {
  std::vector<ProfileId> ids;
  ids.reserve(active_count_);
  for (ProfileId id = 0; id < profiles_.size(); ++id) {
    if (active_[id]) ids.push_back(id);
  }
  return ids;
}

std::string canonical_profile_key(const Profile& profile) {
  // Attributes in schema order; each constrained attribute contributes its
  // canonical (disjoint, sorted) accepted intervals in index space. The
  // IntervalSet normal form makes the rendering a true equality key.
  std::string key;
  const std::size_t attributes = profile.schema()->attribute_count();
  for (AttributeId a = 0; a < attributes; ++a) {
    const Predicate* predicate = profile.predicate(a);
    if (predicate == nullptr) continue;
    key += 'a';
    key += std::to_string(a);
    key += ':';
    for (const Interval& iv : predicate->accepted().intervals()) {
      key += std::to_string(iv.lo);
      key += '-';
      key += std::to_string(iv.hi);
      key += ',';
    }
    key += ';';
  }
  return key;
}

}  // namespace genas
