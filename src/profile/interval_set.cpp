#include "profile/interval_set.hpp"

#include <algorithm>
#include <sstream>

namespace genas {

IntervalSet::IntervalSet(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& iv) { return iv.empty(); });
  std::sort(intervals.begin(), intervals.end());
  for (const Interval& iv : intervals) {
    if (!intervals_.empty() &&
        (intervals_.back().overlaps(iv) || intervals_.back().adjacent_before(iv))) {
      intervals_.back().hi = std::max(intervals_.back().hi, iv.hi);
    } else {
      intervals_.push_back(iv);
    }
  }
}

std::int64_t IntervalSet::size() const noexcept {
  std::int64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.size();
  return total;
}

bool IntervalSet::contains(DomainIndex v) const noexcept {
  // Binary search for the first interval with hi >= v.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), v,
      [](const Interval& iv, DomainIndex x) { return iv.hi < x; });
  return it != intervals_.end() && it->contains(v);
}

bool IntervalSet::covers(const Interval& iv) const noexcept {
  if (iv.empty()) return true;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.lo,
      [](const Interval& a, DomainIndex x) { return a.hi < x; });
  return it != intervals_.end() && it->contains(iv);
}

bool IntervalSet::overlaps(const Interval& iv) const noexcept {
  if (iv.empty()) return false;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.lo,
      [](const Interval& a, DomainIndex x) { return a.hi < x; });
  return it != intervals_.end() && it->overlaps(iv);
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval cut = intervals_[i].intersect(other.intervals_[j]);
    if (!cut.empty()) out.push_back(cut);
    if (intervals_[i].hi < other.intervals_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::complement(const Interval& universe) const {
  if (universe.empty()) return IntervalSet();
  std::vector<Interval> out;
  DomainIndex cursor = universe.lo;
  for (const Interval& iv : intervals_) {
    const Interval clipped = iv.intersect(universe);
    if (clipped.empty()) continue;
    if (clipped.lo > cursor) out.push_back({cursor, clipped.lo - 1});
    cursor = std::max(cursor, clipped.hi + 1);
  }
  if (cursor <= universe.hi) out.push_back({cursor, universe.hi});
  return IntervalSet(std::move(out));
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) os << ',';
    os << intervals_[i].to_string();
  }
  os << '}';
  return os.str();
}

}  // namespace genas
