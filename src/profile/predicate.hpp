// GENAS — profile predicates.
//
// A predicate constrains one attribute. The paper's profiles use value and
// range tests over (attribute, value) pairs; inequality tests "can be
// translated to range tests" (§3), which is exactly what normalization to an
// IntervalSet does here. Don't-care attributes simply carry no predicate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/schema.hpp"
#include "profile/interval_set.hpp"

namespace genas {

/// Comparison operator of a predicate.
enum class Op : std::uint8_t {
  kEq,       ///< a = v
  kNe,       ///< a != v
  kLt,       ///< a < v
  kLe,       ///< a <= v
  kGt,       ///< a > v
  kGe,       ///< a >= v
  kBetween,  ///< a in [lo, hi]
  kOutside,  ///< a not in [lo, hi]
  kIn,       ///< a in {v1, v2, ...} (set containment)
};

std::string_view to_string(Op op) noexcept;

/// Single-attribute constraint, normalized to an index-space IntervalSet at
/// construction time.
class Predicate {
 public:
  /// Unary operators (=, !=, <, <=, >, >=).
  static Predicate make(const Schema& schema, AttributeId attribute, Op op,
                        const Value& operand);

  /// Binary-range operators (between / outside).
  static Predicate make_range(const Schema& schema, AttributeId attribute,
                              Op op, const Value& lo, const Value& hi);

  /// Set containment.
  static Predicate make_in(const Schema& schema, AttributeId attribute,
                           const std::vector<Value>& values);

  /// Reconstructs a predicate directly from its normalized accepted set (the
  /// wire codec's decode path). The set must be non-empty and lie within the
  /// attribute's domain; `op` is kept verbatim for diagnostics.
  static Predicate from_accepted(const Schema& schema, AttributeId attribute,
                                 Op op, IntervalSet accepted);

  AttributeId attribute() const noexcept { return attribute_; }
  Op op() const noexcept { return op_; }

  /// Accepted subset of the attribute's index space. Never empty: predicates
  /// that would accept nothing are rejected at construction.
  const IntervalSet& accepted() const noexcept { return accepted_; }

  bool matches_index(DomainIndex v) const noexcept {
    return accepted_.contains(v);
  }

  std::string to_string(const Schema& schema) const;

 private:
  Predicate(AttributeId attribute, Op op, IntervalSet accepted)
      : attribute_(attribute), op_(op), accepted_(std::move(accepted)) {}

  AttributeId attribute_;
  Op op_;
  IntervalSet accepted_;
};

}  // namespace genas
