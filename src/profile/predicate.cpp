#include "profile/predicate.hpp"

#include <sstream>

#include "common/error.hpp"

namespace genas {

std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::kEq:      return "=";
    case Op::kNe:      return "!=";
    case Op::kLt:      return "<";
    case Op::kLe:      return "<=";
    case Op::kGt:      return ">";
    case Op::kGe:      return ">=";
    case Op::kBetween: return "between";
    case Op::kOutside: return "outside";
    case Op::kIn:      return "in";
  }
  return "?";
}

namespace {

const Domain& domain_of(const Schema& schema, AttributeId attribute) {
  return schema.attribute(attribute).domain;
}

IntervalSet require_nonempty(IntervalSet set, const Schema& schema,
                             AttributeId attribute) {
  GENAS_REQUIRE(!set.is_empty(), ErrorCode::kInvalidArgument,
                "predicate on '" + schema.attribute(attribute).name +
                    "' accepts no value");
  return set;
}

}  // namespace

Predicate Predicate::make(const Schema& schema, AttributeId attribute, Op op,
                          const Value& operand) {
  const Domain& dom = domain_of(schema, attribute);
  const Interval full = dom.full();
  const DomainIndex v = dom.index_of(operand);

  IntervalSet accepted;
  switch (op) {
    case Op::kEq:
      accepted = IntervalSet::point(v);
      break;
    case Op::kNe:
      accepted = IntervalSet::point(v).complement(full);
      break;
    case Op::kLt:
      GENAS_REQUIRE(dom.kind() != ValueKind::kCategory,
                    ErrorCode::kInvalidArgument,
                    "ordering comparison on categorical attribute");
      accepted = IntervalSet::single({full.lo, v - 1});
      break;
    case Op::kLe:
      GENAS_REQUIRE(dom.kind() != ValueKind::kCategory,
                    ErrorCode::kInvalidArgument,
                    "ordering comparison on categorical attribute");
      accepted = IntervalSet::single({full.lo, v});
      break;
    case Op::kGt:
      GENAS_REQUIRE(dom.kind() != ValueKind::kCategory,
                    ErrorCode::kInvalidArgument,
                    "ordering comparison on categorical attribute");
      accepted = IntervalSet::single({v + 1, full.hi});
      break;
    case Op::kGe:
      GENAS_REQUIRE(dom.kind() != ValueKind::kCategory,
                    ErrorCode::kInvalidArgument,
                    "ordering comparison on categorical attribute");
      accepted = IntervalSet::single({v, full.hi});
      break;
    default:
      throw_error(ErrorCode::kInvalidArgument,
                  "operator requires the range/set constructor");
  }
  return Predicate(attribute, op,
                   require_nonempty(std::move(accepted), schema, attribute));
}

Predicate Predicate::make_range(const Schema& schema, AttributeId attribute,
                                Op op, const Value& lo, const Value& hi) {
  const Domain& dom = domain_of(schema, attribute);
  GENAS_REQUIRE(dom.kind() != ValueKind::kCategory, ErrorCode::kInvalidArgument,
                "range test on categorical attribute");
  const DomainIndex a = dom.index_of(lo);
  const DomainIndex b = dom.index_of(hi);
  GENAS_REQUIRE(a <= b, ErrorCode::kInvalidArgument,
                "range predicate requires lo <= hi");

  IntervalSet accepted;
  switch (op) {
    case Op::kBetween:
      accepted = IntervalSet::single({a, b});
      break;
    case Op::kOutside:
      accepted = IntervalSet::single({a, b}).complement(dom.full());
      break;
    default:
      throw_error(ErrorCode::kInvalidArgument,
                  "operator is not a range operator");
  }
  return Predicate(attribute, op,
                   require_nonempty(std::move(accepted), schema, attribute));
}

Predicate Predicate::make_in(const Schema& schema, AttributeId attribute,
                             const std::vector<Value>& values) {
  GENAS_REQUIRE(!values.empty(), ErrorCode::kInvalidArgument,
                "set-containment predicate requires at least one value");
  const Domain& dom = domain_of(schema, attribute);
  std::vector<Interval> points;
  points.reserve(values.size());
  for (const Value& v : values) {
    points.push_back(Interval::point(dom.index_of(v)));
  }
  return Predicate(
      attribute, Op::kIn,
      require_nonempty(IntervalSet(std::move(points)), schema, attribute));
}

Predicate Predicate::from_accepted(const Schema& schema, AttributeId attribute,
                                   Op op, IntervalSet accepted) {
  const Domain& dom = domain_of(schema, attribute);
  GENAS_REQUIRE(!accepted.is_empty(), ErrorCode::kInvalidArgument,
                "predicate on '" + schema.attribute(attribute).name +
                    "' accepts no value");
  const Interval full = dom.full();
  GENAS_REQUIRE(accepted.intervals().front().lo >= full.lo &&
                    accepted.intervals().back().hi <= full.hi,
                ErrorCode::kDomainViolation,
                "accepted set of '" + schema.attribute(attribute).name +
                    "' exceeds the attribute domain");
  return Predicate(attribute, op, std::move(accepted));
}

std::string Predicate::to_string(const Schema& schema) const {
  std::ostringstream os;
  os << schema.attribute(attribute_).name << ' ' << genas::to_string(op_)
     << ' ' << accepted_.to_string();
  return os.str();
}

}  // namespace genas
