// GENAS — text parser for profiles and events.
//
// The paper's prototype is a generic service whose events, attributes and
// operators are specified at runtime; this parser provides the textual front
// end used by the genas_cli example and by tests. Grammar (informal):
//
//   profile   := condition ("&&" condition)* | "*"
//   condition := name op scalar
//              | name "in" "[" scalar "," scalar "]"      (range test)
//              | name "not" "in" "[" scalar "," scalar "]"
//              | name "in" "{" scalar ("," scalar)* "}"   (set containment)
//   op        := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//   event     := name "=" scalar (";" name "=" scalar)*
//
// Scalars are integers, reals, or category names depending on the attribute
// domain. Parse failures throw Error{kParse} with the offending fragment.
#pragma once

#include <string_view>

#include "event/event.hpp"
#include "profile/profile.hpp"

namespace genas {

/// Parses a profile expression against the schema.
Profile parse_profile(const SchemaPtr& schema, std::string_view text);

/// Parses a fully-specified event ("a=1; b=2; ...").
Event parse_event(const SchemaPtr& schema, std::string_view text,
                  Timestamp time = 0);

/// Renders a profile as an expression `parse_profile` accepts; the
/// round-trip preserves the accepted sets exactly (operators may normalize,
/// e.g. `a >= 5` over domain [0,9] re-renders as `a in [5, 9]`).
std::string format_profile(const Profile& profile);

/// Renders an event as text `parse_event` accepts.
std::string format_event(const Event& event);

}  // namespace genas
