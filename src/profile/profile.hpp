// GENAS — profiles (subscriptions) and profile sets.
//
// A profile is a conjunction of predicates over distinct attributes;
// attributes without a predicate are don't-care (the paper's '*'). The
// ProfileSet is the set P of all registered profiles — the input to the
// subrange decomposition and the profile tree.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "event/event.hpp"
#include "profile/predicate.hpp"

namespace genas {

/// Stable identifier of a profile within a ProfileSet.
using ProfileId = std::uint32_t;

/// Conjunction of per-attribute predicates. Build with ProfileBuilder.
class Profile {
 public:
  const SchemaPtr& schema() const noexcept { return schema_; }

  /// Predicate for an attribute, or nullptr when the attribute is
  /// don't-care in this profile.
  const Predicate* predicate(AttributeId id) const noexcept {
    return slots_[id] ? &predicates_[*slots_[id]] : nullptr;
  }

  bool is_dont_care(AttributeId id) const noexcept {
    return !slots_[id].has_value();
  }

  /// Number of attributes actually constrained.
  std::size_t constrained_count() const noexcept { return predicates_.size(); }

  const std::vector<Predicate>& predicates() const noexcept {
    return predicates_;
  }

  /// Direct evaluation against an event (the naive matcher's inner loop and
  /// the test oracle for all other matchers).
  bool matches(const Event& event) const noexcept;

  std::string to_string() const;

 private:
  friend class ProfileBuilder;
  explicit Profile(SchemaPtr schema)
      : schema_(std::move(schema)),
        slots_(schema_->attribute_count(), std::nullopt) {}

  SchemaPtr schema_;
  std::vector<Predicate> predicates_;
  /// Per attribute: position in predicates_, or nullopt for don't-care.
  std::vector<std::optional<std::size_t>> slots_;
};

/// Fluent profile construction with per-attribute validation.
class ProfileBuilder {
 public:
  explicit ProfileBuilder(SchemaPtr schema);

  ProfileBuilder& where(std::string_view attribute, Op op, const Value& v);
  ProfileBuilder& between(std::string_view attribute, const Value& lo,
                          const Value& hi);
  ProfileBuilder& outside(std::string_view attribute, const Value& lo,
                          const Value& hi);
  ProfileBuilder& in(std::string_view attribute,
                     const std::vector<Value>& values);

  /// Adds a pre-built predicate (the wire codec's decode path; predicates
  /// come from the Predicate factories). Throws when the attribute is
  /// already constrained.
  ProfileBuilder& add(Predicate predicate);

  /// Finalizes the profile. An all-don't-care profile (matches everything)
  /// is permitted — it is a legal subscription.
  Profile build();

 private:
  SchemaPtr schema_;
  Profile profile_;
};

/// Canonical equality key of a profile: two profiles over the same schema
/// produce the same key iff they accept the same events — predicates are
/// compared by their normalized accepted IntervalSets per attribute, so
/// build order and operator spelling (`a >= 3` vs `a between [3, hi]`) do
/// not matter. Used to deduplicate equal composite leaves broker- and
/// mesh-wide (refcounted leaf registration).
std::string canonical_profile_key(const Profile& profile);

/// The registered profile set P (paper §3). Profiles are append-only with
/// tombstone removal; ids stay stable so trees and brokers can refer to them.
class ProfileSet {
 public:
  explicit ProfileSet(SchemaPtr schema);

  const SchemaPtr& schema() const noexcept { return schema_; }

  /// Adds a profile (must use the same schema); returns its id.
  ProfileId add(Profile profile);

  /// Removes a profile; the id is never reused.
  void remove(ProfileId id);

  /// Sets a profile's priority weight (default 1.0, must be positive).
  /// Weights feed the profile-distribution measures V2/V3: a profile with
  /// weight 3 counts like three subscribers, so the tree scans its
  /// subranges earlier (the paper's "profiles with high priority").
  void set_weight(ProfileId id, double weight);

  /// Current priority weight of a live profile.
  double weight(ProfileId id) const;

  bool is_active(ProfileId id) const noexcept {
    return id < active_.size() && active_[id];
  }

  const Profile& profile(ProfileId id) const;

  /// Number of live profiles, p in the paper.
  std::size_t active_count() const noexcept { return active_count_; }

  /// Total ids ever allocated (including removed ones).
  std::size_t capacity() const noexcept { return profiles_.size(); }

  /// Ids of all live profiles in increasing order.
  std::vector<ProfileId> active_ids() const;

  /// Monotone version, bumped by every add/remove; lets trees detect
  /// staleness cheaply.
  std::uint64_t version() const noexcept { return version_; }

 private:
  SchemaPtr schema_;
  std::vector<Profile> profiles_;
  std::vector<bool> active_;
  std::vector<double> weights_;
  std::size_t active_count_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace genas
