#include "profile/parser.hpp"

#include <charconv>
#include <string>

#include "common/error.hpp"
#include "common/text.hpp"

namespace genas {

namespace {

[[noreturn]] void parse_fail(std::string_view what, std::string_view fragment) {
  throw_error(ErrorCode::kParse, std::string(what) + " near '" +
                                     std::string(fragment) + "'");
}

/// Converts a scalar token to a Value suited to the attribute's domain kind.
Value parse_scalar(const Domain& domain, std::string_view token) {
  token = trim(token);
  if (token.empty()) parse_fail("empty scalar", token);
  switch (domain.kind()) {
    case ValueKind::kInt: {
      std::int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec != std::errc{} || ptr != token.data() + token.size()) {
        parse_fail("expected integer", token);
      }
      return Value(v);
    }
    case ValueKind::kReal: {
      double v = 0.0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec != std::errc{} || ptr != token.data() + token.size()) {
        parse_fail("expected real number", token);
      }
      return Value(v);
    }
    case ValueKind::kCategory:
      return Value(std::string(token));
  }
  parse_fail("unknown domain kind", token);
}

/// Splits "lhs <op> rhs" returning the operator token; chooses the longest
/// matching operator at the first operator position.
struct OpSplit {
  std::string_view lhs;
  Op op;
  std::string_view rhs;
};

OpSplit split_operator(std::string_view cond) {
  static constexpr std::pair<std::string_view, Op> kOps[] = {
      {"<=", Op::kLe}, {">=", Op::kGe}, {"!=", Op::kNe},
      {"==", Op::kEq}, {"<", Op::kLt},  {">", Op::kGt},
      {"=", Op::kEq},
  };
  for (std::size_t i = 0; i < cond.size(); ++i) {
    for (const auto& [tok, op] : kOps) {
      if (cond.substr(i, tok.size()) == tok) {
        return {trim(cond.substr(0, i)), op, trim(cond.substr(i + tok.size()))};
      }
    }
  }
  parse_fail("missing comparison operator", cond);
}

/// Parses "[lo , hi]" range bodies.
std::pair<std::string_view, std::string_view> split_range(
    std::string_view body, std::string_view original) {
  const std::size_t comma = body.find(',');
  if (comma == std::string_view::npos) {
    parse_fail("range requires 'lo,hi'", original);
  }
  return {trim(body.substr(0, comma)), trim(body.substr(comma + 1))};
}

void parse_condition(ProfileBuilder& builder, const SchemaPtr& schema,
                     std::string_view cond) {
  cond = trim(cond);
  if (cond.empty()) parse_fail("empty condition", cond);

  // "name [not] in [...]" / "name in {...}" forms: find the attribute name
  // as the first whitespace-delimited token.
  const std::size_t space = cond.find_first_of(" \t");
  if (space != std::string_view::npos) {
    const std::string_view name = trim(cond.substr(0, space));
    std::string_view rest = trim(cond.substr(space));
    bool negated = false;
    if (starts_with(rest, "not")) {
      negated = true;
      rest = trim(rest.substr(3));
    }
    if (starts_with(rest, "in")) {
      rest = trim(rest.substr(2));
      if (!schema->has_attribute(name)) {
        parse_fail("unknown attribute", name);
      }
      const Domain& domain = schema->attribute(schema->id_of(name)).domain;
      if (starts_with(rest, "[")) {
        if (rest.back() != ']') parse_fail("unterminated range", cond);
        const auto [lo, hi] =
            split_range(rest.substr(1, rest.size() - 2), cond);
        if (negated) {
          builder.outside(name, parse_scalar(domain, lo),
                          parse_scalar(domain, hi));
        } else {
          builder.between(name, parse_scalar(domain, lo),
                          parse_scalar(domain, hi));
        }
        return;
      }
      if (starts_with(rest, "{")) {
        if (negated) parse_fail("'not in {set}' is not supported", cond);
        if (rest.back() != '}') parse_fail("unterminated set", cond);
        std::vector<Value> values;
        for (std::string_view piece :
             split(rest.substr(1, rest.size() - 2), ',')) {
          values.push_back(parse_scalar(domain, piece));
        }
        builder.in(name, values);
        return;
      }
      parse_fail("'in' requires [range] or {set}", cond);
    }
    if (negated) parse_fail("'not' requires 'in'", cond);
  }

  // Plain comparison form.
  const OpSplit parts = split_operator(cond);
  if (!schema->has_attribute(parts.lhs)) {
    parse_fail("unknown attribute", parts.lhs);
  }
  const Domain& domain = schema->attribute(schema->id_of(parts.lhs)).domain;
  builder.where(parts.lhs, parts.op, parse_scalar(domain, parts.rhs));
}

/// Splits on "&&" at the top level.
std::vector<std::string_view> split_conjunction(std::string_view text) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find("&&", start);
    if (pos == std::string_view::npos) {
      parts.push_back(trim(text.substr(start)));
      break;
    }
    parts.push_back(trim(text.substr(start, pos - start)));
    start = pos + 2;
  }
  return parts;
}

}  // namespace

Profile parse_profile(const SchemaPtr& schema, std::string_view text) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "parse_profile requires a schema");
  ProfileBuilder builder(schema);
  text = trim(text);
  if (text == "*" || text.empty()) {
    return builder.build();  // match-all profile
  }
  for (std::string_view cond : split_conjunction(text)) {
    parse_condition(builder, schema, cond);
  }
  return builder.build();
}

Event parse_event(const SchemaPtr& schema, std::string_view text,
                  Timestamp time) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "parse_event requires a schema");
  std::vector<std::pair<std::string, Value>> pairs;
  for (std::string_view piece : split(text, ';')) {
    if (piece.empty()) continue;
    const std::size_t eq = piece.find('=');
    if (eq == std::string_view::npos) {
      parse_fail("event assignment requires '='", piece);
    }
    const std::string_view name = trim(piece.substr(0, eq));
    const std::string_view value = trim(piece.substr(eq + 1));
    if (!schema->has_attribute(name)) parse_fail("unknown attribute", name);
    const Domain& domain = schema->attribute(schema->id_of(name)).domain;
    pairs.emplace_back(std::string(name), parse_scalar(domain, value));
  }
  return Event::from_pairs(schema, pairs, time);
}

namespace {

/// Renders one predicate as a parse-compatible condition. Works from the
/// normalized IntervalSet, so any operator family round-trips.
std::string format_predicate(const Schema& schema, const Predicate& predicate) {
  const AttributeId a = predicate.attribute();
  const Domain& domain = schema.attribute(a).domain;
  const std::string& name = schema.attribute(a).name;
  const auto& intervals = predicate.accepted().intervals();

  const auto render_value = [&](DomainIndex v) {
    return domain.value_at(v).to_string();
  };

  if (intervals.size() == 1 && intervals[0].size() == 1) {
    return name + " = " + render_value(intervals[0].lo);
  }
  // Range forms are only parseable on ordered (non-categorical) domains.
  if (domain.kind() != ValueKind::kCategory) {
    if (intervals.size() == 1) {
      const Interval iv = intervals[0];
      return name + " in [" + render_value(iv.lo) + ", " +
             render_value(iv.hi) + "]";
    }
    // Two intervals forming a complement of one range: "not in".
    const Interval full = domain.full();
    if (intervals.size() == 2 && intervals[0].lo == full.lo &&
        intervals[1].hi == full.hi) {
      return name + " not in [" + render_value(intervals[0].hi + 1) + ", " +
             render_value(intervals[1].lo - 1) + "]";
    }
  }
  // General case: point sets render as "{...}"; other shapes are split into
  // a set of points only when small, otherwise the widest form we can
  // express is the union of points (categorical/IN predicates are always
  // point sets, so this covers every constructible predicate).
  std::string out = name + " in {";
  bool first = true;
  for (const Interval& iv : intervals) {
    for (DomainIndex v = iv.lo; v <= iv.hi; ++v) {
      if (!first) out += ", ";
      first = false;
      out += render_value(v);
    }
  }
  out += '}';
  return out;
}

}  // namespace

std::string format_profile(const Profile& profile) {
  if (profile.constrained_count() == 0) return "*";
  std::string out;
  for (const Predicate& predicate : profile.predicates()) {
    if (!out.empty()) out += " && ";
    out += format_predicate(*profile.schema(), predicate);
  }
  return out;
}

std::string format_event(const Event& event) {
  const Schema& schema = *event.schema();
  std::string out;
  for (AttributeId a = 0; a < schema.attribute_count(); ++a) {
    if (!out.empty()) out += "; ";
    out += schema.attribute(a).name + " = " + event.value(a).to_string();
  }
  return out;
}

}  // namespace genas
