#include "dist/shapes.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace genas::shapes {

namespace {

/// Midpoint of bucket i on the normalized domain.
double midpoint(std::int64_t i, std::int64_t size) {
  return (static_cast<double>(i) + 0.5) / static_cast<double>(size);
}

void require_size(std::int64_t size) {
  GENAS_REQUIRE(size >= 1, ErrorCode::kInvalidArgument,
                "shape needs a positive domain size");
}

/// Buckets whose midpoint falls inside [center-width/2, center+width/2],
/// clipped to the domain; degenerates to the bucket containing the center
/// when the band is narrower than one bucket.
Interval band(std::int64_t size, double center, double width) {
  const double d = static_cast<double>(size);
  auto lo = static_cast<std::int64_t>(
      std::ceil(d * (center - width / 2.0) - 0.5));
  auto hi = static_cast<std::int64_t>(
      std::floor(d * (center + width / 2.0) - 0.5));
  lo = std::max<std::int64_t>(lo, 0);
  hi = std::min<std::int64_t>(hi, size - 1);
  if (lo > hi) {
    auto point = static_cast<std::int64_t>(std::floor(center * d));
    point = std::clamp<std::int64_t>(point, 0, size - 1);
    return Interval::point(point);
  }
  return {lo, hi};
}

}  // namespace

DiscreteDistribution equal(std::int64_t size) {
  return DiscreteDistribution::uniform(size);
}

DiscreteDistribution gauss(std::int64_t size, double center, double sigma) {
  require_size(size);
  GENAS_REQUIRE(sigma > 0.0, ErrorCode::kInvalidArgument,
                "gauss needs a positive sigma");
  std::vector<double> weights(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    const double z = (midpoint(i, size) - center) / sigma;
    weights[static_cast<std::size_t>(i)] = std::exp(-0.5 * z * z);
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

DiscreteDistribution relocated_gauss(std::int64_t size, bool high) {
  return gauss(size, high ? 0.75 : 0.25, 0.15);
}

DiscreteDistribution falling(std::int64_t size) {
  require_size(size);
  std::vector<double> weights(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    weights[static_cast<std::size_t>(i)] = static_cast<double>(size - i);
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

DiscreteDistribution rising(std::int64_t size) {
  require_size(size);
  std::vector<double> weights(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    weights[static_cast<std::size_t>(i)] = static_cast<double>(i + 1);
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

DiscreteDistribution peak(std::int64_t size, double center, double width,
                          double mass) {
  require_size(size);
  GENAS_REQUIRE(width > 0.0, ErrorCode::kInvalidArgument,
                "peak needs a positive width");
  GENAS_REQUIRE(mass >= 0.0 && mass <= 1.0, ErrorCode::kInvalidArgument,
                "peak mass must lie in [0, 1]");
  const Interval in = band(size, center, width);
  std::vector<double> weights(static_cast<std::size_t>(size), 0.0);
  const double per_in = mass / static_cast<double>(in.size());
  for (DomainIndex i = in.lo; i <= in.hi; ++i) {
    weights[static_cast<std::size_t>(i)] = per_in;
  }
  const std::int64_t out_count = size - in.size();
  if (out_count > 0 && mass < 1.0) {
    const double per_out = (1.0 - mass) / static_cast<double>(out_count);
    for (std::int64_t i = 0; i < size; ++i) {
      if (!in.contains(i)) weights[static_cast<std::size_t>(i)] = per_out;
    }
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

DiscreteDistribution percent_peak(std::int64_t size, double mass, bool high,
                                  double width) {
  GENAS_REQUIRE(width > 0.0, ErrorCode::kInvalidArgument,
                "percent peak needs a positive width");
  return peak(size, high ? 1.0 - width / 2.0 : width / 2.0, width, mass);
}

DiscreteDistribution multi_peak(std::int64_t size,
                                const std::vector<PeakSpec>& peaks,
                                double baseline) {
  require_size(size);
  GENAS_REQUIRE(!peaks.empty(), ErrorCode::kInvalidArgument,
                "multi_peak needs at least one peak");
  GENAS_REQUIRE(baseline >= 0.0, ErrorCode::kInvalidArgument,
                "multi_peak baseline must be non-negative");
  std::vector<double> weights(static_cast<std::size_t>(size), baseline);
  for (const PeakSpec& p : peaks) {
    GENAS_REQUIRE(p.width > 0.0, ErrorCode::kInvalidArgument,
                  "multi_peak bump needs a positive width");
    GENAS_REQUIRE(p.weight >= 0.0, ErrorCode::kInvalidArgument,
                  "multi_peak bump weight must be non-negative");
    const Interval in = band(size, p.center, p.width);
    const double per_bucket = p.weight / static_cast<double>(in.size());
    for (DomainIndex i = in.lo; i <= in.hi; ++i) {
      weights[static_cast<std::size_t>(i)] += per_bucket;
    }
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

DiscreteDistribution steps(std::int64_t size,
                           const std::vector<double>& levels) {
  require_size(size);
  GENAS_REQUIRE(!levels.empty(), ErrorCode::kInvalidArgument,
                "steps needs at least one level");
  const auto k = static_cast<std::int64_t>(levels.size());
  std::vector<double> weights(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    const std::int64_t chunk = std::min(k - 1, i * k / size);
    weights[static_cast<std::size_t>(i)] =
        levels[static_cast<std::size_t>(chunk)];
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

}  // namespace genas::shapes
