#include "dist/distribution.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/text.hpp"

namespace genas {

DiscreteDistribution::DiscreteDistribution(std::vector<double> pmf)
    : pmf_(std::move(pmf)) {
  cdf_.reserve(pmf_.size());
  double running = 0.0;
  for (const double p : pmf_) {
    running += p;
    cdf_.push_back(running);
  }
  // Summation error must not leak into mass() and quantile(): the last
  // prefix sum is 1 by construction.
  cdf_.back() = 1.0;
}

DiscreteDistribution DiscreteDistribution::from_weights(
    std::vector<double> weights) {
  GENAS_REQUIRE(!weights.empty(), ErrorCode::kInvalidArgument,
                "distribution needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    GENAS_REQUIRE(w >= 0.0, ErrorCode::kInvalidArgument,
                  "distribution weights must be non-negative");
    total += w;
  }
  GENAS_REQUIRE(total > 0.0, ErrorCode::kInvalidArgument,
                "distribution weights must not all be zero");
  for (double& w : weights) w /= total;
  return DiscreteDistribution(std::move(weights));
}

DiscreteDistribution DiscreteDistribution::uniform(std::int64_t size) {
  GENAS_REQUIRE(size >= 1, ErrorCode::kInvalidArgument,
                "uniform distribution needs a positive domain size");
  return DiscreteDistribution(
      std::vector<double>(static_cast<std::size_t>(size),
                          1.0 / static_cast<double>(size)));
}

double DiscreteDistribution::mass(const Interval& iv) const noexcept {
  const Interval clipped = iv.intersect({0, size() - 1});
  if (clipped.empty()) return 0.0;
  return cdf(clipped.hi) - cdf(clipped.lo - 1);
}

double DiscreteDistribution::mass(const IntervalSet& set) const noexcept {
  double total = 0.0;
  for (const Interval& iv : set.intervals()) total += mass(iv);
  return total;
}

DomainIndex DiscreteDistribution::quantile(double q) const noexcept {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), q);
  if (it == cdf_.end()) return size() - 1;
  return static_cast<DomainIndex>(it - cdf_.begin());
}

double DiscreteDistribution::mean_index() const noexcept {
  double mean = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    mean += static_cast<double>(i) * pmf_[i];
  }
  return mean;
}

DiscreteDistribution DiscreteDistribution::mix(
    const DiscreteDistribution& other, double alpha) const {
  GENAS_REQUIRE(size() == other.size(), ErrorCode::kInvalidArgument,
                "cannot mix distributions of different sizes");
  GENAS_REQUIRE(alpha >= 0.0 && alpha <= 1.0, ErrorCode::kInvalidArgument,
                "mix weight must lie in [0, 1]");
  std::vector<double> mixed(pmf_.size());
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    mixed[i] = (1.0 - alpha) * pmf_[i] + alpha * other.pmf_[i];
  }
  return DiscreteDistribution(std::move(mixed));
}

double DiscreteDistribution::l1_distance(const DiscreteDistribution& a,
                                         const DiscreteDistribution& b) {
  GENAS_REQUIRE(a.size() == b.size(), ErrorCode::kInvalidArgument,
                "L1 distance needs equal domain sizes");
  double total = 0.0;
  for (std::size_t i = 0; i < a.pmf_.size(); ++i) {
    total += std::abs(a.pmf_[i] - b.pmf_[i]);
  }
  return total;
}

std::string DiscreteDistribution::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    if (i > 0) os << ", ";
    os << format_double(pmf_[i]);
  }
  os << ']';
  return os.str();
}

}  // namespace genas
