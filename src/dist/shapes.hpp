// GENAS — the distribution shape library (paper §4.3).
//
// The evaluation uses a family of named event/profile distribution shapes:
// equal, gauss, relocated gauss, monotone falling/rising, and "x% high/low"
// peaks ("95% of the events fall into the top 5% of the domain"). Every
// shape is defined on the normalized domain [0, 1] and discretized onto
// [0, d) by evaluating at bucket midpoints, so the same shape puts the same
// mass on the same fractions of coarse and fine domains.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"

namespace genas::shapes {

/// One bump of a multi-peak shape, on the normalized domain.
struct PeakSpec {
  double center = 0.5;  ///< normalized position in [0, 1]
  double width = 0.1;   ///< normalized width of the band
  double weight = 1.0;  ///< relative mass of this bump
};

/// Uniform over `size` values.
DiscreteDistribution equal(std::int64_t size);

/// Discretized Gaussian with normalized `center` and `sigma`; sigma must be
/// positive.
DiscreteDistribution gauss(std::int64_t size, double center = 0.5,
                           double sigma = 0.15);

/// Gaussian relocated toward the top (high) or bottom (low) quarter of the
/// domain — the paper's "relocated gauss".
DiscreteDistribution relocated_gauss(std::int64_t size, bool high);

/// Linearly falling: pmf(0) highest, pmf(d-1) lowest.
DiscreteDistribution falling(std::int64_t size);

/// Linearly rising: pmf(d-1) highest.
DiscreteDistribution rising(std::int64_t size);

/// Puts `mass` uniformly on the band of normalized `width` centred at
/// `center`, and the rest uniformly outside it. A band narrower than one
/// bucket degenerates to the single bucket containing the center. `width`
/// must be positive and `mass` in [0, 1].
DiscreteDistribution peak(std::int64_t size, double center, double width,
                          double mass);

/// The paper's "NN% high / NN% low": `mass` of the probability within the
/// top (high) or bottom band of normalized `width`.
DiscreteDistribution percent_peak(std::int64_t size, double mass, bool high,
                                  double width = 0.05);

/// Sum of peaked bumps over a uniform `baseline` weight; at least one peak
/// is required.
DiscreteDistribution multi_peak(std::int64_t size,
                                const std::vector<PeakSpec>& peaks,
                                double baseline);

/// Piecewise-constant steps: the domain is split into `levels.size()` equal
/// chunks, chunk k weighted by levels[k]. Levels must be non-empty and
/// non-negative with a positive sum.
DiscreteDistribution steps(std::int64_t size,
                           const std::vector<double>& levels);

}  // namespace genas::shapes
