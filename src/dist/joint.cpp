#include "dist/joint.hpp"

#include "common/error.hpp"

namespace genas {

namespace {

/// Validates one component's marginals against the schema.
void validate_component(const Schema& schema,
                        const std::vector<DiscreteDistribution>& marginals) {
  GENAS_REQUIRE(marginals.size() == schema.attribute_count(),
                ErrorCode::kInvalidArgument,
                "joint distribution needs one marginal per attribute");
  for (AttributeId id = 0; id < marginals.size(); ++id) {
    GENAS_REQUIRE(marginals[id].size() == schema.attribute(id).domain.size(),
                  ErrorCode::kInvalidArgument,
                  "marginal size differs from the domain of attribute '" +
                      schema.attribute(id).name + "'");
  }
}

}  // namespace

JointDistribution JointDistribution::independent(
    SchemaPtr schema, std::vector<DiscreteDistribution> marginals) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "joint distribution needs a schema");
  validate_component(*schema, marginals);
  auto data = std::make_shared<Data>();
  data->weights = {1.0};
  data->components.push_back(std::move(marginals));
  return JointDistribution(std::move(schema), std::move(data));
}

JointDistribution JointDistribution::mixture(
    SchemaPtr schema, std::vector<std::vector<DiscreteDistribution>> components,
    std::vector<double> weights) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "joint distribution needs a schema");
  GENAS_REQUIRE(!components.empty(), ErrorCode::kInvalidArgument,
                "mixture needs at least one component");
  GENAS_REQUIRE(components.size() == weights.size(),
                ErrorCode::kInvalidArgument,
                "mixture needs one weight per component");
  double total = 0.0;
  for (const double w : weights) {
    GENAS_REQUIRE(w >= 0.0, ErrorCode::kInvalidArgument,
                  "mixture weights must be non-negative");
    total += w;
  }
  GENAS_REQUIRE(total > 0.0, ErrorCode::kInvalidArgument,
                "mixture weights must not all be zero");
  for (auto& component : components) validate_component(*schema, component);
  for (double& w : weights) w /= total;
  auto data = std::make_shared<Data>();
  data->weights = std::move(weights);
  data->components = std::move(components);
  return JointDistribution(std::move(schema), std::move(data));
}

double JointDistribution::component_weight(std::size_t c) const {
  GENAS_REQUIRE(c < component_count(), ErrorCode::kInvalidArgument,
                "mixture component index out of range");
  return data_->weights[c];
}

const DiscreteDistribution& JointDistribution::component_marginal(
    std::size_t c, AttributeId id) const {
  GENAS_REQUIRE(c < component_count(), ErrorCode::kInvalidArgument,
                "mixture component index out of range");
  GENAS_REQUIRE(id < data_->components[c].size(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  return data_->components[c][id];
}

DiscreteDistribution JointDistribution::marginal(AttributeId id) const {
  GENAS_REQUIRE(id < schema_->attribute_count(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  if (is_independent()) return data_->components[0][id];
  const auto size =
      static_cast<std::size_t>(schema_->attribute(id).domain.size());
  std::vector<double> weights(size, 0.0);
  for (std::size_t c = 0; c < component_count(); ++c) {
    const DiscreteDistribution& m = data_->components[c][id];
    for (std::size_t v = 0; v < size; ++v) {
      weights[v] += data_->weights[c] * m.pmf(static_cast<DomainIndex>(v));
    }
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

double JointDistribution::probability(
    const std::vector<DomainIndex>& indices) const {
  GENAS_REQUIRE(indices.size() == schema_->attribute_count(),
                ErrorCode::kInvalidArgument,
                "probability needs one index per attribute");
  double total = 0.0;
  for (std::size_t c = 0; c < component_count(); ++c) {
    double p = data_->weights[c];
    for (AttributeId id = 0; id < indices.size() && p > 0.0; ++id) {
      p *= data_->components[c][id].pmf(indices[id]);
    }
    total += p;
  }
  return total;
}

ConditionalDistribution JointDistribution::root() const {
  return ConditionalDistribution(schema_, data_, data_->weights);
}

double ConditionalDistribution::probability(AttributeId attribute,
                                            const Interval& iv) const {
  GENAS_REQUIRE(attribute < schema_->attribute_count(),
                ErrorCode::kInvalidArgument, "attribute id out of range");
  double total = 0.0;
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    if (weights_[c] == 0.0) continue;
    total += weights_[c] * data_->components[c][attribute].mass(iv);
  }
  return total;
}

ConditionalDistribution ConditionalDistribution::given(
    AttributeId attribute, const Interval& iv) const {
  GENAS_REQUIRE(attribute < schema_->attribute_count(),
                ErrorCode::kInvalidArgument, "attribute id out of range");
  std::vector<double> posterior(weights_.size(), 0.0);
  double total = 0.0;
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    posterior[c] = weights_[c] * data_->components[c][attribute].mass(iv);
    total += posterior[c];
  }
  GENAS_REQUIRE(total > 0.0, ErrorCode::kInvalidArgument,
                "conditioning on a zero-probability observation");
  for (double& w : posterior) w /= total;
  return ConditionalDistribution(schema_, data_, std::move(posterior));
}

}  // namespace genas
