#include "dist/catalog.hpp"

#include <charconv>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/text.hpp"
#include "dist/shapes.hpp"

namespace genas {

namespace {

/// Seed base for the numbered entries; changing it would change every dK.
constexpr std::uint64_t kCatalogSeed = 0x47454E41532D6431ULL;  // "GENAS-d1"

/// Parses a decimal int, mapping overflow and trailing garbage to -1 so
/// the caller's range check rejects it with the library's own Error.
int parse_int_or_negative(std::string_view s) {
  int value = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || end != s.data() + s.size()) return -1;
  return value;
}

}  // namespace

DistributionCatalog::DistributionCatalog(std::int64_t domain_size)
    : domain_size_(domain_size) {
  GENAS_REQUIRE(domain_size >= 1, ErrorCode::kInvalidArgument,
                "catalog needs a positive domain size");
}

DiscreteDistribution DistributionCatalog::numbered(int k) const {
  GENAS_REQUIRE(k >= 1 && k <= kNumbered, ErrorCode::kNotFound,
                "numbered catalog entries are d1..d" + std::to_string(kNumbered));
  // The entry is a Gaussian mixture on the normalized domain whose
  // parameters come from a PRNG seeded by k alone — independent of the
  // discretization, so dK scales across domain sizes.
  Rng rng(kCatalogSeed + static_cast<std::uint64_t>(k));
  const std::uint64_t bumps = 1 + rng.below(3);
  struct Bump {
    double center;
    double sigma;
    double weight;
  };
  std::vector<Bump> mixture;
  mixture.reserve(bumps);
  for (std::uint64_t b = 0; b < bumps; ++b) {
    Bump bump;
    bump.center = rng.uniform(0.05, 0.95);
    bump.sigma = rng.uniform(0.03, 0.25);
    bump.weight = rng.uniform(0.3, 1.0);
    mixture.push_back(bump);
  }
  const double baseline = rng.uniform(0.0, 0.35);

  std::vector<double> weights(static_cast<std::size_t>(domain_size_));
  for (std::int64_t i = 0; i < domain_size_; ++i) {
    const double x =
        (static_cast<double>(i) + 0.5) / static_cast<double>(domain_size_);
    double w = baseline;
    for (const Bump& bump : mixture) {
      const double z = (x - bump.center) / bump.sigma;
      w += bump.weight * std::exp(-0.5 * z * z);
    }
    weights[static_cast<std::size_t>(i)] = w;
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

DiscreteDistribution DistributionCatalog::by_name(std::string_view name) const {
  const std::string key = to_lower(trim(name));
  GENAS_REQUIRE(!key.empty(), ErrorCode::kInvalidArgument,
                "catalog name must not be empty");

  if (key == "equal" || key == "uniform") return shapes::equal(domain_size_);
  if (key == "gauss") return shapes::gauss(domain_size_);
  if (key == "gauss-low") return shapes::relocated_gauss(domain_size_, false);
  if (key == "gauss-high") return shapes::relocated_gauss(domain_size_, true);
  if (key == "falling") return shapes::falling(domain_size_);
  if (key == "rising") return shapes::rising(domain_size_);

  // dK — numbered entry.
  if (key.size() >= 2 && key.front() == 'd' && is_integer(key.substr(1))) {
    const int k = parse_int_or_negative(std::string_view(key).substr(1));
    GENAS_REQUIRE(k >= 1 && k <= kNumbered, ErrorCode::kNotFound,
                  "no catalog entry named '" + key + "'");
    return numbered(k);
  }

  // "NN% high" / "NN% low" — percent peaks.
  const std::size_t percent = key.find('%');
  if (percent != std::string::npos && is_integer(key.substr(0, percent))) {
    const int pct =
        parse_int_or_negative(std::string_view(key).substr(0, percent));
    GENAS_REQUIRE(pct >= 1 && pct <= 100, ErrorCode::kInvalidArgument,
                  "percent peak mass must lie in 1..100");
    const std::string_view tail = trim(std::string_view(key).substr(percent + 1));
    GENAS_REQUIRE(tail == "high" || tail == "low", ErrorCode::kParse,
                  "percent peak must end in 'high' or 'low'");
    return shapes::percent_peak(domain_size_, static_cast<double>(pct) / 100.0,
                                tail == "high");
  }

  throw_error(ErrorCode::kNotFound, "no catalog entry named '" + key + "'");
}

std::vector<std::string> DistributionCatalog::names() const {
  std::vector<std::string> out = {
      "equal",   "uniform",  "gauss",    "gauss-low", "gauss-high",
      "falling", "rising",   "95% high", "95% low",   "90% low",
  };
  out.reserve(out.size() + kNumbered);
  for (int k = 1; k <= kNumbered; ++k) {
    std::string entry = "d";
    entry += std::to_string(k);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace genas
