// GENAS — joint event distributions over a schema.
//
// The paper's analysis assumes per-attribute event distributions P_e that
// are independent across attributes (§4.3); JointDistribution represents
// that product form directly, and generalizes it to finite mixtures of
// independent products. Mixtures are the minimal model that introduces
// cross-attribute correlation, which the exact expected-cost engine
// (tree/expected_cost.hpp) handles by propagating per-component reach
// probabilities.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/interval.hpp"
#include "dist/distribution.hpp"
#include "event/schema.hpp"

namespace genas {

class ConditionalDistribution;

/// Finite mixture of independent per-attribute products over one schema.
/// Immutable and cheaply copyable (components are shared).
class JointDistribution {
 public:
  /// Independent product: one marginal per schema attribute, sizes matching
  /// the attribute domains.
  static JointDistribution independent(SchemaPtr schema,
                                       std::vector<DiscreteDistribution> marginals);

  /// Mixture of independent products with the given non-negative component
  /// weights (normalized internally; their sum must be positive).
  static JointDistribution mixture(
      SchemaPtr schema,
      std::vector<std::vector<DiscreteDistribution>> components,
      std::vector<double> weights);

  const SchemaPtr& schema() const noexcept { return schema_; }

  /// True for single-component (product-form) distributions.
  bool is_independent() const noexcept { return component_count() == 1; }

  std::size_t component_count() const noexcept { return data_->weights.size(); }

  /// Normalized weight of mixture component c.
  double component_weight(std::size_t c) const;

  /// Marginal of attribute `id` within component c.
  const DiscreteDistribution& component_marginal(std::size_t c,
                                                 AttributeId id) const;

  /// Mixture-weighted marginal of attribute `id`.
  DiscreteDistribution marginal(AttributeId id) const;

  /// P(event) for a full assignment of per-attribute domain indices.
  double probability(const std::vector<DomainIndex>& indices) const;

  /// Starts a conditional-probability walk down a tree path: the returned
  /// tracker answers P(attribute in interval | conditions applied so far).
  ConditionalDistribution root() const;

 private:
  friend class ConditionalDistribution;

  struct Data {
    std::vector<double> weights;  // normalized
    std::vector<std::vector<DiscreteDistribution>> components;
  };

  JointDistribution(SchemaPtr schema, std::shared_ptr<const Data> data)
      : schema_(std::move(schema)), data_(std::move(data)) {}

  SchemaPtr schema_;
  std::shared_ptr<const Data> data_;
};

/// Conditional view of a JointDistribution along a sequence of interval
/// observations. Conditioning reweights mixture components by the mass each
/// assigns to the observed interval — for independent distributions the
/// other attributes are unaffected, for mixtures the correlation structure
/// emerges (paper §4.1's P(cell | path)).
class ConditionalDistribution {
 public:
  /// P(attribute in iv | observations so far).
  double probability(AttributeId attribute, const Interval& iv) const;

  /// Returns a new conditional with `attribute in iv` observed. Throws
  /// Error{kInvalidArgument} when the observation has probability zero.
  ConditionalDistribution given(AttributeId attribute,
                                const Interval& iv) const;

 private:
  friend class JointDistribution;

  ConditionalDistribution(SchemaPtr schema,
                          std::shared_ptr<const JointDistribution::Data> data,
                          std::vector<double> weights)
      : schema_(std::move(schema)),
        data_(std::move(data)),
        weights_(std::move(weights)) {}

  SchemaPtr schema_;
  std::shared_ptr<const JointDistribution::Data> data_;
  std::vector<double> weights_;  // posterior component weights, normalized
};

}  // namespace genas
