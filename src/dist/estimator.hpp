// GENAS — empirical distribution estimators.
//
// "The algorithm ... has to maintain a history of events in order to
// determine the event distribution" (paper §5). HistogramEstimator is the
// per-attribute primitive: an exponentially decayed value histogram that
// yields a (Laplace-smoothed) DiscreteDistribution on demand.
// SchemaEstimator bundles one histogram per schema attribute and assembles
// the independent joint estimate the adaptive controller rebuilds against.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/joint.hpp"
#include "event/event.hpp"

namespace genas {

/// Decayed histogram over one attribute domain.
class HistogramEstimator {
 public:
  /// `size` is the domain size (>= 1); `decay` in (0, 1] is applied to all
  /// existing counts before each new observation (1.0 = never forget).
  explicit HistogramEstimator(std::int64_t size, double decay = 1.0);

  /// Folds in one observed domain index; throws when out of range.
  void observe(DomainIndex value);

  /// Raw (undecayed) number of observations since the last reset.
  std::uint64_t observations() const noexcept { return observations_; }

  /// Normalized estimate with Laplace `smoothing` added to every bucket.
  /// Throws when smoothing is negative, or when the histogram is empty and
  /// smoothing is zero (no distribution can be formed).
  DiscreteDistribution estimate(double smoothing) const;

  void reset() noexcept;

 private:
  // Decay is applied lazily: bucket b holds sum of decay^-t per observation
  // at time t, and scale_ = decay^-now, so the true (decayed) count is
  // counts_[b] / scale_. observe() stays O(1); the full O(d) renormalize
  // runs only when scale_ nears the double range.
  std::vector<double> counts_;
  double decay_;
  double scale_ = 1.0;
  std::uint64_t observations_ = 0;
};

/// One HistogramEstimator per schema attribute.
class SchemaEstimator {
 public:
  explicit SchemaEstimator(SchemaPtr schema, double decay = 1.0);

  /// Folds in one event; the event must carry exactly this schema.
  void observe(const Event& event);

  std::uint64_t observations() const noexcept { return observations_; }

  const HistogramEstimator& attribute(AttributeId id) const;

  /// Independent joint estimate across all attributes.
  JointDistribution estimate_joint(double smoothing) const;

  void reset() noexcept;

 private:
  SchemaPtr schema_;
  std::vector<HistogramEstimator> attributes_;
  std::uint64_t observations_ = 0;
};

}  // namespace genas
