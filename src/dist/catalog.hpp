// GENAS — the named distribution catalog.
//
// The paper evaluates against a library of event distributions: the named
// shapes of §4.3 ("equal", "gauss", "95% high", ...) plus sixty numbered
// entries d1..d60 used by the bulk experiments. The numbered entries are
// deterministic pseudo-random Gaussian mixtures defined on the normalized
// domain, so the same dK names the same shape at any discretization — a
// coarse d50 run and a fine d500 run of one experiment see the same
// distribution.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dist/distribution.hpp"

namespace genas {

/// Resolves catalog names to DiscreteDistributions over one domain size.
class DistributionCatalog {
 public:
  /// Number of numbered entries d1..d60.
  static constexpr int kNumbered = 60;

  explicit DistributionCatalog(std::int64_t domain_size);

  std::int64_t domain_size() const noexcept { return domain_size_; }

  /// Entry dK for k in [1, kNumbered]; deterministic in k.
  DiscreteDistribution numbered(int k) const;

  /// Case-insensitive name lookup after trimming: "dK", the named shapes
  /// ("equal", "uniform", "gauss", "gauss-low", "gauss-high", "falling",
  /// "rising"), and percent peaks ("95% high", "90% low", ...).
  DiscreteDistribution by_name(std::string_view name) const;

  /// All resolvable names: the named shapes plus d1..d60.
  std::vector<std::string> names() const;

 private:
  std::int64_t domain_size_;
};

}  // namespace genas
