#include "dist/sampler.hpp"

namespace genas {

EventSampler::EventSampler(JointDistribution joint, std::uint64_t seed)
    : joint_(std::move(joint)), rng_(seed) {}

Event EventSampler::sample() {
  // Pick the mixture component by its weight (one uniform draw even for
  // the single-component case, so seeds stay comparable across models).
  const double u = rng_.uniform();
  std::size_t component = joint_.component_count() - 1;
  double acc = 0.0;
  for (std::size_t c = 0; c < joint_.component_count(); ++c) {
    acc += joint_.component_weight(c);
    if (u < acc) {
      component = c;
      break;
    }
  }

  const std::size_t n = joint_.schema()->attribute_count();
  std::vector<DomainIndex> indices(n);
  for (AttributeId id = 0; id < n; ++id) {
    indices[id] =
        joint_.component_marginal(component, id).quantile(rng_.uniform());
  }
  return Event::from_indices(joint_.schema(), std::move(indices), next_time_++);
}

std::vector<Event> EventSampler::sample_batch(std::size_t count) {
  std::vector<Event> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) events.push_back(sample());
  return events;
}

}  // namespace genas
