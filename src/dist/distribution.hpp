// GENAS — discrete probability distributions over attribute domains.
//
// The paper's evaluation is driven entirely by discrete event and profile
// distributions P_e and P_p over the dense index space [0, d) of one
// attribute (§4.3). DiscreteDistribution is that object: an immutable,
// normalized probability mass function with the cumulative sums
// precomputed, so interval masses — the quantity the selectivity measures
// and the expected-cost engine evaluate constantly — are O(1) per interval.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "profile/interval_set.hpp"

namespace genas {

/// Immutable normalized PMF over a dense domain [0, d).
class DiscreteDistribution {
 public:
  /// Normalizes arbitrary non-negative weights. Throws
  /// Error{kInvalidArgument} when `weights` is empty, contains a negative
  /// entry, or sums to zero.
  static DiscreteDistribution from_weights(std::vector<double> weights);

  /// Uniform distribution over `size` values; throws when size < 1.
  static DiscreteDistribution uniform(std::int64_t size);

  /// Domain size d.
  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(pmf_.size());
  }

  /// P(X = v); 0 outside the domain.
  double pmf(DomainIndex v) const noexcept {
    return v >= 0 && v < size() ? pmf_[static_cast<std::size_t>(v)] : 0.0;
  }

  /// P(X <= v); 0 below the domain, 1 above it.
  double cdf(DomainIndex v) const noexcept {
    if (v < 0) return 0.0;
    if (v >= size()) return 1.0;
    return cdf_[static_cast<std::size_t>(v)];
  }

  /// P(X in iv); intervals are clipped to the domain, empty intervals have
  /// zero mass.
  double mass(const Interval& iv) const noexcept;

  /// P(X in set): sum over the set's disjoint intervals.
  double mass(const IntervalSet& set) const noexcept;

  /// Smallest v with cdf(v) >= q (generalized inverse CDF). Drives
  /// sampling: quantile(u) with u uniform in [0,1) is a draw from the
  /// distribution.
  DomainIndex quantile(double q) const noexcept;

  /// E[X] over domain indices.
  double mean_index() const noexcept;

  /// Convex combination (1-alpha)·this + alpha·other. Throws when sizes
  /// differ or alpha is outside [0, 1].
  DiscreteDistribution mix(const DiscreteDistribution& other,
                           double alpha) const;

  /// Total-variation-style L1 distance, in [0, 2]. Throws on size mismatch.
  static double l1_distance(const DiscreteDistribution& a,
                            const DiscreteDistribution& b);

  /// Renders "[p0, p1, ...]" with compact formatting.
  std::string to_string() const;

 private:
  explicit DiscreteDistribution(std::vector<double> pmf);

  std::vector<double> pmf_;
  std::vector<double> cdf_;  // inclusive prefix sums; back() == 1.0
};

}  // namespace genas
