#include "dist/estimator.hpp"

#include "common/error.hpp"

namespace genas {

HistogramEstimator::HistogramEstimator(std::int64_t size, double decay)
    : decay_(decay) {
  GENAS_REQUIRE(size >= 1, ErrorCode::kInvalidArgument,
                "histogram needs a positive domain size");
  GENAS_REQUIRE(decay > 0.0 && decay <= 1.0, ErrorCode::kInvalidArgument,
                "histogram decay must lie in (0, 1]");
  counts_.assign(static_cast<std::size_t>(size), 0.0);
}

void HistogramEstimator::observe(DomainIndex value) {
  GENAS_REQUIRE(value >= 0 &&
                    value < static_cast<DomainIndex>(counts_.size()),
                ErrorCode::kDomainViolation,
                "observed value outside the histogram domain");
  if (decay_ < 1.0) {
    scale_ /= decay_;
    if (scale_ > 1e120) {
      for (double& c : counts_) c /= scale_;
      scale_ = 1.0;
    }
  }
  counts_[static_cast<std::size_t>(value)] += scale_;
  ++observations_;
}

DiscreteDistribution HistogramEstimator::estimate(double smoothing) const {
  GENAS_REQUIRE(smoothing >= 0.0, ErrorCode::kInvalidArgument,
                "smoothing must be non-negative");
  GENAS_REQUIRE(observations_ > 0 || smoothing > 0.0, ErrorCode::kState,
                "cannot estimate from an empty histogram without smoothing");
  std::vector<double> weights(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    weights[i] = counts_[i] / scale_ + smoothing;
  }
  return DiscreteDistribution::from_weights(std::move(weights));
}

void HistogramEstimator::reset() noexcept {
  counts_.assign(counts_.size(), 0.0);
  scale_ = 1.0;
  observations_ = 0;
}

SchemaEstimator::SchemaEstimator(SchemaPtr schema, double decay)
    : schema_(std::move(schema)) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "estimator needs a schema");
  attributes_.reserve(schema_->attribute_count());
  for (const Attribute& attribute : schema_->attributes()) {
    attributes_.emplace_back(attribute.domain.size(), decay);
  }
}

void SchemaEstimator::observe(const Event& event) {
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "event schema differs from the estimator schema");
  for (AttributeId id = 0; id < attributes_.size(); ++id) {
    attributes_[id].observe(event.index(id));
  }
  ++observations_;
}

const HistogramEstimator& SchemaEstimator::attribute(AttributeId id) const {
  GENAS_REQUIRE(id < attributes_.size(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  return attributes_[id];
}

JointDistribution SchemaEstimator::estimate_joint(double smoothing) const {
  std::vector<DiscreteDistribution> marginals;
  marginals.reserve(attributes_.size());
  for (const HistogramEstimator& h : attributes_) {
    marginals.push_back(h.estimate(smoothing));
  }
  return JointDistribution::independent(schema_, std::move(marginals));
}

void SchemaEstimator::reset() noexcept {
  for (HistogramEstimator& h : attributes_) h.reset();
  observations_ = 0;
}

}  // namespace genas
