// GENAS — event sampling from a joint distribution.
//
// The Monte-Carlo test variants (TV1–TV3) "post events with the given
// distribution"; EventSampler is that event source. Draws are inverse-CDF
// per attribute (after picking a mixture component), deterministic under
// the library-wide Rng, and stamped with a strictly increasing logical
// timestamp so composite-event windows behave naturally.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "dist/joint.hpp"
#include "event/event.hpp"

namespace genas {

/// Deterministic stream of events drawn from a JointDistribution.
class EventSampler {
 public:
  EventSampler(JointDistribution joint, std::uint64_t seed);

  /// Draws the next event; timestamps are strictly increasing from 1.
  Event sample();

  /// Draws `count` events in one call (benchmark fast path).
  std::vector<Event> sample_batch(std::size_t count);

  const JointDistribution& joint() const noexcept { return joint_; }

 private:
  JointDistribution joint_;
  Rng rng_;
  Timestamp next_time_ = 1;
};

}  // namespace genas
