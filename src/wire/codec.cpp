#include "wire/codec.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/error.hpp"
#include "profile/predicate.hpp"

namespace genas::wire {

std::string_view to_string(MessageType type) noexcept {
  switch (type) {
    case MessageType::kSchema:      return "schema";
    case MessageType::kEvent:       return "event";
    case MessageType::kProfile:     return "profile";
    case MessageType::kSubscribe:   return "subscribe";
    case MessageType::kUnsubscribe: return "unsubscribe";
    case MessageType::kCompositeSubscribe:   return "csubscribe";
    case MessageType::kCompositeUnsubscribe: return "cunsubscribe";
    case MessageType::kCompositeFiring:      return "cfiring";
    case MessageType::kDelivery:             return "delivery";
    case MessageType::kFlush:                return "flush";
    case MessageType::kFlushDone:            return "flushdone";
    case MessageType::kLinkFrame:            return "linkframe";
    case MessageType::kLinkAck:              return "linkack";
    case MessageType::kHello:                return "hello";
    case MessageType::kHelloAck:             return "helloack";
    case MessageType::kStatsRequest:         return "statsreq";
    case MessageType::kStatsSnapshot:        return "statssnap";
    case MessageType::kEventBatch:           return "eventbatch";
    case MessageType::kDeliveryBatch:        return "deliverybatch";
  }
  return "?";
}

FrameProbe probe_frame(std::span<const std::uint8_t> data) noexcept {
  // Validate each header byte as soon as it is present: a corrupt stream
  // fails on the first bad byte instead of stalling in need-more forever.
  if (data.size() >= 1 && data[0] != static_cast<std::uint8_t>(kMagic)) {
    return {FrameStatus::kCorrupt, 0, "bad magic"};
  }
  if (data.size() >= 2 && data[1] != static_cast<std::uint8_t>(kMagic >> 8)) {
    return {FrameStatus::kCorrupt, 0, "bad magic"};
  }
  if (data.size() >= 3 && data[2] != kWireVersion) {
    return {FrameStatus::kCorrupt, 0, "unsupported wire version"};
  }
  if (data.size() >= 4 &&
      (data[3] < static_cast<std::uint8_t>(MessageType::kSchema) ||
       data[3] > kMaxMessageType)) {
    return {FrameStatus::kCorrupt, 0, "unknown message type"};
  }
  if (data.size() < kFrameHeaderSize) {
    return {FrameStatus::kNeedMore, 0, nullptr};
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(data[4 + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (length > kMaxFramePayload) {
    return {FrameStatus::kCorrupt, 0, "frame length exceeds the payload cap"};
  }
  const std::size_t total = kFrameHeaderSize + length;
  if (data.size() < total) {
    return {FrameStatus::kNeedMore, total, nullptr};
  }
  return {FrameStatus::kComplete, total, nullptr};
}

namespace {

[[noreturn]] void parse_fail(const std::string& what) {
  throw_error(ErrorCode::kParse, "wire: " + what);
}

/// Decoding reuses the library's constructors (SchemaBuilder, Predicate
/// factories, Event::from_indices), whose validation throws kInvalidArgument
/// or kDomainViolation. Seen from the wire, those are all the same condition
/// — a buffer that does not encode a valid message — so remap them to kParse.
template <typename Fn>
auto as_parse(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kParse) throw;
    throw_error(ErrorCode::kParse, std::string("wire: ") + e.what());
  }
}

}  // namespace

void Writer::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::raw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void Writer::patch_u32(std::size_t position, std::uint32_t v) {
  GENAS_CHECK(position + 4 <= buffer_.size(), "patch beyond buffer");
  for (int i = 0; i < 4; ++i) {
    buffer_[position + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void Writer::patch_u8(std::size_t position, std::uint8_t v) {
  GENAS_CHECK(position < buffer_.size(), "patch beyond buffer");
  buffer_[position] = v;
}

std::uint8_t Reader::u8() {
  if (pos_ >= data_.size()) parse_fail("truncated buffer");
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  const std::uint16_t lo = u8();
  return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(u8()) << shift;
  }
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(u8()) << shift;
  }
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t length = count(u32(), 1);
  std::string s(length, '\0');
  for (std::uint32_t i = 0; i < length; ++i) {
    s[i] = static_cast<char>(u8());
  }
  return s;
}

std::vector<std::uint8_t> Reader::bytes(std::size_t n) {
  if (n > remaining()) parse_fail("truncated buffer");
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void Reader::expect_done() const {
  if (!done()) parse_fail("trailing bytes after message");
}

std::uint32_t Reader::count(std::uint32_t raw, std::size_t min_bytes) const {
  if (static_cast<std::size_t>(raw) * min_bytes > remaining()) {
    parse_fail("element count exceeds buffer size");
  }
  return raw;
}

void encode_schema(Writer& w, const Schema& schema) {
  w.u32(static_cast<std::uint32_t>(schema.attribute_count()));
  for (const Attribute& attribute : schema.attributes()) {
    w.str(attribute.name);
    const Domain& domain = attribute.domain;
    w.u8(static_cast<std::uint8_t>(domain.kind()));
    switch (domain.kind()) {
      case ValueKind::kInt:
        w.i64(static_cast<std::int64_t>(domain.numeric_lo()));
        w.i64(static_cast<std::int64_t>(domain.numeric_hi()));
        break;
      case ValueKind::kReal:
        w.f64(domain.numeric_lo());
        w.f64(domain.numeric_hi());
        w.f64(domain.resolution());
        break;
      case ValueKind::kCategory:
        w.u32(static_cast<std::uint32_t>(domain.size()));
        for (DomainIndex i = 0; i < domain.size(); ++i) {
          w.str(domain.value_at(i).as_category());
        }
        break;
    }
  }
}

SchemaPtr decode_schema(Reader& r) {
  return as_parse([&] {
    SchemaBuilder builder;
    const std::uint32_t attributes = r.count(r.u32(), 5);
    if (attributes == 0) parse_fail("schema with no attributes");
    for (std::uint32_t a = 0; a < attributes; ++a) {
      std::string name = r.str();
      const std::uint8_t kind = r.u8();
      switch (kind) {
        case static_cast<std::uint8_t>(ValueKind::kInt): {
          const std::int64_t lo = r.i64();
          const std::int64_t hi = r.i64();
          builder.add_integer(std::move(name), lo, hi);
          break;
        }
        case static_cast<std::uint8_t>(ValueKind::kReal): {
          const double lo = r.f64();
          const double hi = r.f64();
          const double resolution = r.f64();
          builder.add_real(std::move(name), lo, hi, resolution);
          break;
        }
        case static_cast<std::uint8_t>(ValueKind::kCategory): {
          const std::uint32_t categories = r.count(r.u32(), 4);
          if (categories == 0) parse_fail("categorical domain with no values");
          std::vector<std::string> names;
          names.reserve(categories);
          for (std::uint32_t i = 0; i < categories; ++i) {
            names.push_back(r.str());
          }
          builder.add_categorical(std::move(name), std::move(names));
          break;
        }
        default:
          parse_fail("unknown domain kind " + std::to_string(kind));
      }
    }
    return builder.build();
  });
}

void encode_event(Writer& w, const Event& event) {
  const std::vector<DomainIndex>& indices = event.indices();
  w.u32(static_cast<std::uint32_t>(indices.size()));
  for (const DomainIndex index : indices) {
    w.u64(static_cast<std::uint64_t>(index));
  }
  w.i64(event.time());
}

Event decode_event(Reader& r, const SchemaPtr& schema) {
  return as_parse([&] {
    GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                  "event decoding requires a schema");
    const std::uint32_t attributes = r.count(r.u32(), 8);
    if (attributes != schema->attribute_count()) {
      parse_fail("event attribute count " + std::to_string(attributes) +
                 " does not match schema (" +
                 std::to_string(schema->attribute_count()) + ")");
    }
    std::vector<DomainIndex> indices;
    indices.reserve(attributes);
    for (std::uint32_t a = 0; a < attributes; ++a) {
      const std::uint64_t raw = r.u64();
      const std::int64_t domain_size = schema->attribute(a).domain.size();
      if (raw >= static_cast<std::uint64_t>(domain_size)) {
        parse_fail("event index " + std::to_string(raw) +
                   " outside domain of '" + schema->attribute(a).name + "'");
      }
      indices.push_back(static_cast<DomainIndex>(raw));
    }
    const Timestamp time = r.i64();
    return Event::from_indices(schema, std::move(indices), time);
  });
}

void encode_profile(Writer& w, const Profile& profile) {
  const std::vector<Predicate>& predicates = profile.predicates();
  w.u32(static_cast<std::uint32_t>(predicates.size()));
  for (const Predicate& predicate : predicates) {
    w.u32(static_cast<std::uint32_t>(predicate.attribute()));
    w.u8(static_cast<std::uint8_t>(predicate.op()));
    const std::vector<Interval>& intervals =
        predicate.accepted().intervals();
    w.u32(static_cast<std::uint32_t>(intervals.size()));
    for (const Interval& interval : intervals) {
      w.i64(interval.lo);
      w.i64(interval.hi);
    }
  }
}

Profile decode_profile(Reader& r, const SchemaPtr& schema) {
  return as_parse([&] {
    GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                  "profile decoding requires a schema");
    const std::uint32_t predicates = r.count(r.u32(), 9);
    if (predicates > schema->attribute_count()) {
      parse_fail("profile constrains more attributes than the schema has");
    }
    ProfileBuilder builder(schema);
    for (std::uint32_t p = 0; p < predicates; ++p) {
      const std::uint32_t attribute = r.u32();
      if (attribute >= schema->attribute_count()) {
        parse_fail("profile references unknown attribute id " +
                   std::to_string(attribute));
      }
      const std::uint8_t op_raw = r.u8();
      if (op_raw > static_cast<std::uint8_t>(Op::kIn)) {
        parse_fail("unknown predicate operator " + std::to_string(op_raw));
      }
      const std::uint32_t interval_count = r.count(r.u32(), 16);
      if (interval_count == 0) parse_fail("predicate with no intervals");
      std::vector<Interval> intervals;
      intervals.reserve(interval_count);
      for (std::uint32_t i = 0; i < interval_count; ++i) {
        const DomainIndex lo = r.i64();
        const DomainIndex hi = r.i64();
        if (lo > hi) parse_fail("predicate interval with lo > hi");
        intervals.emplace_back(lo, hi);
      }
      builder.add(Predicate::from_accepted(*schema, attribute,
                                           static_cast<Op>(op_raw),
                                           IntervalSet(std::move(intervals))));
    }
    return builder.build();
  });
}

namespace {

void encode_composite_node(Writer& w, const CompositeExpr& expr,
                           std::size_t depth) {
  // Symmetric with the decoder's cap: never emit a frame the other end
  // must refuse (and bound the encoder's own recursion).
  GENAS_REQUIRE(depth <= kMaxCompositeDepth, ErrorCode::kInvalidArgument,
                "composite expression nested deeper than " +
                    std::to_string(kMaxCompositeDepth));
  w.u8(static_cast<std::uint8_t>(expr.kind()));
  switch (expr.kind()) {
    case CompositeExpr::Kind::kPrimitive:
      GENAS_REQUIRE(expr.leaf_profile() != nullptr,
                    ErrorCode::kInvalidArgument,
                    "only profile-leaf composite expressions serialize "
                    "(profile-id leaves are broker-local)");
      encode_profile(w, *expr.leaf_profile());
      break;
    case CompositeExpr::Kind::kSeq:
    case CompositeExpr::Kind::kConj:
    case CompositeExpr::Kind::kNeg:
      w.i64(expr.window());
      encode_composite_node(w, *expr.left(), depth + 1);
      encode_composite_node(w, *expr.right(), depth + 1);
      break;
    case CompositeExpr::Kind::kDisj:
      encode_composite_node(w, *expr.left(), depth + 1);
      encode_composite_node(w, *expr.right(), depth + 1);
      break;
  }
}

}  // namespace

void encode_composite(Writer& w, const CompositeExpr& expr) {
  encode_composite_node(w, expr, 0);
}

namespace {

CompositeExprPtr decode_composite_node(Reader& r, const SchemaPtr& schema,
                                       std::size_t depth) {
  if (depth > kMaxCompositeDepth) {
    parse_fail("composite expression nested deeper than " +
               std::to_string(kMaxCompositeDepth));
  }
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(CompositeExpr::Kind::kPrimitive):
      return primitive(decode_profile(r, schema));
    case static_cast<std::uint8_t>(CompositeExpr::Kind::kSeq):
    case static_cast<std::uint8_t>(CompositeExpr::Kind::kConj):
    case static_cast<std::uint8_t>(CompositeExpr::Kind::kNeg): {
      const Timestamp window = r.i64();
      CompositeExprPtr left = decode_composite_node(r, schema, depth + 1);
      CompositeExprPtr right = decode_composite_node(r, schema, depth + 1);
      // The factories validate window bounds (kInvalidArgument -> kParse).
      if (kind == static_cast<std::uint8_t>(CompositeExpr::Kind::kSeq)) {
        return seq(std::move(left), std::move(right), window);
      }
      if (kind == static_cast<std::uint8_t>(CompositeExpr::Kind::kConj)) {
        return conj(std::move(left), std::move(right), window);
      }
      return neg(std::move(left), std::move(right), window);
    }
    case static_cast<std::uint8_t>(CompositeExpr::Kind::kDisj): {
      CompositeExprPtr left = decode_composite_node(r, schema, depth + 1);
      CompositeExprPtr right = decode_composite_node(r, schema, depth + 1);
      return disj(std::move(left), std::move(right));
    }
    default:
      parse_fail("unknown composite node kind " + std::to_string(kind));
  }
}

}  // namespace

CompositeExprPtr decode_composite(Reader& r, const SchemaPtr& schema) {
  return as_parse([&] { return decode_composite_node(r, schema, 0); });
}

namespace detail {

std::size_t begin_frame(Writer& w, MessageType type) {
  w.u16(kMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  const std::size_t length_at = w.size();
  w.u32(0);  // patched by end_frame
  return length_at;
}

std::vector<std::uint8_t> end_frame(Writer& w, std::size_t length_at) {
  w.patch_u32(length_at, static_cast<std::uint32_t>(w.size() - length_at - 4));
  return w.take();
}

}  // namespace detail

using detail::begin_frame;
using detail::end_frame;

std::vector<std::uint8_t> frame_schema(const Schema& schema) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kSchema);
  encode_schema(w, schema);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_event(const Event& event) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kEvent);
  encode_event(w, event);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_profile(const Profile& profile) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kProfile);
  encode_profile(w, profile);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_subscribe(std::uint64_t key,
                                          const Profile& profile) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kSubscribe);
  w.u64(key);
  encode_profile(w, profile);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_unsubscribe(std::uint64_t key) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kUnsubscribe);
  w.u64(key);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_composite_subscribe(std::uint64_t key,
                                                    const CompositeExpr& expr) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kCompositeSubscribe);
  w.u64(key);
  encode_composite(w, expr);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_composite_unsubscribe(std::uint64_t key) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kCompositeUnsubscribe);
  w.u64(key);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_composite_firing(std::uint64_t key,
                                                 Timestamp time) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kCompositeFiring);
  w.u64(key);
  w.i64(time);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_delivery(std::uint64_t key,
                                         const Event& event) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kDelivery);
  w.u64(key);
  encode_event(w, event);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_flush(std::uint64_t token) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kFlush);
  w.u64(token);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_flush_done(std::uint64_t token) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kFlushDone);
  w.u64(token);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_link(std::uint64_t sequence,
                                     std::span<const std::uint8_t> inner) {
  GENAS_REQUIRE(!inner.empty(), ErrorCode::kInvalidArgument,
                "a link frame must wrap a nested frame");
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kLinkFrame);
  w.u64(sequence);
  for (const std::uint8_t b : inner) w.u8(b);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_link_ack(std::uint64_t sequence) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kLinkAck);
  w.u64(sequence);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_hello(std::uint64_t session_id) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kHello);
  w.u64(session_id);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_hello_ack(bool resumed,
                                          std::uint64_t session_id,
                                          std::uint64_t publish_watermark) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kHelloAck);
  w.u8(resumed ? 1 : 0);
  w.u64(session_id);
  w.u64(publish_watermark);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_stats_request() {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kStatsRequest);
  return end_frame(w, at);
}

std::vector<std::uint8_t> frame_stats_snapshot(
    const obs::StatsSnapshot& stats) {
  Writer w;
  const std::size_t at = begin_frame(w, MessageType::kStatsSnapshot);
  w.u32(static_cast<std::uint32_t>(stats.metrics.size()));
  for (const obs::MetricSnapshot& m : stats.metrics) {
    w.str(m.name);
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.i64(m.value);
    const bool hist = m.kind == obs::MetricKind::kHistogram;
    GENAS_REQUIRE(!hist || m.counts.size() == m.bounds.size() + 1,
                  ErrorCode::kInvalidArgument,
                  "histogram snapshot needs bounds+1 bucket counts");
    w.u32(hist ? static_cast<std::uint32_t>(m.bounds.size()) : 0);
    if (hist) {
      for (const std::uint64_t b : m.bounds) w.u64(b);
      for (const std::uint64_t c : m.counts) w.u64(c);
      w.u64(m.sum);
    }
  }
  return end_frame(w, at);
}

namespace {

/// One packed batch element: attr_count * u64 index + i64 time, no
/// per-event count prefix (the schema supplies it for the whole batch).
Event decode_packed_event(Reader& r, const SchemaPtr& schema) {
  const std::size_t attributes = schema->attribute_count();
  std::vector<DomainIndex> indices;
  indices.reserve(attributes);
  for (std::size_t a = 0; a < attributes; ++a) {
    const std::uint64_t raw = r.u64();
    const std::int64_t domain_size = schema->attribute(a).domain.size();
    if (raw >= static_cast<std::uint64_t>(domain_size)) {
      parse_fail("event index " + std::to_string(raw) +
                 " outside domain of '" + schema->attribute(a).name + "'");
    }
    indices.push_back(static_cast<DomainIndex>(raw));
  }
  const Timestamp time = r.i64();
  return Event::from_indices(schema, std::move(indices), time);
}

MessageType read_header(Reader& r, std::size_t frame_size) {
  if (r.u16() != kMagic) parse_fail("bad magic");
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    parse_fail("unsupported wire version " + std::to_string(version));
  }
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(MessageType::kSchema) ||
      type > kMaxMessageType) {
    parse_fail("unknown message type " + std::to_string(type));
  }
  const std::uint32_t length = r.u32();
  if (static_cast<std::size_t>(length) + 8 != frame_size) {
    parse_fail("frame length field does not match buffer size");
  }
  return static_cast<MessageType>(type);
}

}  // namespace

MessageType peek_type(std::span<const std::uint8_t> frame) {
  Reader r(frame);
  return read_header(r, frame.size());
}

Message decode_message(std::span<const std::uint8_t> frame,
                       const SchemaPtr& schema) {
  Reader r(frame);
  const MessageType type = read_header(r, frame.size());
  switch (type) {
    case MessageType::kSchema: {
      SchemaMsg msg{decode_schema(r)};
      r.expect_done();
      return msg;
    }
    case MessageType::kEvent: {
      EventMsg msg{decode_event(r, schema)};
      r.expect_done();
      return msg;
    }
    case MessageType::kProfile: {
      ProfileMsg msg{decode_profile(r, schema)};
      r.expect_done();
      return msg;
    }
    case MessageType::kSubscribe: {
      const std::uint64_t key = r.u64();
      SubscribeMsg msg{key, decode_profile(r, schema)};
      r.expect_done();
      return msg;
    }
    case MessageType::kUnsubscribe: {
      UnsubscribeMsg msg{r.u64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kCompositeSubscribe: {
      const std::uint64_t key = r.u64();
      CompositeSubscribeMsg msg{key, decode_composite(r, schema)};
      r.expect_done();
      return msg;
    }
    case MessageType::kCompositeUnsubscribe: {
      CompositeUnsubscribeMsg msg{r.u64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kCompositeFiring: {
      const std::uint64_t key = r.u64();
      CompositeFiringMsg msg{key, r.i64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kDelivery: {
      const std::uint64_t key = r.u64();
      DeliveryMsg msg{key, decode_event(r, schema)};
      r.expect_done();
      return msg;
    }
    case MessageType::kFlush: {
      FlushMsg msg{r.u64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kFlushDone: {
      FlushDoneMsg msg{r.u64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kLinkFrame: {
      const std::uint64_t sequence = r.u64();
      LinkFrameMsg msg{sequence, r.bytes(r.remaining())};
      // The envelope must wrap exactly one well-formed frame; a receiver
      // decodes the inner bytes only after the dedup check passes, so the
      // header sanity happens here, once, at envelope-decode time.
      const FrameProbe probe = probe_frame(msg.inner);
      if (probe.status != FrameStatus::kComplete ||
          probe.size != msg.inner.size()) {
        parse_fail("link frame does not wrap exactly one frame");
      }
      r.expect_done();
      return msg;
    }
    case MessageType::kLinkAck: {
      LinkAckMsg msg{r.u64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kHello: {
      HelloMsg msg{r.u64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kHelloAck: {
      const std::uint8_t resumed = r.u8();
      if (resumed > 1) parse_fail("helloack resumed flag must be 0 or 1");
      HelloAckMsg msg{resumed == 1, r.u64(), r.u64()};
      r.expect_done();
      return msg;
    }
    case MessageType::kStatsRequest: {
      r.expect_done();
      return StatsRequestMsg{};
    }
    case MessageType::kStatsSnapshot: {
      StatsSnapshotMsg msg;
      // Each metric is at least a str length + kind + value + bound count.
      const std::uint32_t metrics = r.count(r.u32(), 4 + 1 + 8 + 4);
      msg.stats.metrics.reserve(metrics);
      for (std::uint32_t i = 0; i < metrics; ++i) {
        obs::MetricSnapshot& m = msg.stats.metrics.emplace_back();
        m.name = r.str();
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram)) {
          parse_fail("unknown metric kind " + std::to_string(kind));
        }
        m.kind = static_cast<obs::MetricKind>(kind);
        m.value = r.i64();
        const std::uint32_t bounds = r.count(r.u32(), 8);
        const bool hist = m.kind == obs::MetricKind::kHistogram;
        if (hist != (bounds != 0) || bounds > obs::kMaxHistogramBuckets) {
          parse_fail("metric '" + m.name + "' has inconsistent bucket count " +
                     std::to_string(bounds));
        }
        if (hist) {
          m.bounds.reserve(bounds);
          for (std::uint32_t b = 0; b < bounds; ++b) m.bounds.push_back(r.u64());
          if (!std::is_sorted(m.bounds.begin(), m.bounds.end()) ||
              std::adjacent_find(m.bounds.begin(), m.bounds.end()) !=
                  m.bounds.end()) {
            parse_fail("metric '" + m.name + "' bucket bounds not ascending");
          }
          m.counts.reserve(bounds + 1);
          for (std::uint32_t b = 0; b <= bounds; ++b) m.counts.push_back(r.u64());
          m.sum = r.u64();
        }
      }
      r.expect_done();
      return msg;
    }
    case MessageType::kEventBatch: {
      return as_parse([&]() -> Message {
        GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                      "event decoding requires a schema");
        const std::size_t event_bytes = schema->attribute_count() * 8 + 8;
        const std::uint32_t events = r.count(r.u32(), event_bytes);
        if (events == 0) parse_fail("empty event batch");
        const std::uint8_t has_tokens = r.u8();
        if (has_tokens > 1) {
          parse_fail("event batch token flag must be 0 or 1");
        }
        EventBatchMsg msg;
        msg.events.reserve(events);
        for (std::uint32_t i = 0; i < events; ++i) {
          msg.events.push_back(decode_packed_event(r, schema));
        }
        if (has_tokens == 1) {
          msg.tokens.reserve(events);
          for (std::uint32_t i = 0; i < events; ++i) {
            msg.tokens.push_back(r.u64());
          }
        }
        r.expect_done();
        return msg;
      });
    }
    case MessageType::kDeliveryBatch: {
      return as_parse([&]() -> Message {
        GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                      "event decoding requires a schema");
        const std::size_t delivery_bytes = 8 + schema->attribute_count() * 8 + 8;
        const std::uint32_t deliveries = r.count(r.u32(), delivery_bytes);
        if (deliveries == 0) parse_fail("empty delivery batch");
        DeliveryBatchMsg msg;
        msg.keys.reserve(deliveries);
        msg.events.reserve(deliveries);
        for (std::uint32_t i = 0; i < deliveries; ++i) {
          msg.keys.push_back(r.u64());
          msg.events.push_back(decode_packed_event(r, schema));
        }
        r.expect_done();
        return msg;
      });
    }
  }
  parse_fail("unreachable message type");
}

}  // namespace genas::wire
