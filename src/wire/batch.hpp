// GENAS — batched link frames: incremental encoders and an arena-backed
// zero-allocation batch decoder.
//
// The mesh's per-event framing is the throughput ceiling the ROADMAP's
// "batched, zero-copy link frames" item targets: every inter-node event
// pays its own frame header, heap-allocated index vector, and (on reliable
// links) its own seq/ack round. This module amortizes all three:
//
//   - EventBatchBuilder / DeliveryBatchBuilder accumulate events into one
//     kEventBatch / kDeliveryBatch frame incrementally (no intermediate
//     Event copies — indices are serialized straight into the frame
//     buffer). A single token-free event degenerates to the legacy kEvent /
//     kDelivery frame, byte-identical to the unbatched path, so a batch
//     cap of 1 reproduces the old wire traffic exactly.
//
//   - EventArena + decode_event_batch materialize a received batch into a
//     caller-owned vector, drawing every index vector from a free-list of
//     recycled allocations. Once the arena is warm (the caller recycles
//     each drained batch back into it), a decode performs zero per-event
//     heap allocation: the only per-event work is bounds-checked index
//     copies into reserved storage.
//
// Validation matches decode_message's kEventBatch case exactly — count
// guard against the buffer size, per-index domain check, exact-size
// framing — so the arena path accepts precisely the frames the generic
// path accepts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "event/event.hpp"
#include "wire/codec.hpp"

namespace genas::wire {

/// Free-list of index-vector allocations for batch decoding. Not
/// thread-safe: each mesh worker / socket reader owns its own arena.
class EventArena {
 public:
  /// An empty vector with at least `capacity` reserved, recycled from the
  /// free-list when one is available.
  std::vector<DomainIndex> checkout(std::size_t capacity);

  /// Reclaims a drained event's index storage for the next checkout.
  void recycle(Event&& event);

  /// Reclaims every event's storage and clears `events` (which keeps its
  /// own capacity — the usual per-round scratch-vector pattern).
  void recycle_all(std::vector<Event>& events);

  std::size_t spare() const noexcept { return spare_.size(); }

 private:
  /// Free-list soft cap: recycling beyond it frees instead of hoarding
  /// (bounds arena growth after a one-off giant batch).
  static constexpr std::size_t kMaxSpare = 4096;

  std::vector<std::vector<DomainIndex>> spare_;
};

/// Decodes one complete kEventBatch frame (header included), appending the
/// events to `events` and one dedup token per event to `tokens` (0 when
/// the frame carries none), with index storage drawn from `arena`. Returns
/// the number of events appended. Malformed input throws Error{kParse};
/// the caller must discard any partially-appended output on throw.
std::size_t decode_event_batch(std::span<const std::uint8_t> frame,
                               const SchemaPtr& schema, EventArena& arena,
                               std::vector<Event>& events,
                               std::vector<std::uint64_t>& tokens);

/// Accumulates events into one pending kEventBatch frame, serializing each
/// appended event's indices directly into the frame buffer. All appended
/// events must share one schema (the frame encodes the attribute count
/// implicitly through it).
class EventBatchBuilder {
 public:
  /// Appends one event and its dedup token (0 = none) to the pending frame.
  void append(const Event& event, std::uint64_t token = 0);

  std::size_t pending() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Finishes and returns the pending frame, resetting the builder for the
  /// next batch. One token-free event yields a plain kEvent frame; anything
  /// else a kEventBatch (with the token run appended iff any token was
  /// nonzero). Asserts on an empty builder.
  std::vector<std::uint8_t> take_frame();

  /// Discards the pending frame without emitting it (error recovery).
  void reset() noexcept;

 private:
  Writer writer_;
  std::vector<std::uint64_t> tokens_;
  std::size_t count_ = 0;
  std::size_t length_at_ = 0;
  std::size_t count_at_ = 0;
  std::size_t flag_at_ = 0;
  std::uint32_t attr_count_ = 0;
  bool any_token_ = false;
};

/// Accumulates (subscription key, event) deliveries into one pending
/// kDeliveryBatch frame. Same contract as EventBatchBuilder; a single
/// delivery degenerates to a plain kDelivery frame.
class DeliveryBatchBuilder {
 public:
  void append(std::uint64_t key, const Event& event);

  std::size_t pending() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  std::vector<std::uint8_t> take_frame();

  /// Discards the pending frame without emitting it (error recovery).
  void reset() noexcept;

 private:
  Writer writer_;
  std::size_t count_ = 0;
  std::size_t length_at_ = 0;
  std::size_t count_at_ = 0;
  std::uint32_t attr_count_ = 0;
};

}  // namespace genas::wire
