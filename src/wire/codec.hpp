// GENAS — binary wire codec for schemas, events, profiles, and the mesh's
// control messages.
//
// The distributed runtime (src/mesh/) transports real serialized bytes over
// its links; this module defines the format. It is deliberately transport-
// agnostic — a frame is a self-contained byte string that works equally over
// an in-process mailbox, a TCP socket, or a log file.
//
// Frame layout (all integers little-endian):
//
//   u16 magic      0x4757 ("GW")
//   u8  version    kWireVersion
//   u8  type       MessageType
//   u32 length     payload byte count
//   ...payload...
//
// A decoder must receive the frame exactly: truncated, oversized, or
// corrupted buffers are rejected with Error{kParse} — every read is
// bounds-checked and every decoded quantity is validated against the schema
// (attribute counts, domain sizes, interval bounds), so malformed input can
// never crash or over-allocate.
//
// Payload formats:
//   schema       u32 attr_count, then per attribute: str name, u8 kind,
//                int: i64 lo, i64 hi | real: f64 lo, f64 hi, f64 resolution |
//                cat: u32 count, count * str
//   event        u32 index_count, count * u64 domain index, i64 timestamp
//   profile      u32 predicate_count, then per predicate: u32 attribute,
//                u8 op, u32 interval_count, count * (i64 lo, i64 hi)
//   subscribe    u64 subscription key, profile payload
//   unsubscribe  u64 subscription key
//   csubscribe   u64 subscription key, composite expression pre-order:
//                u8 kind, then primitive: profile payload |
//                seq/conj/neg: i64 window, left expr, right expr |
//                disj: left expr, right expr (depth capped at
//                kMaxCompositeDepth)
//   cunsubscribe u64 subscription key
//   cfiring      u64 subscription key, i64 completion timestamp
//   delivery     u64 subscription key, event payload (server -> client:
//                a notification for the client's subscription `key`)
//   flush        u64 token (client -> server: barrier request — the server
//                processes it after every earlier frame on the connection,
//                drains/flushes buffered composite state, and replies)
//   flushdone    u64 token (server -> client: the flush with this token
//                completed; every delivery caused by the client's earlier
//                frames precedes it on the stream)
//   linkframe    u64 sequence number, then one complete nested frame
//                (header + payload) — the at-least-once envelope: a link
//                retransmits it until the sequence is cumulatively acked
//   linkack      u64 sequence (cumulative: every linkframe with sequence
//                <= this value has been received and processed)
//   hello        u64 session id (client -> server, first frame on a
//                connection that wants session resume; 0 = fresh session)
//   helloack     u8 resumed (1 when the server recognized the session),
//                u64 session id (assigned on fresh connect, echoed on
//                resume), u64 publish watermark (highest client publish
//                sequence the server has processed; the client replays
//                everything above it)
//   statsreq     (empty payload; client -> server: scrape request)
//   eventbatch   u32 event_count (>= 1), u8 has_tokens (0|1), then per
//                event: attr_count * u64 domain index, i64 timestamp. The
//                attribute count is taken from the shared schema once for
//                the whole batch (no per-event count), so the events pack
//                as contiguous index runs. When has_tokens is 1 the payload
//                ends with event_count * u64 dedup tokens.
//   deliverybatch u32 count (>= 1), then per delivery: u64 subscription
//                key, attr_count * u64 domain index, i64 timestamp
//                (server -> client: a coalesced run of notifications)
//   statssnap    u32 metric_count, then per metric: str name, u8 kind
//                (obs::MetricKind), i64 value, u32 bound_count (0 unless
//                histogram), bound_count * u64 bucket upper bounds,
//                histogram only: (bound_count + 1) * u64 bucket counts
//                (last = +Inf), u64 sum
//
// Events and profiles are encoded against a schema both ends share (the
// mesh distributes it out of band or via a kSchema frame); decode_* take
// that schema and validate against it.
//
// Streaming: decode_message requires one exact frame, but a byte stream
// (TCP) delivers arbitrary prefixes. probe_frame classifies a buffer
// prefix without decoding: need-more-bytes (a short read — resume once
// more arrive) is distinct from corrupt (bad magic/version/type or an
// absurd length — the stream is unrecoverable), so a socket reader never
// misreports a split frame as a parse error.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ens/composite.hpp"
#include "event/event.hpp"
#include "obs/metrics.hpp"
#include "profile/profile.hpp"

namespace genas::wire {

inline constexpr std::uint16_t kMagic = 0x4757;  // "GW"
inline constexpr std::uint8_t kWireVersion = 1;

/// Nesting bound for composite expression payloads: decoding is recursive,
/// so unbounded depth would let a hostile frame exhaust the stack.
inline constexpr std::size_t kMaxCompositeDepth = 64;

enum class MessageType : std::uint8_t {
  kSchema = 1,
  kEvent = 2,
  kProfile = 3,
  kSubscribe = 4,
  kUnsubscribe = 5,
  kCompositeSubscribe = 6,
  kCompositeUnsubscribe = 7,
  kCompositeFiring = 8,
  kDelivery = 9,
  kFlush = 10,
  kFlushDone = 11,
  kLinkFrame = 12,
  kLinkAck = 13,
  kHello = 14,
  kHelloAck = 15,
  kStatsRequest = 16,
  kStatsSnapshot = 17,
  kEventBatch = 18,
  kDeliveryBatch = 19,
};

/// Highest valid MessageType value; probe_frame/read_header reject types
/// beyond it. Keep in sync when adding message types.
inline constexpr std::uint8_t kMaxMessageType =
    static_cast<std::uint8_t>(MessageType::kDeliveryBatch);

std::string_view to_string(MessageType type) noexcept;

/// Frame header byte count (magic + version + type + length).
inline constexpr std::size_t kFrameHeaderSize = 8;

/// Upper bound on a frame's payload length field. Far above any real
/// message, far below anything that could exhaust memory: a stream whose
/// length field exceeds it is corrupt, not merely short.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB

/// Classification of a byte-stream prefix (see probe_frame).
enum class FrameStatus : std::uint8_t {
  kComplete,  ///< buffer starts with one whole frame of `size` bytes
  kNeedMore,  ///< valid so far but short — read more bytes and re-probe
  kCorrupt,   ///< the prefix can never become a valid frame
};

struct FrameProbe {
  FrameStatus status = FrameStatus::kNeedMore;
  /// Total frame size (header + payload). Valid when kComplete; when
  /// kNeedMore with a full header it is the size the frame will have, and
  /// 0 while even the header is incomplete.
  std::size_t size = 0;
  /// Static diagnostic, non-null when kCorrupt.
  const char* error = nullptr;
};

/// Probes the start of `data` for a frame without decoding the payload.
/// Every header byte present is validated immediately, so a corrupt stream
/// is detected as soon as the offending byte arrives; a buffer that is
/// merely short reports kNeedMore, never kCorrupt. Bytes beyond the first
/// frame are ignored (streams carry back-to-back frames).
FrameProbe probe_frame(std::span<const std::uint8_t> data) noexcept;

/// Append-only little-endian byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);  ///< u32 length + raw bytes
  void raw(std::span<const std::uint8_t> bytes);  ///< bytes only, no length

  std::size_t size() const noexcept { return buffer_.size(); }
  void clear() noexcept { buffer_.clear(); }  ///< reset, keeping capacity
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }

  /// Overwrites 4 bytes at `position` (frame length back-patching).
  void patch_u32(std::size_t position, std::uint32_t v);

  /// Overwrites 1 byte at `position` (batch flag back-patching).
  void patch_u8(std::size_t position, std::uint8_t v);

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian byte source; overruns throw Error{kParse}.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  std::vector<std::uint8_t> bytes(std::size_t n);  ///< n raw bytes

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }
  /// Throws Error{kParse} when bytes are left over (exact-size framing).
  void expect_done() const;
  /// Sanity bound for a decoded element count: each element consumes at
  /// least `min_bytes`, so counts beyond remaining()/min_bytes are corrupt.
  std::uint32_t count(std::uint32_t raw, std::size_t min_bytes) const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

namespace detail {
/// Writes a frame header with a zero length field; returns the position of
/// the length field for end_frame to back-patch. Shared by codec.cpp's
/// frame_* builders and the incremental batch builders in wire/batch.hpp.
std::size_t begin_frame(Writer& w, MessageType type);
/// Patches the frame length and releases the finished frame bytes.
std::vector<std::uint8_t> end_frame(Writer& w, std::size_t length_at);
}  // namespace detail

// Payload codecs (no frame header).
void encode_schema(Writer& w, const Schema& schema);
SchemaPtr decode_schema(Reader& r);
void encode_event(Writer& w, const Event& event);
Event decode_event(Reader& r, const SchemaPtr& schema);
void encode_profile(Writer& w, const Profile& profile);
Profile decode_profile(Reader& r, const SchemaPtr& schema);
/// Pre-order expression encoding; every leaf must be a profile leaf
/// (`primitive(Profile)`) — detector-level id leaves are broker-local and
/// refuse to serialize with Error{kInvalidArgument}.
void encode_composite(Writer& w, const CompositeExpr& expr);
CompositeExprPtr decode_composite(Reader& r, const SchemaPtr& schema);

// Framed messages (header + payload, ready for a link).
std::vector<std::uint8_t> frame_schema(const Schema& schema);
std::vector<std::uint8_t> frame_event(const Event& event);
std::vector<std::uint8_t> frame_profile(const Profile& profile);
std::vector<std::uint8_t> frame_subscribe(std::uint64_t key,
                                          const Profile& profile);
std::vector<std::uint8_t> frame_unsubscribe(std::uint64_t key);
std::vector<std::uint8_t> frame_composite_subscribe(std::uint64_t key,
                                                    const CompositeExpr& expr);
std::vector<std::uint8_t> frame_composite_unsubscribe(std::uint64_t key);
std::vector<std::uint8_t> frame_composite_firing(std::uint64_t key,
                                                 Timestamp time);
std::vector<std::uint8_t> frame_delivery(std::uint64_t key,
                                         const Event& event);
std::vector<std::uint8_t> frame_flush(std::uint64_t token);
std::vector<std::uint8_t> frame_flush_done(std::uint64_t token);
/// Wraps one complete inner frame in an at-least-once envelope; the inner
/// bytes must themselves be a valid frame (validated on decode, not here).
std::vector<std::uint8_t> frame_link(std::uint64_t sequence,
                                     std::span<const std::uint8_t> inner);
std::vector<std::uint8_t> frame_link_ack(std::uint64_t sequence);
std::vector<std::uint8_t> frame_hello(std::uint64_t session_id);
std::vector<std::uint8_t> frame_hello_ack(bool resumed,
                                          std::uint64_t session_id,
                                          std::uint64_t publish_watermark);
std::vector<std::uint8_t> frame_stats_request();
std::vector<std::uint8_t> frame_stats_snapshot(const obs::StatsSnapshot& stats);
/// Frames a run of events sharing one schema as a kEventBatch. `tokens`,
/// when non-empty, must be one dedup token per event; an all-zero token run
/// is omitted from the wire. A single token-free event degenerates to a
/// plain kEvent frame (byte-identical to the unbatched path). Empty input
/// is an error — there is no empty batch frame.
std::vector<std::uint8_t> frame_event_batch(
    std::span<const Event> events, std::span<const std::uint64_t> tokens = {});
/// Frames a run of (subscription key, event) deliveries as a
/// kDeliveryBatch; a single delivery degenerates to a plain kDelivery.
std::vector<std::uint8_t> frame_delivery_batch(
    std::span<const std::uint64_t> keys, std::span<const Event> events);

/// Decoded frame contents.
struct SchemaMsg {
  SchemaPtr schema;
};
struct EventMsg {
  Event event;
};
struct ProfileMsg {
  Profile profile;
};
struct SubscribeMsg {
  std::uint64_t key;
  Profile profile;
};
struct UnsubscribeMsg {
  std::uint64_t key;
};
struct CompositeSubscribeMsg {
  std::uint64_t key;
  CompositeExprPtr expression;
};
struct CompositeUnsubscribeMsg {
  std::uint64_t key;
};
struct CompositeFiringMsg {
  std::uint64_t key;
  Timestamp time;
};
struct DeliveryMsg {
  std::uint64_t key;
  Event event;
};
struct FlushMsg {
  std::uint64_t token;
};
struct FlushDoneMsg {
  std::uint64_t token;
};
struct LinkFrameMsg {
  std::uint64_t sequence;
  /// The envelope's nested frame, still encoded: the receiver dedups by
  /// sequence first and only then pays for decoding the inner message.
  std::vector<std::uint8_t> inner;
};
struct LinkAckMsg {
  std::uint64_t sequence;  ///< cumulative: all sequences <= this are acked
};
struct HelloMsg {
  std::uint64_t session_id;  ///< 0 requests a fresh session
};
struct HelloAckMsg {
  bool resumed;
  std::uint64_t session_id;
  std::uint64_t publish_watermark;
};
struct StatsRequestMsg {};
struct StatsSnapshotMsg {
  obs::StatsSnapshot stats;
};
struct EventBatchMsg {
  std::vector<Event> events;
  /// One dedup token per event, or empty when the frame carried none.
  std::vector<std::uint64_t> tokens;
};
struct DeliveryBatchMsg {
  std::vector<std::uint64_t> keys;  ///< one subscription key per event
  std::vector<Event> events;
};
using Message =
    std::variant<SchemaMsg, EventMsg, ProfileMsg, SubscribeMsg, UnsubscribeMsg,
                 CompositeSubscribeMsg, CompositeUnsubscribeMsg,
                 CompositeFiringMsg, DeliveryMsg, FlushMsg, FlushDoneMsg,
                 LinkFrameMsg, LinkAckMsg, HelloMsg, HelloAckMsg,
                 StatsRequestMsg, StatsSnapshotMsg, EventBatchMsg,
                 DeliveryBatchMsg>;

/// Frame type without decoding the payload; throws Error{kParse} on a
/// malformed header.
MessageType peek_type(std::span<const std::uint8_t> frame);

/// Decodes one complete frame. `schema` interprets event/profile payloads
/// (ignored for kSchema). Any malformation — truncation, trailing garbage,
/// bad magic/version/type, out-of-domain values — throws Error{kParse}.
Message decode_message(std::span<const std::uint8_t> frame,
                       const SchemaPtr& schema);

}  // namespace genas::wire
