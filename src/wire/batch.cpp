#include "wire/batch.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace genas::wire {

namespace {

[[noreturn]] void parse_fail(const std::string& what) {
  throw_error(ErrorCode::kParse, "wire: " + what);
}

/// Same remapping as codec.cpp's: constructor validation failures seen from
/// the wire are parse errors.
template <typename Fn>
auto as_parse(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kParse) throw;
    throw_error(ErrorCode::kParse, std::string("wire: ") + e.what());
  }
}

}  // namespace

std::vector<DomainIndex> EventArena::checkout(std::size_t capacity) {
  std::vector<DomainIndex> v;
  if (!spare_.empty()) {
    v = std::move(spare_.back());
    spare_.pop_back();
    v.clear();
  }
  v.reserve(capacity);
  return v;
}

void EventArena::recycle(Event&& event) {
  if (spare_.size() >= kMaxSpare) return;
  std::vector<DomainIndex> v = event.take_indices();
  if (v.capacity() == 0) return;
  spare_.push_back(std::move(v));
}

void EventArena::recycle_all(std::vector<Event>& events) {
  for (Event& event : events) recycle(std::move(event));
  events.clear();
}

std::size_t decode_event_batch(std::span<const std::uint8_t> frame,
                               const SchemaPtr& schema, EventArena& arena,
                               std::vector<Event>& events,
                               std::vector<std::uint64_t>& tokens) {
  if (peek_type(frame) != MessageType::kEventBatch) {
    parse_fail("decode_event_batch requires a kEventBatch frame");
  }
  return as_parse([&]() -> std::size_t {
    GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                  "event decoding requires a schema");
    Reader r(frame.subspan(kFrameHeaderSize));
    const std::size_t attributes = schema->attribute_count();
    const std::uint32_t batch = r.count(r.u32(), attributes * 8 + 8);
    if (batch == 0) parse_fail("empty event batch");
    const std::uint8_t has_tokens = r.u8();
    if (has_tokens > 1) parse_fail("event batch token flag must be 0 or 1");
    events.reserve(events.size() + batch);
    tokens.reserve(tokens.size() + batch);
    for (std::uint32_t i = 0; i < batch; ++i) {
      std::vector<DomainIndex> indices = arena.checkout(attributes);
      for (std::size_t a = 0; a < attributes; ++a) {
        const std::uint64_t raw = r.u64();
        const std::int64_t domain_size = schema->attribute(a).domain.size();
        if (raw >= static_cast<std::uint64_t>(domain_size)) {
          parse_fail("event index " + std::to_string(raw) +
                     " outside domain of '" + schema->attribute(a).name + "'");
        }
        indices.push_back(static_cast<DomainIndex>(raw));
      }
      const Timestamp time = r.i64();
      events.push_back(Event::from_indices(schema, std::move(indices), time));
    }
    if (has_tokens == 1) {
      for (std::uint32_t i = 0; i < batch; ++i) tokens.push_back(r.u64());
    } else {
      tokens.insert(tokens.end(), batch, 0);
    }
    r.expect_done();
    return batch;
  });
}

void EventBatchBuilder::append(const Event& event, std::uint64_t token) {
  if (count_ == 0) {
    length_at_ = detail::begin_frame(writer_, MessageType::kEventBatch);
    count_at_ = writer_.size();
    writer_.u32(0);  // event count, patched by take_frame
    flag_at_ = writer_.size();
    writer_.u8(0);  // has_tokens, patched when any token is nonzero
    attr_count_ = static_cast<std::uint32_t>(event.indices().size());
  }
  GENAS_CHECK(event.indices().size() == attr_count_,
              "batched events must share one schema");
  for (const DomainIndex index : event.indices()) {
    writer_.u64(static_cast<std::uint64_t>(index));
  }
  writer_.i64(event.time());
  tokens_.push_back(token);
  any_token_ = any_token_ || token != 0;
  ++count_;
}

std::vector<std::uint8_t> EventBatchBuilder::take_frame() {
  GENAS_CHECK(count_ > 0, "take_frame on an empty batch builder");
  std::vector<std::uint8_t> frame;
  if (count_ == 1 && !any_token_) {
    // Degenerate to the legacy kEvent frame: identical payload bytes plus
    // the per-event attribute count the batch format leaves implicit.
    Writer single;
    const std::size_t at = detail::begin_frame(single, MessageType::kEvent);
    single.u32(attr_count_);
    const std::span<const std::uint8_t> bytes(writer_.bytes());
    single.raw(bytes.subspan(flag_at_ + 1));
    frame = detail::end_frame(single, at);
  } else {
    writer_.patch_u32(count_at_, static_cast<std::uint32_t>(count_));
    if (any_token_) {
      writer_.patch_u8(flag_at_, 1);
      for (const std::uint64_t token : tokens_) writer_.u64(token);
    }
    frame = detail::end_frame(writer_, length_at_);
  }
  writer_.clear();
  tokens_.clear();
  count_ = 0;
  any_token_ = false;
  return frame;
}

void EventBatchBuilder::reset() noexcept {
  writer_.clear();
  tokens_.clear();
  count_ = 0;
  any_token_ = false;
}

void DeliveryBatchBuilder::append(std::uint64_t key, const Event& event) {
  if (count_ == 0) {
    length_at_ = detail::begin_frame(writer_, MessageType::kDeliveryBatch);
    count_at_ = writer_.size();
    writer_.u32(0);  // delivery count, patched by take_frame
    attr_count_ = static_cast<std::uint32_t>(event.indices().size());
  }
  GENAS_CHECK(event.indices().size() == attr_count_,
              "batched deliveries must share one schema");
  writer_.u64(key);
  for (const DomainIndex index : event.indices()) {
    writer_.u64(static_cast<std::uint64_t>(index));
  }
  writer_.i64(event.time());
  ++count_;
}

std::vector<std::uint8_t> DeliveryBatchBuilder::take_frame() {
  GENAS_CHECK(count_ > 0, "take_frame on an empty batch builder");
  std::vector<std::uint8_t> frame;
  if (count_ == 1) {
    // Degenerate to the legacy kDelivery frame: key, then the attribute
    // count the batch format leaves implicit, then the same index run.
    Writer single;
    const std::size_t at = detail::begin_frame(single, MessageType::kDelivery);
    const std::span<const std::uint8_t> bytes(writer_.bytes());
    const std::size_t body = count_at_ + 4;
    single.raw(bytes.subspan(body, 8));  // subscription key
    single.u32(attr_count_);
    single.raw(bytes.subspan(body + 8));  // indices + timestamp
    frame = detail::end_frame(single, at);
  } else {
    writer_.patch_u32(count_at_, static_cast<std::uint32_t>(count_));
    frame = detail::end_frame(writer_, length_at_);
  }
  writer_.clear();
  count_ = 0;
  return frame;
}

void DeliveryBatchBuilder::reset() noexcept {
  writer_.clear();
  count_ = 0;
}

std::vector<std::uint8_t> frame_event_batch(
    std::span<const Event> events, std::span<const std::uint64_t> tokens) {
  GENAS_REQUIRE(!events.empty(), ErrorCode::kInvalidArgument,
                "an event batch frame needs at least one event");
  GENAS_REQUIRE(tokens.empty() || tokens.size() == events.size(),
                ErrorCode::kInvalidArgument,
                "event batch tokens must be one per event");
  EventBatchBuilder builder;
  for (std::size_t i = 0; i < events.size(); ++i) {
    builder.append(events[i], tokens.empty() ? 0 : tokens[i]);
  }
  return builder.take_frame();
}

std::vector<std::uint8_t> frame_delivery_batch(
    std::span<const std::uint64_t> keys, std::span<const Event> events) {
  GENAS_REQUIRE(!events.empty(), ErrorCode::kInvalidArgument,
                "a delivery batch frame needs at least one delivery");
  GENAS_REQUIRE(keys.size() == events.size(), ErrorCode::kInvalidArgument,
                "delivery batch keys must be one per event");
  DeliveryBatchBuilder builder;
  for (std::size_t i = 0; i < events.size(); ++i) {
    builder.append(keys[i], events[i]);
  }
  return builder.take_frame();
}

}  // namespace genas::wire
