// GENAS — bounded event history.
//
// "The algorithm can either work based on predefined distributions for the
// observed events, or it has to maintain a history of events in order to
// determine the event distribution" (paper §5). EventHistory is that
// history: a fixed-capacity ring buffer of recent events that can be
// replayed into estimators (e.g., to warm up a freshly created
// AdaptiveController or to re-derive the distribution after a policy
// change) and summarized into an empirical joint distribution directly.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "dist/estimator.hpp"
#include "event/event.hpp"

namespace genas {

/// Fixed-capacity ring buffer of events over one schema.
class EventHistory {
 public:
  EventHistory(SchemaPtr schema, std::size_t capacity);

  const SchemaPtr& schema() const noexcept { return schema_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Number of events currently retained (≤ capacity).
  std::size_t size() const noexcept { return events_.size(); }

  /// Total events ever recorded (retained + evicted).
  std::uint64_t recorded() const noexcept { return recorded_; }

  /// Appends an event, evicting the oldest once at capacity.
  void record(Event event);

  /// Oldest-to-newest iteration over the retained window.
  void for_each(const std::function<void(const Event&)>& fn) const;

  /// Replays the retained window into an estimator (oldest first, so decay
  /// weights the newest events most).
  void replay_into(SchemaEstimator& estimator) const;

  /// Empirical independent joint distribution of the retained window.
  /// Throws when the history is empty and smoothing is zero.
  JointDistribution empirical_distribution(double smoothing = 0.5) const;

  void clear() noexcept;

 private:
  SchemaPtr schema_;
  std::size_t capacity_;
  std::vector<Event> events_;  // ring buffer
  std::size_t head_ = 0;       // index of the oldest element
  std::uint64_t recorded_ = 0;
};

}  // namespace genas
