#include "ens/composite.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "profile/parser.hpp"

namespace genas {

namespace {
CompositeExprPtr make_node(CompositeExpr&& node) {
  return std::make_shared<const CompositeExpr>(std::move(node));
}
}  // namespace

CompositeExprPtr primitive(ProfileId profile) {
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kPrimitive;
  node.profile_ = profile;
  return make_node(std::move(node));
}

CompositeExprPtr primitive(Profile profile) {
  GENAS_REQUIRE(profile.schema() != nullptr, ErrorCode::kInvalidArgument,
                "composite leaf requires a schema-bound profile");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kPrimitive;
  node.leaf_ = std::make_shared<const Profile>(std::move(profile));
  return make_node(std::move(node));
}

CompositeExprPtr seq(CompositeExprPtr a, CompositeExprPtr b,
                     Timestamp window) {
  GENAS_REQUIRE(a != nullptr && b != nullptr, ErrorCode::kInvalidArgument,
                "seq requires two operands");
  GENAS_REQUIRE(window > 0, ErrorCode::kInvalidArgument,
                "seq requires a positive window");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kSeq;
  node.left_ = std::move(a);
  node.right_ = std::move(b);
  node.window_ = window;
  return make_node(std::move(node));
}

CompositeExprPtr conj(CompositeExprPtr a, CompositeExprPtr b,
                      Timestamp window) {
  GENAS_REQUIRE(a != nullptr && b != nullptr, ErrorCode::kInvalidArgument,
                "conj requires two operands");
  GENAS_REQUIRE(window > 0, ErrorCode::kInvalidArgument,
                "conj requires a positive window");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kConj;
  node.left_ = std::move(a);
  node.right_ = std::move(b);
  node.window_ = window;
  return make_node(std::move(node));
}

CompositeExprPtr disj(CompositeExprPtr a, CompositeExprPtr b) {
  GENAS_REQUIRE(a != nullptr && b != nullptr, ErrorCode::kInvalidArgument,
                "disj requires two operands");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kDisj;
  node.left_ = std::move(a);
  node.right_ = std::move(b);
  return make_node(std::move(node));
}

CompositeExprPtr neg(CompositeExprPtr absent, CompositeExprPtr then,
                     Timestamp window) {
  GENAS_REQUIRE(absent != nullptr && then != nullptr,
                ErrorCode::kInvalidArgument, "neg requires two operands");
  GENAS_REQUIRE(window >= 0, ErrorCode::kInvalidArgument,
                "neg requires a non-negative window");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kNeg;
  node.left_ = std::move(absent);
  node.right_ = std::move(then);
  node.window_ = window;
  return make_node(std::move(node));
}

std::string CompositeExpr::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kPrimitive:
      if (leaf_ != nullptr) {
        os << '{' << format_profile(*leaf_) << '}';
      } else {
        os << 'p' << profile_;
      }
      break;
    case Kind::kSeq:
      os << "seq(" << left_->to_string() << ", " << right_->to_string()
         << ", w=" << window_ << ')';
      break;
    case Kind::kConj:
      os << "conj(" << left_->to_string() << ", " << right_->to_string()
         << ", w=" << window_ << ')';
      break;
    case Kind::kDisj:
      os << "disj(" << left_->to_string() << ", " << right_->to_string()
         << ')';
      break;
    case Kind::kNeg:
      os << "neg(" << left_->to_string() << ", " << right_->to_string()
         << ", w=" << window_ << ')';
      break;
  }
  return os.str();
}

namespace {
void collect_leaves(const CompositeExpr& expr,
                    std::vector<const CompositeExpr*>& out) {
  if (expr.kind() == CompositeExpr::Kind::kPrimitive) {
    out.push_back(&expr);
    return;
  }
  if (expr.left() != nullptr) collect_leaves(*expr.left(), out);
  if (expr.right() != nullptr) collect_leaves(*expr.right(), out);
}
}  // namespace

std::vector<const CompositeExpr*> leaf_nodes(const CompositeExpr& expr) {
  std::vector<const CompositeExpr*> leaves;
  collect_leaves(expr, leaves);
  return leaves;
}

bool has_profile_leaves(const CompositeExpr& expr) {
  for (const CompositeExpr* leaf : leaf_nodes(expr)) {
    if (leaf->leaf_profile() == nullptr) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Textual composite form.

namespace {

class CompositeParser {
 public:
  CompositeParser(const SchemaPtr& schema, std::string_view text)
      : schema_(schema), text_(text) {}

  CompositeExprPtr parse() {
    CompositeExprPtr expr = expression();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after expression");
    return expr;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw_error(ErrorCode::kParse, "composite (at offset " +
                                       std::to_string(pos_) + "): " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  CompositeExprPtr expression() {
    skip_ws();
    if (pos_ >= text_.size()) fail("expected an expression");
    if (text_[pos_] == '{') {
      const std::size_t close = text_.find('}', pos_ + 1);
      if (close == std::string_view::npos) fail("unterminated '{' leaf");
      const std::string_view inner = text_.substr(pos_ + 1, close - pos_ - 1);
      pos_ = close + 1;
      return primitive(parse_profile(schema_, inner));
    }

    std::size_t end = pos_;
    while (end < text_.size() && text_[end] >= 'a' && text_[end] <= 'z') {
      ++end;
    }
    const std::string_view op = text_.substr(pos_, end - pos_);
    pos_ = end;
    const bool is_seq = op == "seq";
    const bool is_conj = op == "conj";
    const bool is_disj = op == "disj";
    const bool is_neg = op == "neg";
    if (!is_seq && !is_conj && !is_disj && !is_neg) {
      fail("expected seq|conj|disj|neg or a '{profile}' leaf");
    }

    expect('(');
    CompositeExprPtr a = expression();
    expect(',');
    CompositeExprPtr b = expression();
    Timestamp window = 0;
    if (!is_disj) {
      expect(',');
      window = parse_window();
    }
    expect(')');
    if (is_seq) return seq(std::move(a), std::move(b), window);
    if (is_conj) return conj(std::move(a), std::move(b), window);
    if (is_neg) return neg(std::move(a), std::move(b), window);
    return disj(std::move(a), std::move(b));
  }

  Timestamp parse_window() {
    skip_ws();
    // Accept the `w=` prefix to_string() emits.
    if (pos_ + 1 < text_.size() && text_[pos_] == 'w' &&
        text_[pos_ + 1] == '=') {
      pos_ += 2;
    }
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    Timestamp value = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) fail("expected a window integer");
    if (value < 0) fail("window must be non-negative");
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return value;
  }

  const SchemaPtr& schema_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

CompositeExprPtr parse_composite(const SchemaPtr& schema,
                                 std::string_view text) {
  GENAS_REQUIRE(schema != nullptr, ErrorCode::kInvalidArgument,
                "composite parsing requires a schema");
  return CompositeParser(schema, text).parse();
}

// ---------------------------------------------------------------------------
// Detector.

namespace {
/// Flattens the expression tree, returning the index of `expr`'s slot.
std::int32_t flatten(const CompositeExpr* expr,
                     std::vector<const CompositeExpr*>& nodes,
                     std::vector<std::int32_t>& left,
                     std::vector<std::int32_t>& right) {
  const auto index = static_cast<std::int32_t>(nodes.size());
  nodes.push_back(expr);
  left.push_back(-1);
  right.push_back(-1);
  if (expr->left() != nullptr) {
    left[static_cast<std::size_t>(index)] =
        flatten(expr->left().get(), nodes, left, right);
  }
  if (expr->right() != nullptr) {
    right[static_cast<std::size_t>(index)] =
        flatten(expr->right().get(), nodes, left, right);
  }
  return index;
}
}  // namespace

CompositeId CompositeDetector::add(CompositeExprPtr expression,
                                   CompositeCallback callback) {
  GENAS_REQUIRE(expression != nullptr, ErrorCode::kInvalidArgument,
                "composite subscription requires an expression");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "composite subscription requires a callback");
  EntryData entry;
  entry.id = next_id_++;
  entry.expression = std::move(expression);
  entry.callback = std::move(callback);
  flatten(entry.expression.get(), entry.nodes, entry.left_child,
          entry.right_child);
  entry.states.resize(entry.nodes.size());
  for (const CompositeExpr* node : entry.nodes) {
    if (node->kind() == CompositeExpr::Kind::kPrimitive) {
      entry.leaf_profiles.push_back(node->profile());
    }
  }
  // Distinct leaf profiles only: a duplicated leaf must index (and later
  // unindex) its entry exactly once.
  std::sort(entry.leaf_profiles.begin(), entry.leaf_profiles.end());
  entry.leaf_profiles.erase(
      std::unique(entry.leaf_profiles.begin(), entry.leaf_profiles.end()),
      entry.leaf_profiles.end());
  const CompositeId id = entry.id;
  if (iterating_ > 0) {
    pending_add_.push_back(std::move(entry));
  } else {
    install(std::move(entry));
  }
  return id;
}

void CompositeDetector::install(EntryData&& entry) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = std::move(entry);
  } else {
    slot = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(std::move(entry));
    slot_stamp_.push_back(0);
  }
  EntryData& installed = entries_[slot];
  installed.live = true;
  for (const ProfileId profile : installed.leaf_profiles) {
    index_[profile].push_back(slot);
  }
  slot_of_.emplace(installed.id, slot);
  ++live_count_;
}

void CompositeDetector::detach(std::uint32_t slot) {
  EntryData& entry = entries_[slot];
  for (const ProfileId profile : entry.leaf_profiles) {
    const auto bucket = index_.find(profile);
    if (bucket == index_.end()) continue;
    std::erase(bucket->second, slot);
    if (bucket->second.empty()) index_.erase(bucket);
  }
  slot_of_.erase(entry.id);
  entry.live = false;
  // Release the heavy members now; the slot itself waits on the free list.
  entry.expression.reset();
  entry.callback = nullptr;
  entry.nodes.clear();
  entry.left_child.clear();
  entry.right_child.clear();
  entry.states.clear();
  entry.leaf_profiles.clear();
  free_slots_.push_back(slot);
  --live_count_;
}

bool CompositeDetector::pending_removal(CompositeId id) const {
  return std::find(pending_remove_.begin(), pending_remove_.end(), id) !=
         pending_remove_.end();
}

void CompositeDetector::remove(CompositeId id) {
  if (iterating_ > 0) {
    // A sweep is running: never touch the slab under the iteration. Entries
    // added during this sweep can be erased directly (the sweep never sees
    // pending_add_); settled entries are only marked.
    const auto pending = std::find_if(
        pending_add_.begin(), pending_add_.end(),
        [id](const EntryData& e) { return e.id == id; });
    if (pending != pending_add_.end()) {
      pending_add_.erase(pending);
      return;
    }
    GENAS_REQUIRE(slot_of_.contains(id) && !pending_removal(id),
                  ErrorCode::kNotFound,
                  "unknown composite subscription " + std::to_string(id));
    pending_remove_.push_back(id);
    return;
  }
  const auto it = slot_of_.find(id);
  GENAS_REQUIRE(it != slot_of_.end(), ErrorCode::kNotFound,
                "unknown composite subscription " + std::to_string(id));
  detach(it->second);
}

void CompositeDetector::apply_deferred() {
  for (const CompositeId id : pending_remove_) {
    const auto it = slot_of_.find(id);
    if (it != slot_of_.end()) detach(it->second);
  }
  pending_remove_.clear();
  for (EntryData& entry : pending_add_) {
    install(std::move(entry));
  }
  pending_add_.clear();
}

Timestamp CompositeDetector::evaluate(EntryData& entry, std::size_t node,
                                      std::span<const ProfileId> profiles,
                                      Timestamp time) {
  const CompositeExpr& expr = *entry.nodes[node];
  NodeState& state = entry.states[node];

  // Evaluate children first (bottom-up stimulus propagation).
  Timestamp left_now = kCompositeNever;
  Timestamp right_now = kCompositeNever;
  if (entry.left_child[node] >= 0) {
    left_now = evaluate(entry, static_cast<std::size_t>(entry.left_child[node]),
                        profiles, time);
  }
  if (entry.right_child[node] >= 0) {
    right_now = evaluate(
        entry, static_cast<std::size_t>(entry.right_child[node]), profiles,
        time);
  }

  Timestamp fired = kCompositeNever;
  switch (expr.kind()) {
    case CompositeExpr::Kind::kPrimitive:
      if (std::find(profiles.begin(), profiles.end(), expr.profile()) !=
          profiles.end()) {
        fired = time;
      }
      break;

    case CompositeExpr::Kind::kSeq:
      // "A then B": B strictly after A, within the window; A is consumed.
      if (left_now != kCompositeNever) state.left_fired = left_now;
      if (right_now != kCompositeNever && state.left_fired != kCompositeNever &&
          state.left_fired < right_now &&
          right_now - state.left_fired <= expr.window()) {
        fired = right_now;
        state.left_fired = kCompositeNever;
      }
      break;

    case CompositeExpr::Kind::kConj:
      // Both within the window, any order; both are consumed.
      if (left_now != kCompositeNever) state.left_fired = left_now;
      if (right_now != kCompositeNever) state.right_fired = right_now;
      if (state.left_fired != kCompositeNever &&
          state.right_fired != kCompositeNever &&
          std::max(state.left_fired, state.right_fired) -
                  std::min(state.left_fired, state.right_fired) <=
              expr.window()) {
        fired = std::max(state.left_fired, state.right_fired);
        state.left_fired = kCompositeNever;
        state.right_fired = kCompositeNever;
      }
      break;

    case CompositeExpr::Kind::kDisj:
      fired = std::max(left_now, right_now);
      break;

    case CompositeExpr::Kind::kNeg:
      // `then` fires with no `absent` in the preceding window (inclusive:
      // a simultaneous blocker suppresses, even at window 0). The blocker
      // is not consumed: it suppresses every completion inside its window.
      if (left_now != kCompositeNever) state.left_fired = left_now;
      if (right_now != kCompositeNever &&
          (state.left_fired == kCompositeNever ||
           right_now < state.left_fired ||
           right_now - state.left_fired > expr.window())) {
        fired = right_now;
      }
      break;
  }

  return fired;
}

void CompositeDetector::on_match(ProfileId profile, Timestamp time) {
  on_event({&profile, 1}, time);
}

namespace {
/// Thread-local affected-slot scratch, moved out while in use so re-entrant
/// on_event calls from callbacks get their own buffer.
std::vector<std::uint32_t>& affected_scratch_slot() {
  static thread_local std::vector<std::uint32_t> scratch;
  return scratch;
}
}  // namespace

void CompositeDetector::dispatch(EntryData& entry,
                                 std::span<const ProfileId> profiles,
                                 Timestamp time) {
  const Timestamp fired = evaluate(entry, 0, profiles, time);
  if (fired != kCompositeNever) {
    entry.callback(CompositeFiring{entry.id, fired});
  }
}

void CompositeDetector::on_event(std::span<const ProfileId> profiles,
                                 Timestamp time) {
  if (profiles.empty()) return;
  // Unwind-safe sweep depth: a throwing callback must still restore
  // iterating_ and apply deferred mutations, or add/remove would defer
  // forever afterwards.
  struct SweepGuard {
    CompositeDetector& detector;
    explicit SweepGuard(CompositeDetector& d) : detector(d) {
      ++detector.iterating_;
    }
    ~SweepGuard() {
      if (--detector.iterating_ == 0) detector.apply_deferred();
    }
  } guard(*this);

  // Gather the slots to evaluate. The slab is never resized while a sweep
  // runs (add/remove defer), so slot numbers stay valid across re-entrant
  // callbacks. Gathering completes before any callback runs, so the visit
  // stamps of a nested on_event (which bumps stamp_) cannot corrupt this
  // sweep's dedup — by then this sweep only reads its local `affected` list.
  std::vector<std::uint32_t> affected =
      std::move(affected_scratch_slot());
  affected.clear();
  if (use_index_) {
    const std::uint64_t mark = ++stamp_;
    for (const ProfileId profile : profiles) {
      const auto bucket = index_.find(profile);
      if (bucket == index_.end()) continue;
      for (const std::uint32_t slot : bucket->second) {
        if (slot_stamp_[slot] == mark) continue;  // several leaves stimulated
        slot_stamp_[slot] = mark;
        affected.push_back(slot);
      }
    }
  } else {
    // Oracle sweep: every live entry, regardless of the stimulus.
    for (std::uint32_t slot = 0; slot < entries_.size(); ++slot) {
      if (entries_[slot].live) affected.push_back(slot);
    }
  }
  // Registration (id) order — bit-identical callback order to the sweep
  // even when freelisted slots were reused out of order.
  std::sort(affected.begin(), affected.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return entries_[a].id < entries_[b].id;
            });

  for (const std::uint32_t slot : affected) {
    EntryData& entry = entries_[slot];
    if (!entry.live) continue;
    if (!pending_remove_.empty() && pending_removal(entry.id)) continue;
    dispatch(entry, profiles, time);
  }
  affected.clear();
  affected_scratch_slot() = std::move(affected);
}

std::size_t CompositeDetector::expire_before(Timestamp horizon) {
  const auto expired = [horizon](Timestamp armed, Timestamp window) {
    // Unsigned difference: exact even when the span exceeds the signed
    // range (armed can sit anywhere in the timestamp domain).
    return armed != kCompositeNever && horizon > armed &&
           static_cast<std::uint64_t>(horizon) -
                   static_cast<std::uint64_t>(armed) >
               static_cast<std::uint64_t>(window);
  };
  std::size_t cleared = 0;
  for (EntryData& entry : entries_) {
    if (!entry.live) continue;
    for (std::size_t n = 0; n < entry.nodes.size(); ++n) {
      const CompositeExpr& expr = *entry.nodes[n];
      if (expr.kind() == CompositeExpr::Kind::kPrimitive ||
          expr.kind() == CompositeExpr::Kind::kDisj) {
        continue;  // no armed state
      }
      NodeState& state = entry.states[n];
      if (expired(state.left_fired, expr.window())) {
        state.left_fired = kCompositeNever;
        ++cleared;
      }
      if (expired(state.right_fired, expr.window())) {
        state.right_fired = kCompositeNever;
        ++cleared;
      }
    }
  }
  return cleared;
}

std::size_t CompositeDetector::armed_count() const noexcept {
  std::size_t count = 0;
  for (const EntryData& entry : entries_) {
    if (!entry.live) continue;
    for (const NodeState& state : entry.states) {
      if (state.left_fired != kCompositeNever) ++count;
      if (state.right_fired != kCompositeNever) ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// Reorder stage.

void CompositeIngress::set_skew(Timestamp skew) {
  GENAS_REQUIRE(skew >= 0, ErrorCode::kInvalidArgument,
                "composite skew tolerance must be >= 0");
  skew_ = skew;
}

void CompositeIngress::push(ProfileId profile, Timestamp time) {
  push(profile, time, 0);
}

bool CompositeIngress::push(ProfileId profile, Timestamp time,
                            std::uint64_t token) {
  if (dedup_capacity_ > 0 && token != 0) {
    auto [it, inserted] = seen_.try_emplace(token);
    if (!inserted) {
      if (std::find(it->second.begin(), it->second.end(), profile) !=
          it->second.end()) {
        ++dropped_;
        return false;  // redelivered stimulus: already armed this instant
      }
    } else {
      seen_order_.push_back(token);
      while (seen_order_.size() > dedup_capacity_) {
        seen_.erase(seen_order_.front());
        seen_order_.pop_front();
      }
    }
    it->second.push_back(profile);
  }
  pending_[time].push_back(profile);
  if (max_seen_ == kCompositeNever || time > max_seen_) max_seen_ = time;
  const Timestamp mark = watermark();
  if (mark != kCompositeNever) release_below(mark);
  return true;
}

void CompositeIngress::set_dedup_window(std::size_t capacity) {
  dedup_capacity_ = capacity;
  if (capacity == 0) {
    seen_.clear();
    seen_order_.clear();
    return;
  }
  while (seen_order_.size() > capacity) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
}

void CompositeIngress::advance_to(Timestamp now) {
  if (max_seen_ == kCompositeNever || now > max_seen_) max_seen_ = now;
  const Timestamp mark = watermark();
  if (mark == kCompositeNever) return;
  release_below(mark);
}

Timestamp CompositeIngress::watermark() const noexcept {
  // Instants strictly below max_seen - skew can no longer gain stimuli
  // within the tolerance. Clamp the subtraction (skew can exceed the whole
  // timestamp range by design — "buffer until flush").
  if (max_seen_ == kCompositeNever ||
      max_seen_ < std::numeric_limits<Timestamp>::min() + skew_) {
    return kCompositeNever;
  }
  return max_seen_ - skew_;
}

void CompositeIngress::flush() {
  while (!pending_.empty()) {
    const auto it = pending_.begin();
    const Timestamp time = it->first;
    // Detach before feeding: a re-entrant push from a detector callback
    // must not invalidate the node being released.
    std::vector<ProfileId> batch = std::move(it->second);
    pending_.erase(it);
    detector_.on_event(batch, time);
  }
}

void CompositeIngress::release_below(Timestamp watermark) {
  while (!pending_.empty() && pending_.begin()->first < watermark) {
    const auto it = pending_.begin();
    const Timestamp time = it->first;
    std::vector<ProfileId> batch = std::move(it->second);
    pending_.erase(it);
    detector_.on_event(batch, time);
  }
}

}  // namespace genas
