#include "ens/composite.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace genas {

namespace {
CompositeExprPtr make_node(CompositeExpr&& node) {
  return std::make_shared<const CompositeExpr>(std::move(node));
}
}  // namespace

CompositeExprPtr primitive(ProfileId profile) {
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kPrimitive;
  node.profile_ = profile;
  return make_node(std::move(node));
}

CompositeExprPtr seq(CompositeExprPtr a, CompositeExprPtr b,
                     Timestamp window) {
  GENAS_REQUIRE(a != nullptr && b != nullptr, ErrorCode::kInvalidArgument,
                "seq requires two operands");
  GENAS_REQUIRE(window > 0, ErrorCode::kInvalidArgument,
                "seq requires a positive window");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kSeq;
  node.left_ = std::move(a);
  node.right_ = std::move(b);
  node.window_ = window;
  return make_node(std::move(node));
}

CompositeExprPtr conj(CompositeExprPtr a, CompositeExprPtr b,
                      Timestamp window) {
  GENAS_REQUIRE(a != nullptr && b != nullptr, ErrorCode::kInvalidArgument,
                "conj requires two operands");
  GENAS_REQUIRE(window > 0, ErrorCode::kInvalidArgument,
                "conj requires a positive window");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kConj;
  node.left_ = std::move(a);
  node.right_ = std::move(b);
  node.window_ = window;
  return make_node(std::move(node));
}

CompositeExprPtr disj(CompositeExprPtr a, CompositeExprPtr b) {
  GENAS_REQUIRE(a != nullptr && b != nullptr, ErrorCode::kInvalidArgument,
                "disj requires two operands");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kDisj;
  node.left_ = std::move(a);
  node.right_ = std::move(b);
  return make_node(std::move(node));
}

CompositeExprPtr neg(CompositeExprPtr absent, CompositeExprPtr then,
                     Timestamp window) {
  GENAS_REQUIRE(absent != nullptr && then != nullptr,
                ErrorCode::kInvalidArgument, "neg requires two operands");
  GENAS_REQUIRE(window > 0, ErrorCode::kInvalidArgument,
                "neg requires a positive window");
  CompositeExpr node;
  node.kind_ = CompositeExpr::Kind::kNeg;
  node.left_ = std::move(absent);
  node.right_ = std::move(then);
  node.window_ = window;
  return make_node(std::move(node));
}

std::string CompositeExpr::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kPrimitive:
      os << 'p' << profile_;
      break;
    case Kind::kSeq:
      os << "seq(" << left_->to_string() << ", " << right_->to_string()
         << ", w=" << window_ << ')';
      break;
    case Kind::kConj:
      os << "conj(" << left_->to_string() << ", " << right_->to_string()
         << ", w=" << window_ << ')';
      break;
    case Kind::kDisj:
      os << "disj(" << left_->to_string() << ", " << right_->to_string()
         << ')';
      break;
    case Kind::kNeg:
      os << "neg(!" << left_->to_string() << " before " << right_->to_string()
         << ", w=" << window_ << ')';
      break;
  }
  return os.str();
}

namespace {
/// Flattens the expression tree, returning the index of `expr`'s slot.
std::int32_t flatten(const CompositeExpr* expr,
                     std::vector<const CompositeExpr*>& nodes,
                     std::vector<std::int32_t>& left,
                     std::vector<std::int32_t>& right) {
  const auto index = static_cast<std::int32_t>(nodes.size());
  nodes.push_back(expr);
  left.push_back(-1);
  right.push_back(-1);
  if (expr->left() != nullptr) {
    left[static_cast<std::size_t>(index)] =
        flatten(expr->left().get(), nodes, left, right);
  }
  if (expr->right() != nullptr) {
    right[static_cast<std::size_t>(index)] =
        flatten(expr->right().get(), nodes, left, right);
  }
  return index;
}
}  // namespace

CompositeId CompositeDetector::add(CompositeExprPtr expression,
                                   CompositeCallback callback) {
  GENAS_REQUIRE(expression != nullptr, ErrorCode::kInvalidArgument,
                "composite subscription requires an expression");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "composite subscription requires a callback");
  EntryData entry;
  entry.id = next_id_++;
  entry.expression = std::move(expression);
  entry.callback = std::move(callback);
  flatten(entry.expression.get(), entry.nodes, entry.left_child,
          entry.right_child);
  entry.states.resize(entry.nodes.size());
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

void CompositeDetector::remove(CompositeId id) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [id](const EntryData& e) { return e.id == id; });
  GENAS_REQUIRE(it != entries_.end(), ErrorCode::kNotFound,
                "unknown composite subscription " + std::to_string(id));
  entries_.erase(it);
}

Timestamp CompositeDetector::evaluate(EntryData& entry, std::size_t node,
                                      ProfileId profile, Timestamp time) {
  const CompositeExpr& expr = *entry.nodes[node];
  NodeState& state = entry.states[node];

  // Evaluate children first (bottom-up stimulus propagation).
  Timestamp left_now = -1;
  Timestamp right_now = -1;
  if (entry.left_child[node] >= 0) {
    left_now = evaluate(entry, static_cast<std::size_t>(entry.left_child[node]),
                        profile, time);
  }
  if (entry.right_child[node] >= 0) {
    right_now = evaluate(
        entry, static_cast<std::size_t>(entry.right_child[node]), profile,
        time);
  }

  Timestamp fired = -1;
  switch (expr.kind()) {
    case CompositeExpr::Kind::kPrimitive:
      if (expr.profile() == profile) fired = time;
      break;

    case CompositeExpr::Kind::kSeq:
      // "A then B": B strictly after A, within the window; A is consumed.
      if (left_now >= 0) state.left_fired = left_now;
      if (right_now >= 0 && state.left_fired >= 0 &&
          state.left_fired < right_now &&
          right_now - state.left_fired <= expr.window()) {
        fired = right_now;
        state.left_fired = -1;
      }
      break;

    case CompositeExpr::Kind::kConj:
      // Both within the window, any order; both are consumed.
      if (left_now >= 0) state.left_fired = left_now;
      if (right_now >= 0) state.right_fired = right_now;
      if (state.left_fired >= 0 && state.right_fired >= 0 &&
          std::max(state.left_fired, state.right_fired) -
                  std::min(state.left_fired, state.right_fired) <=
              expr.window()) {
        fired = std::max(state.left_fired, state.right_fired);
        state.left_fired = -1;
        state.right_fired = -1;
      }
      break;

    case CompositeExpr::Kind::kDisj:
      fired = std::max(left_now, right_now);
      break;

    case CompositeExpr::Kind::kNeg:
      // `then` fires with no `absent` in the preceding window. The blocker
      // is not consumed: it suppresses every completion inside its window.
      if (left_now >= 0) state.left_fired = left_now;
      if (right_now >= 0 &&
          (state.left_fired < 0 || right_now - state.left_fired > expr.window())) {
        fired = right_now;
      }
      break;
  }

  if (fired >= 0) state.last_fired = fired;
  return fired;
}

void CompositeDetector::on_match(ProfileId profile, Timestamp time) {
  for (EntryData& entry : entries_) {
    const Timestamp fired = evaluate(entry, 0, profile, time);
    if (fired >= 0) {
      entry.callback(CompositeFiring{entry.id, fired});
    }
  }
}

}  // namespace genas
