#include "ens/config_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/text.hpp"
#include "profile/parser.hpp"

namespace genas {

namespace {

bool is_blank(char c) noexcept { return c == ' ' || c == '\t'; }

/// Escapes one category name for the `attr ... cat` list: `\\` `\,` always,
/// `\s`/`\t` for leading and trailing whitespace (which line trimming and
/// comma splitting would otherwise eat). Newlines cannot be escaped in a
/// line-oriented format and are rejected.
std::string escape_category(const std::string& name) {
  std::size_t lead = 0;
  while (lead < name.size() && is_blank(name[lead])) ++lead;
  std::size_t trail = name.size();
  while (trail > lead && is_blank(name[trail - 1])) --trail;

  std::string out;
  out.reserve(name.size() + 2);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    GENAS_REQUIRE(c != '\n' && c != '\r', ErrorCode::kInvalidArgument,
                  "category name '" + name +
                      "' contains a newline and cannot be saved in the "
                      "line-oriented config format");
    const bool edge_blank = is_blank(c) && (i < lead || i >= trail);
    if (c == '\\') {
      out += "\\\\";
    } else if (c == ',') {
      out += "\\,";
    } else if (edge_blank) {
      out += (c == ' ') ? "\\s" : "\\t";
    } else {
      out += c;
    }
  }
  return out;
}

/// Splits a `cat` payload on unescaped commas, materializing escapes and
/// trimming only unescaped edge whitespace (so `a, b` still parses as
/// {"a","b"} while `a\s` keeps its trailing space).
std::vector<std::string> parse_category_list(std::string_view payload,
                                             std::size_t line_no);

}  // namespace

void save_config(std::ostream& os, const ProfileSet& profiles) {
  const Schema& schema = *profiles.schema();
  // Rendered into a buffer first so a rejected name (escape_category throws
  // on newlines) cannot leave a half-written config behind `os`.
  std::ostringstream rendered;
  rendered << "# GENAS service configuration\n";
  for (const Attribute& attribute : schema.attributes()) {
    rendered << "attr " << attribute.name << ' ';
    const Domain& domain = attribute.domain;
    switch (domain.kind()) {
      case ValueKind::kInt:
        rendered << "int " << static_cast<std::int64_t>(domain.numeric_lo())
                 << ' ' << static_cast<std::int64_t>(domain.numeric_hi());
        break;
      case ValueKind::kReal:
        rendered << "real " << format_double(domain.numeric_lo(), 9) << ' '
                 << format_double(domain.numeric_hi(), 9) << ' '
                 << format_double(domain.resolution(), 9);
        break;
      case ValueKind::kCategory: {
        rendered << "cat ";
        for (DomainIndex i = 0; i < domain.size(); ++i) {
          if (i > 0) rendered << ',';
          rendered << escape_category(domain.value_at(i).as_category());
        }
        break;
      }
    }
    rendered << '\n';
  }
  for (const ProfileId id : profiles.active_ids()) {
    rendered << "profile";
    if (profiles.weight(id) != 1.0) {
      rendered << " weight=" << format_double(profiles.weight(id), 6);
    }
    rendered << ' ' << format_profile(profiles.profile(id)) << '\n';
  }
  os << rendered.str();
}

namespace {

[[noreturn]] void config_fail(std::size_t line_no, const std::string& what) {
  throw_error(ErrorCode::kParse,
              "config line " + std::to_string(line_no) + ": " + what);
}

double parse_number(std::string_view token, std::size_t line_no) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    config_fail(line_no, "expected a number, got '" + std::string(token) + "'");
  }
  return v;
}

std::vector<std::string> parse_category_list(std::string_view payload,
                                             std::size_t line_no) {
  std::vector<std::string> categories;
  std::string piece;
  std::vector<bool> from_escape;  // parallel: char was produced by an escape

  const auto finish_piece = [&] {
    // Trim unescaped whitespace at both ends (hand-written files may pad
    // after commas); escaped whitespace is payload.
    std::size_t lo = 0;
    std::size_t hi = piece.size();
    while (lo < hi && is_blank(piece[lo]) && !from_escape[lo]) ++lo;
    while (hi > lo && is_blank(piece[hi - 1]) && !from_escape[hi - 1]) --hi;
    categories.emplace_back(piece.substr(lo, hi - lo));
    piece.clear();
    from_escape.clear();
  };

  for (std::size_t i = 0; i < payload.size(); ++i) {
    const char c = payload[i];
    if (c == '\\') {
      if (i + 1 >= payload.size()) {
        config_fail(line_no, "category list ends in a lone backslash");
      }
      const char next = payload[++i];
      char materialized = 0;
      switch (next) {
        case '\\': materialized = '\\'; break;
        case ',':  materialized = ',';  break;
        case 's':  materialized = ' ';  break;
        case 't':  materialized = '\t'; break;
        default:
          config_fail(line_no, std::string("invalid escape '\\") + next +
                                   "' in category list");
      }
      piece += materialized;
      from_escape.push_back(true);
      continue;
    }
    if (c == ',') {
      finish_piece();
      continue;
    }
    piece += c;
    from_escape.push_back(false);
  }
  finish_piece();
  return categories;
}

}  // namespace

ServiceConfig load_config(std::istream& is) {
  SchemaBuilder builder;
  struct PendingProfile {
    std::string expression;
    double weight;
    std::size_t line_no;
  };
  std::vector<PendingProfile> pending;
  bool saw_attribute = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;

    if (starts_with(body, "attr ")) {
      if (!pending.empty()) {
        config_fail(line_no, "attribute lines must precede profiles");
      }
      // Name and kind are single tokens; the payload after the kind is
      // kept raw so categorical lists can carry escaped characters (and
      // interior spaces) without being destroyed by tokenization.
      const std::string_view after_attr = trim(body.substr(5));
      const std::size_t name_end = after_attr.find(' ');
      if (name_end == std::string_view::npos) {
        config_fail(line_no, "malformed attr line");
      }
      const std::string name(after_attr.substr(0, name_end));
      const std::string_view after_name = trim(after_attr.substr(name_end));
      const std::size_t kind_end = after_name.find(' ');
      const std::string kind =
          to_lower(after_name.substr(0, kind_end));
      const std::string_view payload =
          kind_end == std::string_view::npos
              ? std::string_view{}
              : trim(after_name.substr(kind_end));

      // split() on ' ' keeps empties for double spaces; filter them.
      std::vector<std::string_view> tokens;
      for (const auto w : split(payload, ' ')) {
        if (!w.empty()) tokens.push_back(w);
      }
      if (kind == "int" && tokens.size() == 2) {
        builder.add_integer(name,
                            static_cast<std::int64_t>(
                                parse_number(tokens[0], line_no)),
                            static_cast<std::int64_t>(
                                parse_number(tokens[1], line_no)));
      } else if (kind == "real" && tokens.size() == 3) {
        builder.add_real(name, parse_number(tokens[0], line_no),
                         parse_number(tokens[1], line_no),
                         parse_number(tokens[2], line_no));
      } else if (kind == "cat" && !payload.empty()) {
        builder.add_categorical(name, parse_category_list(payload, line_no));
      } else {
        config_fail(line_no, "malformed attr line");
      }
      saw_attribute = true;
      continue;
    }

    if (starts_with(body, "profile")) {
      if (!saw_attribute) {
        config_fail(line_no, "attribute lines must precede profiles");
      }
      std::string_view rest = trim(body.substr(7));
      double weight = 1.0;
      if (starts_with(rest, "weight=")) {
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          config_fail(line_no, "profile line missing expression");
        }
        weight = parse_number(rest.substr(7, space - 7), line_no);
        rest = trim(rest.substr(space));
      }
      pending.push_back(PendingProfile{std::string(rest), weight, line_no});
      continue;
    }

    config_fail(line_no, "unknown directive '" + std::string(body) + "'");
  }

  if (!saw_attribute) {
    config_fail(line_no, "configuration declares no attributes");
  }
  SchemaPtr schema = builder.build();
  ServiceConfig config{schema, ProfileSet(schema)};
  for (const PendingProfile& p : pending) {
    try {
      const ProfileId id =
          config.profiles.add(parse_profile(schema, p.expression));
      if (p.weight != 1.0) config.profiles.set_weight(id, p.weight);
    } catch (const Error& e) {
      config_fail(p.line_no, e.what());
    }
  }
  return config;
}

std::string config_to_string(const ProfileSet& profiles) {
  std::ostringstream os;
  save_config(os, profiles);
  return os.str();
}

ServiceConfig config_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_config(is);
}

}  // namespace genas
