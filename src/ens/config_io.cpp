#include "ens/config_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/text.hpp"
#include "profile/parser.hpp"

namespace genas {

void save_config(std::ostream& os, const ProfileSet& profiles) {
  const Schema& schema = *profiles.schema();
  os << "# GENAS service configuration\n";
  for (const Attribute& attribute : schema.attributes()) {
    os << "attr " << attribute.name << ' ';
    const Domain& domain = attribute.domain;
    switch (domain.kind()) {
      case ValueKind::kInt:
        os << "int " << static_cast<std::int64_t>(domain.numeric_lo()) << ' '
           << static_cast<std::int64_t>(domain.numeric_hi());
        break;
      case ValueKind::kReal:
        os << "real " << format_double(domain.numeric_lo(), 9) << ' '
           << format_double(domain.numeric_hi(), 9) << ' '
           << format_double(domain.resolution(), 9);
        break;
      case ValueKind::kCategory: {
        os << "cat ";
        for (DomainIndex i = 0; i < domain.size(); ++i) {
          if (i > 0) os << ',';
          os << domain.value_at(i).as_category();
        }
        break;
      }
    }
    os << '\n';
  }
  for (const ProfileId id : profiles.active_ids()) {
    os << "profile";
    if (profiles.weight(id) != 1.0) {
      os << " weight=" << format_double(profiles.weight(id), 6);
    }
    os << ' ' << format_profile(profiles.profile(id)) << '\n';
  }
}

namespace {

[[noreturn]] void config_fail(std::size_t line_no, const std::string& what) {
  throw_error(ErrorCode::kParse,
              "config line " + std::to_string(line_no) + ": " + what);
}

double parse_number(std::string_view token, std::size_t line_no) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    config_fail(line_no, "expected a number, got '" + std::string(token) + "'");
  }
  return v;
}

}  // namespace

ServiceConfig load_config(std::istream& is) {
  SchemaBuilder builder;
  struct PendingProfile {
    std::string expression;
    double weight;
    std::size_t line_no;
  };
  std::vector<PendingProfile> pending;
  bool saw_attribute = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;

    if (starts_with(body, "attr ")) {
      if (!pending.empty()) {
        config_fail(line_no, "attribute lines must precede profiles");
      }
      const auto words = split(body.substr(5), ' ');
      // split() on ' ' keeps empties for double spaces; filter them.
      std::vector<std::string_view> tokens;
      for (const auto w : words) {
        if (!w.empty()) tokens.push_back(w);
      }
      if (tokens.size() < 2) config_fail(line_no, "malformed attr line");
      const std::string name(tokens[0]);
      const std::string kind = to_lower(tokens[1]);
      if (kind == "int" && tokens.size() == 4) {
        builder.add_integer(name,
                            static_cast<std::int64_t>(
                                parse_number(tokens[2], line_no)),
                            static_cast<std::int64_t>(
                                parse_number(tokens[3], line_no)));
      } else if (kind == "real" && tokens.size() == 5) {
        builder.add_real(name, parse_number(tokens[2], line_no),
                         parse_number(tokens[3], line_no),
                         parse_number(tokens[4], line_no));
      } else if (kind == "cat" && tokens.size() == 3) {
        std::vector<std::string> cats;
        for (const auto piece : split(tokens[2], ',')) {
          cats.emplace_back(piece);
        }
        builder.add_categorical(name, std::move(cats));
      } else {
        config_fail(line_no, "malformed attr line");
      }
      saw_attribute = true;
      continue;
    }

    if (starts_with(body, "profile")) {
      if (!saw_attribute) {
        config_fail(line_no, "attribute lines must precede profiles");
      }
      std::string_view rest = trim(body.substr(7));
      double weight = 1.0;
      if (starts_with(rest, "weight=")) {
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          config_fail(line_no, "profile line missing expression");
        }
        weight = parse_number(rest.substr(7, space - 7), line_no);
        rest = trim(rest.substr(space));
      }
      pending.push_back(PendingProfile{std::string(rest), weight, line_no});
      continue;
    }

    config_fail(line_no, "unknown directive '" + std::string(body) + "'");
  }

  if (!saw_attribute) {
    config_fail(line_no, "configuration declares no attributes");
  }
  SchemaPtr schema = builder.build();
  ServiceConfig config{schema, ProfileSet(schema)};
  for (const PendingProfile& p : pending) {
    try {
      const ProfileId id =
          config.profiles.add(parse_profile(schema, p.expression));
      if (p.weight != 1.0) config.profiles.set_weight(id, p.weight);
    } catch (const Error& e) {
      config_fail(p.line_no, e.what());
    }
  }
  return config;
}

std::string config_to_string(const ProfileSet& profiles) {
  std::ostringstream os;
  save_config(os, profiles);
  return os.str();
}

ServiceConfig config_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_config(is);
}

}  // namespace genas
