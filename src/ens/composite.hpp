// GENAS — composite events (the paper's stated extension, §5).
//
// "We will extend the filter to handle composite events" — temporal
// combinations of primitive profile matches. The algebra here covers the
// standard operators of the active-database literature the paper builds on
// (SAMOS et al.):
//
//   primitive(P)            fires when profile P matches an event
//   seq(A, B, window)       A then B, with time(B) - time(A) <= window
//   conj(A, B, window)      both A and B within `window`, any order
//   disj(A, B)              either A or B
//   neg(A, B, window)       B fires with no A in the preceding `window`
//                           (window 0: only a simultaneous A blocks)
//
// Leaves come in two forms: profile-expression leaves (`primitive(Profile)`,
// the service-level form the Broker accepts, serializes over the wire, and
// decomposes for distributed routing) and profile-id leaves
// (`primitive(ProfileId)`, the detector-level form fed by a broker's
// notification stream). The Broker decomposes the first form into the
// second when a composite subscription is registered.
//
// The detector consumes a (profile, timestamp) notification stream and
// evaluates each composite subscription's expression tree incrementally;
// each operator node keeps only the last relevant child timestamps, so
// detection is O(expression size) per stimulus. All stimuli sharing one
// call (`on_event`) are simultaneous: an event matching both operands of a
// conj completes it in one step, and a neg blocker suppresses a
// same-instant completion deterministically. Out-of-order timestamps do
// not corrupt state — a stale stimulus merely fails the operators' window
// checks — but combinations spanning a reordering can be missed, which is
// what CompositeIngress (a watermark reorder stage with a bounded skew
// tolerance) exists to absorb in distributed deployments.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "event/event.hpp"
#include "profile/profile.hpp"

namespace genas {

/// Sentinel for "no timestamp": distinct from every legal event time
/// (including a legitimate time of -1).
inline constexpr Timestamp kCompositeNever =
    std::numeric_limits<Timestamp>::min();

/// Expression tree of a composite subscription. Build with the factory
/// functions below; expressions are immutable and shareable.
class CompositeExpr;
using CompositeExprPtr = std::shared_ptr<const CompositeExpr>;

class CompositeExpr {
 public:
  enum class Kind : std::uint8_t { kPrimitive, kSeq, kConj, kDisj, kNeg };

  Kind kind() const noexcept { return kind_; }
  ProfileId profile() const noexcept { return profile_; }
  /// Profile-expression payload of a service-level leaf; null for operator
  /// nodes and for detector-level (profile-id) leaves.
  const std::shared_ptr<const Profile>& leaf_profile() const noexcept {
    return leaf_;
  }
  const CompositeExprPtr& left() const noexcept { return left_; }
  const CompositeExprPtr& right() const noexcept { return right_; }
  Timestamp window() const noexcept { return window_; }

  /// Renders the expression. For profile-expression leaves the output is
  /// `parse_composite`-compatible: leaves print as `{profile expression}`,
  /// operators as `seq(A, B, w=10)` / `conj(A, B, w=10)` / `disj(A, B)` /
  /// `neg(A, B, w=10)`. Profile-id leaves print as `pN` (not parseable —
  /// ids only mean something inside one broker).
  std::string to_string() const;

 private:
  friend CompositeExprPtr primitive(ProfileId profile);
  friend CompositeExprPtr primitive(Profile profile);
  friend CompositeExprPtr seq(CompositeExprPtr a, CompositeExprPtr b,
                              Timestamp window);
  friend CompositeExprPtr conj(CompositeExprPtr a, CompositeExprPtr b,
                               Timestamp window);
  friend CompositeExprPtr disj(CompositeExprPtr a, CompositeExprPtr b);
  friend CompositeExprPtr neg(CompositeExprPtr absent, CompositeExprPtr then,
                              Timestamp window);

  CompositeExpr() = default;

  Kind kind_ = Kind::kPrimitive;
  ProfileId profile_ = 0;
  std::shared_ptr<const Profile> leaf_;  // service-level leaves only
  CompositeExprPtr left_;
  CompositeExprPtr right_;
  Timestamp window_ = 0;
};

CompositeExprPtr primitive(ProfileId profile);
CompositeExprPtr primitive(Profile profile);
CompositeExprPtr seq(CompositeExprPtr a, CompositeExprPtr b, Timestamp window);
CompositeExprPtr conj(CompositeExprPtr a, CompositeExprPtr b,
                      Timestamp window);
CompositeExprPtr disj(CompositeExprPtr a, CompositeExprPtr b);
/// `window` may be 0 for neg: only a blocker at the completing timestamp
/// suppresses. seq/conj require a positive window.
CompositeExprPtr neg(CompositeExprPtr absent, CompositeExprPtr then,
                     Timestamp window);

/// Leaf nodes in evaluation (pre-order) sequence. The decomposition order is
/// part of the wire contract: broker and mesh key the decomposed primitive
/// profiles by this order.
std::vector<const CompositeExpr*> leaf_nodes(const CompositeExpr& expr);

/// True when every leaf is a service-level (profile-expression) leaf.
bool has_profile_leaves(const CompositeExpr& expr);

/// Parses the textual composite form produced by to_string():
///
///   expr   := op '(' expr ',' expr [',' ['w='] window] ')' | '{' profile '}'
///   op     := seq | conj | disj | neg
///
/// Leaves are profile expressions in braces, parsed with parse_profile
/// against `schema`; window is a non-negative integer (seq/conj: positive).
/// Malformed input throws Error{kParse}.
CompositeExprPtr parse_composite(const SchemaPtr& schema,
                                 std::string_view text);

/// Handle of one composite subscription.
using CompositeId = std::uint64_t;

/// Fired when a composite expression completes.
struct CompositeFiring {
  CompositeId subscription = 0;
  Timestamp time = 0;  ///< timestamp of the completing primitive
};

using CompositeCallback = std::function<void(const CompositeFiring&)>;

/// Incremental composite-event detector.
///
/// Dispatch: subscriptions live in a slot-stable slab, and a per-leaf index
/// (ProfileId -> slots whose expression contains that leaf) is maintained
/// incrementally through add()/remove(). A stimulus therefore evaluates
/// only the affected entries — O(affected), not O(subscriptions) — in
/// registration order, identical to the full sweep. set_use_index(false)
/// restores the O(subscriptions) sweep; it exists as the oracle baseline
/// for equivalence tests and as a debugging escape hatch.
///
/// Re-entrancy: add() and remove() may be called from inside a callback
/// that on_match()/on_event() is currently invoking. Mutations are deferred
/// until the running sweep finishes — a removed subscription stops firing
/// immediately (later entries of the same sweep skip it); an added one
/// first sees the next stimulus.
class CompositeDetector {
 public:
  CompositeId add(CompositeExprPtr expression, CompositeCallback callback);
  void remove(CompositeId id);

  /// Feeds one primitive firing: profile `profile` matched at `time`.
  void on_match(ProfileId profile, Timestamp time);

  /// Feeds one instant: all `profiles` matched simultaneously at `time`.
  /// Feeding instants in non-decreasing time order detects every
  /// combination; out-of-order instants are tolerated but combinations that
  /// span the reordering may be missed (see CompositeIngress).
  void on_event(std::span<const ProfileId> profiles, Timestamp time);

  /// Enables (default) or disables the per-leaf dispatch index. With the
  /// index off every stimulus sweeps all subscriptions — the behavioral
  /// oracle the index is tested against. Firing multisets are identical in
  /// both modes.
  void set_use_index(bool enabled) noexcept { use_index_ = enabled; }
  bool use_index() const noexcept { return use_index_; }

  /// Garbage-collects armed operator state: clears every armed timestamp
  /// whose window lies entirely before `horizon` (it can no longer complete
  /// off any in-order stimulus at time >= horizon). Late (out-of-order)
  /// stimuli older than the horizon may miss combinations the cleared state
  /// would have completed — exactly the detector's out-of-order contract.
  /// Call with the watermark when one advances. Returns the number of
  /// armed timestamps cleared (memory-accounting / obs signal).
  std::size_t expire_before(Timestamp horizon);

  /// Operator nodes currently holding an armed timestamp (bounded-state
  /// introspection for tests and memory accounting).
  std::size_t armed_count() const noexcept;

  std::size_t subscription_count() const noexcept {
    return live_count_ + pending_add_.size() - pending_remove_.size();
  }

 private:
  /// Per-subscription evaluation state: one slot per expression node.
  struct NodeState {
    Timestamp left_fired = kCompositeNever;  ///< operator bookkeeping
    Timestamp right_fired = kCompositeNever;
  };

  struct EntryData {
    CompositeId id = 0;
    bool live = false;  ///< false: tombstoned slab slot awaiting reuse
    CompositeExprPtr expression;
    CompositeCallback callback;
    std::vector<const CompositeExpr*> nodes;  // flattened expression
    std::vector<std::int32_t> left_child;     // per node, -1 = none
    std::vector<std::int32_t> right_child;
    std::vector<NodeState> states;
    std::vector<ProfileId> leaf_profiles;     // distinct leaves, for the index
  };

  /// Returns the firing time if the node completed on this stimulus.
  Timestamp evaluate(EntryData& entry, std::size_t node,
                     std::span<const ProfileId> profiles, Timestamp time);

  bool pending_removal(CompositeId id) const;
  void apply_deferred();
  /// Places a fully-built entry into the slab and indexes its leaves.
  void install(EntryData&& entry);
  /// Tombstones a slab slot and unindexes its leaves.
  void detach(std::uint32_t slot);
  /// Evaluates one live entry against the stimulus, firing its callback.
  void dispatch(EntryData& entry, std::span<const ProfileId> profiles,
                Timestamp time);

  /// Slot-stable slab: erased entries tombstone their slot (freelisted) so
  /// the index and a running sweep can hold slot numbers across mutations.
  std::vector<EntryData> entries_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  /// Per-leaf dispatch index: profile -> slots of entries containing it.
  std::unordered_map<ProfileId, std::vector<std::uint32_t>> index_;
  std::unordered_map<CompositeId, std::uint32_t> slot_of_;
  /// Per-slot visit stamp deduplicating the affected-slot gather when one
  /// instant stimulates several leaves of the same entry.
  std::vector<std::uint64_t> slot_stamp_;
  std::uint64_t stamp_ = 0;
  bool use_index_ = true;
  CompositeId next_id_ = 1;

  /// Sweep depth; while > 0, add/remove defer into the vectors below.
  int iterating_ = 0;
  std::vector<EntryData> pending_add_;
  std::vector<CompositeId> pending_remove_;
};

/// Watermark reorder stage in front of a CompositeDetector.
///
/// Distributed delivery is not globally ordered: primitive firings reach a
/// subscriber's detector with bounded timestamp skew. CompositeIngress
/// buffers stimuli per instant and releases an instant — as one simultaneous
/// on_event batch, in timestamp order — only once the watermark
/// (`max time seen - skew`) has passed it. Stimuli arriving later than the
/// skew bound are fed immediately (late, never dropped); combinations they
/// complete may be missed, exactly the detector's out-of-order contract.
/// flush() releases everything buffered (end of stream / quiescence).
class CompositeIngress {
 public:
  explicit CompositeIngress(CompositeDetector& detector)
      : detector_(detector) {}

  /// Skew tolerance; must be >= 0. Raising it mid-stream is safe; lowering
  /// it takes effect on the next push.
  void set_skew(Timestamp skew);
  Timestamp skew() const noexcept { return skew_; }

  /// Buffers one stimulus and releases every instant the watermark passed.
  void push(ProfileId profile, Timestamp time);

  /// push() with a redelivery token (at-least-once transports): when a
  /// dedup window is configured and `token` is nonzero, a (token, profile)
  /// pair already seen among the most recent `dedup_window()` distinct
  /// tokens is dropped — redelivered stimuli never double-arm or
  /// double-fire a composite. Token 0 means "untracked" (never deduped).
  /// Returns false when the stimulus was dropped as a duplicate.
  bool push(ProfileId profile, Timestamp time, std::uint64_t token);

  /// Sets the duplicate-filter capacity, counted in distinct tokens
  /// (0, the default, disables filtering). The window is bounded: once
  /// `capacity` distinct tokens are tracked, the oldest is evicted — a
  /// redelivery arriving later than `capacity` fresher tokens can slip
  /// through, which is the explicit memory/exactness trade.
  void set_dedup_window(std::size_t capacity);
  std::size_t dedup_window() const noexcept { return dedup_capacity_; }
  /// Stimuli dropped by the duplicate filter so far.
  std::uint64_t dropped_duplicates() const noexcept { return dropped_; }

  /// Time-driven watermark tick: advances "max time seen" to `now` (if
  /// later) and releases every instant the new watermark passed, exactly as
  /// if a stimulus at `now` had arrived — without buffering one. Bounds
  /// firing latency and buffered-instant memory on sparse streams where no
  /// later stimulus would otherwise push the watermark.
  void advance_to(Timestamp now);

  /// Releases everything still buffered, in timestamp order.
  void flush();

  /// Current watermark (`max time seen - skew`, clamped), or
  /// kCompositeNever before any stimulus/advance.
  Timestamp watermark() const noexcept;

  /// Instants currently held back.
  std::size_t buffered() const noexcept { return pending_.size(); }

  /// Timestamp of the oldest instant held back, or kCompositeNever when
  /// nothing is buffered (watermark-lag introspection).
  Timestamp oldest_buffered() const noexcept {
    return pending_.empty() ? kCompositeNever : pending_.begin()->first;
  }

 private:
  void release_below(Timestamp watermark);

  CompositeDetector& detector_;
  std::map<Timestamp, std::vector<ProfileId>> pending_;
  Timestamp max_seen_ = kCompositeNever;
  Timestamp skew_ = 0;

  /// Duplicate filter state: token -> profiles seen under it, with FIFO
  /// eviction once more than dedup_capacity_ distinct tokens are tracked.
  std::size_t dedup_capacity_ = 0;
  std::unordered_map<std::uint64_t, std::vector<ProfileId>> seen_;
  std::deque<std::uint64_t> seen_order_;
  std::uint64_t dropped_ = 0;
};

}  // namespace genas
