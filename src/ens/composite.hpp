// GENAS — composite events (the paper's stated extension, §5).
//
// "We will extend the filter to handle composite events" — temporal
// combinations of primitive profile matches. The algebra here covers the
// standard operators of the active-database literature the paper builds on
// (SAMOS et al.):
//
//   primitive(P)            fires when profile P matches an event
//   seq(A, B, window)       A then B, with time(B) - time(A) <= window
//   conj(A, B, window)      both A and B within `window`, any order
//   disj(A, B)              either A or B
//   neg(A, B, window)       B fires with no A in the preceding `window`
//
// The detector consumes the broker's (profile, timestamp) notification
// stream and evaluates each composite subscription's expression tree
// incrementally; each operator node keeps only the last relevant child
// timestamps, so detection is O(expression size) per primitive firing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "event/event.hpp"
#include "profile/profile.hpp"

namespace genas {

/// Expression tree of a composite subscription. Build with the factory
/// functions below; expressions are immutable and shareable.
class CompositeExpr;
using CompositeExprPtr = std::shared_ptr<const CompositeExpr>;

class CompositeExpr {
 public:
  enum class Kind : std::uint8_t { kPrimitive, kSeq, kConj, kDisj, kNeg };

  Kind kind() const noexcept { return kind_; }
  ProfileId profile() const noexcept { return profile_; }
  const CompositeExprPtr& left() const noexcept { return left_; }
  const CompositeExprPtr& right() const noexcept { return right_; }
  Timestamp window() const noexcept { return window_; }

  std::string to_string() const;

 private:
  friend CompositeExprPtr primitive(ProfileId profile);
  friend CompositeExprPtr seq(CompositeExprPtr a, CompositeExprPtr b,
                              Timestamp window);
  friend CompositeExprPtr conj(CompositeExprPtr a, CompositeExprPtr b,
                               Timestamp window);
  friend CompositeExprPtr disj(CompositeExprPtr a, CompositeExprPtr b);
  friend CompositeExprPtr neg(CompositeExprPtr absent, CompositeExprPtr then,
                              Timestamp window);

  CompositeExpr() = default;

  Kind kind_ = Kind::kPrimitive;
  ProfileId profile_ = 0;
  CompositeExprPtr left_;
  CompositeExprPtr right_;
  Timestamp window_ = 0;
};

CompositeExprPtr primitive(ProfileId profile);
CompositeExprPtr seq(CompositeExprPtr a, CompositeExprPtr b, Timestamp window);
CompositeExprPtr conj(CompositeExprPtr a, CompositeExprPtr b,
                      Timestamp window);
CompositeExprPtr disj(CompositeExprPtr a, CompositeExprPtr b);
CompositeExprPtr neg(CompositeExprPtr absent, CompositeExprPtr then,
                     Timestamp window);

/// Handle of one composite subscription.
using CompositeId = std::uint64_t;

/// Fired when a composite expression completes.
struct CompositeFiring {
  CompositeId subscription = 0;
  Timestamp time = 0;  ///< timestamp of the completing primitive
};

using CompositeCallback = std::function<void(const CompositeFiring&)>;

/// Incremental composite-event detector.
class CompositeDetector {
 public:
  CompositeId add(CompositeExprPtr expression, CompositeCallback callback);
  void remove(CompositeId id);

  /// Feeds one primitive firing: profile `profile` matched at `time`.
  /// Timestamps must be non-decreasing across calls.
  void on_match(ProfileId profile, Timestamp time);

  std::size_t subscription_count() const noexcept { return entries_.size(); }

 private:
  /// Per-subscription evaluation state: one slot per expression node.
  struct NodeState {
    Timestamp last_fired = -1;  ///< most recent completion, -1 = never
    Timestamp left_fired = -1;  ///< operator bookkeeping (seq/conj)
    Timestamp right_fired = -1;
  };

  struct EntryData {
    CompositeId id = 0;
    CompositeExprPtr expression;
    CompositeCallback callback;
    std::vector<const CompositeExpr*> nodes;  // flattened expression
    std::vector<std::int32_t> left_child;     // per node, -1 = none
    std::vector<std::int32_t> right_child;
    std::vector<NodeState> states;
  };

  /// Returns the firing time if the node completed on this stimulus.
  Timestamp evaluate(EntryData& entry, std::size_t node, ProfileId profile,
                     Timestamp time);

  std::vector<EntryData> entries_;
  CompositeId next_id_ = 1;
};

}  // namespace genas
