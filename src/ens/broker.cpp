#include "ens/broker.hpp"

#include "common/error.hpp"

namespace genas {

Broker::Broker(SchemaPtr schema, EngineOptions options)
    : schema_(schema), engine_(schema, std::move(options)) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "broker requires a schema");
}

SubscriptionId Broker::subscribe(Profile profile,
                                 NotificationCallback callback) {
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "subscription requires a callback");
  const std::scoped_lock lock(mutex_);
  const ProfileId profile_id = engine_.subscribe(std::move(profile));
  const SubscriptionId id = next_id_++;
  subscriptions_.emplace(id, Subscription{profile_id, std::move(callback)});
  by_profile_.emplace(profile_id, id);
  return id;
}

SubscriptionId Broker::subscribe(std::string_view expression,
                                 NotificationCallback callback) {
  return subscribe(parse_profile(schema_, expression), std::move(callback));
}

void Broker::unsubscribe(SubscriptionId id) {
  const std::scoped_lock lock(mutex_);
  const auto it = subscriptions_.find(id);
  GENAS_REQUIRE(it != subscriptions_.end(), ErrorCode::kNotFound,
                "unknown subscription id " + std::to_string(id));
  engine_.unsubscribe(it->second.profile);
  by_profile_.erase(it->second.profile);
  subscriptions_.erase(it);
}

PublishResult Broker::publish(const Event& event) {
  PublishResult result;
  // Collect deliveries under the lock, invoke callbacks outside it.
  std::vector<std::pair<NotificationCallback, Notification>> deliveries;
  {
    const std::scoped_lock lock(mutex_);
    const EngineMatch outcome = engine_.match(event);
    result.operations = outcome.operations;
    result.rebuilt = outcome.rebuilt;

    counters_.events_published += 1;
    counters_.operations += outcome.operations;
    if (!outcome.matched.empty()) counters_.events_matched += 1;

    deliveries.reserve(outcome.matched.size());
    for (const ProfileId profile : outcome.matched) {
      const auto sub_it = by_profile_.find(profile);
      if (sub_it == by_profile_.end()) continue;  // racing unsubscribe
      const Subscription& sub = subscriptions_.at(sub_it->second);
      deliveries.emplace_back(sub.callback,
                              Notification{sub_it->second, event});
    }
    counters_.notifications += deliveries.size();
  }

  for (const auto& [callback, notification] : deliveries) {
    callback(notification);
  }
  result.notified = deliveries.size();
  return result;
}

PublishResult Broker::publish(std::string_view event_text, Timestamp time) {
  return publish(parse_event(schema_, event_text, time));
}

ServiceCounters Broker::counters() const {
  const std::scoped_lock lock(mutex_);
  return counters_;
}

std::size_t Broker::subscription_count() const {
  const std::scoped_lock lock(mutex_);
  return subscriptions_.size();
}

ProfileStatistics Broker::profile_statistics() const {
  const std::scoped_lock lock(mutex_);
  ProfileStatistics stats(schema_);
  stats.rebuild(engine_.profiles());
  return stats;
}

std::string Broker::tree_dump() {
  const std::scoped_lock lock(mutex_);
  return engine_.tree().dump();
}

}  // namespace genas
