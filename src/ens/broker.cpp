#include "ens/broker.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "profile/profile.hpp"

namespace genas {

namespace {

/// One pending delivery collected during matching and drained afterwards.
/// The callback pointer aims into the snapshot's route table (kept alive by
/// the shared_ptr held across the publish call).
struct Delivery {
  const NotificationCallback* callback = nullptr;
  SubscriptionId subscription = 0;
  std::size_t event_index = 0;  // into the batch; 0 for single publish
};

/// Thread-local delivery scratch, moved out while in use so re-entrant
/// publishes from callbacks get their own (fresh) buffer instead of
/// clobbering the one being drained.
std::vector<Delivery>& delivery_scratch_slot() {
  static thread_local std::vector<Delivery> scratch;
  return scratch;
}

std::vector<Delivery> take_delivery_scratch() {
  std::vector<Delivery> out = std::move(delivery_scratch_slot());
  out.clear();
  return out;
}

void return_delivery_scratch(std::vector<Delivery>&& buffer) {
  buffer.clear();
  delivery_scratch_slot() = std::move(buffer);
}

/// Redelivery token of the notification currently being delivered on this
/// thread (0 = none). The tokened publish paths set it around each callback
/// invocation so composite_ingest — reached through an internal leaf
/// subscription's callback — can tag its ingress stimulus without widening
/// the Notification structure on the untokened hot path.
thread_local std::uint64_t current_dedup_token = 0;

class TokenGuard {
 public:
  explicit TokenGuard(std::uint64_t token) noexcept
      : saved_(current_dedup_token) {
    current_dedup_token = token;
  }
  ~TokenGuard() { current_dedup_token = saved_; }
  TokenGuard(const TokenGuard&) = delete;
  TokenGuard& operator=(const TokenGuard&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace

namespace {

std::uint64_t next_broker_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Broker::Broker(SchemaPtr schema, EngineOptions options,
               std::shared_ptr<obs::Registry> metrics)
    : schema_(schema),
      engine_(schema, std::move(options)),
      broker_id_(next_broker_id()),
      metrics_(metrics != nullptr ? std::move(metrics)
                                  : std::make_shared<obs::Registry>()) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "broker requires a schema");
  register_metrics();
}

void Broker::register_metrics() {
  obs::Registry& reg = *metrics_;
  const auto latency = obs::default_latency_bounds();
  events_published_ = reg.counter("genas_broker_events_published_total",
                                  "events accepted by publish");
  events_matched_ = reg.counter("genas_broker_events_matched_total",
                                "events matching >= 1 profile");
  notifications_ = reg.counter("genas_broker_notifications_total",
                               "(event, subscription) deliveries");
  operations_ = reg.counter("genas_broker_filter_operations_total",
                            "predicate comparisons performed");
  snapshot_rebuilds_ = reg.counter("genas_broker_snapshot_rebuilds_total",
                                   "read-side snapshot rebuilds");
  adaptive_rebuilds_ = reg.counter("genas_broker_adaptive_rebuilds_total",
                                   "adaptive-engine tree rebuilds");
  match_latency_ = reg.histogram("genas_broker_match_latency_ns", latency,
                                 "sampled publish->match latency");
  delivery_latency_ = reg.histogram("genas_broker_delivery_latency_ns",
                                    latency,
                                    "sampled publish->deliver latency");
  rebuild_pause_ = reg.histogram("genas_broker_rebuild_pause_ns", latency,
                                 "snapshot rebuild pause duration");
  composite_firings_ = reg.counter("genas_composite_firings_total",
                                   "composite subscriptions fired");
  composite_dedup_drops_ =
      reg.counter("genas_composite_dedup_drops_total",
                  "redelivered stimuli dropped by the dedup window");
  composite_expired_ = reg.counter("genas_composite_expired_total",
                                   "armed operator timestamps expired by GC");
  composite_firing_latency_ =
      reg.histogram("genas_composite_firing_latency_ns", latency,
                    "sampled publish->composite-firing latency");
  composite_reorder_depth_ = reg.gauge("genas_composite_reorder_depth",
                                       "instants held in the reorder stage");
  composite_armed_ = reg.gauge("genas_composite_armed",
                               "operator nodes holding an armed timestamp");
  composite_watermark_lag_ =
      reg.gauge("genas_composite_watermark_lag",
                "logical-time span the reorder stage holds back");
}

SubscriptionId Broker::subscribe(Profile profile,
                                 NotificationCallback callback) {
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "subscription requires a callback");
  const std::scoped_lock lock(mutex_);
  const ProfileId profile_id = engine_.subscribe(std::move(profile));
  const SubscriptionId id = next_id_++;
  subscriptions_.emplace(
      id, Subscription{profile_id, std::make_shared<const NotificationCallback>(
                                       std::move(callback))});
  by_profile_.emplace(profile_id, id);
  version_.fetch_add(1, std::memory_order_release);
  return id;
}

SubscriptionId Broker::subscribe(std::string_view expression,
                                 NotificationCallback callback) {
  return subscribe(parse_profile(schema_, expression), std::move(callback));
}

void Broker::set_delivery_sink(NotificationCallback sink) {
  const std::scoped_lock lock(mutex_);
  if (default_sink_id_ != 0) {
    std::erase_if(sinks_, [this](const SinkEntry& entry) {
      return entry.id == default_sink_id_;
    });
    default_sink_id_ = 0;
  }
  if (sink != nullptr) {
    default_sink_id_ = next_sink_id_++;
    sinks_.push_back(
        SinkEntry{default_sink_id_, std::make_shared<const NotificationCallback>(
                                        std::move(sink))});
  }
  version_.fetch_add(1, std::memory_order_release);
}

SinkId Broker::add_delivery_sink(NotificationCallback sink) {
  GENAS_REQUIRE(sink != nullptr, ErrorCode::kInvalidArgument,
                "delivery sink requires a callable");
  const std::scoped_lock lock(mutex_);
  const SinkId id = next_sink_id_++;
  sinks_.push_back(SinkEntry{
      id, std::make_shared<const NotificationCallback>(std::move(sink))});
  version_.fetch_add(1, std::memory_order_release);
  return id;
}

void Broker::remove_delivery_sink(SinkId id) {
  const std::scoped_lock lock(mutex_);
  const auto it =
      std::find_if(sinks_.begin(), sinks_.end(),
                   [id](const SinkEntry& entry) { return entry.id == id; });
  GENAS_REQUIRE(it != sinks_.end(), ErrorCode::kNotFound,
                "unknown delivery sink " + std::to_string(id));
  sinks_.erase(it);
  if (id == default_sink_id_) default_sink_id_ = 0;
  version_.fetch_add(1, std::memory_order_release);
}

DrainHookId Broker::add_drain_hook(DrainHook hook) {
  GENAS_REQUIRE(hook != nullptr, ErrorCode::kInvalidArgument,
                "drain hook requires a callable");
  const std::scoped_lock lock(mutex_);
  const DrainHookId id = next_drain_hook_id_++;
  drain_hooks_.push_back(
      DrainHookEntry{id, std::make_shared<const DrainHook>(std::move(hook))});
  version_.fetch_add(1, std::memory_order_release);
  return id;
}

void Broker::remove_drain_hook(DrainHookId id) {
  const std::scoped_lock lock(mutex_);
  const auto it = std::find_if(
      drain_hooks_.begin(), drain_hooks_.end(),
      [id](const DrainHookEntry& entry) { return entry.id == id; });
  GENAS_REQUIRE(it != drain_hooks_.end(), ErrorCode::kNotFound,
                "unknown drain hook " + std::to_string(id));
  drain_hooks_.erase(it);
  version_.fetch_add(1, std::memory_order_release);
}

void Broker::unsubscribe(SubscriptionId id) {
  const std::scoped_lock lock(mutex_);
  const auto it = subscriptions_.find(id);
  GENAS_REQUIRE(it != subscriptions_.end(), ErrorCode::kNotFound,
                "unknown subscription id " + std::to_string(id));
  engine_.unsubscribe(it->second.profile);
  by_profile_.erase(it->second.profile);
  subscriptions_.erase(it);
  version_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Composite subscriptions.

namespace {

/// Rebuilds `expr` with each profile leaf replaced by its detector-level
/// (profile-id) form; `ids` maps leaf nodes to their registered engine ids.
CompositeExprPtr mirror_with_ids(
    const CompositeExpr& expr,
    const std::unordered_map<const CompositeExpr*, ProfileId>& ids) {
  switch (expr.kind()) {
    case CompositeExpr::Kind::kPrimitive:
      return primitive(ids.at(&expr));
    case CompositeExpr::Kind::kSeq:
      return seq(mirror_with_ids(*expr.left(), ids),
                 mirror_with_ids(*expr.right(), ids), expr.window());
    case CompositeExpr::Kind::kConj:
      return conj(mirror_with_ids(*expr.left(), ids),
                  mirror_with_ids(*expr.right(), ids), expr.window());
    case CompositeExpr::Kind::kDisj:
      return disj(mirror_with_ids(*expr.left(), ids),
                  mirror_with_ids(*expr.right(), ids));
    case CompositeExpr::Kind::kNeg:
      return neg(mirror_with_ids(*expr.left(), ids),
                 mirror_with_ids(*expr.right(), ids), expr.window());
  }
  throw_error(ErrorCode::kInternal, "unreachable composite kind");
}

}  // namespace

CompositeId Broker::subscribe_composite(CompositeExprPtr expression,
                                        CompositeCallback callback) {
  GENAS_REQUIRE(expression != nullptr, ErrorCode::kInvalidArgument,
                "composite subscription requires an expression");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "composite subscription requires a callback");
  const std::vector<const CompositeExpr*> leaves = leaf_nodes(*expression);
  for (const CompositeExpr* leaf : leaves) {
    GENAS_REQUIRE(
        leaf->leaf_profile() != nullptr, ErrorCode::kInvalidArgument,
        "composite subscription requires profile leaves (primitive(Profile))");
    GENAS_REQUIRE(leaf->leaf_profile()->schema() == schema_,
                  ErrorCode::kInvalidArgument,
                  "composite leaf schema differs from broker schema");
  }

  // Decompose: register each *distinct* leaf profile as an internal
  // primitive subscription whose deliveries drive the composite runtime.
  // Registration is refcounted broker-wide and keyed by profile equality
  // (canonical_profile_key), so equal leaves — duplicated within this
  // expression, shared subtrees, or leaves of other live composites —
  // reuse one engine registration and produce one ingress stimulus per
  // matching event.
  std::unordered_map<const CompositeExpr*, ProfileId> leaf_ids;
  std::vector<std::string> leaf_keys;  // distinct keys this composite refs
  {
    const std::scoped_lock lock(mutex_);
    bool registered_new = false;
    for (const CompositeExpr* leaf : leaves) {
      if (leaf_ids.contains(leaf)) continue;
      std::string key = canonical_profile_key(*leaf->leaf_profile());
      auto [it, inserted] = composite_leaves_.try_emplace(std::move(key));
      if (inserted) {
        const ProfileId pid = engine_.subscribe(*leaf->leaf_profile());
        const SubscriptionId sid = next_id_++;
        subscriptions_.emplace(
            sid,
            Subscription{pid, std::make_shared<const NotificationCallback>(
                                  [this, pid](const Notification& n) {
                                    composite_ingest(pid, n.event.time());
                                  })});
        by_profile_.emplace(pid, sid);
        ++internal_subscriptions_;
        it->second = LeafRegistration{pid, sid, 0};
        registered_new = true;
      }
      leaf_ids.emplace(leaf, it->second.profile);
      if (std::find(leaf_keys.begin(), leaf_keys.end(), it->first) ==
          leaf_keys.end()) {
        ++it->second.refs;  // one reference per composite per distinct leaf
        leaf_keys.push_back(it->first);
      }
    }
    if (registered_new) version_.fetch_add(1, std::memory_order_release);
  }

  const CompositeExprPtr mirror = mirror_with_ids(*expression, leaf_ids);
  const std::scoped_lock lock(composite_mutex_);
  const CompositeId id = composite_detector_.add(
      mirror,
      [this](const CompositeFiring& f) { composite_pending_.push_back(f); });
  composites_.emplace(
      id, CompositeEntry{std::make_shared<const CompositeCallback>(
                             std::move(callback)),
                         std::move(leaf_keys)});
  return id;
}

CompositeId Broker::subscribe_composite(std::string_view expression,
                                        CompositeCallback callback) {
  return subscribe_composite(parse_composite(schema_, expression),
                             std::move(callback));
}

void Broker::unsubscribe_composite(CompositeId id) {
  std::vector<std::string> leaf_keys;
  {
    const std::scoped_lock lock(composite_mutex_);
    const auto it = composites_.find(id);
    GENAS_REQUIRE(it != composites_.end(), ErrorCode::kNotFound,
                  "unknown composite subscription " + std::to_string(id));
    composite_detector_.remove(id);
    leaf_keys = std::move(it->second.leaf_keys);
    composites_.erase(it);
  }
  const std::scoped_lock lock(mutex_);
  bool retracted = false;
  for (const std::string& key : leaf_keys) {
    const auto it = composite_leaves_.find(key);
    if (it == composite_leaves_.end()) continue;
    if (--it->second.refs > 0) continue;  // other composites still use it
    const auto sub = subscriptions_.find(it->second.subscription);
    if (sub != subscriptions_.end()) {
      engine_.unsubscribe(sub->second.profile);
      by_profile_.erase(sub->second.profile);
      subscriptions_.erase(sub);
      --internal_subscriptions_;
    }
    composite_leaves_.erase(it);
    retracted = true;
  }
  if (retracted) version_.fetch_add(1, std::memory_order_release);
}

std::size_t Broker::composite_count() const {
  const std::scoped_lock lock(composite_mutex_);
  return composites_.size();
}

std::size_t Broker::composite_leaf_count() const {
  const std::scoped_lock lock(mutex_);
  return composite_leaves_.size();
}

std::size_t Broker::composite_buffered() const {
  const std::scoped_lock lock(composite_mutex_);
  return composite_ingress_.buffered();
}

void Broker::set_composite_skew(Timestamp skew) {
  const std::scoped_lock lock(composite_mutex_);
  composite_ingress_.set_skew(skew);
}

void Broker::set_composite_index_enabled(bool enabled) {
  const std::scoped_lock lock(composite_mutex_);
  composite_detector_.set_use_index(enabled);
}

void Broker::flush_composites() {
  std::unique_lock<std::mutex> lock(composite_mutex_);
  composite_ingress_.flush();
  composite_armed_.set(
      static_cast<std::int64_t>(composite_detector_.armed_count()));
  update_composite_gauges_locked();
  dispatch_composite_firings(lock);
}

void Broker::advance_watermark(Timestamp now) {
  std::unique_lock<std::mutex> lock(composite_mutex_);
  composite_ingress_.advance_to(now);
  // Armed-state GC runs here — and only here — so the stimulus-driven push
  // path stays deterministic for beyond-skew late stimuli (whether they
  // complete must not depend on unrelated broker traffic). Skipped when
  // the watermark has not moved past the last collected horizon: a no-op
  // sweep would otherwise cost O(composites) per auto-advance batch.
  const Timestamp mark = composite_ingress_.watermark();
  if (mark != kCompositeNever &&
      (composite_expired_horizon_ == kCompositeNever ||
       mark > composite_expired_horizon_)) {
    composite_expired_.add(composite_detector_.expire_before(mark));
    composite_expired_horizon_ = mark;
  }
  composite_armed_.set(
      static_cast<std::int64_t>(composite_detector_.armed_count()));
  update_composite_gauges_locked();
  dispatch_composite_firings(lock);
}

void Broker::composite_ingest(ProfileId profile, Timestamp time) {
  static thread_local std::uint32_t trace_countdown = 0;
  const bool traced = trace_.sample(trace_countdown);
  std::unique_lock<std::mutex> lock(composite_mutex_);
  if (!composite_ingress_.push(profile, time, current_dedup_token)) {
    composite_dedup_drops_.add(1);
    return;  // redelivered stimulus dropped by the dedup window
  }
  if (traced) {
    // Bounded FIFO of sampled ingest stamps; a matching firing turns one
    // into a publish->firing latency observation.
    constexpr std::size_t kMaxTraceStamps = 256;
    if (composite_trace_stamps_.size() >= kMaxTraceStamps) {
      composite_trace_stamps_.erase(composite_trace_stamps_.begin());
    }
    composite_trace_stamps_.emplace_back(time, obs::now_ns());
  }
  update_composite_gauges_locked();
  if (composite_pending_.empty()) return;
  dispatch_composite_firings(lock);
}

void Broker::update_composite_gauges_locked() {
  composite_reorder_depth_.set(
      static_cast<std::int64_t>(composite_ingress_.buffered()));
  const Timestamp oldest = composite_ingress_.oldest_buffered();
  const Timestamp mark = composite_ingress_.watermark();
  std::int64_t lag = 0;
  if (oldest != kCompositeNever && mark != kCompositeNever) {
    // Logical span the reorder stage holds back: newest seen stimulus
    // (watermark + skew) minus the oldest instant still buffered.
    const Timestamp newest = mark + composite_ingress_.skew();
    if (newest > oldest) lag = newest - oldest;
  }
  composite_watermark_lag_.set(lag);
}

void Broker::set_composite_dedup_window(std::size_t capacity) {
  const std::scoped_lock lock(composite_mutex_);
  composite_ingress_.set_dedup_window(capacity);
}

std::uint64_t Broker::composite_duplicates_dropped() const {
  const std::scoped_lock lock(composite_mutex_);
  return composite_ingress_.dropped_duplicates();
}

void Broker::dispatch_composite_firings(std::unique_lock<std::mutex>& lock) {
  std::vector<std::pair<std::shared_ptr<const CompositeCallback>,
                        CompositeFiring>>
      out;
  out.reserve(composite_pending_.size());
  for (const CompositeFiring& firing : composite_pending_) {
    const auto it = composites_.find(firing.subscription);
    if (it == composites_.end()) continue;  // racing unsubscribe_composite
    out.emplace_back(it->second.callback, firing);
  }
  composite_pending_.clear();
  composite_firings_.add(out.size());
  if (!out.empty() && !composite_trace_stamps_.empty()) {
    // Match firings against the sampled ingest stamps (still locked: the
    // stamp FIFO is composite_mutex_ state). A stamp is consumed by the
    // first firing whose completion time equals the stimulus time.
    const std::uint64_t now = obs::now_ns();
    for (const auto& [callback, firing] : out) {
      const auto stamp = std::find_if(
          composite_trace_stamps_.begin(), composite_trace_stamps_.end(),
          [&firing](const auto& s) { return s.first == firing.time; });
      if (stamp == composite_trace_stamps_.end()) continue;
      composite_firing_latency_.observe(now - stamp->second);
      composite_trace_stamps_.erase(stamp);
    }
  }
  lock.unlock();
  for (const auto& [callback, firing] : out) (*callback)(firing);
}

std::shared_ptr<const Broker::Snapshot> Broker::acquire_snapshot(
    bool* rebuilt) {
  // Per-thread snapshot handles. Only this thread ever touches its slots,
  // so the fast path below performs no shared-state access beyond the
  // version load and the refcount bump of the returned copy. The array is
  // fully associative (linear scan of 8 entries): up to 8 live brokers per
  // thread cache without evicting each other; beyond that, colliding
  // brokers fall back to the mutex slow path on each publish. A slot of a
  // destroyed broker pins one stale snapshot until the slot is reused or
  // the thread exits.
  struct Slot {
    std::uint64_t broker = 0;
    std::shared_ptr<const Snapshot> snapshot;
  };
  static thread_local std::array<Slot, 8> slots;
  Slot* slot = nullptr;
  for (Slot& candidate : slots) {
    if (candidate.broker == broker_id_) {
      slot = &candidate;
      break;
    }
    if (slot == nullptr && candidate.broker == 0) slot = &candidate;
  }
  if (slot == nullptr) slot = &slots[broker_id_ % slots.size()];

  // Fast path: the cached snapshot is current — one atomic version load.
  const std::uint64_t version = version_.load(std::memory_order_acquire);
  if (slot->broker == broker_id_ && slot->snapshot != nullptr &&
      slot->snapshot->version == version) {
    return slot->snapshot;
  }

  // Slow path: refresh the cache — and rebuild the snapshot if a mutation
  // outdated it — under the mutation mutex.
  const std::scoped_lock lock(mutex_);
  const std::uint64_t current = version_.load(std::memory_order_relaxed);
  if (snapshot_ == nullptr || snapshot_->version != current) {
    // The rebuild pause is the stop-the-world cost every reader behind this
    // mutex pays; rebuilds are rare, so it is always timed (no sampling).
    const std::uint64_t pause_start = obs::now_ns();
    auto fresh = std::make_shared<Snapshot>();
    fresh->version = current;
    const std::uint64_t builds_before = engine_.rebuild_count();
    fresh->match = engine_.snapshot();
    if (rebuilt != nullptr && engine_.rebuild_count() != builds_before) {
      *rebuilt = true;
    }
    fresh->routes.resize(engine_.profiles().capacity());
    for (const auto& [profile, subscription] : by_profile_) {
      fresh->routes[profile] =
          Route{subscription, subscriptions_.at(subscription).callback};
    }
    fresh->sinks.reserve(sinks_.size());
    for (const SinkEntry& entry : sinks_) {
      fresh->sinks.push_back(entry.callback);
    }
    fresh->drain_hooks.reserve(drain_hooks_.size());
    for (const DrainHookEntry& entry : drain_hooks_) {
      fresh->drain_hooks.push_back(entry.hook);
    }
    snapshot_ = std::move(fresh);
    snapshot_rebuilds_.add(1);
    rebuild_pause_.observe(obs::now_ns() - pause_start);
  }
  slot->broker = broker_id_;
  slot->snapshot = snapshot_;
  return slot->snapshot;
}

PublishResult Broker::publish(const Event& event) {
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "event schema differs from broker schema");
  if (engine_.adaptive_enabled()) {
    // Matching mutates the drift estimator, so route through the serialized
    // batch pipeline (one lock, thread-local scratch, drain outside).
    const BatchPublishResult batch = publish_batch({&event, 1});
    return PublishResult{batch.notified, batch.operations, batch.rebuilt};
  }

  // Sampled event-path trace: every Nth publish per thread stamps t0 and
  // records publish->match and publish->deliver latency.
  static thread_local std::uint32_t trace_countdown = 0;
  const bool traced = trace_.sample(trace_countdown);
  const std::uint64_t trace_start = traced ? obs::now_ns() : 0;

  PublishResult result;
  const std::shared_ptr<const Snapshot> snapshot =
      acquire_snapshot(&result.rebuilt);
  const FlatMatch match = snapshot->match->flat->match(event);
  result.operations = match.operations;
  if (traced) match_latency_.observe(obs::now_ns() - trace_start);

  events_published_.add(1);
  operations_.add(match.operations);
  if (match.matched_count > 0) {
    events_matched_.add(1);
  }

  std::vector<Delivery> deliveries = take_delivery_scratch();
  for (const ProfileId profile : match.span()) {
    const Route& route = snapshot->routes[profile];
    if (route.callback == nullptr) continue;  // racing unsubscribe
    deliveries.push_back(Delivery{route.callback.get(), route.subscription});
  }
  result.notified = deliveries.size();
  notifications_.add(deliveries.size());

  for (const Delivery& delivery : deliveries) {
    const Notification notification{delivery.subscription, event};
    (*delivery.callback)(notification);
    for (const auto& sink : snapshot->sinks) (*sink)(notification);
  }
  return_delivery_scratch(std::move(deliveries));
  for (const auto& hook : snapshot->drain_hooks) (*hook)();
  if (traced) delivery_latency_.observe(obs::now_ns() - trace_start);
  return result;
}

PublishResult Broker::publish(std::string_view event_text, Timestamp time) {
  return publish(parse_event(schema_, event_text, time));
}

PublishResult Broker::publish(const Event& event, std::uint64_t dedup_token) {
  if (dedup_token == 0) return publish(event);
  const BatchPublishResult batch =
      publish_batch_impl({&event, 1}, {&dedup_token, 1});
  return PublishResult{batch.notified, batch.operations, batch.rebuilt};
}

BatchPublishResult Broker::publish_batch(std::span<const Event> events) {
  return publish_batch_impl(events, {});
}

BatchPublishResult Broker::publish_batch(
    std::span<const Event> events,
    std::span<const std::uint64_t> dedup_tokens) {
  GENAS_REQUIRE(dedup_tokens.size() == events.size(),
                ErrorCode::kInvalidArgument,
                "publish_batch requires one dedup token per event");
  return publish_batch_impl(events, dedup_tokens);
}

BatchPublishResult Broker::publish_batch_impl(
    std::span<const Event> events,
    std::span<const std::uint64_t> dedup_tokens) {
  BatchPublishResult result;
  result.events = events.size();
  if (events.empty()) return result;
  for (const Event& event : events) {
    GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                  "event schema differs from broker schema");
  }

  // One trace decision per batch: a sampled batch times the whole
  // match-then-drain pipeline (stage latencies are per batch, not per
  // event — the batch is the unit the caller waits on).
  static thread_local std::uint32_t trace_countdown = 0;
  const bool traced = trace_.sample(trace_countdown);
  const std::uint64_t trace_start = traced ? obs::now_ns() : 0;

  std::vector<Delivery> deliveries = take_delivery_scratch();

  // Keeps callback objects alive across the drain even if a re-entrant
  // unsubscribe from a callback erases their table entries mid-pass.
  std::vector<std::shared_ptr<const NotificationCallback>> keepalive;

  // Held at function scope: the drain below dereferences raw pointers into
  // the snapshot's route table, and a re-entrant publish from a callback
  // would otherwise replace the only other owner (the thread-local cache).
  std::shared_ptr<const Snapshot> snapshot;

  std::vector<std::shared_ptr<const NotificationCallback>> sink_storage;
  const std::vector<std::shared_ptr<const NotificationCallback>>* sinks =
      &sink_storage;

  std::vector<std::shared_ptr<const DrainHook>> hook_storage;
  const std::vector<std::shared_ptr<const DrainHook>>* drain_hooks =
      &hook_storage;

  if (engine_.adaptive_enabled()) {
    // Serialized matching (the adaptive estimator mutates per event), but
    // one lock acquisition for the whole batch and one drain pass after.
    // CSR scratch lives in thread-local storage (same move-out idiom as the
    // delivery buffer) so steady-state batches allocate nothing here.
    static thread_local std::vector<ProfileId> matched_scratch;
    static thread_local std::vector<std::size_t> offsets_scratch;
    std::vector<ProfileId> matched = std::move(matched_scratch);
    std::vector<std::size_t> offsets = std::move(offsets_scratch);
    {
      const std::scoped_lock lock(mutex_);
      sink_storage.reserve(sinks_.size());
      for (const SinkEntry& entry : sinks_) {
        sink_storage.push_back(entry.callback);
      }
      hook_storage.reserve(drain_hooks_.size());
      for (const DrainHookEntry& entry : drain_hooks_) {
        hook_storage.push_back(entry.hook);
      }
      const EngineBatchMatch outcome =
          engine_.match_batch(events, matched, offsets);
      result.operations = outcome.operations;
      result.matched_events = outcome.matched_events;
      result.rebuilt = outcome.rebuilt;
      if (outcome.rebuilt) adaptive_rebuilds_.add(1);
      for (std::size_t i = 0; i < events.size(); ++i) {
        for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
          const auto sub_it = by_profile_.find(matched[k]);
          if (sub_it == by_profile_.end()) continue;
          keepalive.push_back(subscriptions_.at(sub_it->second).callback);
          deliveries.push_back(
              Delivery{keepalive.back().get(), sub_it->second, i});
        }
      }
    }
    matched.clear();
    offsets.clear();
    matched_scratch = std::move(matched);
    offsets_scratch = std::move(offsets);
  } else {
    snapshot = acquire_snapshot(&result.rebuilt);
    sinks = &snapshot->sinks;
    drain_hooks = &snapshot->drain_hooks;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const FlatMatch match = snapshot->match->flat->match(events[i]);
      result.operations += match.operations;
      if (match.matched_count > 0) ++result.matched_events;
      for (const ProfileId profile : match.span()) {
        const Route& route = snapshot->routes[profile];
        if (route.callback == nullptr) continue;  // racing unsubscribe
        deliveries.push_back(
            Delivery{route.callback.get(), route.subscription, i});
      }
    }
  }

  if (traced) match_latency_.observe(obs::now_ns() - trace_start);
  events_published_.add(events.size());
  events_matched_.add(result.matched_events);
  operations_.add(result.operations);
  notifications_.add(deliveries.size());
  result.notified = deliveries.size();

  // Drain every notification in one pass, outside any lock.
  if (dedup_tokens.empty()) {
    for (const Delivery& delivery : deliveries) {
      const Notification notification{delivery.subscription,
                                      events[delivery.event_index]};
      (*delivery.callback)(notification);
      for (const auto& sink : *sinks) (*sink)(notification);
    }
  } else {
    for (const Delivery& delivery : deliveries) {
      const Notification notification{delivery.subscription,
                                      events[delivery.event_index]};
      // The event's token is visible to composite_ingest (and any
      // re-entrant publish) for exactly this notification's callbacks.
      const TokenGuard guard(dedup_tokens[delivery.event_index]);
      (*delivery.callback)(notification);
      for (const auto& sink : *sinks) (*sink)(notification);
    }
  }
  return_delivery_scratch(std::move(deliveries));
  for (const auto& hook : *drain_hooks) (*hook)();
  if (traced) delivery_latency_.observe(obs::now_ns() - trace_start);
  return result;
}

ServiceCounters Broker::counters() const {
  ServiceCounters counters;
  counters.events_published = events_published_.value();
  counters.events_matched = events_matched_.value();
  counters.notifications = notifications_.value();
  counters.operations = operations_.value();
  return counters;
}

std::size_t Broker::subscription_count() const {
  const std::scoped_lock lock(mutex_);
  return subscriptions_.size() - internal_subscriptions_;
}

ProfileStatistics Broker::profile_statistics() const {
  const std::scoped_lock lock(mutex_);
  ProfileStatistics stats(schema_);
  stats.rebuild(engine_.profiles());
  return stats;
}

std::string Broker::tree_dump() {
  const std::scoped_lock lock(mutex_);
  return engine_.tree().dump();
}

}  // namespace genas
