#include "ens/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "wire/codec.hpp"

namespace genas {

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw_error(ErrorCode::kState,
              "journal: " + what + ": " + std::strerror(errno));
}

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t read_u32_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("write failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> read_whole_file(int fd) {
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("read failed");
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + n);
  }
  return bytes;
}

}  // namespace

std::uint32_t SubscriptionJournal::crc32(
    std::span<const std::uint8_t> data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

SubscriptionJournal::~SubscriptionJournal() { close(); }

void SubscriptionJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  append_at_ = 0;
  state_ = State{};
}

const SubscriptionJournal::State& SubscriptionJournal::open(
    const std::string& path, LoadStats* stats) {
  close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) io_fail("cannot open '" + path + "'");
  path_ = path;

  const std::vector<std::uint8_t> bytes = read_whole_file(fd_);
  LoadStats local;

  // Scan the record sequence; `offset` always points at the start of the
  // last known-good record boundary. Any defect — torn record, CRC
  // mismatch, undecodable frame, a record type that is not subscription
  // state — ends the scan there. The tail is data loss we already suffered
  // (the crash happened mid-write); truncating it is what makes the next
  // append produce a well-formed journal again.
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < 4) break;  // torn: checksum itself is short
    const std::uint32_t expected_crc = read_u32_le(bytes.data() + offset);
    const std::span<const std::uint8_t> rest(bytes.data() + offset + 4,
                                             bytes.size() - offset - 4);
    const wire::FrameProbe probe = wire::probe_frame(rest);
    if (probe.status != wire::FrameStatus::kComplete) break;
    const std::span<const std::uint8_t> frame = rest.first(probe.size);
    if (crc32(frame) != expected_crc) break;

    bool applied = false;
    try {
      const wire::Message message = wire::decode_message(frame, state_.schema);
      if (const auto* schema = std::get_if<wire::SchemaMsg>(&message)) {
        // Exactly one schema record, first.
        if (state_.schema == nullptr && offset == 0) {
          state_.schema = schema->schema;
          applied = true;
        }
      } else if (state_.schema != nullptr) {
        if (const auto* sub = std::get_if<wire::SubscribeMsg>(&message)) {
          state_.subscriptions.insert_or_assign(sub->key, sub->profile);
          applied = true;
        } else if (const auto* unsub =
                       std::get_if<wire::UnsubscribeMsg>(&message)) {
          state_.subscriptions.erase(unsub->key);
          applied = true;
        } else if (const auto* csub =
                       std::get_if<wire::CompositeSubscribeMsg>(&message)) {
          state_.composites.insert_or_assign(csub->key, csub->expression);
          applied = true;
        } else if (const auto* cunsub =
                       std::get_if<wire::CompositeUnsubscribeMsg>(&message)) {
          state_.composites.erase(cunsub->key);
          applied = true;
        }
      }
    } catch (const Error&) {
      // Undecodable under the journal's schema: treated as tail corruption.
    }
    if (!applied) break;
    offset += 4 + probe.size;
    ++local.records;
  }

  if (offset < bytes.size()) {
    local.bytes_dropped = bytes.size() - offset;
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      io_fail("cannot truncate corrupt tail");
    }
  }
  if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    io_fail("seek failed");
  }
  append_at_ = offset;
  if (stats != nullptr) *stats = local;
  return state_;
}

void SubscriptionJournal::append_record(const std::vector<std::uint8_t>& frame) {
  GENAS_REQUIRE(is_open(), ErrorCode::kState, "journal: not open");
  std::vector<std::uint8_t> record;
  record.reserve(4 + frame.size());
  const std::uint32_t crc = crc32(frame);
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  record.insert(record.end(), frame.begin(), frame.end());
  write_all(fd_, record.data(), record.size());
  append_at_ += record.size();
}

void SubscriptionJournal::record_schema(const Schema& schema) {
  GENAS_REQUIRE(state_.schema == nullptr, ErrorCode::kState,
                "journal: schema already recorded");
  const std::vector<std::uint8_t> frame = wire::frame_schema(schema);
  append_record(frame);
  // Keep the mirror consistent with what a reload would decode: re-decode
  // the bytes we just wrote rather than aliasing the caller's instance.
  state_.schema =
      std::get<wire::SchemaMsg>(wire::decode_message(frame, nullptr)).schema;
}

void SubscriptionJournal::record_subscribe(std::uint64_t key,
                                           const Profile& profile) {
  GENAS_REQUIRE(state_.schema != nullptr, ErrorCode::kState,
                "journal: record_schema must come first");
  const std::vector<std::uint8_t> frame = wire::frame_subscribe(key, profile);
  append_record(frame);
  // Mirror via decode (against the journal's schema instance) so state()
  // is byte-for-byte what a reload would produce.
  state_.subscriptions.insert_or_assign(
      key, std::get<wire::SubscribeMsg>(
               wire::decode_message(frame, state_.schema))
               .profile);
}

void SubscriptionJournal::record_unsubscribe(std::uint64_t key) {
  GENAS_REQUIRE(state_.schema != nullptr, ErrorCode::kState,
                "journal: record_schema must come first");
  append_record(wire::frame_unsubscribe(key));
  state_.subscriptions.erase(key);
}

void SubscriptionJournal::record_composite_subscribe(
    std::uint64_t key, const CompositeExpr& expression) {
  GENAS_REQUIRE(state_.schema != nullptr, ErrorCode::kState,
                "journal: record_schema must come first");
  const std::vector<std::uint8_t> frame =
      wire::frame_composite_subscribe(key, expression);
  append_record(frame);
  // Mirror via decode so the stored expression is the serializable form
  // (profile leaves only), independent of the caller's object graph.
  state_.composites.insert_or_assign(
      key, std::get<wire::CompositeSubscribeMsg>(
               wire::decode_message(frame, state_.schema))
               .expression);
}

void SubscriptionJournal::record_composite_unsubscribe(std::uint64_t key) {
  GENAS_REQUIRE(state_.schema != nullptr, ErrorCode::kState,
                "journal: record_schema must come first");
  append_record(wire::frame_composite_unsubscribe(key));
  state_.composites.erase(key);
}

void SubscriptionJournal::sync() {
  GENAS_REQUIRE(is_open(), ErrorCode::kState, "journal: not open");
  if (::fsync(fd_) != 0) io_fail("fsync failed");
}

void SubscriptionJournal::compact() {
  GENAS_REQUIRE(is_open(), ErrorCode::kState, "journal: not open");
  GENAS_REQUIRE(state_.schema != nullptr, ErrorCode::kState,
                "journal: nothing to compact before a schema record");
  const std::string temp = path_ + ".compact";
  const int out = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                         0644);
  if (out < 0) io_fail("cannot open compaction temp file '" + temp + "'");

  std::uint64_t written = 0;
  const auto put = [&](const std::vector<std::uint8_t>& frame) {
    std::vector<std::uint8_t> record;
    record.reserve(4 + frame.size());
    const std::uint32_t crc = crc32(frame);
    for (int i = 0; i < 4; ++i) {
      record.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    record.insert(record.end(), frame.begin(), frame.end());
    write_all(out, record.data(), record.size());
    written += record.size();
  };

  try {
    put(wire::frame_schema(*state_.schema));
    for (const auto& [key, profile] : state_.subscriptions) {
      put(wire::frame_subscribe(key, profile));
    }
    for (const auto& [key, expression] : state_.composites) {
      put(wire::frame_composite_subscribe(key, *expression));
    }
    if (::fsync(out) != 0) io_fail("fsync of compaction temp file failed");
  } catch (...) {
    ::close(out);
    ::unlink(temp.c_str());
    throw;
  }
  ::close(out);

  if (::rename(temp.c_str(), path_.c_str()) != 0) {
    ::unlink(temp.c_str());
    io_fail("rename of compacted journal failed");
  }
  // Swap the open descriptor to the new file; the old inode is now
  // unreferenced by the path and dies with the old fd.
  const int replacement = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (replacement < 0) io_fail("cannot reopen compacted journal");
  if (::lseek(replacement, 0, SEEK_END) < 0) {
    ::close(replacement);
    io_fail("seek failed");
  }
  ::close(fd_);
  fd_ = replacement;
  append_at_ = written;
}

JournalReplayResult replay_journal(
    const SubscriptionJournal::State& state, Broker& broker,
    const std::function<NotificationCallback(std::uint64_t)>& make_callback,
    const std::function<CompositeCallback(std::uint64_t)>&
        make_composite_callback) {
  GENAS_REQUIRE(state.schema == nullptr || state.schema == broker.schema(),
                ErrorCode::kInvalidArgument,
                "journal replay requires the broker to be constructed with "
                "the journal's schema instance");
  JournalReplayResult result;
  for (const auto& [key, profile] : state.subscriptions) {
    result.subscriptions.emplace(key,
                                 broker.subscribe(profile, make_callback(key)));
  }
  for (const auto& [key, expression] : state.composites) {
    result.composites.emplace(
        key, broker.subscribe_composite(expression,
                                        make_composite_callback(key)));
  }
  return result;
}

}  // namespace genas
