// GENAS — the event notification broker.
//
// The service surface of an ENS (paper §1): users register profiles with a
// callback; providers publish events; the broker filters through the
// distribution-based engine and delivers notifications.
//
// Threading model (RCU-style snapshots):
//   * publish()/publish_batch() are lock-free on the hot path: each thread
//     caches a shared_ptr to the current immutable Snapshot (flat profile
//     tree + profile→callback route table) in thread-local storage and
//     revalidates it with a single atomic version load per publish — no
//     lock, no shared-state write beyond one refcount bump. Service
//     counters are atomics. (A deliberate non-use of
//     std::atomic<shared_ptr>: libstdc++'s is an embedded spinlock whose
//     GCC 12 load unlocks relaxed — formally racy under TSan — and it costs
//     three shared RMWs per load where the cache costs one.)
//   * subscribe()/unsubscribe() take the mutation mutex, update the engine,
//     and bump the snapshot version; the next publish that notices the stale
//     version rebuilds the snapshot off to the side (under the mutex) and
//     swaps it in atomically, so a burst of mutations costs one rebuild.
//   * Callbacks are invoked outside the lock, so subscribers may re-enter
//     the broker (subscribe/unsubscribe/publish) from a callback.
//   * Consequence of snapshotting: a publish that raced a subscribe may
//     either see or miss the new subscription, and an in-flight publish may
//     deliver one final notification to a subscription whose unsubscribe()
//     already returned. Deliveries are never lost or duplicated for
//     subscriptions that are stable across the publish.
//   * When the engine's adaptive loop is enabled, matching itself mutates
//     the drift estimator, so publish falls back to serializing matches
//     behind the mutex (delivery still happens outside it).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/filter_engine.hpp"
#include "ens/composite.hpp"
#include "ens/statistics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace genas {

/// Handle of one subscription.
using SubscriptionId = std::uint64_t;

/// Handle of one broker-wide delivery sink.
using SinkId = std::uint64_t;

/// Handle of one drain hook (see Broker::add_drain_hook).
using DrainHookId = std::uint64_t;

/// Invoked once per publish/publish_batch after all of its notifications
/// have drained. See Broker::add_drain_hook.
using DrainHook = std::function<void()>;

/// Delivered to a subscriber when an event matches its profile.
struct Notification {
  SubscriptionId subscription = 0;
  Event event;
};

using NotificationCallback = std::function<void(const Notification&)>;

/// Result of one publish call.
struct PublishResult {
  std::size_t notified = 0;        ///< notifications delivered
  std::uint64_t operations = 0;    ///< filter comparisons
  bool rebuilt = false;            ///< adaptive/snapshot rebuild happened
};

/// Aggregate result of one publish_batch call.
struct BatchPublishResult {
  std::size_t events = 0;          ///< events published
  std::size_t matched_events = 0;  ///< events matching ≥ 1 profile
  std::size_t notified = 0;        ///< notifications delivered
  std::uint64_t operations = 0;    ///< filter comparisons
  bool rebuilt = false;            ///< the batch refreshed the tree
};

class Broker {
 public:
  /// `metrics` is the obs registry this broker instruments (counters,
  /// latency histograms, composite gauges); when null the broker creates a
  /// private one. A host embedding several brokers (the mesh) passes
  /// per-node registries with distinguishing labels so their snapshots
  /// merge without name collisions.
  explicit Broker(SchemaPtr schema, EngineOptions options = {},
                  std::shared_ptr<obs::Registry> metrics = nullptr);

  /// Registers a profile with its delivery callback.
  SubscriptionId subscribe(Profile profile, NotificationCallback callback);
  /// Parses the expression, then registers it.
  SubscriptionId subscribe(std::string_view expression,
                           NotificationCallback callback);

  void unsubscribe(SubscriptionId id);

  /// Filters and delivers one event (lock-free unless adaptive).
  PublishResult publish(const Event& event);
  /// Parses "a=1; b=2" and publishes.
  PublishResult publish(std::string_view event_text, Timestamp time = 0);

  /// publish() with an at-least-once redelivery token. A transport that may
  /// deliver the same publish twice (reconnect replay, link retransmission)
  /// tags each event with a stable nonzero token; plain deliveries still
  /// duplicate (at-least-once semantics, counted by the caller), but the
  /// composite runtime dedups stimuli per (token, leaf) within the window
  /// set by set_composite_dedup_window(), so a redelivered event never
  /// double-arms or double-fires a composite. Token 0 == plain publish().
  PublishResult publish(const Event& event, std::uint64_t dedup_token);

  /// Filters and delivers a batch against one snapshot acquisition:
  /// matching reuses one scratch buffer across the batch and all
  /// notifications drain in a single pass after matching.
  BatchPublishResult publish_batch(std::span<const Event> events);

  /// publish_batch() with one redelivery token per event (same length as
  /// `events`; 0 entries are untracked). See publish(event, dedup_token).
  BatchPublishResult publish_batch(std::span<const Event> events,
                                   std::span<const std::uint64_t> dedup_tokens);

  const SchemaPtr& schema() const noexcept { return schema_; }

  // --- Composite subscriptions (the paper's §5 extension) ----------------
  //
  // A composite subscription is an expression over profile leaves
  // (`primitive(Profile)` / parse_composite). subscribe_composite
  // decomposes it: each leaf profile is registered through the ordinary
  // snapshot/FilterEngine path as an internal primitive subscription whose
  // deliveries drive a broker-internal CompositeDetector — the lock-free
  // publish hot path is untouched, and a composite coexists with plain
  // subscriptions and delivery sinks. Leaf registration is refcounted and
  // keyed by profile equality (canonical_profile_key): equal leaf profiles
  // — across composites, or duplicated within one expression — share one
  // engine registration and one ingress stimulus per matching event; the
  // registration retracts when the last composite using it unsubscribes.
  // Detection is watermark-based: primitive firings buffer in a reorder
  // stage (CompositeIngress) and an instant is evaluated once a later
  // instant passes the skew tolerance (set_composite_skew; default 0) — so
  // distributed transports delivering out of order by up to the skew detect
  // exactly like an ordered stream. flush_composites() evaluates everything
  // still buffered (quiescence / end of stream); advance_watermark(now) is
  // the time-driven tick for sparse streams. Composite callbacks run on the
  // publishing (or flushing/advancing) thread, outside all broker locks;
  // they may re-enter the broker, including
  // subscribe_composite/unsubscribe_composite.

  /// Registers a composite subscription; every leaf must carry a profile
  /// with this broker's schema. Returns its handle.
  CompositeId subscribe_composite(CompositeExprPtr expression,
                                  CompositeCallback callback);
  /// Parses the textual composite form, then registers it.
  CompositeId subscribe_composite(std::string_view expression,
                                  CompositeCallback callback);
  /// Withdraws a composite subscription and its internal leaf profiles.
  void unsubscribe_composite(CompositeId id);
  /// Live composite subscriptions.
  std::size_t composite_count() const;
  /// Distinct leaf profiles currently registered for composite detection
  /// (the refcounted dedup table's size — equal leaves count once).
  std::size_t composite_leaf_count() const;
  /// Composite instants buffered in the reorder stage.
  std::size_t composite_buffered() const;
  /// Watermark skew tolerance for composite detection (>= 0; default 0).
  void set_composite_skew(Timestamp skew);
  /// Evaluates all buffered composite instants, in timestamp order.
  void flush_composites();
  /// Time-driven watermark tick: advances composite detection to `now` as
  /// if a (non-buffered) stimulus at `now` had been seen — instants the new
  /// watermark passed evaluate and fire, and armed operator state whose
  /// window has fully passed is garbage-collected. Bounds composite firing
  /// latency and buffered-instant memory on sparse streams without
  /// flush_composites() calls. Callbacks run on the calling thread.
  void advance_watermark(Timestamp now);
  /// Debug/oracle switch for the detector's per-leaf dispatch index
  /// (default on). With the index off, every stimulus sweeps all composite
  /// subscriptions; firing multisets are identical in both modes.
  void set_composite_index_enabled(bool enabled);
  /// Capacity (in distinct tokens) of the composite redelivery filter fed
  /// by publish(event, dedup_token); 0 (default) disables it. See
  /// CompositeIngress::set_dedup_window for the eviction contract.
  void set_composite_dedup_window(std::size_t capacity);
  /// Stimuli the composite redelivery filter has dropped.
  std::uint64_t composite_duplicates_dropped() const;

  /// Installs (or, with nullptr, clears) the broker's *default* delivery
  /// sink: an observer invoked for every delivered notification, after the
  /// owning subscription's callback, outside all locks, on the publishing
  /// thread. External transports tap the full delivery stream this way —
  /// the mesh runtime counts per-node deliveries without wrapping each
  /// callback — and like callbacks, a sink may re-enter the broker.
  ///
  /// Swap semantics are explicit: set_delivery_sink replaces only the sink
  /// a previous set_delivery_sink call installed. Sinks installed through
  /// add_delivery_sink are independent and are never clobbered by it.
  void set_delivery_sink(NotificationCallback sink);

  /// Installs an additional delivery sink and returns its handle. All
  /// installed sinks observe every delivery, in installation order (the
  /// set_delivery_sink slot counts as one of them).
  SinkId add_delivery_sink(NotificationCallback sink);
  /// Removes a sink installed by add_delivery_sink; Error{kNotFound} for
  /// unknown handles.
  void remove_delivery_sink(SinkId id);

  /// Installs a drain hook: invoked once per publish()/publish_batch(),
  /// after every notification of that call (callbacks and sinks) has been
  /// delivered, outside all broker locks, on the publishing thread. This is
  /// the batching boundary for transports that stage per-notification
  /// output: a sink appends, the drain hook flushes, so one publish emits
  /// one frame regardless of how many subscriptions matched. A publish that
  /// delivers nothing still runs the hooks (cheap, and it lets a stage
  /// flush output that arrived through a different path). Hooks run in
  /// installation order and may re-enter the broker.
  DrainHookId add_drain_hook(DrainHook hook);
  /// Removes a hook installed by add_drain_hook; Error{kNotFound} for
  /// unknown handles.
  void remove_drain_hook(DrainHookId id);

  ServiceCounters counters() const;
  /// Live user subscriptions (composite-internal leaf registrations are
  /// excluded; see composite_count() for composites).
  std::size_t subscription_count() const;

  /// The obs registry this broker instruments (scrape with
  /// metrics().snapshot() or obs::render_prometheus).
  obs::Registry& metrics() const noexcept { return *metrics_; }
  const std::shared_ptr<obs::Registry>& metrics_ptr() const noexcept {
    return metrics_;
  }

  /// Event-path trace sampling: every Nth publish per thread records
  /// publish→match and publish→deliver latency (and composite ingest
  /// stamps for publish→firing latency). 0 disables tracing; the default
  /// is obs::kDefaultTracePeriod. Reconfigurable under live traffic.
  void set_trace_period(std::uint32_t period) noexcept {
    trace_.set_period(period);
  }
  std::uint32_t trace_period() const noexcept { return trace_.period(); }

  /// Profile-side statistics (P_p) over the current subscriptions.
  ProfileStatistics profile_statistics() const;

  /// Structural dump of the current profile tree (rebuilds if stale).
  std::string tree_dump();

 private:
  struct Subscription {
    ProfileId profile;
    /// Single owner of the callback object; snapshots and in-flight
    /// deliveries share it so a rebuild copies pointers, not
    /// std::function state.
    std::shared_ptr<const NotificationCallback> callback;
  };

  /// One routing entry of a snapshot: where a matched profile's
  /// notifications go.
  struct Route {
    SubscriptionId subscription = 0;
    std::shared_ptr<const NotificationCallback> callback;
  };

  /// Immutable read-side state, swapped atomically on rebuild. Profile ids
  /// are dense and append-only, so the route table is a flat vector indexed
  /// by ProfileId; a null callback marks an id with no live subscription.
  struct Snapshot {
    std::uint64_t version = 0;
    std::shared_ptr<const MatchSnapshot> match;  // tree + flat compilation
    std::vector<Route> routes;
    /// Broker-wide delivery observers, in installation order; empty when
    /// none are installed.
    std::vector<std::shared_ptr<const NotificationCallback>> sinks;
    /// Post-drain hooks, in installation order; empty when none are
    /// installed.
    std::vector<std::shared_ptr<const DrainHook>> drain_hooks;
  };

  /// Returns the current snapshot: the thread-local cached handle when its
  /// version is current (lock-free), else refreshes — rebuilding the
  /// snapshot if stale — under the mutation mutex.
  std::shared_ptr<const Snapshot> acquire_snapshot(bool* rebuilt);

  /// Shared body of both publish_batch overloads; `dedup_tokens` is empty
  /// or parallel to `events`.
  BatchPublishResult publish_batch_impl(
      std::span<const Event> events,
      std::span<const std::uint64_t> dedup_tokens);

  /// Feeds one internal leaf firing into the composite runtime, then
  /// dispatches any completed composite callbacks outside composite_mutex_.
  void composite_ingest(ProfileId profile, Timestamp time);
  /// Registers this broker's metrics in metrics_ (constructor helper).
  void register_metrics();
  /// Refreshes the composite depth/lag gauges (composite_mutex_ held).
  void update_composite_gauges_locked();
  /// Moves composite_pending_ out (composite_mutex_ must be held by `lock`),
  /// releases the lock, and invokes the subscribers' callbacks.
  void dispatch_composite_firings(std::unique_lock<std::mutex>& lock);

  SchemaPtr schema_;
  mutable std::mutex mutex_;  // guards engine_, tables, snapshot rebuild
  FilterEngine engine_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  std::unordered_map<ProfileId, SubscriptionId> by_profile_;
  SubscriptionId next_id_ = 1;
  /// Composite-internal leaf registrations inside subscriptions_ (excluded
  /// from subscription_count()); guarded by mutex_.
  std::size_t internal_subscriptions_ = 0;

  /// Distinguishes brokers in the thread-local snapshot caches (slots must
  /// never alias across broker instances, even address-reused ones).
  const std::uint64_t broker_id_;

  /// Mutation counter; a snapshot built at version v serves reads until the
  /// next mutation bumps it (always bumped under mutex_, read lock-free).
  std::atomic<std::uint64_t> version_{1};
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by mutex_

  /// Installed delivery sinks, in installation order; guarded by mutex_.
  struct SinkEntry {
    SinkId id = 0;
    std::shared_ptr<const NotificationCallback> callback;
  };
  std::vector<SinkEntry> sinks_;
  SinkId next_sink_id_ = 1;
  /// Sink owned by set_delivery_sink (its explicit-swap slot); 0 when none.
  SinkId default_sink_id_ = 0;

  /// Installed drain hooks, in installation order; guarded by mutex_.
  struct DrainHookEntry {
    DrainHookId id = 0;
    std::shared_ptr<const DrainHook> hook;
  };
  std::vector<DrainHookEntry> drain_hooks_;
  DrainHookId next_drain_hook_id_ = 1;

  /// Composite runtime. composite_mutex_ serializes detector and reorder
  /// state; it is never nested with mutex_ and never held while invoking
  /// user callbacks (firings collect in composite_pending_ and dispatch
  /// after release, so composite callbacks may re-enter the broker).
  mutable std::mutex composite_mutex_;
  CompositeDetector composite_detector_;
  CompositeIngress composite_ingress_{composite_detector_};
  std::vector<CompositeFiring> composite_pending_;
  /// Highest horizon already passed to expire_before; advance_watermark
  /// skips the O(composites) GC sweep until the watermark moves past it.
  /// Guarded by composite_mutex_. GC runs only from advance_watermark, so
  /// the stimulus-driven push path stays deterministic for late stimuli.
  Timestamp composite_expired_horizon_ = kCompositeNever;
  struct CompositeEntry {
    std::shared_ptr<const CompositeCallback> callback;
    /// Canonical keys of the distinct leaf profiles this composite holds a
    /// reference on (one per distinct profile, duplicates collapsed).
    std::vector<std::string> leaf_keys;
  };
  std::unordered_map<CompositeId, CompositeEntry> composites_;
  /// Refcounted composite-leaf registrations, keyed by profile equality
  /// (canonical_profile_key); guarded by mutex_ like the subscription
  /// tables it feeds.
  struct LeafRegistration {
    ProfileId profile = 0;
    SubscriptionId subscription = 0;
    std::size_t refs = 0;
  };
  std::unordered_map<std::string, LeafRegistration> composite_leaves_;

  // Observability. Service counters live in the obs registry (sharded
  // relaxed atomics, so the lock-free publish path can bump them without
  // contention); the trace sampler decides which publishes pay for stage
  // timestamps. Handles are registered once in the constructor.
  std::shared_ptr<obs::Registry> metrics_;
  obs::TraceSampler trace_;
  obs::Counter events_published_;
  obs::Counter events_matched_;
  obs::Counter notifications_;
  obs::Counter operations_;
  obs::Counter snapshot_rebuilds_;
  obs::Counter adaptive_rebuilds_;
  obs::Histogram match_latency_;
  obs::Histogram delivery_latency_;
  obs::Histogram rebuild_pause_;
  obs::Counter composite_firings_;
  obs::Counter composite_dedup_drops_;
  obs::Counter composite_expired_;
  obs::Histogram composite_firing_latency_;
  obs::Gauge composite_reorder_depth_;
  obs::Gauge composite_armed_;
  obs::Gauge composite_watermark_lag_;
  /// Sampled composite ingest stamps: (logical stimulus time, wall ns),
  /// bounded FIFO; guarded by composite_mutex_. dispatch_composite_firings
  /// matches firings against them for publish→firing latency.
  std::vector<std::pair<Timestamp, std::uint64_t>> composite_trace_stamps_;
};

}  // namespace genas
