// GENAS — the event notification broker.
//
// The service surface of an ENS (paper §1): users register profiles with a
// callback; providers publish events; the broker filters through the
// distribution-based engine and delivers notifications.
//
// Threading model (RCU-style snapshots):
//   * publish()/publish_batch() are lock-free on the hot path: each thread
//     caches a shared_ptr to the current immutable Snapshot (flat profile
//     tree + profile→callback route table) in thread-local storage and
//     revalidates it with a single atomic version load per publish — no
//     lock, no shared-state write beyond one refcount bump. Service
//     counters are atomics. (A deliberate non-use of
//     std::atomic<shared_ptr>: libstdc++'s is an embedded spinlock whose
//     GCC 12 load unlocks relaxed — formally racy under TSan — and it costs
//     three shared RMWs per load where the cache costs one.)
//   * subscribe()/unsubscribe() take the mutation mutex, update the engine,
//     and bump the snapshot version; the next publish that notices the stale
//     version rebuilds the snapshot off to the side (under the mutex) and
//     swaps it in atomically, so a burst of mutations costs one rebuild.
//   * Callbacks are invoked outside the lock, so subscribers may re-enter
//     the broker (subscribe/unsubscribe/publish) from a callback.
//   * Consequence of snapshotting: a publish that raced a subscribe may
//     either see or miss the new subscription, and an in-flight publish may
//     deliver one final notification to a subscription whose unsubscribe()
//     already returned. Deliveries are never lost or duplicated for
//     subscriptions that are stable across the publish.
//   * When the engine's adaptive loop is enabled, matching itself mutates
//     the drift estimator, so publish falls back to serializing matches
//     behind the mutex (delivery still happens outside it).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/filter_engine.hpp"
#include "ens/statistics.hpp"

namespace genas {

/// Handle of one subscription.
using SubscriptionId = std::uint64_t;

/// Delivered to a subscriber when an event matches its profile.
struct Notification {
  SubscriptionId subscription = 0;
  Event event;
};

using NotificationCallback = std::function<void(const Notification&)>;

/// Result of one publish call.
struct PublishResult {
  std::size_t notified = 0;        ///< notifications delivered
  std::uint64_t operations = 0;    ///< filter comparisons
  bool rebuilt = false;            ///< adaptive/snapshot rebuild happened
};

/// Aggregate result of one publish_batch call.
struct BatchPublishResult {
  std::size_t events = 0;          ///< events published
  std::size_t matched_events = 0;  ///< events matching ≥ 1 profile
  std::size_t notified = 0;        ///< notifications delivered
  std::uint64_t operations = 0;    ///< filter comparisons
  bool rebuilt = false;            ///< the batch refreshed the tree
};

class Broker {
 public:
  explicit Broker(SchemaPtr schema, EngineOptions options = {});

  /// Registers a profile with its delivery callback.
  SubscriptionId subscribe(Profile profile, NotificationCallback callback);
  /// Parses the expression, then registers it.
  SubscriptionId subscribe(std::string_view expression,
                           NotificationCallback callback);

  void unsubscribe(SubscriptionId id);

  /// Filters and delivers one event (lock-free unless adaptive).
  PublishResult publish(const Event& event);
  /// Parses "a=1; b=2" and publishes.
  PublishResult publish(std::string_view event_text, Timestamp time = 0);

  /// Filters and delivers a batch against one snapshot acquisition:
  /// matching reuses one scratch buffer across the batch and all
  /// notifications drain in a single pass after matching.
  BatchPublishResult publish_batch(std::span<const Event> events);

  const SchemaPtr& schema() const noexcept { return schema_; }

  /// Installs (or, with nullptr, clears) a broker-wide delivery sink: an
  /// observer invoked for every delivered notification, after the owning
  /// subscription's callback, outside all locks, on the publishing thread.
  /// External transports tap the full delivery stream this way — the mesh
  /// runtime counts per-node deliveries without wrapping each callback —
  /// and like callbacks, the sink may re-enter the broker.
  void set_delivery_sink(NotificationCallback sink);

  ServiceCounters counters() const;
  std::size_t subscription_count() const;

  /// Profile-side statistics (P_p) over the current subscriptions.
  ProfileStatistics profile_statistics() const;

  /// Structural dump of the current profile tree (rebuilds if stale).
  std::string tree_dump();

 private:
  struct Subscription {
    ProfileId profile;
    /// Single owner of the callback object; snapshots and in-flight
    /// deliveries share it so a rebuild copies pointers, not
    /// std::function state.
    std::shared_ptr<const NotificationCallback> callback;
  };

  /// One routing entry of a snapshot: where a matched profile's
  /// notifications go.
  struct Route {
    SubscriptionId subscription = 0;
    std::shared_ptr<const NotificationCallback> callback;
  };

  /// Immutable read-side state, swapped atomically on rebuild. Profile ids
  /// are dense and append-only, so the route table is a flat vector indexed
  /// by ProfileId; a null callback marks an id with no live subscription.
  struct Snapshot {
    std::uint64_t version = 0;
    std::shared_ptr<const MatchSnapshot> match;  // tree + flat compilation
    std::vector<Route> routes;
    /// Broker-wide delivery observer; null when unset.
    std::shared_ptr<const NotificationCallback> sink;
  };

  /// Returns the current snapshot: the thread-local cached handle when its
  /// version is current (lock-free), else refreshes — rebuilding the
  /// snapshot if stale — under the mutation mutex.
  std::shared_ptr<const Snapshot> acquire_snapshot(bool* rebuilt);

  SchemaPtr schema_;
  mutable std::mutex mutex_;  // guards engine_, tables, snapshot rebuild
  FilterEngine engine_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  std::unordered_map<ProfileId, SubscriptionId> by_profile_;
  SubscriptionId next_id_ = 1;

  /// Distinguishes brokers in the thread-local snapshot caches (slots must
  /// never alias across broker instances, even address-reused ones).
  const std::uint64_t broker_id_;

  /// Mutation counter; a snapshot built at version v serves reads until the
  /// next mutation bumps it (always bumped under mutex_, read lock-free).
  std::atomic<std::uint64_t> version_{1};
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by mutex_
  std::shared_ptr<const NotificationCallback> sink_;  // guarded by mutex_

  // Service counters (atomic so the lock-free publish path can bump them).
  std::atomic<std::uint64_t> events_published_{0};
  std::atomic<std::uint64_t> events_matched_{0};
  std::atomic<std::uint64_t> notifications_{0};
  std::atomic<std::uint64_t> operations_{0};
};

}  // namespace genas
