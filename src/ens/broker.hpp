// GENAS — the event notification broker.
//
// The service surface of an ENS (paper §1): users register profiles with a
// callback; providers publish events; the broker filters through the
// distribution-based engine and delivers notifications. Mutations and
// matching are serialized behind one mutex (the engine itself is
// single-threaded); callbacks are invoked outside the lock so subscribers
// may call back into the broker.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/filter_engine.hpp"
#include "ens/statistics.hpp"

namespace genas {

/// Handle of one subscription.
using SubscriptionId = std::uint64_t;

/// Delivered to a subscriber when an event matches its profile.
struct Notification {
  SubscriptionId subscription = 0;
  Event event;
};

using NotificationCallback = std::function<void(const Notification&)>;

/// Result of one publish call.
struct PublishResult {
  std::size_t notified = 0;        ///< notifications delivered
  std::uint64_t operations = 0;    ///< filter comparisons
  bool rebuilt = false;            ///< adaptive rebuild happened
};

class Broker {
 public:
  explicit Broker(SchemaPtr schema, EngineOptions options = {});

  /// Registers a profile with its delivery callback.
  SubscriptionId subscribe(Profile profile, NotificationCallback callback);
  /// Parses the expression, then registers it.
  SubscriptionId subscribe(std::string_view expression,
                           NotificationCallback callback);

  void unsubscribe(SubscriptionId id);

  /// Filters and delivers one event.
  PublishResult publish(const Event& event);
  /// Parses "a=1; b=2" and publishes.
  PublishResult publish(std::string_view event_text, Timestamp time = 0);

  const SchemaPtr& schema() const noexcept { return schema_; }

  ServiceCounters counters() const;
  std::size_t subscription_count() const;

  /// Profile-side statistics (P_p) over the current subscriptions.
  ProfileStatistics profile_statistics() const;

  /// Structural dump of the current profile tree (rebuilds if stale).
  std::string tree_dump();

 private:
  struct Subscription {
    ProfileId profile;
    NotificationCallback callback;
  };

  SchemaPtr schema_;
  mutable std::mutex mutex_;
  FilterEngine engine_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  std::unordered_map<ProfileId, SubscriptionId> by_profile_;
  SubscriptionId next_id_ = 1;
  ServiceCounters counters_;
};

}  // namespace genas
