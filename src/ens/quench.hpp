// GENAS — quenching (Elvin-style provider-side suppression).
//
// The paper cites Elvin's "quenching mechanism that discards unneeded
// information without consuming resources" (§2) and motivates early
// rejection for resource-critical environments (§5). A Quencher answers the
// provider-side question: "would any current subscription possibly match an
// event from this region of event space?" Providers describe the region as
// one interval set per attribute (unconstrained = full domain); if no
// profile overlaps the region on every attribute, the provider can skip
// generating the event altogether.
#pragma once

#include <optional>
#include <vector>

#include "profile/profile.hpp"

namespace genas {

/// A rectangular region of event space: one accepted set per attribute.
class EventSpace {
 public:
  explicit EventSpace(SchemaPtr schema);

  /// Restricts an attribute to `accepted` (index space, must be non-empty).
  EventSpace& restrict(std::string_view attribute, IntervalSet accepted);

  /// Restricts an attribute to a single value.
  EventSpace& restrict_value(std::string_view attribute, const Value& value);

  const SchemaPtr& schema() const noexcept { return schema_; }
  const IntervalSet& accepted(AttributeId id) const noexcept {
    return sets_[id];
  }

 private:
  SchemaPtr schema_;
  std::vector<IntervalSet> sets_;  // default: full domain per attribute
};

/// Provider-side interest oracle over a profile snapshot.
class Quencher {
 public:
  explicit Quencher(const ProfileSet& profiles) { rebuild(profiles); }

  void rebuild(const ProfileSet& profiles);

  /// True when at least one profile could match some event in the space.
  bool any_interest(const EventSpace& space) const;

  /// All profiles that could match some event in the space.
  std::vector<ProfileId> interested(const EventSpace& space) const;

 private:
  SchemaPtr schema_;
  struct Entry {
    ProfileId id;
    /// Accepted set per attribute; don't-care stored as the full domain.
    std::vector<IntervalSet> accepted;
  };
  std::vector<Entry> entries_;
};

}  // namespace genas
