// GENAS — durable subscription journal.
//
// A broker (or the node hosting one) survives a crash by journaling its
// subscription state: every subscribe/unsubscribe — plain or composite —
// appends one record, and after a restart the journal replays the live
// set into a fresh broker. Event traffic is NOT journaled (at-least-once
// redelivery is the links' job, see src/mesh and src/net); the journal
// covers the control plane, which is small, mutation-rate-bounded, and
// exactly what a restarted node cannot reconstruct from its peers.
//
// On-disk format — the wire codec reused as a storage format. A journal is
// a sequence of records:
//
//   u32 crc32     IEEE CRC-32 of the frame bytes that follow
//   ...frame...   one complete wire frame (length-prefixed, versioned;
//                 see src/wire/codec.hpp)
//
// The first record's frame is kSchema; every later record is one of
// kSubscribe / kUnsubscribe / kCompositeSubscribe / kCompositeUnsubscribe,
// decoded against that schema. Because frames are self-delimiting, a
// journal needs no index or footer: load() scans records forward and stops
// at the first one that is torn (short), CRC-mismatched, or undecodable.
// Everything before that point is the recovered state; the bad tail is
// truncated in place — a crash mid-append (torn write, garbage from a
// partial sector) costs at most the records after the last durable one,
// and never a failed load.
//
// compact() bounds file growth: it rewrites schema + live state only
// (dropping subscribe/unsubscribe churn) into a temp file, fsyncs, and
// renames over the journal — the atomic-replace idiom, so a crash during
// compaction leaves either the old or the new journal, never a hybrid.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "ens/broker.hpp"
#include "ens/composite.hpp"
#include "profile/profile.hpp"

namespace genas {

class SubscriptionJournal {
 public:
  /// Live subscription state recovered from (and mirrored by) a journal.
  struct State {
    SchemaPtr schema;  ///< null until a schema record is written
    std::unordered_map<std::uint64_t, Profile> subscriptions;
    std::unordered_map<std::uint64_t, CompositeExprPtr> composites;
  };

  /// Diagnostics from open(): how much of the file was recoverable.
  struct LoadStats {
    std::size_t records = 0;        ///< valid records replayed
    std::size_t bytes_dropped = 0;  ///< torn/corrupt tail truncated away
  };

  SubscriptionJournal() = default;
  ~SubscriptionJournal();
  SubscriptionJournal(const SubscriptionJournal&) = delete;
  SubscriptionJournal& operator=(const SubscriptionJournal&) = delete;

  /// Opens `path` (creating it when absent), replays the valid record
  /// prefix into the journal's live state, and truncates any torn or
  /// corrupt tail. Corruption is recovery, not failure: only real I/O
  /// errors (open/read/truncate) throw Error{kState}.
  const State& open(const std::string& path, LoadStats* stats = nullptr);

  bool is_open() const noexcept { return fd_ >= 0; }
  void close();

  /// Writes the schema record. Required once, before any subscription
  /// record, and only on a journal with no schema yet (Error{kState}
  /// otherwise).
  void record_schema(const Schema& schema);
  void record_subscribe(std::uint64_t key, const Profile& profile);
  void record_unsubscribe(std::uint64_t key);
  void record_composite_subscribe(std::uint64_t key,
                                  const CompositeExpr& expression);
  void record_composite_unsubscribe(std::uint64_t key);

  /// Flushes appended records to stable storage (fsync).
  void sync();

  /// Rewrites the journal as schema + live state only, via temp-file +
  /// atomic rename; churn history is dropped. The journal stays open on
  /// the new file.
  void compact();

  /// Live state mirror (schema + surviving subscriptions).
  const State& state() const noexcept { return state_; }
  /// Current journal file size in bytes.
  std::uint64_t size_bytes() const noexcept { return append_at_; }

  /// IEEE CRC-32 (reflected, poly 0xEDB88320) over `data` — the checksum
  /// guarding each record. Exposed so tests can forge/verify records.
  static std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

 private:
  void append_record(const std::vector<std::uint8_t>& frame);

  int fd_ = -1;
  std::string path_;
  std::uint64_t append_at_ = 0;  ///< end of the valid record prefix
  State state_;
};

/// Handles a replayed journal gets in the new broker, keyed by the stable
/// journal keys.
struct JournalReplayResult {
  std::unordered_map<std::uint64_t, SubscriptionId> subscriptions;
  std::unordered_map<std::uint64_t, CompositeId> composites;
};

/// Re-registers every live subscription in `state` with `broker`. The
/// factories produce the delivery callbacks, one per journal key (a journal
/// stores routing state, not code). The broker must share the journal's
/// schema *instance* — construct it with `state.schema` — because profile
/// and composite schema checks compare by pointer identity.
JournalReplayResult replay_journal(
    const SubscriptionJournal::State& state, Broker& broker,
    const std::function<NotificationCallback(std::uint64_t)>& make_callback,
    const std::function<CompositeCallback(std::uint64_t)>&
        make_composite_callback);

}  // namespace genas
