#include "ens/history.hpp"

#include "common/error.hpp"

namespace genas {

EventHistory::EventHistory(SchemaPtr schema, std::size_t capacity)
    : schema_(std::move(schema)), capacity_(capacity) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "event history requires a schema");
  GENAS_REQUIRE(capacity_ > 0, ErrorCode::kInvalidArgument,
                "event history requires a positive capacity");
  events_.reserve(capacity_);
}

void EventHistory::record(Event event) {
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "event schema differs from history schema");
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

void EventHistory::for_each(
    const std::function<void(const Event&)>& fn) const {
  GENAS_REQUIRE(fn != nullptr, ErrorCode::kInvalidArgument,
                "for_each requires a callable");
  for (std::size_t i = 0; i < events_.size(); ++i) {
    fn(events_[(head_ + i) % events_.size()]);
  }
}

void EventHistory::replay_into(SchemaEstimator& estimator) const {
  for_each([&estimator](const Event& event) { estimator.observe(event); });
}

JointDistribution EventHistory::empirical_distribution(
    double smoothing) const {
  SchemaEstimator estimator(schema_);
  replay_into(estimator);
  return estimator.estimate_joint(smoothing);
}

void EventHistory::clear() noexcept {
  events_.clear();
  head_ = 0;
}

}  // namespace genas
