#include "ens/statistics.hpp"

#include "common/error.hpp"

namespace genas {

ProfileStatistics::ProfileStatistics(SchemaPtr schema)
    : schema_(std::move(schema)) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "profile statistics require a schema");
  references_.reserve(schema_->attribute_count());
  for (const Attribute& attribute : schema_->attributes()) {
    references_.emplace_back(
        static_cast<std::size_t>(attribute.domain.size()), 0.0);
  }
  constrained_.assign(schema_->attribute_count(), 0);
}

void ProfileStatistics::rebuild(const ProfileSet& profiles) {
  GENAS_REQUIRE(profiles.schema() == schema_, ErrorCode::kInvalidArgument,
                "profile set schema differs from statistics schema");
  for (auto& row : references_) std::fill(row.begin(), row.end(), 0.0);
  std::fill(constrained_.begin(), constrained_.end(), 0);
  operators_.fill(0);
  for (const ProfileId id : profiles.active_ids()) {
    add(profiles.profile(id));
  }
}

void ProfileStatistics::add(const Profile& profile) {
  GENAS_REQUIRE(profile.schema() == schema_, ErrorCode::kInvalidArgument,
                "profile schema differs from statistics schema");
  for (const Predicate& predicate : profile.predicates()) {
    const AttributeId a = predicate.attribute();
    ++constrained_[a];
    ++operators_[static_cast<std::size_t>(predicate.op())];
    for (const Interval& iv : predicate.accepted().intervals()) {
      for (DomainIndex v = iv.lo; v <= iv.hi; ++v) {
        references_[a][static_cast<std::size_t>(v)] += 1.0;
      }
    }
  }
}

double ProfileStatistics::reference_count(AttributeId attribute,
                                          DomainIndex value) const {
  GENAS_REQUIRE(attribute < references_.size(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  const auto& row = references_[attribute];
  GENAS_REQUIRE(value >= 0 && value < static_cast<DomainIndex>(row.size()),
                ErrorCode::kInvalidArgument, "domain index out of range");
  return row[static_cast<std::size_t>(value)];
}

std::uint64_t ProfileStatistics::constrained_profiles(
    AttributeId attribute) const {
  GENAS_REQUIRE(attribute < constrained_.size(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  return constrained_[attribute];
}

std::uint64_t ProfileStatistics::operator_count(Op op) const {
  return operators_[static_cast<std::size_t>(op)];
}

DiscreteDistribution ProfileStatistics::profile_distribution(
    AttributeId attribute) const {
  GENAS_REQUIRE(attribute < references_.size(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  const auto& row = references_[attribute];
  double total = 0.0;
  for (const double w : row) total += w;
  if (total == 0.0) {
    return DiscreteDistribution::uniform(
        static_cast<std::int64_t>(row.size()));
  }
  return DiscreteDistribution::from_weights(row);
}

void ProfileStatistics::set_reference_weight(AttributeId attribute,
                                             DomainIndex value,
                                             double weight) {
  GENAS_REQUIRE(attribute < references_.size(), ErrorCode::kInvalidArgument,
                "attribute id out of range");
  GENAS_REQUIRE(weight >= 0.0, ErrorCode::kInvalidArgument,
                "reference weight must be non-negative");
  auto& row = references_[attribute];
  GENAS_REQUIRE(value >= 0 && value < static_cast<DomainIndex>(row.size()),
                ErrorCode::kInvalidArgument, "domain index out of range");
  row[static_cast<std::size_t>(value)] = weight;
}

}  // namespace genas
