// GENAS — statistic objects (paper §4.2).
//
// "We implemented statistic objects with counters for events, attributes,
// operators, and values. If a profile specifies a certain value that
// element-counter is incremented. For the tests, we manipulate the counters
// in order to simulate a distribution."
//
// ProfileStatistics derives the profile distribution P_p from the registered
// profiles (per-attribute reference counts per domain value and per-operator
// counts). ServiceCounters aggregates the service-level counters the broker
// reports. Counters are plain and mutable on purpose: the benchmark harness
// "manipulates" them exactly like the paper's prototype to simulate
// distributions without posting millions of events.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"
#include "profile/profile.hpp"

namespace genas {

/// Profile-side distribution statistics (P_p).
class ProfileStatistics {
 public:
  explicit ProfileStatistics(SchemaPtr schema);

  /// Recomputes all counters from the active profiles.
  void rebuild(const ProfileSet& profiles);

  /// Folds one profile in incrementally.
  void add(const Profile& profile);

  /// reference_count(a, v): number of folded-in profiles whose predicate on
  /// `a` accepts domain index v (don't-care profiles are not counted — they
  /// express no value preference).
  double reference_count(AttributeId attribute, DomainIndex value) const;

  /// Number of profiles with any predicate on the attribute.
  std::uint64_t constrained_profiles(AttributeId attribute) const;

  /// Per-operator usage count (indexed by Op).
  std::uint64_t operator_count(Op op) const;

  /// Normalized profile distribution P_p over one attribute; uniform when
  /// no profile constrains the attribute.
  DiscreteDistribution profile_distribution(AttributeId attribute) const;

  /// Direct counter access for the simulation workflow of the paper: set a
  /// synthetic reference weight for a value.
  void set_reference_weight(AttributeId attribute, DomainIndex value,
                            double weight);

 private:
  SchemaPtr schema_;
  std::vector<std::vector<double>> references_;  // [attribute][value]
  std::vector<std::uint64_t> constrained_;
  std::array<std::uint64_t, 9> operators_{};  // one slot per Op enumerator
};

/// Service-level counters (events seen, notifications, operations).
struct ServiceCounters {
  std::uint64_t events_published = 0;
  std::uint64_t events_matched = 0;      ///< matched ≥ 1 profile
  std::uint64_t notifications = 0;       ///< (event, profile) pairs
  std::uint64_t operations = 0;          ///< filter comparisons
  std::uint64_t quench_suppressed = 0;   ///< events never generated

  double ops_per_event() const noexcept {
    return events_published > 0
               ? static_cast<double>(operations) /
                     static_cast<double>(events_published)
               : 0.0;
  }
  double match_rate() const noexcept {
    return events_published > 0
               ? static_cast<double>(events_matched) /
                     static_cast<double>(events_published)
               : 0.0;
  }
};

}  // namespace genas
