#include "ens/quench.hpp"

#include "common/error.hpp"

namespace genas {

EventSpace::EventSpace(SchemaPtr schema) : schema_(std::move(schema)) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "event space requires a schema");
  sets_.reserve(schema_->attribute_count());
  for (const Attribute& attribute : schema_->attributes()) {
    sets_.push_back(IntervalSet::single(attribute.domain.full()));
  }
}

EventSpace& EventSpace::restrict(std::string_view attribute,
                                 IntervalSet accepted) {
  GENAS_REQUIRE(!accepted.is_empty(), ErrorCode::kInvalidArgument,
                "event-space restriction must be non-empty");
  const AttributeId id = schema_->id_of(attribute);
  const Interval full = schema_->attribute(id).domain.full();
  for (const Interval& iv : accepted.intervals()) {
    GENAS_REQUIRE(full.contains(iv), ErrorCode::kDomainViolation,
                  "event-space restriction outside the attribute domain");
  }
  sets_[id] = std::move(accepted);
  return *this;
}

EventSpace& EventSpace::restrict_value(std::string_view attribute,
                                       const Value& value) {
  const AttributeId id = schema_->id_of(attribute);
  return restrict(attribute, IntervalSet::point(
                                 schema_->attribute(id).domain.index_of(value)));
}

void Quencher::rebuild(const ProfileSet& profiles) {
  schema_ = profiles.schema();
  entries_.clear();
  entries_.reserve(profiles.active_count());
  for (const ProfileId id : profiles.active_ids()) {
    Entry entry;
    entry.id = id;
    entry.accepted.reserve(schema_->attribute_count());
    const Profile& profile = profiles.profile(id);
    for (AttributeId a = 0; a < schema_->attribute_count(); ++a) {
      const Predicate* predicate = profile.predicate(a);
      entry.accepted.push_back(
          predicate != nullptr
              ? predicate->accepted()
              : IntervalSet::single(schema_->attribute(a).domain.full()));
    }
    entries_.push_back(std::move(entry));
  }
}

namespace {
bool entry_overlaps(const std::vector<IntervalSet>& accepted,
                    const EventSpace& space) {
  for (AttributeId a = 0; a < accepted.size(); ++a) {
    if (accepted[a].intersect(space.accepted(a)).is_empty()) return false;
  }
  return true;
}
}  // namespace

bool Quencher::any_interest(const EventSpace& space) const {
  GENAS_REQUIRE(space.schema() == schema_, ErrorCode::kInvalidArgument,
                "event-space schema differs from quencher schema");
  for (const Entry& entry : entries_) {
    if (entry_overlaps(entry.accepted, space)) return true;
  }
  return false;
}

std::vector<ProfileId> Quencher::interested(const EventSpace& space) const {
  GENAS_REQUIRE(space.schema() == schema_, ErrorCode::kInvalidArgument,
                "event-space schema differs from quencher schema");
  std::vector<ProfileId> out;
  for (const Entry& entry : entries_) {
    if (entry_overlaps(entry.accepted, space)) out.push_back(entry.id);
  }
  return out;
}

}  // namespace genas
