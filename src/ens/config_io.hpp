// GENAS — service-configuration persistence.
//
// The generic service's schema and subscriptions (paper §4.2: everything is
// specified at runtime) can be saved to and restored from a line-oriented
// text format, so a deployment survives restarts and configurations can be
// version-controlled and diffed:
//
//   # comment
//   attr <name> int <lo> <hi>
//   attr <name> real <lo> <hi> <resolution>
//   attr <name> cat <c1,c2,...>
//   profile [weight=<w>] <expression>      # parse_profile grammar
//
// Attribute lines must precede profile lines. Loading returns the schema
// plus the profile set (with priority weights).
//
// Category names are escaped so any printable name round-trips: backslash
// and comma as `\\` and `\,`, and leading/trailing whitespace as `\s`
// (space) / `\t` (tab) — interior spaces need no escape. Names containing
// newlines cannot be represented in a line format; save_config rejects
// them with Error{kInvalidArgument}.
#pragma once

#include <iosfwd>
#include <string>

#include "profile/profile.hpp"

namespace genas {

/// A restorable service configuration.
struct ServiceConfig {
  SchemaPtr schema;
  ProfileSet profiles;
};

/// Writes the schema and all active profiles (including weights).
void save_config(std::ostream& os, const ProfileSet& profiles);

/// Parses a configuration; throws Error{kParse} with the offending line.
ServiceConfig load_config(std::istream& is);

/// Convenience round-trip through strings.
std::string config_to_string(const ProfileSet& profiles);
ServiceConfig config_from_string(const std::string& text);

}  // namespace genas
