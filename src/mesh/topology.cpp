#include "mesh/topology.hpp"

#include <charconv>
#include <istream>
#include <sstream>

#include "common/error.hpp"
#include "common/text.hpp"

namespace genas::mesh {

namespace {

[[noreturn]] void topology_fail(std::size_t line_no, const std::string& what) {
  throw_error(ErrorCode::kParse,
              "topology line " + std::to_string(line_no) + ": " + what);
}

std::size_t parse_index(std::string_view token, std::size_t line_no) {
  std::size_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    topology_fail(line_no,
                  "expected a node id, got '" + std::string(token) + "'");
  }
  return v;
}

}  // namespace

MeshTopology load_topology(std::istream& is) {
  MeshTopology topology;
  bool saw_nodes = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;

    if (starts_with(body, "nodes ")) {
      if (saw_nodes) topology_fail(line_no, "duplicate nodes directive");
      topology.nodes = parse_index(trim(body.substr(6)), line_no);
      if (topology.nodes == 0) topology_fail(line_no, "mesh needs >= 1 node");
      saw_nodes = true;
      continue;
    }

    if (!saw_nodes) {
      topology_fail(line_no, "the nodes directive must come first");
    }

    if (starts_with(body, "link ")) {
      const auto words = split(body.substr(5), ' ');
      std::vector<std::string_view> tokens;
      for (const auto w : words) {
        if (!w.empty()) tokens.push_back(w);
      }
      if (tokens.size() != 2) topology_fail(line_no, "link needs two node ids");
      const std::size_t a = parse_index(tokens[0], line_no);
      const std::size_t b = parse_index(tokens[1], line_no);
      if (a >= topology.nodes || b >= topology.nodes) {
        topology_fail(line_no, "link references an unknown node");
      }
      topology.links.emplace_back(a, b);
      continue;
    }

    if (starts_with(body, "sub ") || starts_with(body, "csub ")) {
      const bool composite = body[0] == 'c';
      const char* what = composite ? "csub" : "sub";
      const std::string_view rest = trim(body.substr(composite ? 5 : 4));
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        topology_fail(line_no, std::string(what) +
                                   " needs a node id and an expression");
      }
      const std::size_t node = parse_index(rest.substr(0, space), line_no);
      if (node >= topology.nodes) {
        topology_fail(line_no,
                      std::string(what) + " references an unknown node");
      }
      const std::string_view expression = trim(rest.substr(space));
      if (expression.empty()) {
        topology_fail(line_no, std::string(what) + " has an empty expression");
      }
      auto& into = composite ? topology.composites : topology.subscriptions;
      into.emplace_back(node, std::string(expression));
      continue;
    }

    topology_fail(line_no, "unknown directive '" + std::string(body) + "'");
  }

  if (!saw_nodes) topology_fail(line_no, "topology declares no nodes");
  return topology;
}

MeshTopology topology_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_topology(is);
}

std::string topology_to_string(const MeshTopology& topology) {
  std::ostringstream os;
  os << "# GENAS mesh topology\n";
  os << "nodes " << topology.nodes << '\n';
  for (const auto& [a, b] : topology.links) {
    os << "link " << a << ' ' << b << '\n';
  }
  for (const auto& [node, expression] : topology.subscriptions) {
    os << "sub " << node << ' ' << expression << '\n';
  }
  for (const auto& [node, expression] : topology.composites) {
    os << "csub " << node << ' ' << expression << '\n';
  }
  return os.str();
}

}  // namespace genas::mesh
