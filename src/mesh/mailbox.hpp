// GENAS — bounded MPSC mailbox for mesh worker threads.
//
// Each mesh node owns one mailbox; any number of producers (client threads
// and peer workers) push messages, and the node's single worker thread
// drains them in batches. The queue is bounded: a blocking `push` is the
// backpressure point for external publishers, while workers use `try_push`
// (never blocking) so that two workers forwarding into each other's full
// mailboxes cannot deadlock — an undeliverable frame is staged in the
// sender's per-link outbox and retried (see mesh.cpp).
//
// A mutex + two condition variables is deliberately boring: the mailbox is
// drained in batches (one lock round per batch), so queue synchronization
// is far off the hot path — the per-event work happens in the broker's
// lock-free snapshot matcher, not here.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace genas::mesh {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while the mailbox is full. Returns false (dropping the item)
  /// when the mailbox closed before space appeared. When `depth` is given
  /// it receives the queue depth right after the push (high-water probes
  /// get it for free, under the lock already held).
  bool push(T item, std::size_t* depth = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (depth != nullptr) *depth = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; on failure (full or closed) the item is left
  /// untouched in `item`. `depth` as in push().
  bool try_push(T& item, std::size_t* depth = nullptr) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (depth != nullptr) *depth = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Moves up to `max` items into `out` (appended). When the mailbox is
  /// empty: waits for an item, for close, or — when `timeout` is non-zero —
  /// for the timeout. Returns the number of items moved (0 only on close or
  /// timeout).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max,
                        std::chrono::microseconds timeout =
                            std::chrono::microseconds::zero()) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (timeout.count() == 0) {
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    } else {
      not_empty_.wait_for(lock, timeout,
                          [&] { return closed_ || !items_.empty(); });
    }
    std::size_t moved = 0;
    while (!items_.empty() && moved < max) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++moved;
    }
    if (moved > 0) {
      lock.unlock();
      not_full_.notify_all();
    }
    return moved;
  }

  /// Closes the mailbox: pending items stay poppable, pushes fail, blocked
  /// producers and the consumer wake.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace genas::mesh
