// GENAS — the concurrent broker mesh: the distributed routing runtime.
//
// Where src/net/overlay.* simulates a broker network deterministically in
// one thread with abstract cost counters, MeshNetwork actually runs it: each
// node is a worker thread behind a bounded MPSC mailbox, holding a local
// ens::Broker (the lock-free snapshot/batch hot path) plus per-link routing
// tables with Siena-style covering (net::LinkTable — the same code the
// overlay uses, so routing decisions are identical by construction). Links
// transport real bytes: every inter-node message is serialized through the
// binary wire codec (src/wire/codec.hpp) and decoded at the receiving
// worker, so the runtime is one socket-transport away from a true
// distributed deployment.
//
// Message flow:
//   client publish ──► origin mailbox ──► worker drains a batch, decodes
//   incoming frames, feeds all events through Broker::publish_batch (local
//   notifications), then per link matches the link's routing table and
//   forwards matching events as wire frames.
//
// Subscriptions propagate the same way: a local subscribe registers with
// the node's broker and (in routing modes) floods a kSubscribe frame; each
// receiving node installs the profile in the table of the link it arrived
// on — unless covering suppresses it — and forwards onward only when
// installed. Unsubscribes retrace that path; removing a covering entry
// re-promotes the entries it suppressed and propagates them onward like
// fresh subscriptions.
//
// Composite subscriptions (SAMOS-style detection at the subscriber, with
// Siena-style routing of the decomposed profiles): subscribe_composite
// registers the expression with the origin node's broker — which runs the
// detection tree — and propagates each *distinct* decomposed primitive
// profile over the links under its own key, exactly like a plain
// subscription. Leaf propagation follows the broker's refcounted dedup:
// equal leaf profiles (within one expression or across composites placed
// at the same node) share one network key and one routing entry per link,
// refcounted so the entry retracts only when the last composite using it
// unsubscribes. Remote nodes hold only ordinary routing entries, so
// covering, promotion, and forwarding decisions are identical by
// construction, and only primitive events matching some leaf cross links.
// Timestamp skew from unordered multi-hop delivery is absorbed by the
// broker's watermark reorder stage (MeshOptions::composite_skew;
// flush_composites() drains the tails, advance_watermark()/
// MeshOptions::auto_advance_watermark bound latency on sparse streams).
//
// Concurrency and liveness:
//   * Backpressure applies at ingress: publish()/subscribe() block while
//     the origin mailbox is full. Workers themselves never block on a full
//     peer mailbox — an undeliverable frame is staged in a per-link outbox
//     and retried while the worker keeps draining its own mailbox, so
//     mutual forwarding between busy nodes cannot deadlock.
//   * Every enqueued message (external or inter-node, including staged
//     outbox frames) is tracked in one in-flight counter. wait_idle()
//     blocks until the mesh is quiescent; after subscribe()+wait_idle()
//     the routing state is exactly the overlay's for the same call order.
//   * shutdown() is graceful: it stops accepting work, waits for
//     quiescence, then closes mailboxes and joins the workers. Events
//     accepted before shutdown are fully delivered; publish/subscribe
//     afterwards throw Error{kState}; no callback runs after shutdown()
//     returns.
//   * Delivery callbacks run on the owning node's worker thread and must
//     not call blocking mesh APIs (publish into a full mesh can deadlock
//     the worker); broker-level re-entrancy is fine.
//
// Statistics use the overlay's currency (net::OverlayStats) so the two
// runtimes are directly comparable — the oracle test asserts identical
// delivery multisets and routing-entry counts. profile_messages counts
// routing-table installs (the overlay's definition), not raw frames.
// `deliveries` counts every local broker notification, including primitive
// deliveries into a composite subscription's detection tap — deliberately:
// that is exactly what an overlay holding the decomposed leaf profiles as
// plain subscriptions counts, so the composite oracle can compare the two
// runtimes entry for entry.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ordering_policy.hpp"
#include "ens/broker.hpp"
#include "net/fault.hpp"
#include "net/routing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wire/codec.hpp"

namespace genas::mesh {

/// Opaque mailbox message (defined in mesh.cpp).
struct NodeMsg;

using net::NodeId;
using net::OverlayStats;
using net::RoutingMode;

/// Mesh-wide configuration.
struct MeshOptions {
  RoutingMode mode = RoutingMode::kRoutingCovered;
  /// Filter policy used by every node's trees (local broker and per-link).
  OrderingPolicy policy;
  /// Event distribution handed to the trees (required by V1/V3/A2/A3).
  std::optional<JointDistribution> event_distribution;
  /// Mailbox capacity per node; full mailboxes block external producers.
  std::size_t mailbox_capacity = 1024;
  /// Events coalesced into one kEventBatch frame per link per drain round:
  /// a link's pending batch flushes when it reaches this many events or at
  /// the round boundary, whichever comes first. On reliable links the whole
  /// batch rides one sequenced envelope (one seq/ack instead of one per
  /// event). 1 reproduces the unbatched wire traffic exactly — each event
  /// travels as a legacy kEvent frame, byte-identical to the pre-batching
  /// mesh.
  std::size_t link_batch_max = 256;
  /// Cap on a node's staged outbox frames (frames held back by a full peer
  /// mailbox), summed across its links. 0 = unbounded (the historical
  /// behavior: a stalled peer lets the outbox deque grow without limit).
  /// When the staged total is at the cap, ingress (publish/subscribe at
  /// that node) blocks until the stalled peer drains — workers themselves
  /// never block, so forwarding between busy nodes still cannot deadlock.
  std::size_t outbox_capacity = 0;
  /// Watermark skew tolerance of every node's composite detector: mesh
  /// delivery is not globally ordered, so primitive firings reach a
  /// subscriber's detector with timestamp skew. An instant is evaluated
  /// once a stimulus more than `composite_skew` newer has been seen (or on
  /// flush_composites()). Generous by default; tune to the workload's
  /// clock units.
  Timestamp composite_skew = 1 << 20;
  /// When set, every node ticks its broker's composite watermark with the
  /// newest event timestamp of each drained batch — so *all* traffic
  /// through a node advances detection, not only events matching a
  /// decomposed leaf. Bounds composite firing latency (and reorder-buffer
  /// memory) on streams where leaf matches are sparse, without
  /// advance_watermark()/flush_composites() calls. Off by default: it
  /// trades the strict "only leaf stimuli drive the clock" model for
  /// latency, which only helps once composites are deployed.
  bool auto_advance_watermark = false;

  // --- Fault tolerance ----------------------------------------------------

  /// At-least-once inter-node links. Every inter-node frame travels in a
  /// kLinkFrame envelope carrying a per-link monotone sequence number, is
  /// held in a bounded retransmit buffer until cumulatively acked, and is
  /// sequence-checked at the receiver: duplicates and gap frames are
  /// discarded (go-back-N), so each link delivers each frame exactly once
  /// and in order even when a fault_plan drops, duplicates, or delays
  /// traffic. wait_idle()/shutdown() then also wait for every link frame
  /// to be acknowledged. Off by default: envelopes cost bytes and acks
  /// cost messages, and the mesh-vs-overlay oracles assert exact frame
  /// counts.
  bool reliable_links = false;
  /// Deterministic fault injection, consulted once per inter-node frame
  /// transmission (data, retransmissions, and acks alike). With
  /// reliable_links the injected faults are recovered; without, a dropped
  /// frame is simply lost — measurable, but no longer oracle-exact. Plans
  /// must be budget-bounded or quiescence (wait_idle) cannot be reached.
  std::shared_ptr<net::FaultPlan> fault_plan;
  /// Retransmit window: unacked link frames transmitted concurrently per
  /// link. Frames beyond it stay buffered (unsent) until acks advance the
  /// window.
  std::size_t link_window = 128;
  /// Idle interval after which a link retransmits its unacked window.
  std::chrono::microseconds link_retransmit_interval{2000};
  /// Composite-ingress dedup window of every node's broker (see
  /// Broker::set_composite_dedup_window): lets tokened ingress publishes —
  /// e.g. replays from a reconnecting socket client — be dropped before
  /// they restimulate composite detection. 0 (default) disables dedup.
  std::size_t composite_dedup_window = 0;

  // --- Observability ------------------------------------------------------

  /// Event-path trace sampling period, applied to every node's broker and
  /// to the mesh's own ingress histograms: every Nth publish is stamped at
  /// enqueue and timed through drain and routing (0 disables tracing; see
  /// obs::TraceSampler). Sampling keeps the per-event cost at one
  /// thread_local countdown decrement.
  std::uint32_t trace_period = obs::kDefaultTracePeriod;
};

/// Delivery callback: subscription `key` at `node` matched `event`.
/// Runs on the node's worker thread.
using MeshCallback =
    std::function<void(NodeId node, SubscriptionId key, const Event& event)>;

/// Composite firing callback: composite subscription `key` at `node`
/// completed at `time`. Runs on the node's worker thread (or on the caller
/// of flush_composites()).
using MeshCompositeCallback =
    std::function<void(NodeId node, SubscriptionId key, Timestamp time)>;

/// Per-link view of a node's state.
struct LinkStats {
  NodeId peer = 0;
  std::uint64_t event_messages = 0;  ///< events forwarded to `peer`
  std::uint64_t routing_entries = 0; ///< profiles installed toward `peer`
  // Reliable-link counters (zero when MeshOptions::reliable_links is off).
  std::uint64_t retransmits = 0;     ///< envelopes re-sent toward `peer`
  std::uint64_t dup_frames = 0;      ///< received duplicates discarded
  std::uint64_t gap_frames = 0;      ///< received out-of-order discarded
};

/// Acyclic mesh of broker nodes, each on its own worker thread.
class MeshNetwork {
 public:
  explicit MeshNetwork(SchemaPtr schema, MeshOptions options = {});
  ~MeshNetwork();

  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  /// Adds a node; returns its id (0-based, dense). Topology is fixed at
  /// start(): add_node/connect afterwards throw Error{kState}.
  NodeId add_node();

  /// Connects two nodes bidirectionally. Throws if the link would close a
  /// cycle (the mesh must stay a forest, like the overlay).
  void connect(NodeId a, NodeId b);

  /// Spawns one worker thread per node and opens the mesh for traffic.
  void start();

  /// Registers a subscription at `node` (asynchronously propagated per the
  /// routing mode) and returns its network-wide key. Use wait_idle() to
  /// observe the fully-propagated routing state.
  SubscriptionId subscribe(NodeId node, Profile profile,
                           MeshCallback callback);
  SubscriptionId subscribe(NodeId node, std::string_view expression,
                           MeshCallback callback);

  /// Registers a composite subscription at `node`. The expression (profile
  /// leaves; see parse_composite) is decomposed: detection runs in `node`'s
  /// broker, and each leaf profile propagates through the mesh exactly like
  /// a plain subscription — with covering, and with its own network key —
  /// so remote nodes forward only the primitive events the composite could
  /// consume. Firings surface once the node's watermark passes them
  /// (composite_skew) or when flush_composites() drains the tails.
  SubscriptionId subscribe_composite(NodeId node, CompositeExprPtr expression,
                                     MeshCompositeCallback callback);
  SubscriptionId subscribe_composite(NodeId node, std::string_view expression,
                                     MeshCompositeCallback callback);

  /// Withdraws a subscription — plain or composite — by key (asynchronous,
  /// like subscribe). A composite's decomposed leaf profiles retract from
  /// every link table, re-promoting entries they covered.
  void unsubscribe(SubscriptionId key);

  /// Evaluates every node's buffered composite instants (timestamp order
  /// per node). Call after wait_idle() for a deterministic end-of-stream
  /// drain; firings run on the calling thread.
  void flush_composites();

  /// Time-driven watermark tick on every node's broker (see
  /// Broker::advance_watermark): instants the new watermark passes evaluate
  /// and fire on the calling thread, and expired armed detector state is
  /// garbage-collected. The mesh-wide companion of
  /// MeshOptions::auto_advance_watermark for externally-clocked drains.
  void advance_watermark(Timestamp now);

  /// Publishes an event at `node`: enqueues it for the node's worker
  /// (blocking while the mailbox is full) and returns; matching, delivery,
  /// and forwarding happen asynchronously.
  void publish(NodeId node, Event event);

  /// Publishes a run of events at `node` as one mailbox message: the whole
  /// batch counts once against the mailbox capacity and the worker drains
  /// it in one step, so high-rate producers amortize the per-message
  /// ingress synchronization. `tokens`, when non-empty, must carry one
  /// dedup token per event (see publish(node, event, token)). Equivalent
  /// to publishing each event in order.
  void publish_batch(NodeId node, std::vector<Event> events,
                     std::vector<std::uint64_t> tokens = {});

  /// publish() with an at-least-once redelivery token, forwarded to
  /// Broker::publish(event, dedup_token) at the ingress node: a transport
  /// that may replay the same publish (client reconnect) tags each event so
  /// the ingress node's composite runtime drops redelivered stimuli. The
  /// token does not cross links — inter-node frames are exactly-once when
  /// reliable_links is on — so composites detected at other nodes rely on
  /// the transport not replaying across an exactly-once ingress.
  void publish(NodeId node, Event event, std::uint64_t dedup_token);

  /// Blocks until no message is in flight anywhere in the mesh.
  void wait_idle();

  /// Graceful shutdown: rejects new work, drains everything in flight,
  /// then joins all workers. Idempotent; implied by the destructor.
  void shutdown();

  std::size_t node_count() const noexcept;
  const SchemaPtr& schema() const noexcept { return schema_; }

  /// Mesh-wide totals (sum of the per-node counters).
  OverlayStats stats() const;
  /// One node's counters.
  OverlayStats node_stats(NodeId node) const;
  /// Per-link counters of one node.
  std::vector<LinkStats> link_stats(NodeId node) const;
  /// Merged observability snapshot: every node's broker registry (labeled
  /// `node="N"`), the mesh-level trace histograms, plus the overlay/link
  /// counters and queue high-waters synthesized as labeled metrics
  /// (`genas_mesh_*{node="N"}`, `genas_mesh_link_*{node="N",peer="M"}`).
  /// Safe to call while the mesh runs (relaxed reads, monitoring-grade).
  obs::StatsSnapshot stats_snapshot() const;
  /// The mesh-level registry (ingress wait / publish-to-route histograms).
  obs::Registry& metrics() const noexcept { return *metrics_; }
  /// Profiles installed across all of `node`'s link tables.
  std::size_t routing_entries(NodeId node) const;
  /// Live local subscriptions at `node`.
  std::size_t local_subscriptions(NodeId node) const;

  /// First internal error a worker hit (empty when healthy). Workers never
  /// crash the process: a poisoned message is dropped and recorded here.
  std::string first_error() const;

  /// One node's broker, for transport-level wiring (delivery sinks, drain
  /// hooks — e.g. BrokerServer flushing staged delivery batches at the end
  /// of each worker drain round). The broker outlives every worker; sink
  /// and hook registration is broker-synchronized.
  Broker& node_broker(NodeId node) const;

 private:
  struct Node;

  void validate_node(NodeId node) const;
  /// Ingress gate: throws unless running and accepting, then counts the
  /// message in flight and enqueues it (blocking while the mailbox is full).
  void enqueue(NodeId node, NodeMsg message);
  void messages_done(std::uint64_t n);
  void record_error(const std::string& what);

  void run_node(Node& node);
  bool flush_outboxes(Node& node);
  void handle_batch(Node& node, std::vector<NodeMsg>& batch);
  void handle_message(Node& node, NodeMsg& message);
  /// Handles one decoded inter-node message. `raw` is the unwrapped frame
  /// (for byte-identical relaying); with reliable links it is the envelope's
  /// inner frame.
  void handle_link_payload(
      Node& node, NodeId source,
      const std::shared_ptr<const std::vector<std::uint8_t>>& raw,
      wire::Message& decoded);
  void route_events(Node& node);
  /// Sends a link's pending event batch (one kEventBatch frame, or a plain
  /// kEvent when it holds a single event) and resets the link's builder.
  void flush_link_batch(Node& node, std::size_t peer_index);
  /// Sends one shared wire frame to every peer except `skip_index` (pass
  /// peers.size() to reach all peers).
  void broadcast_frame(Node& node, std::size_t skip_index,
                       std::shared_ptr<const std::vector<std::uint8_t>> bytes);
  /// Link-layer send of one inner frame: with reliable_links it is wrapped
  /// in a sequenced envelope and buffered for retransmission; either way
  /// the transmission passes through the fault plan.
  void send_link(Node& node, std::size_t peer_index,
                 const std::shared_ptr<const std::vector<std::uint8_t>>& inner);
  /// One physical transmission attempt, after fault injection.
  void transmit(Node& node, std::size_t peer_index, NodeMsg message);
  /// Periodic link maintenance: releases delayed frames, retransmits
  /// expired unacked windows. Returns whether any link still has unacked,
  /// delayed, or window-buffered frames (the worker then polls instead of
  /// blocking indefinitely).
  bool link_service(Node& node);
  /// Counts the frame in flight and delivers it to a peer's mailbox, or
  /// stages it in the per-link outbox when the mailbox is full.
  void send_frame(Node& node, std::size_t peer_index, NodeMsg message);
  void unacked_done(std::uint64_t n);

  SchemaPtr schema_;
  MeshOptions options_;
  /// Mesh-level metrics (cross-thread event-path latencies; per-node and
  /// per-link counters are synthesized from the worker atomics at snapshot
  /// time instead of being double-counted on the hot path).
  std::shared_ptr<obs::Registry> metrics_;
  obs::TraceSampler trace_;
  obs::Histogram ingress_wait_;      ///< publish enqueue -> worker drain
  obs::Histogram publish_to_route_;  ///< publish enqueue -> batch routed
  obs::Histogram events_per_frame_;  ///< events coalesced per link frame
  obs::Counter flush_cap_;           ///< batches flushed at link_batch_max
  obs::Counter flush_round_;         ///< batches flushed at round boundary
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<NodeId> forest_;  // union-find parent for cycle detection

  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> inflight_{0};
  /// Link frames buffered for retransmission and not yet cumulatively
  /// acked. wait_idle()/shutdown() wait for this to drain too: a dropped
  /// frame is "in flight" until its retransmission lands and is acked.
  std::atomic<std::uint64_t> unacked_total_{0};
  bool running_ = false;        // workers exist
  bool accepting_ = false;      // ingress open
  bool shutting_down_ = false;  // a shutdown() is in progress
  bool stopped_ = false;        // shutdown completed; the mesh cannot restart

  std::atomic<std::uint64_t> next_key_{1};
  mutable std::mutex registry_mutex_;
  /// Live externally-visible keys (decomposed composite leaves get internal
  /// keys that never appear here).
  struct KeyInfo {
    NodeId origin = 0;
    bool composite = false;
  };
  std::unordered_map<SubscriptionId, KeyInfo> key_origin_;

  mutable std::mutex error_mutex_;
  std::string first_error_;
};

}  // namespace genas::mesh
