// GENAS — mesh topology files.
//
// A line-oriented text format describing a broker mesh, designed to pair
// with a config_io service configuration (which supplies the schema and,
// optionally, a profile population):
//
//   # comment
//   nodes <n>                  node count (ids 0..n-1); must come first
//   link <a> <b>               bidirectional link (the mesh stays a forest)
//   sub <node> <expression>    subscription placed at a node
//   csub <node> <expression>   composite subscription placed at a node
//                              (parse_composite syntax, e.g.
//                              seq({a >= 3}, {b = 1}, w=10))
//
// The CLI's `mesh` subcommand and tests drive MeshNetwork from these files;
// parse failures throw Error{kParse} with the offending line number.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "net/routing.hpp"

namespace genas::mesh {

/// Parsed topology (expressions are kept as text: parsing them needs the
/// schema, which the accompanying service configuration supplies).
struct MeshTopology {
  std::size_t nodes = 0;
  std::vector<std::pair<net::NodeId, net::NodeId>> links;
  std::vector<std::pair<net::NodeId, std::string>> subscriptions;
  std::vector<std::pair<net::NodeId, std::string>> composites;
};

/// Parses a topology; throws Error{kParse} with the offending line.
MeshTopology load_topology(std::istream& is);
MeshTopology topology_from_string(const std::string& text);

/// Renders a topology back into the text format.
std::string topology_to_string(const MeshTopology& topology);

}  // namespace genas::mesh
