#include "mesh/mesh.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <variant>

#include "common/error.hpp"
#include "mesh/mailbox.hpp"
#include "profile/parser.hpp"
#include "profile/profile.hpp"
#include "wire/batch.hpp"
#include "wire/codec.hpp"

namespace genas::mesh {

namespace {

/// Messages a worker drains per lock round; also the publish_batch size cap.
constexpr std::size_t kDrainBatch = 256;

/// Sentinel "source" for events entering at this node (client publishes):
/// they are forwarded over every matching link.
constexpr NodeId kExternal = ~NodeId{0};

/// Poll interval for retrying staged outbox frames against a full peer
/// mailbox (workers never block on sends; see the liveness note in the
/// header).
constexpr std::chrono::microseconds kOutboxRetry{200};

/// Wire frames are shared, not copied, when one event fans out over
/// several links.
using Bytes = std::shared_ptr<const std::vector<std::uint8_t>>;

Bytes share(std::vector<std::uint8_t> frame) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(frame));
}

struct FrameMsg {
  NodeId source = 0;  ///< peer node the frame arrived from
  Bytes bytes;
};
struct PublishMsg {
  Event event;
  /// Redelivery token forwarded to Broker::publish(event, token); 0 = none.
  std::uint64_t token = 0;
  /// Wall stamp (obs::now_ns) set when the publish was trace-sampled at
  /// enqueue; 0 = unsampled. Drives the mesh ingress-wait and
  /// publish-to-route histograms across the producer/worker thread hop.
  std::uint64_t trace_stamp = 0;
};
/// A run of publishes riding one mailbox slot (MeshNetwork::publish_batch):
/// the producer pays the ingress synchronization once per run.
struct PublishBatchMsg {
  std::vector<Event> events;
  /// One token per event, or empty when none carries one.
  std::vector<std::uint64_t> tokens;
  std::uint64_t trace_stamp = 0;  ///< as PublishMsg; stamps the whole run
};

/// Relaxed high-water update (monitoring-grade; lost races are benign).
void update_max(std::atomic<std::uint64_t>& mark, std::uint64_t v) {
  std::uint64_t cur = mark.load(std::memory_order_relaxed);
  while (v > cur &&
         !mark.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
struct LocalSubscribeMsg {
  SubscriptionId key = 0;
  Profile profile;
  MeshCallback callback;
};
struct LocalUnsubscribeMsg {
  SubscriptionId key = 0;
};
struct LocalCompositeSubscribeMsg {
  SubscriptionId key = 0;
  CompositeExprPtr expression;
  MeshCompositeCallback callback;
};
struct LocalCompositeUnsubscribeMsg {
  SubscriptionId key = 0;
};

}  // namespace

struct NodeMsg {
  std::variant<FrameMsg, PublishMsg, PublishBatchMsg, LocalSubscribeMsg,
               LocalUnsubscribeMsg, LocalCompositeSubscribeMsg,
               LocalCompositeUnsubscribeMsg>
      payload;
};

struct MeshNetwork::Node {
  explicit Node(std::size_t mailbox_capacity) : mailbox(mailbox_capacity) {}

  NodeId id = 0;
  std::unique_ptr<Broker> broker;
  Mailbox<NodeMsg> mailbox;
  std::thread worker;

  struct Peer {
    explicit Peer(NodeId peer, SchemaPtr schema)
        : node(peer), table(std::move(schema)) {}
    NodeId node;
    net::LinkTable table;          // worker-owned routing state
    std::deque<NodeMsg> outbox;    // frames awaiting a full peer mailbox
    /// Pending outgoing event batch (worker-owned): events routed toward
    /// this link accumulate here and flush as one kEventBatch frame at
    /// link_batch_max or at the drain-round boundary.
    wire::EventBatchBuilder batch;
    std::atomic<std::uint64_t> event_messages{0};
    std::atomic<std::uint64_t> routing_entries{0};

    // Reliable-link state (all worker-owned: sends, acks, and received
    // frames for this link are handled exclusively by the owning worker).
    std::uint64_t next_seq = 1;    ///< next envelope sequence to assign
    std::uint64_t acked_out = 0;   ///< highest cumulative ack received
    std::uint64_t highest_tx = 0;  ///< highest sequence transmitted at least once
    /// Envelopes awaiting cumulative ack, in sequence order; only those
    /// within the window are on the wire, the rest wait here unsent.
    std::deque<std::pair<std::uint64_t, Bytes>> unacked;
    std::uint64_t expected_in = 1; ///< next sequence accepted from `node`
    bool needs_ack = false;        ///< ack owed to `node` after this batch
    /// Fault-injected delayed transmissions, released after later traffic.
    std::deque<NodeMsg> delayed;
    std::chrono::steady_clock::time_point last_tx{};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> dup_frames{0};
    std::atomic<std::uint64_t> gap_frames{0};
    /// Deepest the staging outbox toward this peer has grown (frames held
    /// back by a full peer mailbox) — the mesh backpressure signal.
    std::atomic<std::uint64_t> outbox_hwm{0};
  };
  std::vector<std::unique_ptr<Peer>> peers;

  /// Mesh subscription key -> local broker subscription id (worker-owned).
  std::unordered_map<SubscriptionId, SubscriptionId> local_subs;

  /// Mesh composite key -> local detection handle plus the canonical
  /// profile keys of the distinct leaves it holds references on
  /// (worker-owned).
  struct CompositeLocal {
    CompositeId local = 0;
    std::vector<std::string> leaf_keys;
  };
  std::unordered_map<SubscriptionId, CompositeLocal> local_composites;

  /// Refcounted leaf propagation state, keyed by profile equality — the
  /// mesh-side mirror of the broker's leaf dedup: one network key (and thus
  /// one routing entry per link) per distinct leaf profile subscribed at
  /// this node, retracted when the last composite using it unsubscribes
  /// (worker-owned).
  struct LeafRoute {
    SubscriptionId key = 0;
    std::size_t refs = 0;
  };
  std::unordered_map<std::string, LeafRoute> leaf_routes;

  // Counters in the overlay's currency; atomics because stats() reads them
  // while the worker runs.
  std::atomic<std::uint64_t> events_published{0};
  std::atomic<std::uint64_t> event_messages{0};
  std::atomic<std::uint64_t> profile_messages{0};
  std::atomic<std::uint64_t> filter_operations{0};
  std::atomic<std::uint64_t> deliveries{0};
  /// Deepest this node's mailbox has grown (probed under the mailbox lock
  /// at push time, so the high-water costs no extra synchronization).
  std::atomic<std::uint64_t> mailbox_hwm{0};
  /// Frames currently staged across this node's link outboxes. With
  /// MeshOptions::outbox_capacity set, ingress blocks while this is at the
  /// cap (the worker itself keeps staging — admitted frames must go
  /// somewhere — so the deque can overshoot by the traffic already in
  /// flight toward this node).
  std::atomic<std::uint64_t> outbox_total{0};
  /// Receive-side index-vector recycler: decoded batch events draw their
  /// storage here and return it after the round's publish_batch, so steady
  /// state decodes allocate nothing per event (worker-owned).
  wire::EventArena arena;

  // Per-batch scratch (worker-owned): events collected from the drained
  // mailbox batch, the link each arrived on (kExternal for publishes), and
  // each event's redelivery token (0 for link-delivered events — links are
  // exactly-once, so only ingress publishes carry tokens).
  std::vector<Event> batch_events;
  std::vector<NodeId> batch_sources;
  std::vector<std::uint64_t> batch_tokens;
  /// Earliest trace stamp of a sampled publish in the current batch; timed
  /// against the publish-to-route histogram once route_events() returns.
  std::uint64_t batch_trace_stamp = 0;

};

MeshNetwork::MeshNetwork(SchemaPtr schema, MeshOptions options)
    : schema_(std::move(schema)),
      options_(std::move(options)),
      metrics_(std::make_shared<obs::Registry>()),
      trace_(options_.trace_period) {
  GENAS_REQUIRE(schema_ != nullptr, ErrorCode::kInvalidArgument,
                "mesh requires a schema");
  ingress_wait_ = metrics_->histogram(
      "genas_mesh_ingress_wait_ns", obs::default_latency_bounds(),
      "sampled wait of external publishes from enqueue to worker drain");
  publish_to_route_ = metrics_->histogram(
      "genas_mesh_publish_to_route_ns", obs::default_latency_bounds(),
      "sampled latency from publish enqueue to the ingress node finishing "
      "local delivery and link forwarding of the containing batch");
  static constexpr std::uint64_t kPerFrameBounds[] = {1,  2,  4,   8,  16,
                                                      32, 64, 128, 256};
  events_per_frame_ = metrics_->histogram(
      "genas_mesh_link_events_per_frame", kPerFrameBounds,
      "events coalesced into each outgoing link frame");
  flush_cap_ = metrics_->counter(
      "genas_mesh_batch_flush_cap_total",
      "link batches flushed by reaching link_batch_max");
  flush_round_ = metrics_->counter(
      "genas_mesh_batch_flush_round_total",
      "link batches flushed at a drain-round boundary");
}

MeshNetwork::~MeshNetwork() {
  // Destruction must never throw (a throwing destructor terminates the
  // process): the destructor path swallows shutdown failures and records
  // them so a post-mortem first_error() read still sees the cause. An
  // explicit shutdown() keeps throwing — callers who want the error get it
  // by shutting down before destruction.
  try {
    shutdown();
  } catch (const std::exception& e) {
    record_error(std::string("shutdown during destruction: ") + e.what());
  } catch (...) {
    record_error("shutdown during destruction: unknown error");
  }
}

std::size_t MeshNetwork::node_count() const noexcept { return nodes_.size(); }

void MeshNetwork::validate_node(NodeId node) const {
  GENAS_REQUIRE(node < nodes_.size(), ErrorCode::kNotFound,
                "unknown mesh node id " + std::to_string(node));
}

NodeId MeshNetwork::add_node() {
  {
    const std::scoped_lock lock(idle_mutex_);
    GENAS_REQUIRE(!running_ && !stopped_, ErrorCode::kState,
                  "mesh topology is fixed once start() has run");
  }
  auto node = std::make_unique<Node>(options_.mailbox_capacity);
  node->id = nodes_.size();
  EngineOptions engine_options;
  engine_options.policy = options_.policy;
  engine_options.prior = options_.event_distribution;
  // Each node's broker gets its own registry labeled with the node id, so
  // stats_snapshot() can merge all of them without name collisions.
  node->broker = std::make_unique<Broker>(
      schema_, std::move(engine_options),
      std::make_shared<obs::Registry>("node=\"" + std::to_string(node->id) +
                                      "\""));
  node->broker->set_trace_period(options_.trace_period);
  node->broker->set_composite_skew(options_.composite_skew);
  node->broker->set_composite_dedup_window(options_.composite_dedup_window);
  Node* raw = node.get();
  node->broker->set_delivery_sink([raw](const Notification&) {
    raw->deliveries.fetch_add(1, std::memory_order_relaxed);
  });
  nodes_.push_back(std::move(node));
  forest_.push_back(forest_.size());
  return nodes_.size() - 1;
}

namespace {
NodeId find_root(std::vector<NodeId>& forest, NodeId x) {
  while (forest[x] != x) {
    forest[x] = forest[forest[x]];  // path halving
    x = forest[x];
  }
  return x;
}
}  // namespace

void MeshNetwork::connect(NodeId a, NodeId b) {
  validate_node(a);
  validate_node(b);
  {
    const std::scoped_lock lock(idle_mutex_);
    GENAS_REQUIRE(!running_ && !stopped_, ErrorCode::kState,
                  "mesh topology is fixed once start() has run");
  }
  GENAS_REQUIRE(a != b, ErrorCode::kInvalidArgument,
                "cannot link a mesh node to itself");
  const NodeId ra = find_root(forest_, a);
  const NodeId rb = find_root(forest_, b);
  GENAS_REQUIRE(ra != rb, ErrorCode::kInvalidArgument,
                "link would close a cycle; the mesh must stay acyclic");
  forest_[ra] = rb;
  nodes_[a]->peers.push_back(std::make_unique<Node::Peer>(b, schema_));
  nodes_[b]->peers.push_back(std::make_unique<Node::Peer>(a, schema_));
}

void MeshNetwork::start() {
  {
    const std::scoped_lock lock(idle_mutex_);
    GENAS_REQUIRE(!running_ && !stopped_, ErrorCode::kState,
                  "mesh is already running or was shut down");
    GENAS_REQUIRE(!nodes_.empty(), ErrorCode::kState,
                  "mesh has no nodes to start");
    running_ = true;
    accepting_ = true;
  }
  for (const auto& node : nodes_) {
    Node* raw = node.get();
    raw->worker = std::thread([this, raw] { run_node(*raw); });
  }
}

SubscriptionId MeshNetwork::subscribe(NodeId node, Profile profile,
                                      MeshCallback callback) {
  validate_node(node);
  GENAS_REQUIRE(profile.schema() == schema_, ErrorCode::kInvalidArgument,
                "profile schema differs from mesh schema");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "mesh subscription requires a callback");
  const SubscriptionId key =
      next_key_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(registry_mutex_);
    key_origin_.emplace(key, KeyInfo{node, false});
  }
  try {
    enqueue(node, NodeMsg{LocalSubscribeMsg{key, std::move(profile),
                                            std::move(callback)}});
  } catch (...) {
    const std::scoped_lock lock(registry_mutex_);
    key_origin_.erase(key);
    throw;
  }
  return key;
}

SubscriptionId MeshNetwork::subscribe(NodeId node, std::string_view expression,
                                      MeshCallback callback) {
  return subscribe(node, parse_profile(schema_, expression),
                   std::move(callback));
}

SubscriptionId MeshNetwork::subscribe_composite(NodeId node,
                                                CompositeExprPtr expression,
                                                MeshCompositeCallback callback) {
  validate_node(node);
  GENAS_REQUIRE(expression != nullptr, ErrorCode::kInvalidArgument,
                "composite subscription requires an expression");
  GENAS_REQUIRE(callback != nullptr, ErrorCode::kInvalidArgument,
                "mesh subscription requires a callback");
  // Validate on the caller's thread: the worker can only record errors.
  for (const CompositeExpr* leaf : leaf_nodes(*expression)) {
    GENAS_REQUIRE(
        leaf->leaf_profile() != nullptr, ErrorCode::kInvalidArgument,
        "composite subscription requires profile leaves (primitive(Profile))");
    GENAS_REQUIRE(leaf->leaf_profile()->schema() == schema_,
                  ErrorCode::kInvalidArgument,
                  "composite leaf schema differs from mesh schema");
  }
  const SubscriptionId key =
      next_key_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(registry_mutex_);
    key_origin_.emplace(key, KeyInfo{node, true});
  }
  try {
    enqueue(node, NodeMsg{LocalCompositeSubscribeMsg{
                      key, std::move(expression), std::move(callback)}});
  } catch (...) {
    const std::scoped_lock lock(registry_mutex_);
    key_origin_.erase(key);
    throw;
  }
  return key;
}

SubscriptionId MeshNetwork::subscribe_composite(NodeId node,
                                                std::string_view expression,
                                                MeshCompositeCallback callback) {
  return subscribe_composite(node, parse_composite(schema_, expression),
                             std::move(callback));
}

void MeshNetwork::unsubscribe(SubscriptionId key) {
  KeyInfo info;
  {
    const std::scoped_lock lock(registry_mutex_);
    const auto it = key_origin_.find(key);
    GENAS_REQUIRE(it != key_origin_.end(), ErrorCode::kNotFound,
                  "unknown mesh subscription key " + std::to_string(key));
    info = it->second;
    key_origin_.erase(it);
  }
  if (info.composite) {
    enqueue(info.origin, NodeMsg{LocalCompositeUnsubscribeMsg{key}});
  } else {
    enqueue(info.origin, NodeMsg{LocalUnsubscribeMsg{key}});
  }
}

void MeshNetwork::flush_composites() {
  for (const auto& node : nodes_) {
    if (node->broker != nullptr) node->broker->flush_composites();
  }
}

void MeshNetwork::advance_watermark(Timestamp now) {
  for (const auto& node : nodes_) {
    if (node->broker != nullptr) node->broker->advance_watermark(now);
  }
}

void MeshNetwork::publish(NodeId node, Event event) {
  publish(node, std::move(event), 0);
}

void MeshNetwork::publish(NodeId node, Event event,
                          std::uint64_t dedup_token) {
  validate_node(node);
  GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                "event schema differs from mesh schema");
  static thread_local std::uint32_t trace_countdown = 0;
  const std::uint64_t stamp =
      trace_.sample(trace_countdown) ? obs::now_ns() : 0;
  enqueue(node, NodeMsg{PublishMsg{std::move(event), dedup_token, stamp}});
}

void MeshNetwork::publish_batch(NodeId node, std::vector<Event> events,
                                std::vector<std::uint64_t> tokens) {
  validate_node(node);
  if (events.empty()) {
    GENAS_REQUIRE(tokens.empty(), ErrorCode::kInvalidArgument,
                  "publish_batch tokens without events");
    return;
  }
  GENAS_REQUIRE(tokens.empty() || tokens.size() == events.size(),
                ErrorCode::kInvalidArgument,
                "publish_batch tokens must be one per event");
  for (const Event& event : events) {
    GENAS_REQUIRE(event.schema() == schema_, ErrorCode::kInvalidArgument,
                  "event schema differs from mesh schema");
  }
  static thread_local std::uint32_t trace_countdown = 0;
  const std::uint64_t stamp =
      trace_.sample(trace_countdown) ? obs::now_ns() : 0;
  enqueue(node, NodeMsg{PublishBatchMsg{std::move(events), std::move(tokens),
                                        stamp}});
}

void MeshNetwork::enqueue(NodeId node, NodeMsg message) {
  {
    std::unique_lock<std::mutex> lock(idle_mutex_);
    if (options_.outbox_capacity > 0) {
      // Ingress backpressure: while the node's staged outboxes are at
      // capacity (a stalled peer), external producers wait here before the
      // message is admitted. Workers never wait — admitted traffic keeps
      // draining and forwarding — so this cannot deadlock the mesh.
      idle_cv_.wait(lock, [&] {
        return !(running_ && accepting_) ||
               nodes_[node]->outbox_total.load(std::memory_order_relaxed) <
                   options_.outbox_capacity;
      });
    }
    GENAS_REQUIRE(running_ && accepting_, ErrorCode::kState,
                  "mesh is not accepting work (not started, or shut down)");
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t depth = 0;
  if (!nodes_[node]->mailbox.push(std::move(message), &depth)) {
    // Unreachable by construction (mailboxes close only at zero in-flight),
    // but never leak an in-flight count.
    messages_done(1);
    throw_error(ErrorCode::kState, "mesh mailbox closed during shutdown");
  }
  update_max(nodes_[node]->mailbox_hwm, depth);
}

void MeshNetwork::messages_done(std::uint64_t n) {
  if (n == 0) return;
  if (inflight_.fetch_sub(n) == n) {
    // Take the mutex so a waiter between its predicate check and wait()
    // cannot miss this notification.
    const std::scoped_lock lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void MeshNetwork::unacked_done(std::uint64_t n) {
  if (n == 0) return;
  if (unacked_total_.fetch_sub(n) == n) {
    const std::scoped_lock lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void MeshNetwork::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return inflight_.load() == 0 && unacked_total_.load() == 0;
  });
}

void MeshNetwork::shutdown() {
  {
    std::unique_lock<std::mutex> lock(idle_mutex_);
    if (stopped_) return;
    if (!running_) {
      stopped_ = true;
      return;
    }
    if (shutting_down_) {
      idle_cv_.wait(lock, [&] { return stopped_; });
      return;
    }
    shutting_down_ = true;
    accepting_ = false;
    // Wake producers parked on outbox backpressure: the gate is closed, so
    // they must recheck and throw kState instead of waiting forever.
    idle_cv_.notify_all();
    idle_cv_.wait(lock, [&] {
      return inflight_.load() == 0 && unacked_total_.load() == 0;
    });
  }
  for (const auto& node : nodes_) node->mailbox.close();
  for (const auto& node : nodes_) {
    if (node->worker.joinable()) node->worker.join();
  }
  {
    const std::scoped_lock lock(idle_mutex_);
    running_ = false;
    stopped_ = true;
  }
  idle_cv_.notify_all();
}

void MeshNetwork::record_error(const std::string& what) {
  const std::scoped_lock lock(error_mutex_);
  if (first_error_.empty()) first_error_ = what;
}

std::string MeshNetwork::first_error() const {
  const std::scoped_lock lock(error_mutex_);
  return first_error_;
}

Broker& MeshNetwork::node_broker(NodeId node) const {
  validate_node(node);
  return *nodes_[node]->broker;
}

// ---------------------------------------------------------------------------
// Worker side.

void MeshNetwork::run_node(Node& node) {
  std::vector<NodeMsg> batch;
  batch.reserve(kDrainBatch);
  for (;;) {
    const bool outbox_pending = flush_outboxes(node);
    const bool link_pending = link_service(node);
    batch.clear();
    // Outbox retries poll fast; pending link work (unacked windows awaiting
    // retransmission) polls at the retransmit interval; otherwise block
    // until traffic or close.
    const auto timeout =
        outbox_pending ? kOutboxRetry
        : link_pending
            ? std::chrono::duration_cast<std::chrono::microseconds>(
                  options_.link_retransmit_interval)
            : std::chrono::microseconds::zero();
    const std::size_t drained = node.mailbox.pop_batch(batch, kDrainBatch,
                                                       timeout);
    if (drained == 0) {
      if (!node.mailbox.closed()) continue;  // timeout; retry link/outboxes
      if (!outbox_pending && !link_pending && node.mailbox.size() == 0) break;
      // Closed with staged or unacked frames should be impossible (shutdown
      // waits for quiescence first); drop them rather than spin forever.
      if (outbox_pending || link_pending) {
        std::uint64_t dropped = 0;
        std::uint64_t unacked = 0;
        for (const auto& peer : node.peers) {
          dropped += peer->outbox.size();
          peer->outbox.clear();
          peer->delayed.clear();
          unacked += peer->unacked.size();
          peer->unacked.clear();
        }
        node.outbox_total.store(0, std::memory_order_relaxed);
        record_error("mesh node " + std::to_string(node.id) +
                     ": staged frames dropped at close");
        messages_done(dropped);
        unacked_done(unacked);
      }
      continue;
    }
    handle_batch(node, batch);
    messages_done(drained);
  }
}

bool MeshNetwork::flush_outboxes(Node& node) {
  bool pending = false;
  std::uint64_t drained = 0;
  for (const auto& peer : node.peers) {
    Mailbox<NodeMsg>& target = nodes_[peer->node]->mailbox;
    while (!peer->outbox.empty() && target.try_push(peer->outbox.front())) {
      peer->outbox.pop_front();
      ++drained;
    }
    pending = pending || !peer->outbox.empty();
  }
  if (drained > 0) {
    const std::uint64_t before =
        node.outbox_total.fetch_sub(drained, std::memory_order_relaxed);
    const std::size_t cap = options_.outbox_capacity;
    if (cap > 0 && before >= cap && before - drained < cap) {
      // The staged total just crossed back under the ingress cap: wake
      // producers parked in enqueue() (mutex taken so a waiter between its
      // predicate check and wait() cannot miss the notification).
      const std::scoped_lock lock(idle_mutex_);
      idle_cv_.notify_all();
    }
  }
  return pending;
}

void MeshNetwork::broadcast_frame(Node& node, std::size_t skip_index,
                                  Bytes bytes) {
  for (std::size_t p = 0; p < node.peers.size(); ++p) {
    if (p == skip_index) continue;
    send_link(node, p, bytes);
  }
}

void MeshNetwork::send_link(Node& node, std::size_t peer_index,
                            const Bytes& inner) {
  if (!options_.reliable_links) {
    transmit(node, peer_index, NodeMsg{FrameMsg{node.id, inner}});
    return;
  }
  Node::Peer& peer = *node.peers[peer_index];
  const std::uint64_t seq = peer.next_seq++;
  Bytes envelope = share(wire::frame_link(seq, *inner));
  peer.unacked.emplace_back(seq, envelope);
  unacked_total_.fetch_add(1, std::memory_order_relaxed);
  if (seq <= peer.acked_out + options_.link_window) {
    peer.highest_tx = seq;
    peer.last_tx = std::chrono::steady_clock::now();
    transmit(node, peer_index, NodeMsg{FrameMsg{node.id, std::move(envelope)}});
  }
  // Beyond the window the envelope stays buffered; the ack that slides the
  // window past it (or link_service) performs the first transmission.
}

void MeshNetwork::transmit(Node& node, std::size_t peer_index,
                           NodeMsg message) {
  Node::Peer& peer = *node.peers[peer_index];
  net::FaultAction action = net::FaultAction::kNone;
  if (options_.fault_plan != nullptr) {
    action = options_.fault_plan->apply(node.id, peer.node);
  }
  switch (action) {
    case net::FaultAction::kDrop:
      return;  // never enqueued, so never counted in flight
    case net::FaultAction::kDelay:
      // Held out of order: released behind the link's next transmission (or
      // by link_service) so the receiver observes a reordering, not a loss.
      peer.delayed.push_back(std::move(message));
      return;
    case net::FaultAction::kDuplicate:
      send_frame(node, peer_index, message);
      break;
    case net::FaultAction::kNone:
      break;
  }
  send_frame(node, peer_index, std::move(message));
  // This transmission overtook any frames held in the delay pen; release
  // them now (directly — injecting faults into a release could loop).
  while (!peer.delayed.empty()) {
    send_frame(node, peer_index, std::move(peer.delayed.front()));
    peer.delayed.pop_front();
  }
}

bool MeshNetwork::link_service(Node& node) {
  if (!options_.reliable_links && options_.fault_plan == nullptr) return false;
  bool pending = false;
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < node.peers.size(); ++p) {
    Node::Peer& peer = *node.peers[p];
    // Release fault-delayed frames that no later traffic flushed out.
    while (!peer.delayed.empty()) {
      send_frame(node, p, std::move(peer.delayed.front()));
      peer.delayed.pop_front();
    }
    if (peer.unacked.empty()) continue;
    pending = true;
    if (now - peer.last_tx < options_.link_retransmit_interval) continue;
    peer.last_tx = now;
    for (const auto& [seq, bytes] : peer.unacked) {
      if (seq > peer.acked_out + options_.link_window) break;
      if (seq <= peer.highest_tx) {
        peer.retransmits.fetch_add(1, std::memory_order_relaxed);
      } else {
        peer.highest_tx = seq;
      }
      transmit(node, p, NodeMsg{FrameMsg{node.id, bytes}});
    }
  }
  return pending;
}

void MeshNetwork::send_frame(Node& node, std::size_t peer_index,
                             NodeMsg message) {
  inflight_.fetch_add(1, std::memory_order_relaxed);
  Node::Peer& peer = *node.peers[peer_index];
  // Per-link FIFO: while earlier frames are staged, later ones must queue
  // behind them — overtaking would reorder subscribe/unsubscribe frames and
  // covering state depends on install order.
  std::size_t depth = 0;
  if (!peer.outbox.empty() ||
      !nodes_[peer.node]->mailbox.try_push(message, &depth)) {
    peer.outbox.push_back(std::move(message));
    node.outbox_total.fetch_add(1, std::memory_order_relaxed);
    update_max(peer.outbox_hwm, peer.outbox.size());
    return;
  }
  update_max(nodes_[peer.node]->mailbox_hwm, depth);
}

void MeshNetwork::handle_batch(Node& node, std::vector<NodeMsg>& batch) {
  node.batch_events.clear();
  node.batch_sources.clear();
  node.batch_tokens.clear();
  for (NodeMsg& message : batch) {
    try {
      handle_message(node, message);
    } catch (const std::exception& e) {
      record_error(e.what());  // drop the poisoned message, keep running
    }
  }
  try {
    route_events(node);
  } catch (const std::exception& e) {
    record_error(e.what());
    // A half-built batch from the failed round must not leak into the next
    // one: later events would ride a frame whose earlier entries were never
    // accounted for.
    for (auto& peer : node.peers) peer->batch.reset();
  }
  if (node.batch_trace_stamp != 0) {
    publish_to_route_.observe(obs::now_ns() - node.batch_trace_stamp);
    node.batch_trace_stamp = 0;
  }
  // One cumulative ack per link that received envelopes this batch — acks
  // are unsequenced and idempotent, and they take the fault plan too (a
  // lost ack is recovered by retransmit -> duplicate -> re-ack).
  for (std::size_t p = 0; p < node.peers.size(); ++p) {
    Node::Peer& peer = *node.peers[p];
    if (!peer.needs_ack) continue;
    peer.needs_ack = false;
    transmit(node, p,
             NodeMsg{FrameMsg{node.id,
                              share(wire::frame_link_ack(peer.expected_in - 1))}});
  }
}

void MeshNetwork::handle_message(Node& node, NodeMsg& message) {
  if (auto* publish = std::get_if<PublishMsg>(&message.payload)) {
    node.events_published.fetch_add(1, std::memory_order_relaxed);
    if (publish->trace_stamp != 0) {
      ingress_wait_.observe(obs::now_ns() - publish->trace_stamp);
      if (node.batch_trace_stamp == 0) {
        node.batch_trace_stamp = publish->trace_stamp;
      }
    }
    node.batch_events.push_back(std::move(publish->event));
    node.batch_sources.push_back(kExternal);
    node.batch_tokens.push_back(publish->token);
    return;
  }

  if (auto* publish_run = std::get_if<PublishBatchMsg>(&message.payload)) {
    const std::size_t n = publish_run->events.size();
    node.events_published.fetch_add(n, std::memory_order_relaxed);
    if (publish_run->trace_stamp != 0) {
      ingress_wait_.observe(obs::now_ns() - publish_run->trace_stamp);
      if (node.batch_trace_stamp == 0) {
        node.batch_trace_stamp = publish_run->trace_stamp;
      }
    }
    node.batch_events.insert(node.batch_events.end(),
                             std::make_move_iterator(publish_run->events.begin()),
                             std::make_move_iterator(publish_run->events.end()));
    node.batch_sources.insert(node.batch_sources.end(), n, kExternal);
    if (publish_run->tokens.empty()) {
      node.batch_tokens.insert(node.batch_tokens.end(), n, 0);
    } else {
      node.batch_tokens.insert(node.batch_tokens.end(),
                               publish_run->tokens.begin(),
                               publish_run->tokens.end());
    }
    return;
  }

  if (auto* frame = std::get_if<FrameMsg>(&message.payload)) {
    // Hot path: a bare event batch decodes straight into the round's
    // scratch through the arena — no wire::Message materialization and,
    // once the arena is warm, no per-event allocation.
    if (wire::peek_type(*frame->bytes) == wire::MessageType::kEventBatch) {
      const std::size_t n =
          wire::decode_event_batch(*frame->bytes, schema_, node.arena,
                                   node.batch_events, node.batch_tokens);
      node.batch_sources.insert(node.batch_sources.end(), n, frame->source);
      return;
    }
    wire::Message decoded = wire::decode_message(*frame->bytes, schema_);

    if (auto* link = std::get_if<wire::LinkFrameMsg>(&decoded)) {
      std::size_t from_index = node.peers.size();
      for (std::size_t p = 0; p < node.peers.size(); ++p) {
        if (node.peers[p]->node == frame->source) {
          from_index = p;
          break;
        }
      }
      GENAS_CHECK(from_index < node.peers.size(),
                  "link envelope from a node that is not a peer");
      Node::Peer& from = *node.peers[from_index];
      // Go-back-N receive: exactly the expected sequence is processed.
      // Anything else is discarded (duplicates from retransmission,
      // out-of-order frames behind a loss) and the cumulative ack tells the
      // sender where to resume. Every envelope earns an ack — re-acking a
      // duplicate is what recovers a lost ack.
      from.needs_ack = true;
      if (link->sequence < from.expected_in) {
        from.dup_frames.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (link->sequence > from.expected_in) {
        from.gap_frames.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      ++from.expected_in;
      // The envelope's usual cargo is an event batch: take the arena path
      // without materializing a wire::Message.
      if (wire::peek_type(link->inner) == wire::MessageType::kEventBatch) {
        const std::size_t n =
            wire::decode_event_batch(link->inner, schema_, node.arena,
                                     node.batch_events, node.batch_tokens);
        node.batch_sources.insert(node.batch_sources.end(), n, frame->source);
        return;
      }
      wire::Message inner = wire::decode_message(link->inner, schema_);
      GENAS_CHECK(!std::holds_alternative<wire::LinkFrameMsg>(inner) &&
                      !std::holds_alternative<wire::LinkAckMsg>(inner),
                  "nested link envelope on a mesh link");
      const Bytes raw = share(std::move(link->inner));
      handle_link_payload(node, frame->source, raw, inner);
      return;
    }

    if (auto* ack = std::get_if<wire::LinkAckMsg>(&decoded)) {
      std::size_t from_index = node.peers.size();
      for (std::size_t p = 0; p < node.peers.size(); ++p) {
        if (node.peers[p]->node == frame->source) {
          from_index = p;
          break;
        }
      }
      GENAS_CHECK(from_index < node.peers.size(),
                  "link ack from a node that is not a peer");
      Node::Peer& from = *node.peers[from_index];
      if (ack->sequence <= from.acked_out) return;  // stale/duplicate ack
      std::uint64_t pruned = 0;
      while (!from.unacked.empty() &&
             from.unacked.front().first <= ack->sequence) {
        from.unacked.pop_front();
        ++pruned;
      }
      from.acked_out = ack->sequence;
      // The window slid forward: frames buffered beyond the old window may
      // now take their first transmission.
      for (const auto& [seq, bytes] : from.unacked) {
        if (seq > from.acked_out + options_.link_window) break;
        if (seq <= from.highest_tx) continue;  // already on the wire
        from.highest_tx = seq;
        from.last_tx = std::chrono::steady_clock::now();
        transmit(node, from_index, NodeMsg{FrameMsg{node.id, bytes}});
      }
      unacked_done(pruned);
      return;
    }

    handle_link_payload(node, frame->source, frame->bytes, decoded);
    return;
  }

  if (auto* sub = std::get_if<LocalSubscribeMsg>(&message.payload)) {
    const NodeId node_id = node.id;
    const SubscriptionId key = sub->key;
    MeshCallback callback = std::move(sub->callback);
    const SubscriptionId local = node.broker->subscribe(
        sub->profile,
        [callback = std::move(callback), key, node_id](const Notification& n) {
          callback(node_id, key, n.event);
        });
    node.local_subs.emplace(key, local);
    if (options_.mode != RoutingMode::kFlooding) {
      broadcast_frame(node, node.peers.size(),
                      share(wire::frame_subscribe(key, sub->profile)));
    }
    return;
  }

  if (auto* unsub = std::get_if<LocalUnsubscribeMsg>(&message.payload)) {
    const auto it = node.local_subs.find(unsub->key);
    GENAS_CHECK(it != node.local_subs.end(),
                "mesh unsubscribe for a key this node never registered");
    node.broker->unsubscribe(it->second);
    node.local_subs.erase(it);
    if (options_.mode != RoutingMode::kFlooding) {
      broadcast_frame(node, node.peers.size(),
                      share(wire::frame_unsubscribe(unsub->key)));
    }
    return;
  }

  if (auto* csub = std::get_if<LocalCompositeSubscribeMsg>(&message.payload)) {
    const NodeId node_id = node.id;
    const SubscriptionId key = csub->key;
    MeshCompositeCallback callback = std::move(csub->callback);
    // Detection runs here, in this node's broker; the composite callback
    // fires on this worker (or on a flush_composites() caller).
    const CompositeId local = node.broker->subscribe_composite(
        csub->expression,
        [callback = std::move(callback), key,
         node_id](const CompositeFiring& firing) {
          callback(node_id, key, firing.time);
        });
    Node::CompositeLocal entry{local, {}};
    if (options_.mode != RoutingMode::kFlooding) {
      // Each *distinct* decomposed leaf propagates like a plain
      // subscription under its own internal network key — remote nodes
      // cannot tell the difference, so covering and promotion apply
      // unchanged. Leaf keys follow the broker's refcounted dedup: an
      // equal profile already propagated from this node (by this or any
      // earlier composite) reuses its key instead of installing a second
      // routing entry on every link.
      for (const CompositeExpr* leaf : leaf_nodes(*csub->expression)) {
        std::string profile_key = canonical_profile_key(*leaf->leaf_profile());
        if (std::find(entry.leaf_keys.begin(), entry.leaf_keys.end(),
                      profile_key) != entry.leaf_keys.end()) {
          continue;  // duplicate leaf within this expression
        }
        auto [route, inserted] =
            node.leaf_routes.try_emplace(profile_key);
        if (inserted) {
          route->second.key =
              next_key_.fetch_add(1, std::memory_order_relaxed);
          broadcast_frame(node, node.peers.size(),
                          share(wire::frame_subscribe(
                              route->second.key, *leaf->leaf_profile())));
        }
        ++route->second.refs;
        entry.leaf_keys.push_back(std::move(profile_key));
      }
    }
    node.local_composites.emplace(key, std::move(entry));
    return;
  }

  if (auto* cunsub =
          std::get_if<LocalCompositeUnsubscribeMsg>(&message.payload)) {
    const auto it = node.local_composites.find(cunsub->key);
    GENAS_CHECK(it != node.local_composites.end(),
                "mesh composite unsubscribe for a key this node never "
                "registered");
    node.broker->unsubscribe_composite(it->second.local);
    if (options_.mode != RoutingMode::kFlooding) {
      for (const std::string& profile_key : it->second.leaf_keys) {
        const auto route = node.leaf_routes.find(profile_key);
        if (route == node.leaf_routes.end()) continue;
        if (--route->second.refs > 0) continue;  // still referenced
        broadcast_frame(node, node.peers.size(),
                        share(wire::frame_unsubscribe(route->second.key)));
        node.leaf_routes.erase(route);
      }
    }
    node.local_composites.erase(it);
    return;
  }
}

void MeshNetwork::handle_link_payload(Node& node, NodeId source,
                                      const Bytes& raw,
                                      wire::Message& decoded) {
  if (auto* event = std::get_if<wire::EventMsg>(&decoded)) {
    node.batch_events.push_back(std::move(event->event));
    node.batch_sources.push_back(source);
    node.batch_tokens.push_back(0);
    return;
  }

  if (auto* batch = std::get_if<wire::EventBatchMsg>(&decoded)) {
    // Normally intercepted before the generic decode (see handle_message);
    // kept for completeness so a batch decoded elsewhere still routes.
    const std::size_t n = batch->events.size();
    node.batch_events.insert(node.batch_events.end(),
                             std::make_move_iterator(batch->events.begin()),
                             std::make_move_iterator(batch->events.end()));
    node.batch_sources.insert(node.batch_sources.end(), n, source);
    if (batch->tokens.empty()) {
      node.batch_tokens.insert(node.batch_tokens.end(), n, 0);
    } else {
      node.batch_tokens.insert(node.batch_tokens.end(), batch->tokens.begin(),
                               batch->tokens.end());
    }
    return;
  }

  std::size_t from_index = node.peers.size();
  for (std::size_t p = 0; p < node.peers.size(); ++p) {
    if (node.peers[p]->node == source) {
      from_index = p;
      break;
    }
  }
  GENAS_CHECK(from_index < node.peers.size(),
              "frame from a node that is not a peer");
  Node::Peer* from = node.peers[from_index].get();

  if (auto* sub = std::get_if<wire::SubscribeMsg>(&decoded)) {
    // Install toward the link the subscription arrived on; covering may
    // suppress it, which also stops propagation here (overlay semantics).
    const bool installed =
        from->table.add(sub->key, sub->profile,
                        options_.mode == RoutingMode::kRoutingCovered);
    if (!installed) return;
    node.profile_messages.fetch_add(1, std::memory_order_relaxed);
    from->routing_entries.fetch_add(1, std::memory_order_relaxed);
    // The onward frame is byte-identical to the one that just arrived:
    // relay the shared buffer instead of re-encoding the profile.
    broadcast_frame(node, from_index, raw);
    return;
  }

  if (auto* unsub = std::get_if<wire::UnsubscribeMsg>(&decoded)) {
    const net::LinkTable::Removal removal = from->table.remove(unsub->key);
    if (!removal.installed) return;  // suppressed or unknown: it never
                                     // propagated past this node
    from->routing_entries.fetch_sub(1, std::memory_order_relaxed);
    broadcast_frame(node, from_index, raw);
    // Entries the removed profile had been covering are installed now;
    // propagate them onward like fresh subscriptions.
    for (const auto& [key, profile] : removal.promoted) {
      node.profile_messages.fetch_add(1, std::memory_order_relaxed);
      from->routing_entries.fetch_add(1, std::memory_order_relaxed);
      broadcast_frame(node, from_index,
                      share(wire::frame_subscribe(key, profile)));
    }
    return;
  }

  throw_error(ErrorCode::kInternal, "unexpected wire message on a mesh link");
}

void MeshNetwork::route_events(Node& node) {
  if (node.batch_events.empty()) return;

  // Local matching and delivery: the whole drained batch goes through one
  // publish_batch call (one snapshot acquisition, one delivery drain).
  // Tokens ride along so a replayed ingress publish cannot double-fire the
  // local composite runtime.
  const BatchPublishResult result =
      node.broker->publish_batch(node.batch_events, node.batch_tokens);
  node.filter_operations.fetch_add(result.operations,
                                   std::memory_order_relaxed);
  // result.notified is counted per node via the broker's delivery sink.

  if (options_.auto_advance_watermark) {
    // Every event through this node drives the composite watermark, not
    // only those matching a decomposed leaf — sparse leaf streams fire as
    // soon as unrelated traffic passes the skew instead of waiting for a
    // flush. Composite callbacks run here, on the worker, like leaf-driven
    // firings.
    Timestamp newest = kCompositeNever;
    for (const Event& event : node.batch_events) {
      if (newest == kCompositeNever || event.time() > newest) {
        newest = event.time();
      }
    }
    if (newest != kCompositeNever) node.broker->advance_watermark(newest);
  }

  // Forwarding decision per event and link (minus the arrival link). A
  // matching event is appended to the link's pending batch frame instead of
  // traveling alone: the batch flushes at link_batch_max or at the round
  // boundary below, so a busy round pays one frame — and on reliable links
  // one sequenced envelope and one ack — per link instead of one per event.
  // The event_messages counters keep counting events (the overlay's
  // currency), so the mesh-vs-overlay oracles see identical numbers.
  const std::size_t batch_cap = std::max<std::size_t>(options_.link_batch_max,
                                                      1);
  for (std::size_t i = 0; i < node.batch_events.size(); ++i) {
    const Event& event = node.batch_events[i];
    const NodeId source = node.batch_sources[i];
    for (std::size_t p = 0; p < node.peers.size(); ++p) {
      Node::Peer& peer = *node.peers[p];
      if (peer.node == source) continue;
      bool send = true;
      if (options_.mode != RoutingMode::kFlooding) {
        const MatchOutcome routed =
            peer.table.matcher(options_.policy, options_.event_distribution)
                .match(event);
        node.filter_operations.fetch_add(routed.operations,
                                         std::memory_order_relaxed);
        send = !routed.matched.empty();
      }
      if (!send) continue;
      node.event_messages.fetch_add(1, std::memory_order_relaxed);
      peer.event_messages.fetch_add(1, std::memory_order_relaxed);
      peer.batch.append(event);
      if (peer.batch.pending() >= batch_cap) {
        flush_cap_.add();
        flush_link_batch(node, p);
      }
    }
  }
  // Round boundary: every pending link batch flushes before the batch's
  // acks go out, preserving the per-link event order the unbatched path
  // had.
  for (std::size_t p = 0; p < node.peers.size(); ++p) {
    if (node.peers[p]->batch.empty()) continue;
    flush_round_.add();
    flush_link_batch(node, p);
  }
  // The drained events' index storage funds the next decode: recycling
  // here is what makes the receive path allocation-free in steady state.
  node.arena.recycle_all(node.batch_events);
  node.batch_sources.clear();
  node.batch_tokens.clear();
}

void MeshNetwork::flush_link_batch(Node& node, std::size_t peer_index) {
  Node::Peer& peer = *node.peers[peer_index];
  events_per_frame_.observe(peer.batch.pending());
  send_link(node, peer_index, share(peer.batch.take_frame()));
}

// ---------------------------------------------------------------------------
// Statistics.

OverlayStats MeshNetwork::node_stats(NodeId node) const {
  validate_node(node);
  const Node& n = *nodes_[node];
  OverlayStats stats;
  stats.events_published = n.events_published.load(std::memory_order_relaxed);
  stats.event_messages = n.event_messages.load(std::memory_order_relaxed);
  stats.profile_messages = n.profile_messages.load(std::memory_order_relaxed);
  stats.filter_operations =
      n.filter_operations.load(std::memory_order_relaxed);
  stats.deliveries = n.deliveries.load(std::memory_order_relaxed);
  return stats;
}

OverlayStats MeshNetwork::stats() const {
  OverlayStats total;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const OverlayStats one = node_stats(id);
    total.events_published += one.events_published;
    total.event_messages += one.event_messages;
    total.profile_messages += one.profile_messages;
    total.filter_operations += one.filter_operations;
    total.deliveries += one.deliveries;
  }
  return total;
}

std::vector<LinkStats> MeshNetwork::link_stats(NodeId node) const {
  validate_node(node);
  std::vector<LinkStats> stats;
  stats.reserve(nodes_[node]->peers.size());
  for (const auto& peer : nodes_[node]->peers) {
    stats.push_back(LinkStats{
        peer->node, peer->event_messages.load(std::memory_order_relaxed),
        peer->routing_entries.load(std::memory_order_relaxed),
        peer->retransmits.load(std::memory_order_relaxed),
        peer->dup_frames.load(std::memory_order_relaxed),
        peer->gap_frames.load(std::memory_order_relaxed)});
  }
  return stats;
}

obs::StatsSnapshot MeshNetwork::stats_snapshot() const {
  obs::StatsSnapshot out = metrics_->snapshot();

  // The worker-maintained overlay/link atomics are the single source of
  // truth on the hot path; they become labeled metrics only here, at read
  // time, so instrumentation adds no second counter bump per event.
  const auto synthesize = [&out](std::string name, std::string_view labels,
                                 obs::MetricKind kind, std::uint64_t value) {
    obs::MetricSnapshot m;
    m.name = std::move(name);
    m.name += labels;
    m.kind = kind;
    m.value = static_cast<std::int64_t>(value);
    out.metrics.push_back(std::move(m));
  };

  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = *nodes_[id];
    out.merge(n.broker->metrics().snapshot());

    const std::string node_labels = "{node=\"" + std::to_string(id) + "\"}";
    const auto load = [](const std::atomic<std::uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    synthesize("genas_mesh_events_published_total", node_labels,
               obs::MetricKind::kCounter, load(n.events_published));
    synthesize("genas_mesh_event_messages_total", node_labels,
               obs::MetricKind::kCounter, load(n.event_messages));
    synthesize("genas_mesh_profile_messages_total", node_labels,
               obs::MetricKind::kCounter, load(n.profile_messages));
    synthesize("genas_mesh_filter_operations_total", node_labels,
               obs::MetricKind::kCounter, load(n.filter_operations));
    synthesize("genas_mesh_deliveries_total", node_labels,
               obs::MetricKind::kCounter, load(n.deliveries));
    synthesize("genas_mesh_mailbox_depth_highwater", node_labels,
               obs::MetricKind::kGauge, load(n.mailbox_hwm));

    for (const auto& peer : n.peers) {
      const std::string link_labels = "{node=\"" + std::to_string(id) +
                                      "\",peer=\"" +
                                      std::to_string(peer->node) + "\"}";
      synthesize("genas_mesh_link_event_messages_total", link_labels,
                 obs::MetricKind::kCounter, load(peer->event_messages));
      synthesize("genas_mesh_link_routing_entries", link_labels,
                 obs::MetricKind::kGauge, load(peer->routing_entries));
      synthesize("genas_mesh_link_retransmits_total", link_labels,
                 obs::MetricKind::kCounter, load(peer->retransmits));
      synthesize("genas_mesh_link_dup_frames_total", link_labels,
                 obs::MetricKind::kCounter, load(peer->dup_frames));
      synthesize("genas_mesh_link_gap_frames_total", link_labels,
                 obs::MetricKind::kCounter, load(peer->gap_frames));
      synthesize("genas_mesh_link_outbox_depth_highwater", link_labels,
                 obs::MetricKind::kGauge, load(peer->outbox_hwm));
    }
  }
  out.sort();
  return out;
}

std::size_t MeshNetwork::routing_entries(NodeId node) const {
  validate_node(node);
  std::size_t total = 0;
  for (const auto& peer : nodes_[node]->peers) {
    total += peer->routing_entries.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t MeshNetwork::local_subscriptions(NodeId node) const {
  validate_node(node);
  return nodes_[node]->broker->subscription_count();
}

}  // namespace genas::mesh
