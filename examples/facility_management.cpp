// Facility management with composite events — the paper lists facility
// management among its applications (§1) and names composite events as the
// planned filter extension (§5). This example wires the broker's primitive
// notifications into the CompositeDetector:
//
//   break-in    = door opened THEN motion inside within 30 s,
//                 with no badge scan in the preceding 60 s (negation)
//   maintenance = humidity high AND temperature high within 120 s (any order)
#include <iostream>

#include "ens/broker.hpp"
#include "ens/composite.hpp"

int main() {
  using namespace genas;

  const SchemaPtr schema =
      SchemaBuilder()
          .add_categorical("sensor", {"door", "motion", "badge", "climate"})
          .add_integer("zone", 1, 16)
          .add_integer("reading", 0, 100)  // door:1=open, motion:1=detected
          .build();

  Broker broker(schema);
  CompositeDetector detector;

  // Primitive profiles; the broker feeds every match into the detector.
  // Profile ids are assigned sequentially (0,1,2,...) in subscribe order,
  // so the next id equals the current subscription count.
  const auto primitive_profile = [&](const std::string& expr) {
    const auto profile_id =
        static_cast<ProfileId>(broker.subscription_count());
    broker.subscribe(expr, [&detector, profile_id](const Notification& n) {
      detector.on_match(profile_id, n.event.time());
    });
    return profile_id;
  };

  const ProfileId door_open =
      primitive_profile("sensor = door && zone = 7 && reading = 1");
  const ProfileId motion =
      primitive_profile("sensor = motion && zone = 7 && reading = 1");
  const ProfileId badge =
      primitive_profile("sensor = badge && zone = 7");
  const ProfileId hot =
      primitive_profile("sensor = climate && reading >= 80");
  const ProfileId humid =
      primitive_profile("sensor = climate && reading in [60, 79]");

  detector.add(
      neg(primitive(badge),
          seq(primitive(door_open), primitive(motion), 30), 60),
      [](const CompositeFiring& f) {
        std::cout << "  !! BREAK-IN suspected in zone 7 at t=" << f.time
                  << " (door->motion, no badge)\n";
      });
  detector.add(conj(primitive(hot), primitive(humid), 120),
               [](const CompositeFiring& f) {
                 std::cout << "  -> climate maintenance needed at t="
                           << f.time << "\n";
               });

  const auto publish = [&](Timestamp t, const std::string& text) {
    std::cout << "t=" << t << "  " << text << "\n";
    broker.publish(text, t);
  };

  std::cout << "--- scenario 1: authorized entry (badge first) ---\n";
  publish(10, "sensor = badge; zone = 7; reading = 0");
  publish(20, "sensor = door; zone = 7; reading = 1");
  publish(25, "sensor = motion; zone = 7; reading = 1");

  std::cout << "--- scenario 2: entry without badge ---\n";
  publish(200, "sensor = door; zone = 7; reading = 1");
  publish(215, "sensor = motion; zone = 7; reading = 1");

  std::cout << "--- scenario 3: slow climate degradation ---\n";
  publish(300, "sensor = climate; zone = 3; reading = 65");  // humid
  publish(350, "sensor = climate; zone = 3; reading = 85");  // hot, within 120

  std::cout << "--- scenario 4: motion too late after door ---\n";
  publish(500, "sensor = door; zone = 7; reading = 1");
  publish(545, "sensor = motion; zone = 7; reading = 1");  // 45 > 30 window

  const ServiceCounters counters = broker.counters();
  std::cout << "\nprocessed " << counters.events_published
            << " sensor events, " << counters.notifications
            << " primitive notifications, " << counters.ops_per_event()
            << " avg filter ops/event\n";
  return 0;
}
