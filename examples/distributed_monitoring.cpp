// Distributed monitoring — the ICDCS setting: regional sensor networks feed
// a broker overlay; subscriptions live at the edges; events are filtered
// and routed with the distribution-based profile trees at every hop
// (Siena-style content-based routing with covering, see src/net).
//
// Topology: a two-level tree —
//   hq at the root; north and south hubs below it; edge brokers n1, n2
//   under north and s1, s2 under south (edges host the local subscribers).
#include <iostream>

#include "dist/sampler.hpp"
#include "net/overlay.hpp"
#include "profile/parser.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace genas;

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("region", 1, 4)
                               .add_integer("temperature", -30, 50)
                               .add_integer("wind_speed", 0, 150)
                               .build();
  const JointDistribution climate = make_event_distribution(schema, {"gauss"});

  net::OverlayOptions options;
  options.mode = net::RoutingMode::kRoutingCovered;
  options.policy.value_order = ValueOrder::kEventProbability;
  options.event_distribution = climate;
  net::OverlayNetwork network(schema, options);

  const net::NodeId hq = network.add_broker();
  const net::NodeId north = network.add_broker();
  const net::NodeId south = network.add_broker();
  const net::NodeId n1 = network.add_broker();
  const net::NodeId n2 = network.add_broker();
  const net::NodeId s1 = network.add_broker();
  const net::NodeId s2 = network.add_broker();
  network.connect(hq, north);
  network.connect(hq, south);
  network.connect(north, n1);
  network.connect(north, n2);
  network.connect(south, s1);
  network.connect(south, s2);

  // Edge subscriptions: each station watches its own region; HQ watches
  // storms anywhere. The narrow n2 profile is covered by n1's broader one
  // along shared links, so covering suppresses its propagation cost.
  network.subscribe(n1, parse_profile(schema,
                                      "region = 1 && temperature >= 35"));
  network.subscribe(n2, parse_profile(
                            schema, "region = 2 && temperature >= 40"));
  network.subscribe(s1, parse_profile(schema,
                                      "region = 3 && wind_speed >= 100"));
  network.subscribe(s2, parse_profile(schema,
                                      "region = 4 && wind_speed >= 90"));
  network.subscribe(hq, parse_profile(schema, "wind_speed >= 120"));

  std::cout << "7-broker overlay, " << 5 << " subscriptions; routing state "
            << "at the hubs: hq=" << network.routing_entries(hq)
            << " north=" << network.routing_entries(north)
            << " south=" << network.routing_entries(south) << " entries\n\n";

  // Regional sensor feeds publish at their edge broker.
  EventSampler sampler(climate, 7);
  std::size_t deliveries = 0;
  constexpr int kReadings = 20000;
  const net::NodeId sources[] = {n1, n2, s1, s2};
  for (int i = 0; i < kReadings; ++i) {
    deliveries += network.publish(sources[i % 4], sampler.sample());
  }

  const net::OverlayStats& stats = network.stats();
  std::cout << "published " << stats.events_published << " readings\n"
            << "  deliveries:        " << deliveries << "\n"
            << "  event messages:    " << stats.event_messages
            << "  (flooding would send "
            << stats.events_published * 6 << ")\n"
            << "  profile messages:  " << stats.profile_messages << "\n"
            << "  filter ops/event:  "
            << static_cast<double>(stats.filter_operations) /
                   static_cast<double>(stats.events_published)
            << "\n";
  return 0;
}
