// Environmental monitoring with catastrophe warnings — the paper's
// motivating scenario (§1): sensor data are roughly uniform, but users
// subscribe to a narrow range of dangerous readings. The distribution-based
// tree rejects harmless readings early (attribute reordering, Measure A2)
// and orders edge scans by event probability (Measure V1).
//
// The example compares the default tree against the distribution-optimized
// tree on the same sensor feed and prints the paper's cost metric.
#include <iostream>

#include "core/filter_engine.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "sim/report.hpp"

int main() {
  using namespace genas;

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("temperature", -30, 50)
                               .add_integer("humidity", 0, 100)
                               .add_integer("radiation", 1, 100)
                               .add_integer("wind_speed", 0, 150)
                               .build();

  // Sensor characteristics: temperature and humidity roughly Gaussian
  // around seasonal means, radiation mostly low, wind mostly calm.
  const JointDistribution sensor_feed = JointDistribution::independent(
      schema, {shapes::gauss(81, 0.55, 0.18),   // mild temperatures
               shapes::gauss(101, 0.6, 0.2),    // moderate humidity
               shapes::falling(100),            // radiation mostly low
               shapes::falling(151)});          // wind mostly calm

  // Catastrophe-warning subscriptions: narrow, extreme ranges.
  const std::vector<std::string> warnings = {
      "temperature >= 45",                       // heat wave
      "temperature <= -25",                      // hard frost
      "radiation >= 80",                         // UV warning
      "wind_speed >= 110",                       // storm warning
      "temperature >= 40 && humidity >= 85",     // tropical night
      "radiation >= 60 && wind_speed >= 90",     // combined hazard
      "humidity <= 5 && temperature >= 35",      // wildfire risk
  };

  const auto run = [&](const char* label, const EngineOptions& options) {
    FilterEngine engine(schema, options);
    for (const std::string& w : warnings) engine.subscribe(w);

    EventSampler sampler(sensor_feed, 2024);
    std::uint64_t ops = 0;
    std::size_t alerts = 0;
    constexpr int kReadings = 50000;
    for (int i = 0; i < kReadings; ++i) {
      const EngineMatch match = engine.match(sampler.sample());
      ops += match.operations;
      alerts += match.matched.size();
    }
    std::cout << label << ": "
              << static_cast<double>(ops) / kReadings
              << " ops/reading, " << alerts << " alerts over " << kReadings
              << " readings\n";
    return static_cast<double>(ops) / kReadings;
  };

  std::cout << "Environmental monitoring: " << warnings.size()
            << " catastrophe-warning profiles, 50,000 sensor readings\n\n";

  EngineOptions plain;  // natural order, schema-order attributes
  const double baseline = run("default tree              ", plain);

  EngineOptions optimized;
  optimized.prior = sensor_feed;  // known sensor characteristics
  optimized.policy.value_order = ValueOrder::kEventProbability;   // V1
  optimized.policy.attribute_measure = AttributeMeasure::kA2;     // A2
  optimized.policy.direction = OrderDirection::kDescending;
  const double tuned = run("distribution-based tree   ", optimized);

  std::cout << "\nearly rejection saves "
            << 100.0 * (1.0 - tuned / baseline)
            << "% of filter operations on this workload\n";
  return 0;
}
