// Stock ticker — the paper's second motivating application (§1): "users are
// mainly interested in a small range of values for certain shares; the event
// data display high concentrations at selected values."
//
// Demonstrates:
//   * categorical attributes (the ticker symbol),
//   * the adaptive filter tracking a drifting price distribution,
//   * Elvin-style quenching: a data provider asks the broker whether anyone
//     could possibly care before generating expensive quote events.
#include <iostream>

#include "core/filter_engine.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "ens/quench.hpp"

int main() {
  using namespace genas;

  const std::vector<std::string> symbols = {"ACME", "GLOBEX", "INITECH",
                                            "HOOLI", "UMBRELLA"};
  const SchemaPtr schema =
      SchemaBuilder()
          .add_categorical("symbol", symbols)
          .add_integer("price", 0, 999)    // price in cents/10
          .add_integer("volume", 0, 9999)  // trade size
          .build();

  // Subscriptions concentrate on two symbols and narrow price bands —
  // exactly the peaked profile distribution the paper describes.
  EngineOptions options;
  options.policy.value_order = ValueOrder::kEventProbability;
  AdaptiveOptions adaptive;
  adaptive.min_observations = 2000;
  adaptive.rebuild_cooldown = 2000;
  adaptive.drift_threshold = 0.35;
  adaptive.decay = 0.999;
  options.adaptive = adaptive;
  FilterEngine engine(schema, options);

  for (int band = 0; band < 12; ++band) {
    const int lo = 400 + band * 5;
    engine.subscribe("symbol = ACME && price in [" + std::to_string(lo) +
                     ", " + std::to_string(lo + 8) + "]");
    engine.subscribe("symbol = HOOLI && price >= " +
                     std::to_string(850 + band * 10));
  }
  engine.subscribe("volume >= 9000");  // block-trade watcher, any symbol

  // Market regimes: ACME trades around 420 first, then gaps up to ~600.
  const auto regime = [&](double price_center) {
    return JointDistribution::independent(
        schema,
        {DiscreteDistribution::from_weights({5, 1, 1, 1, 1}),  // mostly ACME
         shapes::gauss(1000, price_center, 0.04),
         shapes::falling(10000)});
  };

  const auto run_phase = [&](const char* label,
                             const JointDistribution& joint,
                             std::uint64_t seed) {
    EventSampler sampler(joint, seed);
    std::uint64_t ops = 0;
    std::size_t notifications = 0;
    constexpr int kQuotes = 8000;
    for (int i = 0; i < kQuotes; ++i) {
      const EngineMatch match = engine.match(sampler.sample());
      ops += match.operations;
      notifications += match.matched.size();
    }
    std::cout << label << static_cast<double>(ops) / kQuotes
              << " ops/quote, " << notifications << " notifications";
    if (engine.adaptive() != nullptr) {
      std::cout << ", " << engine.adaptive()->rebuilds()
                << " adaptive rebuilds";
    }
    std::cout << "\n";
  };

  std::cout << "Stock ticker with " << engine.profiles().active_count()
            << " subscriptions\n\n";
  run_phase("phase 1 (ACME ~ 420): ", regime(0.42), 1);
  run_phase("phase 2 (ACME ~ 600): ", regime(0.60), 2);
  run_phase("phase 3 (ACME ~ 600): ", regime(0.60), 3);

  // Quenching: the UMBRELLA feed asks whether any subscription could match
  // an UMBRELLA quote at all before publishing.
  Quencher quencher(engine.profiles());
  EventSpace umbrella(schema);
  umbrella.restrict_value("symbol", "UMBRELLA");
  EventSpace umbrella_small = umbrella;
  umbrella_small.restrict("volume", IntervalSet({{0, 8999}}));

  std::cout << "\nquenching:\n";
  std::cout << "  any interest in UMBRELLA quotes?            "
            << (quencher.any_interest(umbrella) ? "yes" : "no")
            << " (block-trade watcher is symbol-agnostic)\n";
  std::cout << "  any interest in small UMBRELLA trades only?  "
            << (quencher.any_interest(umbrella_small) ? "yes" : "no")
            << "  -> provider suppresses the feed entirely\n";
  return 0;
}
