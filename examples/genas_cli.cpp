// genas_cli — the "generic parameterized event notification system" shell
// (the paper's prototype is a generic service whose events, attributes,
// domains and operators are specified at runtime, §4.2). Reads commands from
// stdin (or the built-in demo script when stdin is a terminal-less pipe is
// absent) and drives a broker interactively:
//
//   attr <name> int <lo> <hi>        declare an integer attribute
//   attr <name> cat <a,b,c>          declare a categorical attribute
//   done                             freeze the schema, start the broker
//   sub <profile expression>         subscribe (prints the assigned id)
//   unsub <id>                       unsubscribe
//   csub <composite expression>      composite subscribe, e.g.
//                                    seq({a >= 3}, {b = 1}, w=10)
//   cunsub <id>                      composite unsubscribe
//   cskew <n>                        composite watermark skew tolerance
//   cflush                           evaluate buffered composite instants
//   cadvance <t>                     time-driven watermark tick: evaluate
//                                    instants older than t - skew
//   pub <event expression>           publish ("a=1; b=2")
//   policy <natural|v1|v2|v3> <linear|binary|interpolation|hash> [a1|a2|a3]
//   tree                             dump the current profile tree
//   stats                            service counters
//   quit
//
// The `mesh` subcommand instead drives the concurrent broker mesh from a
// topology file plus a config_io service configuration:
//
//   genas_cli mesh <topology> <config> [--mode flooding|routing|covered]
//                  [--events N] [--dist NAME] [--seed S] [--auto-watermark]
//                  [--stats-json]
//
// --stats-json appends a JSON document to stdout at the end of the run:
// per-node overlay counters, per-link counters, and the merged
// observability snapshot (see README "Observability").
//
// The socket transport pair (see README "Socket transport"):
//
//   genas_cli serve <config> [--port P]   broker behind a TCP BrokerServer
//                                         on 127.0.0.1 (port 0 = ephemeral,
//                                         printed on startup); runs until
//                                         stdin reaches EOF
//   genas_cli connect <host> <port>       interactive shell over a
//                                         RemoteBrokerClient: sub/unsub/
//                                         csub/cunsub/pub/pubat/flush/quit
//   genas_cli stats <host> <port>         scrape a serving broker's metrics
//                                         (kStatsRequest round trip) and
//                                         print the Prometheus exposition
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/text.hpp"
#include "core/filter_engine.hpp"
#include "dist/sampler.hpp"
#include "ens/broker.hpp"
#include "ens/config_io.hpp"
#include "mesh/mesh.hpp"
#include "mesh/topology.hpp"
#include "net/broker_server.hpp"
#include "net/remote_client.hpp"
#include "net/socket_channel.hpp"
#include "obs/metrics.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"

namespace {

using namespace genas;

void print_composite_firing(const CompositeFiring& f) {
  std::cout << "  composite csub#" << f.subscription << " fired at t="
            << f.time << "\n";
}

struct CliState {
  SchemaBuilder builder;
  SchemaPtr schema;
  std::unique_ptr<Broker> broker;
  OrderingPolicy policy;
  std::map<SubscriptionId, std::string> expressions;  // live subscriptions
  std::map<CompositeId, std::string> composites;      // live composites
  Timestamp composite_skew = 0;

  /// (Re)creates the broker with the current policy and re-subscribes all
  /// live expressions (they receive fresh subscription ids).
  void start_broker() {
    EngineOptions options;
    options.policy = policy;
    broker = std::make_unique<Broker>(schema, std::move(options));
    broker->set_composite_skew(composite_skew);
    std::map<SubscriptionId, std::string> renewed;
    for (const auto& [old_id, expression] : expressions) {
      const SubscriptionId id =
          broker->subscribe(expression, [](const Notification& n) {
            std::cout << "  notify sub#" << n.subscription << ": "
                      << n.event.to_string() << "\n";
          });
      renewed.emplace(id, expression);
    }
    expressions = std::move(renewed);
    std::map<CompositeId, std::string> renewed_composites;
    for (const auto& [old_id, expression] : composites) {
      const CompositeId id =
          broker->subscribe_composite(expression, print_composite_firing);
      renewed_composites.emplace(id, expression);
    }
    composites = std::move(renewed_composites);
  }
};

OrderingPolicy parse_policy(const std::vector<std::string_view>& words) {
  OrderingPolicy policy;
  if (words.size() > 1) {
    const std::string order = to_lower(words[1]);
    if (order == "v1") policy.value_order = ValueOrder::kEventProbability;
    else if (order == "v2") policy.value_order = ValueOrder::kProfileProbability;
    else if (order == "v3") policy.value_order = ValueOrder::kCombinedProbability;
    else if (order != "natural")
      throw Error(ErrorCode::kParse, "policy value order must be natural|v1|v2|v3");
  }
  if (words.size() > 2) {
    const std::string strat = to_lower(words[2]);
    if (strat == "binary") policy.strategy = SearchStrategy::kBinary;
    else if (strat == "interpolation") policy.strategy = SearchStrategy::kInterpolation;
    else if (strat == "hash") policy.strategy = SearchStrategy::kHash;
    else if (strat != "linear")
      throw Error(ErrorCode::kParse,
                  "policy search must be linear|binary|interpolation|hash");
  }
  if (words.size() > 3) {
    const std::string measure = to_lower(words[3]);
    if (measure == "a1") policy.attribute_measure = AttributeMeasure::kA1;
    else if (measure == "a2") policy.attribute_measure = AttributeMeasure::kA2;
    else if (measure == "a3") policy.attribute_measure = AttributeMeasure::kA3;
    else
      throw Error(ErrorCode::kParse, "policy attribute measure must be a1|a2|a3");
  }
  return policy;
}

bool handle(CliState& state, const std::string& line) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return true;

  std::vector<std::string_view> words;
  {
    std::size_t pos = 0;
    while (pos < trimmed.size()) {
      const std::size_t next = trimmed.find(' ', pos);
      if (next == std::string_view::npos) {
        words.push_back(trimmed.substr(pos));
        break;
      }
      if (next > pos) words.push_back(trimmed.substr(pos, next - pos));
      pos = next + 1;
    }
  }
  const std::string cmd = to_lower(words[0]);
  const std::string rest =
      words.size() > 1
          ? std::string(trim(trimmed.substr(words[0].size())))
          : std::string();

  try {
    if (cmd == "quit" || cmd == "exit") return false;

    if (cmd == "attr") {
      if (words.size() < 3) throw Error(ErrorCode::kParse, "attr needs args");
      const std::string name(words[1]);
      const std::string kind = to_lower(words[2]);
      if (kind == "int" && words.size() >= 5) {
        state.builder.add_integer(name, std::stoll(std::string(words[3])),
                                  std::stoll(std::string(words[4])));
      } else if (kind == "cat" && words.size() >= 4) {
        std::vector<std::string> cats;
        for (const auto piece : split(words[3], ',')) {
          cats.emplace_back(piece);
        }
        state.builder.add_categorical(name, std::move(cats));
      } else {
        throw Error(ErrorCode::kParse, "attr <name> int <lo> <hi> | cat <a,b>");
      }
      std::cout << "ok: attribute " << name << "\n";
      return true;
    }

    if (cmd == "done") {
      state.schema = state.builder.build();
      state.start_broker();
      std::cout << "schema: " << state.schema->to_string() << "\n";
      return true;
    }

    if (state.broker == nullptr) {
      std::cout << "error: declare attributes first, then 'done'\n";
      return true;
    }

    if (cmd == "sub") {
      const SubscriptionId id = state.broker->subscribe(
          rest, [](const Notification& n) {
            std::cout << "  notify sub#" << n.subscription << ": "
                      << n.event.to_string() << "\n";
          });
      state.expressions.emplace(id, rest);
      std::cout << "ok: subscription " << id << "\n";
    } else if (cmd == "unsub") {
      const SubscriptionId id = std::stoull(rest);
      state.broker->unsubscribe(id);
      state.expressions.erase(id);
      std::cout << "ok\n";
    } else if (cmd == "csub") {
      const CompositeId id =
          state.broker->subscribe_composite(rest, print_composite_firing);
      state.composites.emplace(id, rest);
      std::cout << "ok: composite subscription " << id << "\n";
    } else if (cmd == "cunsub") {
      const CompositeId id = std::stoull(rest);
      state.broker->unsubscribe_composite(id);
      state.composites.erase(id);
      std::cout << "ok\n";
    } else if (cmd == "cskew") {
      state.composite_skew = std::stoll(rest);
      state.broker->set_composite_skew(state.composite_skew);
      std::cout << "ok: composite skew " << state.composite_skew << "\n";
    } else if (cmd == "cflush") {
      state.broker->flush_composites();
      std::cout << "ok\n";
    } else if (cmd == "cadvance") {
      state.broker->advance_watermark(std::stoll(rest));
      std::cout << "ok: " << state.broker->composite_buffered()
                << " instants still buffered\n";
    } else if (cmd == "policy") {
      state.policy = parse_policy(words);
      state.start_broker();  // rebuild with the new ordering policy
      std::cout << "ok: policy " << state.policy.label()
                << " (subscriptions re-registered)\n";
    } else if (cmd == "pub") {
      const PublishResult result = state.broker->publish(rest);
      std::cout << "ok: " << result.notified << " notifications, "
                << result.operations << " ops\n";
    } else if (cmd == "pubat") {
      // pubat <time> <event expression> — timestamped publish, the input
      // composite detection consumes.
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos) {
        throw Error(ErrorCode::kParse, "pubat <time> <event expression>");
      }
      const Timestamp time = std::stoll(rest.substr(0, space));
      const PublishResult result =
          state.broker->publish(std::string_view(rest).substr(space + 1), time);
      std::cout << "ok: " << result.notified << " notifications, "
                << result.operations << " ops\n";
    } else if (cmd == "tree") {
      std::cout << state.broker->tree_dump();
    } else if (cmd == "stats") {
      const ServiceCounters counters = state.broker->counters();
      std::cout << "events=" << counters.events_published
                << " matched=" << counters.events_matched
                << " notifications=" << counters.notifications
                << " ops/event=" << counters.ops_per_event() << "\n";
    } else {
      std::cout << "error: unknown command '" << cmd << "'\n";
    }
  } catch (const std::exception& e) {
    std::cout << "error: " << e.what() << "\n";
  }
  return true;
}

constexpr const char* kDemoScript = R"(# GENAS demo session
attr temperature int -30 50
attr humidity int 0 100
attr state cat ok,warn,err
done
sub temperature >= 35 && humidity >= 90
sub state = err
sub temperature in [-30, -20]
pub temperature = 40; humidity = 95; state = ok
pub temperature = 0; humidity = 10; state = err
pub temperature = -25; humidity = 5; state = ok
pub temperature = 10; humidity = 50; state = ok
stats
quit
)";

// ---------------------------------------------------------------------------
// `mesh` subcommand: run a workload through the concurrent broker mesh.

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Emits one observability snapshot as a JSON array of metric objects.
void print_metrics_json(std::ostream& os, const obs::StatsSnapshot& snapshot,
                        std::string_view indent) {
  os << "[";
  for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const obs::MetricSnapshot& m = snapshot.metrics[i];
    os << (i == 0 ? "\n" : ",\n") << indent << "  {\"name\": \""
       << json_escape(m.name) << "\", \"kind\": \"" << obs::to_string(m.kind)
       << "\"";
    if (m.kind == obs::MetricKind::kHistogram) {
      os << ", \"count\": " << m.count() << ", \"sum\": " << m.sum
         << ", \"bounds\": [";
      for (std::size_t b = 0; b < m.bounds.size(); ++b) {
        os << (b == 0 ? "" : ", ") << m.bounds[b];
      }
      os << "], \"counts\": [";
      for (std::size_t b = 0; b < m.counts.size(); ++b) {
        os << (b == 0 ? "" : ", ") << m.counts[b];
      }
      os << "]";
    } else {
      os << ", \"value\": " << m.value;
    }
    os << "}";
  }
  os << "\n" << indent << "]";
}

int run_mesh(int argc, char** argv) {
  std::string topology_path;
  std::string config_path;
  net::RoutingMode mode = net::RoutingMode::kRoutingCovered;
  std::size_t event_count = 1000;
  std::string dist_name = "equal";
  std::uint64_t seed = 1;
  bool auto_watermark = false;
  bool stats_json = false;

  const auto usage = [] {
    std::cerr << "usage: genas_cli mesh <topology> <config> "
                 "[--mode flooding|routing|covered] [--events N] "
                 "[--dist NAME] [--seed S] [--auto-watermark] "
                 "[--stats-json]\n";
    return 2;
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw Error(ErrorCode::kParse, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string value = to_lower(next());
      if (value == "flooding") mode = net::RoutingMode::kFlooding;
      else if (value == "routing") mode = net::RoutingMode::kRouting;
      else if (value == "covered") mode = net::RoutingMode::kRoutingCovered;
      else return usage();
    } else if (arg == "--events") {
      event_count = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--dist") {
      dist_name = next();
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--auto-watermark") {
      auto_watermark = true;  // all traffic drives composite watermarks
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else if (topology_path.empty()) {
      topology_path = arg;
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      return usage();
    }
  }
  if (topology_path.empty() || config_path.empty()) return usage();

  const auto load_file = [](const std::string& path) {
    std::ifstream is(path);
    if (!is) throw Error(ErrorCode::kNotFound, "cannot open " + path);
    return is;
  };
  std::ifstream topology_is = load_file(topology_path);
  const mesh::MeshTopology topology = mesh::load_topology(topology_is);
  std::ifstream config_is = load_file(config_path);
  const ServiceConfig config = load_config(config_is);

  mesh::MeshOptions options;
  options.mode = mode;
  options.auto_advance_watermark = auto_watermark;
  mesh::MeshNetwork net(config.schema, options);
  for (std::size_t n = 0; n < topology.nodes; ++n) net.add_node();
  for (const auto& [a, b] : topology.links) net.connect(a, b);
  net.start();

  // Subscriptions come from the topology file; when it has none, the
  // config's profile population is spread round-robin across the nodes.
  std::atomic<std::uint64_t> delivered{0};
  const mesh::MeshCallback count_delivery =
      [&delivered](net::NodeId, SubscriptionId, const Event&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      };
  std::size_t subscriptions = 0;
  if (!topology.subscriptions.empty()) {
    for (const auto& [node, expression] : topology.subscriptions) {
      net.subscribe(node, expression, count_delivery);
      ++subscriptions;
    }
  } else if (topology.composites.empty()) {
    std::size_t at = 0;
    for (const ProfileId id : config.profiles.active_ids()) {
      net.subscribe(at++ % topology.nodes, config.profiles.profile(id),
                    count_delivery);
      ++subscriptions;
    }
  }
  // Composite subscriptions (csub lines): detection at the placing node,
  // decomposed primitive profiles routed like plain subscriptions.
  std::atomic<std::uint64_t> composite_firings{0};
  for (const auto& [node, expression] : topology.composites) {
    net.subscribe_composite(node, expression,
                            [&composite_firings](net::NodeId, SubscriptionId,
                                                 Timestamp) {
                              composite_firings.fetch_add(
                                  1, std::memory_order_relaxed);
                            });
  }
  net.wait_idle();

  const JointDistribution joint =
      make_event_distribution(config.schema, {dist_name});
  EventSampler sampler(joint, seed);
  std::vector<Event> events = sampler.sample_batch(event_count);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].set_time(static_cast<Timestamp>(i));  // composite time axis
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    net.publish(i % topology.nodes, events[i]);
  }
  net.wait_idle();
  net.flush_composites();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const net::OverlayStats stats = net.stats();
  std::vector<net::OverlayStats> per_node;
  std::vector<std::vector<mesh::LinkStats>> per_link;
  obs::StatsSnapshot obs_snapshot;
  if (stats_json) {
    for (std::size_t n = 0; n < topology.nodes; ++n) {
      per_node.push_back(net.node_stats(n));
      per_link.push_back(net.link_stats(n));
    }
    obs_snapshot = net.stats_snapshot();
  }
  net.shutdown();

  std::cout << "mesh: " << topology.nodes << " nodes, "
            << topology.links.size() << " links, mode "
            << net::to_string(mode) << "\n";
  std::cout << "subscriptions: " << subscriptions << " (+ "
            << topology.composites.size() << " composite), events: "
            << event_count << " (dist " << dist_name << ", seed " << seed
            << ")\n";
  if (!topology.composites.empty()) {
    std::cout << "composite firings: " << composite_firings.load() << "\n";
  }
  std::cout << "events_published=" << stats.events_published
            << " event_messages=" << stats.event_messages
            << " profile_messages=" << stats.profile_messages
            << " filter_operations=" << stats.filter_operations
            << " deliveries=" << stats.deliveries << "\n";
  for (std::size_t n = 0; n < topology.nodes; ++n) {
    std::cout << "node " << n << ": routing_entries="
              << net.routing_entries(n) << " local_subscriptions="
              << net.local_subscriptions(n) << "\n";
  }
  std::cout << "elapsed " << elapsed << " s, "
            << static_cast<std::uint64_t>(
                   elapsed > 0 ? static_cast<double>(event_count) / elapsed
                               : 0)
            << " events/sec\n";
  if (stats_json) {
    std::ostream& os = std::cout;
    os << "{\n  \"nodes\": [";
    for (std::size_t n = 0; n < topology.nodes; ++n) {
      const net::OverlayStats& one = per_node[n];
      os << (n == 0 ? "\n" : ",\n") << "    {\"id\": " << n
         << ", \"events_published\": " << one.events_published
         << ", \"event_messages\": " << one.event_messages
         << ", \"profile_messages\": " << one.profile_messages
         << ", \"filter_operations\": " << one.filter_operations
         << ", \"deliveries\": " << one.deliveries << ", \"links\": [";
      for (std::size_t l = 0; l < per_link[n].size(); ++l) {
        const mesh::LinkStats& link = per_link[n][l];
        os << (l == 0 ? "" : ", ") << "{\"peer\": " << link.peer
           << ", \"event_messages\": " << link.event_messages
           << ", \"routing_entries\": " << link.routing_entries
           << ", \"retransmits\": " << link.retransmits
           << ", \"dup_frames\": " << link.dup_frames
           << ", \"gap_frames\": " << link.gap_frames << "}";
      }
      os << "]}";
    }
    os << "\n  ],\n  \"metrics\": ";
    print_metrics_json(os, obs_snapshot, "  ");
    os << "\n}\n";
  }
  if (!net.first_error().empty()) {
    std::cerr << "worker error: " << net.first_error() << "\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `stats` subcommand: scrape a serving broker and print the exposition.

int run_stats(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: genas_cli stats <host> <port>\n";
    return 2;
  }
  const std::string host = argv[2];
  const auto port = static_cast<std::uint16_t>(std::stoul(argv[3]));
  net::RemoteBrokerClient client(host, port);
  const obs::StatsSnapshot snapshot =
      client.stats(std::chrono::milliseconds{10000});
  client.close();
  std::cout << obs::render_prometheus(snapshot);
  return 0;
}

// ---------------------------------------------------------------------------
// `serve` subcommand: a broker behind a TCP BrokerServer on 127.0.0.1.

int run_serve(int argc, char** argv) {
  std::string config_path;
  std::uint16_t port = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      if (i + 1 >= argc) throw Error(ErrorCode::kParse, "--port needs a value");
      port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      std::cerr << "usage: genas_cli serve <config> [--port P]\n";
      return 2;
    }
  }
  if (config_path.empty()) {
    std::cerr << "usage: genas_cli serve <config> [--port P]\n";
    return 2;
  }

  std::ifstream config_is(config_path);
  if (!config_is) throw Error(ErrorCode::kNotFound, "cannot open " + config_path);
  const ServiceConfig config = load_config(config_is);

  Broker broker(config.schema);
  net::ServerOptions options;
  options.port = port;
  net::BrokerServer server(broker, options);
  server.start();
  std::cout << "listening on 127.0.0.1:" << server.port() << "\n"
            << "schema: " << config.schema->to_string() << "\n"
            << "(EOF on stdin stops the server)\n"
            << std::flush;

  // Block until stdin closes; clients drive everything over the socket.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (trim(line) == "quit") break;
  }
  server.stop();
  if (!server.first_error().empty()) {
    std::cerr << "server error: " << server.first_error() << "\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `connect` subcommand: the interactive shell against a remote broker.

int run_connect(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: genas_cli connect <host> <port> [--retry N]\n";
    return 2;
  }
  const std::string host = argv[2];
  const auto port = static_cast<std::uint16_t>(std::stoul(argv[3]));
  std::size_t retries = 1;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--retry" && i + 1 < argc) {
      retries = std::stoul(argv[++i]);
    } else {
      std::cerr << "usage: genas_cli connect <host> <port> [--retry N]\n";
      return 2;
    }
  }

  if (retries > 1) {
    // Wait for the server to come up: capped-backoff probe dials, then
    // keep the session alive across server restarts with the same budget.
    net::connect_with_retry(host, port, retries).close();
  }
  net::ClientOptions options;
  options.reconnect = retries > 1;
  options.max_redials = retries;
  net::RemoteBrokerClient client(host, port, options);
  std::cout << "connected to " << host << ":" << port << "\n"
            << "schema: " << client.schema()->to_string() << "\n"
            << "commands: sub <expr> | unsub <id> | csub <expr> | cunsub <id>"
               " | pub <event> | pubat <t> <event> | flush | quit\n";

  std::string line;
  while (std::cout << "genas> " << std::flush && std::getline(std::cin, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::size_t space = trimmed.find(' ');
    const std::string cmd = to_lower(space == std::string_view::npos
                                         ? trimmed
                                         : trimmed.substr(0, space));
    const std::string rest(space == std::string_view::npos
                               ? std::string_view{}
                               : trim(trimmed.substr(space + 1)));
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "sub") {
        const SubscriptionId id =
            client.subscribe(rest, [](const Notification& n) {
              std::cout << "\n  notify sub#" << n.subscription << ": "
                        << n.event.to_string() << "\n";
            });
        std::cout << "ok: subscription " << id << "\n";
      } else if (cmd == "unsub") {
        client.unsubscribe(std::stoull(rest));
        std::cout << "ok\n";
      } else if (cmd == "csub") {
        const SubscriptionId id =
            client.subscribe_composite(rest, [](const CompositeFiring& f) {
              std::cout << "\n  composite csub#" << f.subscription
                        << " fired at t=" << f.time << "\n";
            });
        std::cout << "ok: composite subscription " << id << "\n";
      } else if (cmd == "cunsub") {
        client.unsubscribe_composite(std::stoull(rest));
        std::cout << "ok\n";
      } else if (cmd == "pub") {
        client.publish(rest);
        std::cout << "ok\n";
      } else if (cmd == "pubat") {
        const std::size_t cut = rest.find(' ');
        if (cut == std::string::npos) {
          throw Error(ErrorCode::kParse, "pubat <time> <event expression>");
        }
        client.publish(std::string_view(rest).substr(cut + 1),
                       std::stoll(rest.substr(0, cut)));
        std::cout << "ok\n";
      } else if (cmd == "flush") {
        client.flush();
        std::cout << "ok: " << client.deliveries() << " deliveries, "
                  << client.firings() << " composite firings so far\n";
      } else {
        std::cout << "error: unknown command '" << cmd << "'\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
      if (!client.connected()) {
        std::cerr << "connection lost: " << client.last_error() << "\n";
        return 1;
      }
    }
  }
  client.close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "serve") {
    try {
      return run_serve(argc, argv);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (argc > 1 && std::string(argv[1]) == "connect") {
    try {
      return run_connect(argc, argv);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (argc > 1 && std::string(argv[1]) == "mesh") {
    try {
      return run_mesh(argc, argv);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (argc > 1 && std::string(argv[1]) == "stats") {
    try {
      return run_stats(argc, argv);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  CliState state;
  const bool demo = argc > 1 && std::string(argv[1]) == "--demo";

  if (demo) {
    std::istringstream script((std::string(kDemoScript)));
    std::string line;
    while (std::getline(script, line)) {
      std::cout << "genas> " << line << "\n";
      if (!handle(state, line)) break;
    }
    return 0;
  }

  std::cout << "GENAS interactive shell (try --demo for a scripted tour)\n";
  std::string line;
  while (std::cout << "genas> " && std::getline(std::cin, line)) {
    if (!handle(state, line)) break;
  }
  return 0;
}
