// GENAS quickstart: define a schema at runtime, subscribe profiles, publish
// events, and inspect the distribution-based filter.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "ens/broker.hpp"

int main() {
  using namespace genas;

  // 1. Define the application schema (the paper's Example 1 system).
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("temperature", -30, 50)  // °C
                               .add_integer("humidity", 0, 100)      // %
                               .add_integer("radiation", 1, 100)     // mW/m²
                               .build();

  // 2. Start a broker. The default engine uses the distribution-based
  //    profile tree with natural value order; policies can be swapped via
  //    EngineOptions (see the other examples).
  Broker broker(schema);

  // 3. Subscribe profiles — textual or via ProfileBuilder.
  broker.subscribe("temperature >= 35 && humidity >= 90",
                   [](const Notification& n) {
                     std::cout << "[heat+humidity alert] "
                               << n.event.to_string() << "\n";
                   });
  broker.subscribe("temperature >= 30 && humidity >= 80",
                   [](const Notification& n) {
                     std::cout << "[warm alert]          "
                               << n.event.to_string() << "\n";
                   });
  broker.subscribe("radiation in [40, 100]", [](const Notification& n) {
    std::cout << "[radiation alert]     " << n.event.to_string() << "\n";
  });

  // 4. Publish events. Filtering follows a single root-to-leaf path in the
  //    profile tree; the result reports the counted comparison operations.
  const PublishResult r1 =
      broker.publish("temperature = 30; humidity = 90; radiation = 2");
  std::cout << "event 1: " << r1.notified << " notifications, "
            << r1.operations << " filter operations\n\n";

  const PublishResult r2 =
      broker.publish("temperature = 10; humidity = 50; radiation = 70");
  std::cout << "event 2: " << r2.notified << " notifications, "
            << r2.operations << " filter operations\n\n";

  const PublishResult r3 =
      broker.publish("temperature = 0; humidity = 40; radiation = 5");
  std::cout << "event 3 (matches nobody): " << r3.notified
            << " notifications, " << r3.operations
            << " filter operations (early rejection)\n\n";

  // 5. Service counters.
  const ServiceCounters counters = broker.counters();
  std::cout << "published " << counters.events_published << " events, "
            << counters.notifications << " notifications, "
            << counters.ops_per_event() << " avg ops/event\n";
  return 0;
}
