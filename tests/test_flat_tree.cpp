// Tests for FlatProfileTree: the SoA compilation must be observationally
// identical to the node form — same matched sets AND same counted
// operations — across every ordering policy, search strategy, and workload.
#include <gtest/gtest.h>

#include "match/naive_matcher.hpp"
#include "sim/workload.hpp"
#include "test_util.hpp"
#include "tree/flat_tree.hpp"

namespace genas {
namespace {

Event make_event(const SchemaPtr& schema, std::int64_t t, std::int64_t h,
                 std::int64_t r) {
  return Event::from_pairs(
      schema, {{"temperature", t}, {"humidity", h}, {"radiation", r}});
}

TEST(FlatTree, MatchesExample1Exactly) {
  const SchemaPtr schema = testutil::example1_schema();
  const ProfileSet profiles = testutil::example1_profiles(schema);
  const ProfileTree tree = ProfileTree::build(profiles, {});
  const FlatProfileTree flat = FlatProfileTree::compile(tree);

  EXPECT_EQ(flat.node_count(), tree.nodes().size());
  EXPECT_EQ(flat.leaf_count(), tree.leaves().size());
  EXPECT_EQ(flat.profile_count(), tree.profile_count());
  EXPECT_EQ(flat.source_version(), tree.source_version());
  EXPECT_EQ(flat.root(), tree.root());
  EXPECT_GT(flat.arena_bytes(), 0u);

  const Event hot = make_event(schema, 40, 95, 40);
  const TreeMatch node_match = tree.match(hot);
  const FlatMatch flat_match = flat.match(hot);
  ASSERT_NE(node_match.matched, nullptr);
  EXPECT_EQ(std::vector<ProfileId>(flat_match.span().begin(),
                                   flat_match.span().end()),
            *node_match.matched);
  EXPECT_EQ(flat_match.operations, node_match.operations);

  const Event miss = make_event(schema, 0, 50, 70);
  const FlatMatch nothing = flat.match(miss);
  EXPECT_EQ(nothing.matched_count, 0u);
  EXPECT_EQ(nothing.matched, nullptr);
  EXPECT_EQ(nothing.operations, tree.match(miss).operations);
}

TEST(FlatTree, EmptyProfileSetNeverMatches) {
  const SchemaPtr schema = testutil::example1_schema();
  const ProfileSet empty(schema);
  const FlatProfileTree flat =
      FlatProfileTree::compile(ProfileTree::build(empty, {}));
  const FlatMatch match = flat.match(make_event(schema, 0, 0, 1));
  EXPECT_EQ(match.matched_count, 0u);
  EXPECT_EQ(match.operations, 0u);
  EXPECT_EQ(flat.node_count(), 0u);
}

TEST(FlatTree, DontCareOnlyProfileMatchesEverything) {
  const SchemaPtr schema = testutil::example1_schema();
  ProfileSet profiles(schema);
  const ProfileId all = profiles.add(ProfileBuilder(schema).build());
  const FlatProfileTree flat =
      FlatProfileTree::compile(ProfileTree::build(profiles, {}));
  const FlatMatch match = flat.match(make_event(schema, -30, 0, 1));
  ASSERT_EQ(match.matched_count, 1u);
  EXPECT_EQ(match.matched[0], all);
}

struct FlatTreeOracleParam {
  ValueOrder value_order;
  SearchStrategy strategy;
};

class FlatTreeOracle : public ::testing::TestWithParam<FlatTreeOracleParam> {};

TEST_P(FlatTreeOracle, AgreesWithNodeFormOnRandomWorkloads) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 49)
                               .add_integer("b", 0, 29)
                               .add_integer("c", 0, 19)
                               .build();
  const JointDistribution joint =
      make_event_distribution(schema, {"gauss", "d37", "equal"});

  ProfileWorkloadOptions options;
  options.count = 200;
  options.dont_care_probability = 0.3;
  options.equality_only = false;
  options.range_width_mean = 0.15;
  options.seed = 7;
  const ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), options);

  TreeConfig config;
  config.value_order = GetParam().value_order;
  config.strategy = GetParam().strategy;
  config.event_distribution = joint;
  const ProfileTree tree = ProfileTree::build(profiles, config);
  const FlatProfileTree flat = FlatProfileTree::compile(tree);

  const NaiveMatcher oracle(profiles);
  for (const Event& event : testutil::event_stream(joint, 500, 11)) {
    const TreeMatch node_match = tree.match(event);
    const FlatMatch flat_match = flat.match(event);
    ASSERT_EQ(flat_match.operations, node_match.operations)
        << event.to_string();
    const std::vector<ProfileId> flat_ids(flat_match.span().begin(),
                                          flat_match.span().end());
    if (node_match.matched == nullptr) {
      EXPECT_TRUE(flat_ids.empty()) << event.to_string();
    } else {
      EXPECT_EQ(flat_ids, *node_match.matched) << event.to_string();
    }
    EXPECT_EQ(testutil::sorted(flat_ids), oracle.match(event).matched)
        << event.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrdersAndStrategies, FlatTreeOracle,
    ::testing::Values(
        FlatTreeOracleParam{ValueOrder::kNaturalAscending,
                            SearchStrategy::kLinear},
        FlatTreeOracleParam{ValueOrder::kNaturalDescending,
                            SearchStrategy::kBinary},
        FlatTreeOracleParam{ValueOrder::kEventProbability,
                            SearchStrategy::kLinear},
        FlatTreeOracleParam{ValueOrder::kProfileProbability,
                            SearchStrategy::kInterpolation},
        FlatTreeOracleParam{ValueOrder::kCombinedProbability,
                            SearchStrategy::kHash}));

}  // namespace
}  // namespace genas
