// Structural tests of the per-node scan ranks under every value order, and
// op-count invariants that must hold for any tree (parameterized sweeps).
#include <gtest/gtest.h>

#include <cmath>

#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "sim/workload.hpp"
#include "tree/expected_cost.hpp"
#include "tree/profile_tree.hpp"

namespace genas {
namespace {

SchemaPtr schema1() {
  return SchemaBuilder().add_integer("x", 0, 9).build();
}

/// Three equality profiles at 2, 5, 8 over domain [0,9].
ProfileSet three_points(const SchemaPtr& schema) {
  ProfileSet set(schema);
  for (const int v : {2, 5, 8}) {
    set.add(ProfileBuilder(schema).where("x", Op::kEq, v).build());
  }
  return set;
}

JointDistribution skewed(const SchemaPtr& schema) {
  // P(8) >> P(5) >> P(2).
  return JointDistribution::independent(
      schema,
      {DiscreteDistribution::from_weights({1, 1, 2, 1, 1, 10, 1, 1, 60, 1})});
}

TEST(TreeOrders, NaturalAscendingRanksByInterval) {
  const SchemaPtr schema = schema1();
  const ProfileSet set = three_points(schema);
  const ProfileTree tree = ProfileTree::build(set, {});
  const auto& root = tree.nodes().back();
  // Cells: [0,1] gap, [2] edge, [3,4] gap, [5] edge, [6,7] gap, [8] edge,
  // [9] gap.
  ASSERT_EQ(root.cells.size(), 7u);
  EXPECT_EQ(root.scan_rank[1], 1u);
  EXPECT_EQ(root.scan_rank[3], 2u);
  EXPECT_EQ(root.scan_rank[5], 3u);
}

TEST(TreeOrders, NaturalDescendingReverses) {
  const SchemaPtr schema = schema1();
  const ProfileSet set = three_points(schema);
  TreeConfig config;
  config.value_order = ValueOrder::kNaturalDescending;
  const ProfileTree tree = ProfileTree::build(set, config);
  const auto& root = tree.nodes().back();
  EXPECT_EQ(root.scan_rank[5], 1u);
  EXPECT_EQ(root.scan_rank[3], 2u);
  EXPECT_EQ(root.scan_rank[1], 3u);
}

TEST(TreeOrders, EventProbabilityRanksByMass) {
  const SchemaPtr schema = schema1();
  const ProfileSet set = three_points(schema);
  TreeConfig config;
  config.value_order = ValueOrder::kEventProbability;
  config.event_distribution = skewed(schema);
  const ProfileTree tree = ProfileTree::build(set, config);
  const auto& root = tree.nodes().back();
  EXPECT_EQ(root.scan_rank[5], 1u);  // value 8 is most likely
  EXPECT_EQ(root.scan_rank[3], 2u);  // value 5
  EXPECT_EQ(root.scan_rank[1], 3u);  // value 2
}

TEST(TreeOrders, CombinedOrderBalancesEventAndProfileMass) {
  const SchemaPtr schema = schema1();
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema).where("x", Op::kEq, 2).build());
  // Value 5 referenced by 20 profiles; value 8 by 1.
  for (int i = 0; i < 20; ++i) {
    set.add(ProfileBuilder(schema).where("x", Op::kEq, 5).build());
  }
  set.add(ProfileBuilder(schema).where("x", Op::kEq, 8).build());

  TreeConfig config;
  config.value_order = ValueOrder::kCombinedProbability;
  config.event_distribution = skewed(schema);
  const ProfileTree tree = ProfileTree::build(set, config);
  const auto& root = tree.nodes().back();
  // V3 key(5) = P_e(5) * 20/22; key(8) = P_e(8) * 1/22. With P(8)=60/79 and
  // P(5)=10/79: key(5) ≈ 0.115 > key(8) ≈ 0.035 -> 5 first despite events.
  EXPECT_EQ(root.scan_rank[3], 1u);
  EXPECT_EQ(root.scan_rank[5], 2u);
}

// Invariants over random trees: costs bounded by the strategy's worst case,
// leaf-reachable matched sets are sorted and unique, scan ranks are a
// permutation of 1..#edges.
class TreeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeInvariants, StructuralInvariantsHold) {
  const std::uint64_t seed = GetParam();
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 29)
                               .add_integer("b", 0, 39)
                               .build();
  ProfileWorkloadOptions options;
  options.count = 80;
  options.dont_care_probability = 0.3;
  options.equality_only = seed % 2 == 0;
  options.range_width_mean = 0.15;
  options.seed = seed;
  const ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), options);
  const JointDistribution joint = make_event_distribution(schema, {"equal"});

  const SearchStrategy strategy =
      seed % 3 == 0 ? SearchStrategy::kLinear
                    : (seed % 3 == 1 ? SearchStrategy::kBinary
                                     : SearchStrategy::kInterpolation);
  TreeConfig config;
  config.strategy = strategy;
  config.value_order = ValueOrder::kEventProbability;
  config.event_distribution = joint;
  const ProfileTree tree = ProfileTree::build(profiles, config);

  for (const auto& node : tree.nodes()) {
    std::size_t edges = 0;
    std::vector<bool> rank_seen(node.cells.size() + 1, false);
    for (std::size_t i = 0; i < node.cells.size(); ++i) {
      const bool is_edge = node.child[i] != ProfileTree::kMiss;
      if (is_edge) {
        ++edges;
        ASSERT_GT(node.scan_rank[i], 0u);
        ASSERT_LE(node.scan_rank[i], node.cells.size());
        ASSERT_FALSE(rank_seen[node.scan_rank[i]]) << "duplicate rank";
        rank_seen[node.scan_rank[i]] = true;
      } else {
        ASSERT_EQ(node.scan_rank[i], 0u);
      }
    }
    // Cost bounds: linear <= #edges; binary/interpolation <= #edges and
    // <= a generous log bound for binary.
    for (std::size_t i = 0; i < node.cells.size(); ++i) {
      ASSERT_LE(node.cost[i], edges);
      if (strategy == SearchStrategy::kBinary && edges > 0) {
        const auto log_bound = static_cast<std::uint32_t>(
            std::ceil(std::log2(static_cast<double>(edges) + 1)) + 1);
        ASSERT_LE(node.cost[i], log_bound);
      }
    }
  }

  for (const auto& leaf : tree.leaves()) {
    ASSERT_FALSE(leaf.matched.empty());
    ASSERT_TRUE(std::is_sorted(leaf.matched.begin(), leaf.matched.end()));
    ASSERT_TRUE(std::adjacent_find(leaf.matched.begin(), leaf.matched.end()) ==
                leaf.matched.end());
  }

  // Expected ops are bounded by the worst-case path cost.
  const CostReport report = expected_cost(tree, joint);
  double worst = 0.0;
  for (const auto& node : tree.nodes()) {
    std::uint32_t node_worst = 0;
    for (const auto c : node.cost) node_worst = std::max(node_worst, c);
    worst += node_worst;  // loose: sums worst over all nodes per level
  }
  EXPECT_LE(report.ops_per_event, worst + 1e-9);
  EXPECT_GE(report.ops_per_event, 0.0);
  EXPECT_GE(report.match_probability, 0.0);
  EXPECT_LE(report.match_probability, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TreeInvariants,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace genas
