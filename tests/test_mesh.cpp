// Tests for the concurrent broker mesh: the mesh-vs-overlay oracle (the
// multi-threaded runtime must produce exactly the deterministic simulation's
// delivery multiset and routing state for the same topology, subscriptions,
// and events), topology files, lifecycle/error semantics, and
// covering-promotion on unsubscribe.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "mesh/mesh.hpp"
#include "mesh/topology.hpp"
#include "net/overlay.hpp"
#include "profile/parser.hpp"
#include "sim/workload.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

using mesh::MeshNetwork;
using mesh::MeshOptions;
using net::NodeId;
using net::OverlayNetwork;
using net::OverlayOptions;
using net::OverlayStats;
using net::RoutingMode;

/// Thread-safe recorder of (subscription key, event timestamp) deliveries;
/// the multiset the oracle compares. Worker threads append concurrently.
class DeliveryLog {
 public:
  void record(SubscriptionId key, const Event& event) {
    const std::scoped_lock lock(mutex_);
    entries_.emplace_back(key, event.time());
  }

  std::vector<std::pair<SubscriptionId, Timestamp>> sorted() const {
    std::vector<std::pair<SubscriptionId, Timestamp>> copy;
    {
      const std::scoped_lock lock(mutex_);
      copy = entries_;
    }
    std::sort(copy.begin(), copy.end());
    return copy;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<SubscriptionId, Timestamp>> entries_;
};

struct OracleWorkload {
  SchemaPtr schema;
  /// (node, profile) pairs, subscribed in order.
  std::vector<std::pair<NodeId, Profile>> subscriptions;
  /// (node, event) pairs, published in order; timestamps are unique.
  std::vector<std::pair<NodeId, Event>> events;
};

/// Random subscriptions (range profiles, so covering relations occur) and
/// events spread round-robin across `nodes` nodes.
OracleWorkload make_workload(std::size_t nodes, std::uint64_t seed) {
  OracleWorkload w;
  w.schema = testutil::example1_schema();

  ProfileWorkloadOptions options;
  options.count = 24;
  options.dont_care_probability = 0.4;
  options.equality_only = false;
  options.range_width_mean = 0.35;
  options.seed = seed;
  const ProfileSet profiles = generate_profiles(
      w.schema, make_profile_distributions(w.schema, {"gauss"}), options);
  std::size_t at = 0;
  for (const ProfileId id : profiles.active_ids()) {
    w.subscriptions.emplace_back(at++ % nodes, profiles.profile(id));
  }

  const JointDistribution joint = testutil::peak_joint(w.schema, true, 0.7);
  std::vector<Event> events = testutil::event_stream(joint, 120, seed + 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].set_time(static_cast<Timestamp>(i));  // unique multiset ids
    w.events.emplace_back(i % nodes, std::move(events[i]));
  }
  return w;
}

/// Brute-force reference multiset: subscription s delivers event e iff the
/// profile matches — network-independent ground truth for both runtimes.
std::vector<std::pair<SubscriptionId, Timestamp>> reference_multiset(
    const OracleWorkload& workload,
    const std::vector<SubscriptionId>& keys) {
  std::vector<std::pair<SubscriptionId, Timestamp>> expected;
  for (std::size_t s = 0; s < workload.subscriptions.size(); ++s) {
    for (const auto& [node, event] : workload.events) {
      if (workload.subscriptions[s].second.matches(event)) {
        expected.emplace_back(keys[s], event.time());
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  return expected;
}

struct Topology {
  std::string name;
  std::size_t nodes;
  std::vector<std::pair<NodeId, NodeId>> links;
};

std::vector<Topology> oracle_topologies() {
  return {
      {"line4", 4, {{0, 1}, {1, 2}, {2, 3}}},
      {"star5", 5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}},
      {"tree7", 7, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}}},
  };
}

TEST(MeshOracle, MatchesOverlayDeliveriesAndRoutingState) {
  for (const Topology& topology : oracle_topologies()) {
    for (const RoutingMode mode :
         {RoutingMode::kRouting, RoutingMode::kRoutingCovered}) {
      const std::string context =
          topology.name + "/" + std::string(net::to_string(mode));
      const OracleWorkload workload = make_workload(topology.nodes, 11);

      // The deterministic single-threaded simulation.
      OverlayOptions overlay_options;
      overlay_options.mode = mode;
      OverlayNetwork overlay(workload.schema, overlay_options);
      for (std::size_t n = 0; n < topology.nodes; ++n) overlay.add_broker();
      for (const auto& [a, b] : topology.links) overlay.connect(a, b);

      // The concurrent runtime under test.
      MeshOptions mesh_options;
      mesh_options.mode = mode;
      MeshNetwork mesh(workload.schema, mesh_options);
      for (std::size_t n = 0; n < topology.nodes; ++n) mesh.add_node();
      for (const auto& [a, b] : topology.links) mesh.connect(a, b);
      mesh.start();

      DeliveryLog log;
      std::vector<SubscriptionId> keys;
      for (const auto& [node, profile] : workload.subscriptions) {
        overlay.subscribe(node, profile);
        keys.push_back(mesh.subscribe(
            node, profile, [&log](NodeId, SubscriptionId key,
                                  const Event& event) {
              log.record(key, event);
            }));
        // Serialize propagation so covering sees the overlay's install
        // order (the routing state is order-sensitive by design).
        mesh.wait_idle();
      }

      // Identical per-node routing-entry counts after full propagation.
      for (std::size_t n = 0; n < topology.nodes; ++n) {
        EXPECT_EQ(mesh.routing_entries(n), overlay.routing_entries(n))
            << context << " node " << n;
        EXPECT_EQ(mesh.local_subscriptions(n), overlay.local_subscriptions(n))
            << context << " node " << n;
      }

      std::size_t overlay_deliveries = 0;
      for (const auto& [node, event] : workload.events) {
        overlay_deliveries += overlay.publish(node, event);
        mesh.publish(node, event);
      }
      mesh.wait_idle();

      // Identical delivery multiset — and both equal the brute-force truth.
      const auto expected = reference_multiset(workload, keys);
      EXPECT_EQ(log.sorted(), expected) << context;
      EXPECT_EQ(overlay_deliveries, expected.size()) << context;

      // Aggregate stats agree wherever both runtimes define them the same
      // way (filter_operations differ: the broker engine and the overlay's
      // matcher count comparisons over different tree builds).
      const OverlayStats& simulated = overlay.stats();
      const OverlayStats actual = mesh.stats();
      EXPECT_EQ(actual.events_published, simulated.events_published)
          << context;
      EXPECT_EQ(actual.deliveries, simulated.deliveries) << context;
      EXPECT_EQ(actual.event_messages, simulated.event_messages) << context;
      EXPECT_EQ(actual.profile_messages, simulated.profile_messages)
          << context;

      mesh.shutdown();
      EXPECT_EQ(mesh.first_error(), "");
    }
  }
}

TEST(MeshOracle, FloodingAgreesToo) {
  const Topology topology = oracle_topologies()[0];
  const OracleWorkload workload = make_workload(topology.nodes, 3);

  OverlayOptions overlay_options;
  overlay_options.mode = RoutingMode::kFlooding;
  OverlayNetwork overlay(workload.schema, overlay_options);
  for (std::size_t n = 0; n < topology.nodes; ++n) overlay.add_broker();
  for (const auto& [a, b] : topology.links) overlay.connect(a, b);

  MeshOptions mesh_options;
  mesh_options.mode = RoutingMode::kFlooding;
  MeshNetwork mesh(workload.schema, mesh_options);
  for (std::size_t n = 0; n < topology.nodes; ++n) mesh.add_node();
  for (const auto& [a, b] : topology.links) mesh.connect(a, b);
  mesh.start();

  DeliveryLog log;
  std::vector<SubscriptionId> keys;
  for (const auto& [node, profile] : workload.subscriptions) {
    overlay.subscribe(node, profile);
    keys.push_back(mesh.subscribe(node, profile,
                                  [&log](NodeId, SubscriptionId key,
                                         const Event& event) {
                                    log.record(key, event);
                                  }));
  }
  mesh.wait_idle();
  for (std::size_t n = 0; n < topology.nodes; ++n) {
    EXPECT_EQ(mesh.routing_entries(n), 0u);  // flooding keeps no state
  }

  for (const auto& [node, event] : workload.events) {
    overlay.publish(node, event);
    mesh.publish(node, event);
  }
  mesh.wait_idle();

  EXPECT_EQ(log.sorted(), reference_multiset(workload, keys));
  // Flooding crosses every link for every event: counts must agree.
  EXPECT_EQ(mesh.stats().event_messages, overlay.stats().event_messages);
  mesh.shutdown();
}

class MeshRuntimeTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();

  Event make_event(std::int64_t t, std::int64_t h, std::int64_t r,
                   Timestamp time = 0) {
    Event event = Event::from_pairs(
        schema_, {{"temperature", t}, {"humidity", h}, {"radiation", r}});
    event.set_time(time);
    return event;
  }

  /// Started 0-1-2-3 line in the given mode (MeshNetwork is pinned in
  /// place — worker threads hold references — hence the unique_ptr).
  std::unique_ptr<MeshNetwork> make_line(RoutingMode mode,
                                         std::size_t mailbox_capacity = 1024) {
    MeshOptions options;
    options.mode = mode;
    options.mailbox_capacity = mailbox_capacity;
    auto mesh = std::make_unique<MeshNetwork>(schema_, options);
    for (int i = 0; i < 4; ++i) mesh->add_node();
    mesh->connect(0, 1);
    mesh->connect(1, 2);
    mesh->connect(2, 3);
    mesh->start();
    return mesh;
  }
};

TEST_F(MeshRuntimeTest, UnsubscribePromotesCoveredEntries) {
  const std::unique_ptr<MeshNetwork> net = make_line(RoutingMode::kRoutingCovered);
  MeshNetwork& mesh = *net;
  DeliveryLog log;
  const auto callback = [&log](NodeId, SubscriptionId key,
                               const Event& event) {
    log.record(key, event);
  };

  // The general profile covers the specific one everywhere, so the specific
  // one is suppressed in every remote table.
  const SubscriptionId general =
      mesh.subscribe(3, "temperature >= 30", callback);
  mesh.wait_idle();
  const SubscriptionId specific =
      mesh.subscribe(3, "temperature >= 40 && humidity >= 90", callback);
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 1u);  // only the general entry
  EXPECT_EQ(mesh.routing_entries(1), 1u);
  EXPECT_EQ(mesh.routing_entries(2), 1u);

  // Removing the cover must promote the suppressed entry into every table
  // it had been suppressed in — events for it keep flowing.
  mesh.unsubscribe(general);
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 1u);  // the promoted specific entry
  EXPECT_EQ(mesh.routing_entries(1), 1u);
  EXPECT_EQ(mesh.routing_entries(2), 1u);
  EXPECT_EQ(mesh.local_subscriptions(3), 1u);

  mesh.publish(0, make_event(45, 95, 1, 7));
  mesh.publish(0, make_event(35, 10, 1, 8));  // matched only the general sub
  mesh.wait_idle();
  const auto delivered = log.sorted();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], (std::pair<SubscriptionId, Timestamp>{specific, 7}));
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
}

TEST_F(MeshRuntimeTest, GracefulShutdownDrainsAcceptedEvents) {
  // Tiny mailboxes force backpressure and outbox staging on the way.
  MeshOptions options;
  options.mode = RoutingMode::kRouting;
  options.mailbox_capacity = 4;
  MeshNetwork mesh(schema_, options);
  for (int i = 0; i < 3; ++i) mesh.add_node();
  mesh.connect(0, 1);
  mesh.connect(1, 2);
  mesh.start();

  std::atomic<std::uint64_t> delivered{0};
  mesh.subscribe(2, "temperature >= -30",
                 [&](NodeId, SubscriptionId, const Event&) {
                   delivered.fetch_add(1, std::memory_order_relaxed);
                 });
  mesh.wait_idle();

  constexpr std::uint64_t kEvents = 500;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    mesh.publish(0, make_event(static_cast<std::int64_t>(i % 80) - 30, 0, 1,
                               static_cast<Timestamp>(i)));
  }
  // No wait_idle: shutdown itself must drain everything already accepted.
  mesh.shutdown();
  EXPECT_EQ(delivered.load(), kEvents);
  EXPECT_EQ(mesh.stats().deliveries, kEvents);
  EXPECT_EQ(mesh.first_error(), "");
}

TEST_F(MeshRuntimeTest, LifecycleErrorsAreStateErrors) {
  MeshOptions options;
  MeshNetwork mesh(schema_, options);
  const NodeId a = mesh.add_node();
  const NodeId b = mesh.add_node();
  mesh.connect(a, b);

  const auto expect_state_error = [](auto&& fn) {
    try {
      fn();
      FAIL() << "expected Error{kState}";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kState);
    }
  };

  // Not started yet: no traffic accepted.
  expect_state_error([&] { mesh.publish(a, make_event(0, 0, 1)); });
  expect_state_error([&] {
    mesh.subscribe(a, "temperature >= 0",
                   [](NodeId, SubscriptionId, const Event&) {});
  });

  mesh.start();
  // Topology is frozen while running.
  expect_state_error([&] { mesh.add_node(); });
  expect_state_error([&] { mesh.start(); });
  EXPECT_THROW(mesh.connect(a, b), Error);

  mesh.shutdown();
  mesh.shutdown();  // idempotent
  expect_state_error([&] { mesh.publish(a, make_event(0, 0, 1)); });
  expect_state_error([&] {
    mesh.subscribe(b, "temperature >= 0",
                   [](NodeId, SubscriptionId, const Event&) {});
  });
}

TEST_F(MeshRuntimeTest, RejectsCyclesBadIdsAndForeignSchemas) {
  MeshOptions options;
  MeshNetwork mesh(schema_, options);
  for (int i = 0; i < 3; ++i) mesh.add_node();
  mesh.connect(0, 1);
  mesh.connect(1, 2);
  EXPECT_THROW(mesh.connect(0, 2), Error);  // would close the cycle
  EXPECT_THROW(mesh.connect(1, 1), Error);
  EXPECT_THROW(mesh.connect(0, 9), Error);

  mesh.start();
  EXPECT_THROW(mesh.publish(9, make_event(0, 0, 1)), Error);
  EXPECT_THROW(mesh.unsubscribe(12345), Error);

  const SchemaPtr other = testutil::example1_schema();
  EXPECT_THROW(
      mesh.publish(0, Event::from_pairs(other, {{"temperature", 0},
                                                {"humidity", 0},
                                                {"radiation", 1}})),
      Error);
  mesh.shutdown();
}

TEST_F(MeshRuntimeTest, PerLinkStatsTrackForwardingAndRoutingState) {
  const std::unique_ptr<MeshNetwork> net = make_line(RoutingMode::kRouting);
  MeshNetwork& mesh = *net;
  DeliveryLog log;
  mesh.subscribe(3, "temperature >= 35",
                 [&log](NodeId, SubscriptionId key, const Event& event) {
                   log.record(key, event);
                 });
  mesh.wait_idle();

  mesh.publish(0, make_event(40, 0, 1, 1));  // forwarded down the line
  mesh.publish(0, make_event(0, 0, 1, 2));   // rejected at node 0
  mesh.wait_idle();

  const std::vector<mesh::LinkStats> at0 = mesh.link_stats(0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0].peer, 1u);
  EXPECT_EQ(at0[0].event_messages, 1u);
  EXPECT_EQ(at0[0].routing_entries, 1u);
  EXPECT_EQ(mesh.stats().event_messages, 3u);  // one hop per line link
  EXPECT_EQ(log.sorted().size(), 1u);
  mesh.shutdown();
}

TEST(MeshTopology, ParsesLinksAndSubscriptions) {
  const mesh::MeshTopology topology = mesh::topology_from_string(
      "# demo\n"
      "nodes 4\n"
      "link 0 1\n"
      "link 1 2\n"
      "link 2 3\n"
      "sub 3 temperature >= 35 && humidity >= 90\n"
      "sub 0 radiation <= 10\n"
      "csub 1 seq({temperature >= 35}, {humidity >= 90}, w=10)\n");
  EXPECT_EQ(topology.nodes, 4u);
  ASSERT_EQ(topology.links.size(), 3u);
  EXPECT_EQ(topology.links[1], (std::pair<net::NodeId, net::NodeId>{1, 2}));
  ASSERT_EQ(topology.subscriptions.size(), 2u);
  EXPECT_EQ(topology.subscriptions[0].first, 3u);
  EXPECT_EQ(topology.subscriptions[0].second,
            "temperature >= 35 && humidity >= 90");
  ASSERT_EQ(topology.composites.size(), 1u);
  EXPECT_EQ(topology.composites[0].first, 1u);
  EXPECT_EQ(topology.composites[0].second,
            "seq({temperature >= 35}, {humidity >= 90}, w=10)");

  // Round-trips through the text renderer.
  const mesh::MeshTopology again =
      mesh::topology_from_string(mesh::topology_to_string(topology));
  EXPECT_EQ(again.nodes, topology.nodes);
  EXPECT_EQ(again.links, topology.links);
  EXPECT_EQ(again.subscriptions, topology.subscriptions);
  EXPECT_EQ(again.composites, topology.composites);
}

TEST(MeshTopology, ParseFailuresCarryLineNumbers) {
  const auto expect_fail = [](const std::string& text,
                              const std::string& fragment) {
    try {
      mesh::topology_from_string(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse);
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_fail("link 0 1\n", "nodes directive");
  expect_fail("nodes 0\n", ">= 1 node");
  expect_fail("nodes 2\nnodes 2\n", "duplicate");
  expect_fail("nodes 2\nlink 0 5\n", "unknown node");
  expect_fail("nodes 2\nlink 0\n", "two node ids");
  expect_fail("nodes 2\nsub 7 temperature >= 0\n", "unknown node");
  expect_fail("nodes 2\nsub 0\n", "expression");
  expect_fail("nodes 2\ncsub 7 disj({a >= 0}, {b >= 0})\n", "unknown node");
  expect_fail("nodes 2\ncsub 0\n", "expression");
  expect_fail("nodes 2\nbogus\n", "unknown directive");
  expect_fail("", "no nodes");
}

/// Driving a mesh from a topology file end to end (the CLI's code path).
TEST(MeshTopology, DrivesAMeshEndToEnd) {
  const SchemaPtr schema = testutil::example1_schema();
  const mesh::MeshTopology topology = mesh::topology_from_string(
      "nodes 3\n"
      "link 0 1\n"
      "link 1 2\n"
      "sub 2 temperature >= 35\n");

  MeshOptions options;
  options.mode = RoutingMode::kRoutingCovered;
  MeshNetwork net(schema, options);
  for (std::size_t n = 0; n < topology.nodes; ++n) net.add_node();
  for (const auto& [a, b] : topology.links) net.connect(a, b);
  net.start();

  std::atomic<std::uint64_t> delivered{0};
  for (const auto& [node, expression] : topology.subscriptions) {
    net.subscribe(node, expression,
                  [&](NodeId, SubscriptionId, const Event&) {
                    delivered.fetch_add(1, std::memory_order_relaxed);
                  });
  }
  net.wait_idle();

  net.publish(0, Event::from_pairs(schema, {{"temperature", 40},
                                            {"humidity", 0},
                                            {"radiation", 1}}));
  net.wait_idle();
  EXPECT_EQ(delivered.load(), 1u);
  net.shutdown();
}

// ---------------------------------------------------------------------------
// Destruction lifecycle: ~MeshNetwork must never throw. The destructor path
// swallows shutdown failures (recording them for a post-mortem
// first_error() read); explicit shutdown() keeps throwing so callers who
// ask get the error.

TEST(MeshLifecycle, DestroyingARunningMeshWithTrafficInFlightIsQuiet) {
  const SchemaPtr schema = testutil::example1_schema();
  // No leak, no terminate: the destructor drains and joins on its own even
  // though wait_idle()/shutdown() were never called and publishes are
  // still in the mailboxes.
  MeshNetwork net(schema);
  net.add_node();
  net.add_node();
  net.connect(0, 1);
  net.start();
  net.subscribe(1, "temperature >= 35",
                [](NodeId, SubscriptionId, const Event&) {});
  for (int i = 0; i < 200; ++i) {
    net.publish(0, Event::from_pairs(schema, {{"temperature", 40},
                                              {"humidity", 0},
                                              {"radiation", 1}}));
  }
}  // destructor runs here, mid-traffic

TEST(MeshLifecycle, DestroyingANeverStartedMeshIsQuiet) {
  const SchemaPtr schema = testutil::example1_schema();
  MeshNetwork net(schema);
  net.add_node();
  net.add_node();
  net.connect(0, 1);
}  // never started: nothing to join, nothing thrown

TEST(MeshLifecycle, DestructionAfterExplicitShutdownIsANoOp) {
  const SchemaPtr schema = testutil::example1_schema();
  MeshNetwork net(schema);
  net.add_node();
  net.start();
  net.publish(0, Event::from_pairs(schema, {{"temperature", 0},
                                            {"humidity", 0},
                                            {"radiation", 1}}));
  net.shutdown();  // the throwing path — and it reports nothing here
  EXPECT_EQ(net.first_error(), "");
}  // second (destructor) shutdown is idempotent

}  // namespace
}  // namespace genas
