// Tests for the bounded event history (paper §5: event history drives the
// distribution estimate).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "ens/history.hpp"

namespace genas {
namespace {

SchemaPtr schema1() {
  return SchemaBuilder().add_integer("x", 0, 9).build();
}

Event ev(const SchemaPtr& schema, DomainIndex v, Timestamp t = 0) {
  return Event::from_indices(schema, {v}, t);
}

TEST(EventHistory, RecordsUpToCapacityThenEvicts) {
  const SchemaPtr schema = schema1();
  EventHistory history(schema, 3);
  for (DomainIndex v = 0; v < 5; ++v) history.record(ev(schema, v, v));
  EXPECT_EQ(history.size(), 3u);
  EXPECT_EQ(history.recorded(), 5u);

  // Window must be the newest three, oldest first.
  std::vector<DomainIndex> seen;
  history.for_each([&](const Event& e) { seen.push_back(e.index(0)); });
  EXPECT_EQ(seen, (std::vector<DomainIndex>{2, 3, 4}));
}

TEST(EventHistory, EmpiricalDistributionMatchesWindow) {
  const SchemaPtr schema = schema1();
  EventHistory history(schema, 4);
  for (const DomainIndex v : {7, 7, 7, 2}) history.record(ev(schema, v));
  const JointDistribution joint = history.empirical_distribution(0.0);
  EXPECT_DOUBLE_EQ(joint.marginal(0).pmf(7), 0.75);
  EXPECT_DOUBLE_EQ(joint.marginal(0).pmf(2), 0.25);
  EXPECT_DOUBLE_EQ(joint.marginal(0).pmf(0), 0.0);
}

TEST(EventHistory, EvictionChangesTheEstimate) {
  const SchemaPtr schema = schema1();
  EventHistory history(schema, 2);
  history.record(ev(schema, 0));
  history.record(ev(schema, 0));
  history.record(ev(schema, 9));  // evicts one 0
  const JointDistribution joint = history.empirical_distribution(0.0);
  EXPECT_DOUBLE_EQ(joint.marginal(0).pmf(0), 0.5);
  EXPECT_DOUBLE_EQ(joint.marginal(0).pmf(9), 0.5);
}

TEST(EventHistory, ReplayWarmsAnEstimator) {
  const SchemaPtr schema = schema1();
  EventHistory history(schema, 100);
  EventSampler sampler(
      JointDistribution::independent(schema,
                                     {shapes::percent_peak(10, 1.0, true, 0.1)}),
      1);
  for (int i = 0; i < 100; ++i) history.record(sampler.sample());

  SchemaEstimator estimator(schema);
  history.replay_into(estimator);
  EXPECT_EQ(estimator.observations(), 100u);
  EXPECT_GT(estimator.attribute(0).estimate(0.0).pmf(9), 0.9);
}

TEST(EventHistory, ClearEmptiesTheWindowOnly) {
  const SchemaPtr schema = schema1();
  EventHistory history(schema, 2);
  history.record(ev(schema, 1));
  history.clear();
  EXPECT_EQ(history.size(), 0u);
  EXPECT_EQ(history.recorded(), 1u);  // lifetime counter survives
  EXPECT_THROW(history.empirical_distribution(0.0), Error);
  history.record(ev(schema, 2));  // usable after clear
  EXPECT_EQ(history.size(), 1u);
}

TEST(EventHistory, Validation) {
  const SchemaPtr schema = schema1();
  EXPECT_THROW(EventHistory(nullptr, 4), Error);
  EXPECT_THROW(EventHistory(schema, 0), Error);
  EventHistory history(schema, 2);
  const SchemaPtr other = schema1();
  EXPECT_THROW(history.record(ev(other, 0)), Error);
  EXPECT_THROW(history.for_each(nullptr), Error);
}

}  // namespace
}  // namespace genas
