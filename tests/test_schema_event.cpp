// Unit tests for Schema, SchemaBuilder, and Event.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "event/event.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

TEST(Schema, BuilderAndLookup) {
  const SchemaPtr schema = testutil::example1_schema();
  EXPECT_EQ(schema->attribute_count(), 3u);
  EXPECT_EQ(schema->id_of("temperature"), 0u);
  EXPECT_EQ(schema->id_of("radiation"), 2u);
  EXPECT_TRUE(schema->has_attribute("humidity"));
  EXPECT_FALSE(schema->has_attribute("pressure"));
  EXPECT_THROW(schema->id_of("pressure"), Error);
  EXPECT_THROW(schema->attribute(3), Error);
  EXPECT_NE(schema->to_string().find("temperature"), std::string::npos);
}

TEST(Schema, BuilderValidation) {
  SchemaBuilder builder;
  builder.add_integer("a", 0, 1);
  EXPECT_THROW(builder.add_integer("a", 0, 1), Error);  // duplicate
  EXPECT_THROW(builder.add_integer("", 0, 1), Error);   // empty name
  const SchemaPtr schema = builder.build();
  EXPECT_THROW(builder.build(), Error);                 // consumed
  EXPECT_THROW(builder.add_integer("b", 0, 1), Error);  // consumed
  EXPECT_EQ(schema->attribute_count(), 1u);
}

TEST(Schema, RequiresAtLeastOneAttribute) {
  SchemaBuilder builder;
  EXPECT_THROW(builder.build(), Error);
}

TEST(Event, FromPairsAndAccess) {
  const SchemaPtr schema = testutil::example1_schema();
  const Event event = Event::from_pairs(
      schema,
      {{"temperature", 30}, {"humidity", 90}, {"radiation", 2}}, 17);
  EXPECT_EQ(event.time(), 17);
  EXPECT_EQ(event.value("temperature").as_int(), 30);
  EXPECT_EQ(event.value(1).as_int(), 90);
  EXPECT_EQ(event.index(0), 60);  // 30 - (-30)
  EXPECT_EQ(event.index(2), 1);   // radiation domain starts at 1
  EXPECT_NE(event.to_string().find("humidity=90"), std::string::npos);
}

TEST(Event, FromPairsValidation) {
  const SchemaPtr schema = testutil::example1_schema();
  // Missing attribute.
  EXPECT_THROW(
      Event::from_pairs(schema, {{"temperature", 30}, {"humidity", 90}}),
      Error);
  // Duplicate assignment.
  EXPECT_THROW(Event::from_pairs(schema, {{"temperature", 30},
                                          {"temperature", 31},
                                          {"humidity", 90},
                                          {"radiation", 2}}),
               Error);
  // Out-of-domain value.
  EXPECT_THROW(Event::from_pairs(schema, {{"temperature", 99},
                                          {"humidity", 90},
                                          {"radiation", 2}}),
               Error);
  // Unknown attribute.
  EXPECT_THROW(Event::from_pairs(schema, {{"pressure", 1},
                                          {"humidity", 90},
                                          {"radiation", 2}}),
               Error);
}

TEST(Event, FromIndicesValidation) {
  const SchemaPtr schema = testutil::example1_schema();
  EXPECT_NO_THROW(Event::from_indices(schema, {0, 0, 0}));
  EXPECT_THROW(Event::from_indices(schema, {0, 0}), Error);
  EXPECT_THROW(Event::from_indices(schema, {81, 0, 0}), Error);
  EXPECT_THROW(Event::from_indices(schema, {-1, 0, 0}), Error);
  EXPECT_THROW(Event::from_indices(nullptr, {}), Error);
}

TEST(Event, TimestampMutable) {
  const SchemaPtr schema = testutil::example1_schema();
  Event event = Event::from_indices(schema, {0, 0, 0});
  event.set_time(123);
  EXPECT_EQ(event.time(), 123);
}

}  // namespace
}  // namespace genas
