// Socket transport under concurrency: many clients churning subscriptions
// and publishes against one BrokerServer while some of them vanish
// abruptly mid-stream. Runs in the tsan-stress CI job, so everything stays
// in one process (no fork) and every shared structure is exercised from
// multiple threads at once: accept loop, per-connection handlers, delivery
// writes from publishing threads, and the disconnect cleanup path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "net/broker_server.hpp"
#include "net/remote_client.hpp"
#include "net/socket_channel.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"
#include "wire/codec.hpp"

namespace genas {
namespace {

using net::BrokerServer;
using net::RemoteBrokerClient;
using net::SocketChannel;
using namespace std::chrono_literals;

bool eventually(const std::function<bool()>& condition) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

TEST(SocketStress, ClientChurnWithAbruptDisconnects) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();
  const std::uint16_t port = server.port();

  constexpr int kChurnThreads = 4;
  constexpr int kRoundsPerThread = 6;
  std::atomic<std::uint64_t> deliveries{0};
  std::atomic<int> failures{0};

  // Churn threads: connect, subscribe (plain + composite), publish into
  // everyone's subscriptions, sometimes flush, then leave — half the
  // rounds gracefully, half by dropping the socket with state installed.
  std::vector<std::thread> churn;
  churn.reserve(kChurnThreads);
  for (int t = 0; t < kChurnThreads; ++t) {
    churn.emplace_back([&, t] {
      try {
        for (int round = 0; round < kRoundsPerThread; ++round) {
          RemoteBrokerClient client("127.0.0.1", port);
          client.subscribe("temperature >= " + std::to_string(30 + t),
                           [&deliveries](const Notification&) {
                             deliveries.fetch_add(1,
                                                  std::memory_order_relaxed);
                           });
          client.subscribe_composite(
              "seq({temperature >= 35}, {humidity >= 90}, w=5)",
              [](const CompositeFiring&) {});
          for (int e = 0; e < 10; ++e) {
            client.publish("temperature = 45; humidity = " +
                               std::to_string((e * 7) % 100) +
                               "; radiation = 1",
                           e);
          }
          if (round % 2 == 0) {
            client.flush();
            client.close();  // graceful: server still does the retraction
          }
          // Odd rounds: destructor closes the socket while deliveries for
          // our own publishes may still be streaming toward us.
        }
      } catch (const std::exception&) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // One raw-socket vandal per churn generation: handshake, install state,
  // die without a word — exercising cleanup against concurrent publishes.
  std::thread vandal([&] {
    try {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        SocketChannel raw = SocketChannel::connect_to("127.0.0.1", port);
        if (!raw.read_frame().has_value()) continue;  // handshake
        raw.write_frame(wire::frame_subscribe(
            1, parse_profile(schema, "humidity >= 90")));
        raw.write_frame(wire::frame_composite_subscribe(
            2, *parse_composite(
                   schema, "conj({temperature >= 35}, {radiation >= 50}, "
                           "w=5)")));
        std::this_thread::sleep_for(1ms);
      }
    } catch (const std::exception&) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // A steady publisher hammering the broker directly while connections come
  // and go: delivery callbacks race connection teardown.
  std::atomic<bool> stop_publisher{false};
  std::thread publisher([&] {
    int i = 0;
    while (!stop_publisher.load(std::memory_order_relaxed)) {
      broker.publish("temperature = 45; humidity = 95; radiation = 60",
                     ++i);
    }
  });

  for (std::thread& thread : churn) thread.join();
  vandal.join();
  stop_publisher.store(true);
  publisher.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(deliveries.load(), 0u);
  EXPECT_GE(server.connections_accepted(),
            static_cast<std::uint64_t>(kChurnThreads * kRoundsPerThread));

  // Every client is gone: all their state must have been retracted, each
  // exactly once, regardless of how the connection ended.
  ASSERT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  ASSERT_TRUE(eventually([&] {
    return broker.subscription_count() == 0 && broker.composite_count() == 0 &&
           broker.composite_leaf_count() == 0;
  }));

  server.stop();
  // Abrupt disconnects are normal lifecycle; only protocol or internal
  // errors may be recorded.
  EXPECT_EQ(server.first_error(), "");
}

TEST(SocketStress, StopWithLiveClientsShutsDownCleanly) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  // Clients that are still connected (and mid-traffic) when the server
  // stops: stop() must disconnect them, run their cleanup, and join
  // without deadlock; the clients observe a dropped connection.
  std::vector<std::unique_ptr<RemoteBrokerClient>> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(
        std::make_unique<RemoteBrokerClient>("127.0.0.1", server.port()));
    clients.back()->subscribe("temperature >= 35",
                              [](const Notification&) {});
    clients.back()->publish("temperature = 40; humidity = 1; radiation = 1",
                            c);
  }

  server.stop();
  EXPECT_EQ(broker.subscription_count(), 0u);
  for (auto& client : clients) {
    EXPECT_TRUE(eventually([&] { return !client->connected(); }));
    client->close();
  }
}

}  // namespace
}  // namespace genas
