// End-to-end integration: broker + adaptive engine + composite detector +
// event history working together, and the statistics objects driving a
// profile-distribution-aware rebuild (the paper's full §4.2 workflow).
#include <gtest/gtest.h>

#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "ens/broker.hpp"
#include "ens/composite.hpp"
#include "ens/history.hpp"
#include "test_util.hpp"
#include "tree/expected_cost.hpp"

namespace genas {
namespace {

TEST(Integration, BrokerFeedsCompositeDetectorAndHistory) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  CompositeDetector detector;
  EventHistory history(schema, 64);

  // Primitive profiles: heat spike (profile 0), humidity spike (profile 1).
  broker.subscribe("temperature >= 40", [&](const Notification& n) {
    detector.on_match(0, n.event.time());
  });
  broker.subscribe("humidity >= 95", [&](const Notification& n) {
    detector.on_match(1, n.event.time());
  });

  int fired = 0;
  detector.add(conj(primitive(0), primitive(1), 10),
               [&](const CompositeFiring&) { ++fired; });

  const auto publish = [&](Timestamp t, std::int64_t temp, std::int64_t hum) {
    const Event event = Event::from_pairs(
        schema,
        {{"temperature", temp}, {"humidity", hum}, {"radiation", 1}}, t);
    history.record(event);
    broker.publish(event);
  };

  publish(1, 45, 10);   // heat only
  publish(5, 10, 99);   // humidity within 10 -> composite fires
  EXPECT_EQ(fired, 1);
  publish(30, 45, 10);  // heat again
  publish(50, 10, 99);  // humidity 20 later -> outside window
  EXPECT_EQ(fired, 1);

  EXPECT_EQ(history.size(), 4u);
  EXPECT_EQ(broker.counters().events_published, 4u);
  EXPECT_EQ(broker.counters().notifications, 4u);
}

TEST(Integration, HistoryWarmedEngineMatchesColdEngineSemantics) {
  const SchemaPtr schema = testutil::example1_schema();
  const JointDistribution feed = JointDistribution::independent(
      schema, {shapes::percent_peak(81, 0.9, true, 0.1), shapes::equal(101),
               shapes::equal(100)});

  // Record history, then hand its empirical distribution to a fresh engine
  // as the prior (the paper's "history of events" workflow).
  EventHistory history(schema, 2000);
  for (Event& event : testutil::event_stream(feed, 2000, 3)) {
    history.record(std::move(event));
  }
  const JointDistribution learned = history.empirical_distribution();

  EngineOptions warm;
  warm.policy.value_order = ValueOrder::kEventProbability;
  warm.prior = learned;
  FilterEngine engine(schema, warm);
  engine.subscribe("temperature >= 35");
  engine.subscribe("temperature <= -10");
  engine.subscribe("humidity >= 90");

  // Semantics must equal the naive truth regardless of the learned order.
  for (const Event& event : testutil::event_stream(feed, 500, 4)) {
    const EngineMatch match = engine.match(event);
    std::vector<ProfileId> expected;
    for (const ProfileId id : engine.profiles().active_ids()) {
      if (engine.profiles().profile(id).matches(event)) {
        expected.push_back(id);
      }
    }
    ASSERT_EQ(match.matched, expected);
  }

  // And the learned order must beat the natural one on this feed.
  OrderingPolicy natural;
  const double learned_cost =
      expected_cost(engine.tree(), feed).ops_per_event;
  FilterEngine cold(schema);
  cold.subscribe("temperature >= 35");
  cold.subscribe("temperature <= -10");
  cold.subscribe("humidity >= 90");
  const double natural_cost = expected_cost(cold.tree(), feed).ops_per_event;
  EXPECT_LE(learned_cost, natural_cost + 1e-9);
}

TEST(Integration, ProfileStatisticsDriveProfileDistribution) {
  // §4.2: statistic objects derive P_p from registered profiles; verify the
  // derived distribution matches the predicate structure.
  const SchemaPtr schema = testutil::example1_schema();
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema).where("humidity", Op::kGe, 90).build());
  set.add(ProfileBuilder(schema).where("humidity", Op::kGe, 90).build());
  set.add(ProfileBuilder(schema).between("humidity", 0, 10).build());

  ProfileStatistics stats(schema);
  stats.rebuild(set);
  const DiscreteDistribution pp =
      stats.profile_distribution(schema->id_of("humidity"));
  // Mass: values 90..100 referenced twice (2*11=22), 0..10 once (11);
  // total 33.
  EXPECT_NEAR(pp.mass(Interval{90, 100}), 22.0 / 33.0, 1e-12);
  EXPECT_NEAR(pp.mass(Interval{0, 10}), 11.0 / 33.0, 1e-12);
  EXPECT_DOUBLE_EQ(pp.mass(Interval{20, 80}), 0.0);

  // Counter manipulation (the paper's simulation workflow) reshapes P_p.
  stats.set_reference_weight(schema->id_of("humidity"), 50, 100.0);
  const DiscreteDistribution shaped =
      stats.profile_distribution(schema->id_of("humidity"));
  EXPECT_GT(shaped.pmf(50), 0.7);
}

TEST(Integration, AdaptiveBrokerSurvivesChurnUnderLoad) {
  // Subscribe/unsubscribe churn interleaved with publishing and adaptive
  // rebuilds must preserve exact delivery semantics throughout.
  const SchemaPtr schema = testutil::example1_schema();
  EngineOptions options;
  options.policy.value_order = ValueOrder::kEventProbability;
  AdaptiveOptions adaptive;
  adaptive.min_observations = 100;
  adaptive.rebuild_cooldown = 100;
  adaptive.drift_threshold = 0.2;
  options.adaptive = adaptive;
  FilterEngine engine(schema, options);

  Rng rng(11);
  std::vector<ProfileId> live;
  const JointDistribution feed = JointDistribution::independent(
      schema, {shapes::gauss(81), shapes::equal(101), shapes::falling(100)});
  const auto stream = testutil::event_stream(feed, 1500, 12);

  for (int step = 0; step < 1500; ++step) {
    if (live.size() < 5 || rng.chance(0.3)) {
      const auto v = rng.range(-30, 49);
      live.push_back(engine.subscribe(
          "temperature >= " + std::to_string(v)));
    } else if (rng.chance(0.3)) {
      const std::size_t pick = rng.below(live.size());
      engine.unsubscribe(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    const Event& event = stream[static_cast<std::size_t>(step)];
    const EngineMatch match = engine.match(event);
    std::vector<ProfileId> expected;
    for (const ProfileId id : live) {
      if (engine.profiles().profile(id).matches(event)) {
        expected.push_back(id);
      }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(match.matched, expected) << "step " << step;
  }
  EXPECT_GT(engine.rebuild_count(), 1u);
}

}  // namespace
}  // namespace genas
