// Shared fixtures: the paper's Example 1 toy system and small helpers.
#pragma once

#include <vector>

#include "event/schema.hpp"
#include "profile/profile.hpp"

namespace genas::testutil {

/// Example 1 schema: temperature [-30,50], humidity [0,100],
/// radiation [1,100].
inline SchemaPtr example1_schema() {
  return SchemaBuilder()
      .add_integer("temperature", -30, 50)
      .add_integer("humidity", 0, 100)
      .add_integer("radiation", 1, 100)
      .build();
}

/// Example 1 profiles P1..P5 (ids 0..4).
inline ProfileSet example1_profiles(const SchemaPtr& schema) {
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema)  // P1
              .where("temperature", Op::kGe, 35)
              .where("humidity", Op::kGe, 90)
              .build());
  set.add(ProfileBuilder(schema)  // P2
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 90)
              .build());
  set.add(ProfileBuilder(schema)  // P3
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 90)
              .between("radiation", 35, 50)
              .build());
  set.add(ProfileBuilder(schema)  // P4
              .between("temperature", -30, -20)
              .where("humidity", Op::kLe, 5)
              .between("radiation", 40, 100)
              .build());
  set.add(ProfileBuilder(schema)  // P5
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 80)
              .build());
  return set;
}

/// Sorted copy helper for matched-set comparisons.
inline std::vector<ProfileId> sorted(std::vector<ProfileId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace genas::testutil
