// Shared fixtures: the paper's Example 1 toy system and small helpers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dist/joint.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "profile/profile.hpp"

namespace genas::testutil {

/// Example 1 schema: temperature [-30,50], humidity [0,100],
/// radiation [1,100].
inline SchemaPtr example1_schema() {
  return SchemaBuilder()
      .add_integer("temperature", -30, 50)
      .add_integer("humidity", 0, 100)
      .add_integer("radiation", 1, 100)
      .build();
}

/// Example 1 profiles P1..P5 (ids 0..4).
inline ProfileSet example1_profiles(const SchemaPtr& schema) {
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema)  // P1
              .where("temperature", Op::kGe, 35)
              .where("humidity", Op::kGe, 90)
              .build());
  set.add(ProfileBuilder(schema)  // P2
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 90)
              .build());
  set.add(ProfileBuilder(schema)  // P3
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 90)
              .between("radiation", 35, 50)
              .build());
  set.add(ProfileBuilder(schema)  // P4
              .between("temperature", -30, -20)
              .where("humidity", Op::kLe, 5)
              .between("radiation", 40, 100)
              .build());
  set.add(ProfileBuilder(schema)  // P5
              .where("temperature", Op::kGe, 30)
              .where("humidity", Op::kGe, 80)
              .build());
  return set;
}

/// Sorted copy helper for matched-set comparisons.
inline std::vector<ProfileId> sorted(std::vector<ProfileId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Independent joint whose first attribute carries `mass` of its
/// probability in the top (high) or bottom band of normalized `width`,
/// with every other attribute uniform. The canonical "skewed feed" the
/// adaptive and build-sanity suites drive regime changes with.
inline JointDistribution peak_joint(const SchemaPtr& schema, bool high,
                                    double mass = 0.95, double width = 0.2) {
  std::vector<DiscreteDistribution> marginals;
  marginals.reserve(schema->attribute_count());
  marginals.push_back(shapes::percent_peak(
      schema->attribute(0).domain.size(), mass, high, width));
  for (AttributeId id = 1; id < schema->attribute_count(); ++id) {
    marginals.push_back(shapes::equal(schema->attribute(id).domain.size()));
  }
  return JointDistribution::independent(schema, std::move(marginals));
}

/// Draws `count` events from `joint` with the deterministic library RNG
/// (common/rng.hpp via EventSampler). One shared generator keeps the
/// integration, adaptive, and smoke suites' event streams identical for a
/// given (joint, count, seed) triple.
inline std::vector<Event> event_stream(const JointDistribution& joint,
                                       std::size_t count, std::uint64_t seed) {
  EventSampler sampler(joint, seed);
  return sampler.sample_batch(count);
}

}  // namespace genas::testutil
