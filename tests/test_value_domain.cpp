// Unit tests for Value and Domain.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "event/domain.hpp"
#include "event/value.hpp"

namespace genas {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value(3).is_int());
  EXPECT_TRUE(Value(3.5).is_real());
  EXPECT_TRUE(Value("hot").is_category());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("x").as_category(), "x");
  EXPECT_THROW(Value(1).as_real(), Error);
  EXPECT_THROW(Value(1.0).as_int(), Error);
  EXPECT_THROW(Value("s").numeric(), Error);
  EXPECT_DOUBLE_EQ(Value(7).numeric(), 7.0);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(-3).to_string(), "-3");
  EXPECT_EQ(Value("warm").to_string(), "warm");
  EXPECT_EQ(Value(1.25).to_string(), "1.25");
}

TEST(Domain, IntegerIndexMapping) {
  const Domain d = Domain::integer(-30, 50);
  EXPECT_EQ(d.size(), 81);
  EXPECT_EQ(d.index_of(Value(-30)), 0);
  EXPECT_EQ(d.index_of(Value(50)), 80);
  EXPECT_EQ(d.value_at(0).as_int(), -30);
  EXPECT_EQ(d.value_at(80).as_int(), 50);
  EXPECT_FALSE(d.contains(Value(51)));
  EXPECT_THROW(d.index_of(Value(51)), Error);
  EXPECT_THROW(d.index_of(Value("x")), Error);
  EXPECT_THROW(d.value_at(81), Error);
}

TEST(Domain, IntegerRoundTripEveryIndex) {
  const Domain d = Domain::integer(-5, 5);
  for (DomainIndex i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.index_of(d.value_at(i)), i);
  }
}

TEST(Domain, RealResolution) {
  const Domain d = Domain::real(0.0, 1.0, 0.25);
  EXPECT_EQ(d.size(), 5);  // 0, .25, .5, .75, 1
  EXPECT_EQ(d.index_of(Value(0.5)), 2);
  EXPECT_DOUBLE_EQ(d.value_at(3).as_real(), 0.75);
  // Integers are accepted where a real is expected.
  EXPECT_EQ(d.index_of(Value(1)), 4);
}

TEST(Domain, CategoricalMapping) {
  const Domain d = Domain::categorical({"low", "mid", "high"});
  EXPECT_EQ(d.size(), 3);
  EXPECT_EQ(d.index_of(Value("mid")), 1);
  EXPECT_EQ(d.value_at(2).as_category(), "high");
  EXPECT_FALSE(d.contains(Value("none")));
  EXPECT_THROW(d.index_of(Value("none")), Error);
}

TEST(Domain, ConstructionValidation) {
  EXPECT_THROW(Domain::integer(5, 4), Error);
  EXPECT_THROW(Domain::real(0, 1, 0.0), Error);
  EXPECT_THROW(Domain::real(1, 0, 0.5), Error);
  EXPECT_THROW(Domain::categorical({}), Error);
  EXPECT_THROW(Domain::categorical({"a", "a"}), Error);
}

TEST(Domain, FullInterval) {
  EXPECT_EQ(Domain::integer(0, 9).full(), Interval(0, 9));
  EXPECT_EQ(Domain::categorical({"a", "b"}).full(), Interval(0, 1));
}

}  // namespace
}  // namespace genas
