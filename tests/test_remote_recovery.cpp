// Remote fault-tolerance plumbing: flush deadlines against unresponsive
// servers, half-open / slow-loris eviction under client_idle_timeout, and
// connect_with_retry's capped-backoff redial helper. The larger recovery
// story (session resume, replay, crash-restart) lives in
// test_hostile_scenarios.cpp; these are the focused unit drills.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "net/broker_server.hpp"
#include "net/remote_client.hpp"
#include "net/socket_channel.hpp"
#include "test_util.hpp"
#include "wire/codec.hpp"

namespace genas {
namespace {

using net::BrokerServer;
using net::RemoteBrokerClient;
using net::ServerOptions;
using net::SocketChannel;
using net::SocketListener;
using net::SocketTimeouts;
using namespace std::chrono_literals;

bool eventually(const std::function<bool()>& condition) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

/// A protocol-speaking fake that completes the schema handshake and then
/// ignores (or selectively answers) flush barriers — the "unresponsive
/// server" a flush deadline exists for. `answer_from` is the 1-based index
/// of the first flush to acknowledge; defaults to never answering.
class StallingServer {
 public:
  explicit StallingServer(SchemaPtr schema, std::size_t answer_from = SIZE_MAX)
      : schema_(std::move(schema)), listener_(0) {
    thread_ = std::thread([this, answer_from] { serve(answer_from); });
  }
  ~StallingServer() {
    listener_.close();
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const noexcept { return listener_.port(); }
  std::uint64_t flushes_seen() const noexcept { return flushes_.load(); }

 private:
  void serve(std::size_t answer_from) {
    try {
      std::optional<SocketChannel> channel = listener_.accept(5s);
      if (!channel) return;
      channel->write_frame(wire::frame_schema(*schema_));
      while (true) {
        std::optional<std::vector<std::uint8_t>> frame =
            channel->read_frame();
        if (!frame) return;
        const wire::Message message = wire::decode_message(*frame, schema_);
        if (const auto* flush = std::get_if<wire::FlushMsg>(&message)) {
          const std::uint64_t n = flushes_.fetch_add(1) + 1;
          if (n >= answer_from) {
            channel->write_frame(wire::frame_flush_done(flush->token));
          }
        }
      }
    } catch (const Error&) {
      // Listener closed or peer went away: test teardown.
    }
  }

  SchemaPtr schema_;
  SocketListener listener_;
  std::thread thread_;
  std::atomic<std::uint64_t> flushes_{0};
};

// ---------------------------------------------------------------------------
// flush(deadline)

TEST(FlushDeadline, TimesOutAgainstASilentServerWithoutDroppingTheLink) {
  const SchemaPtr schema = testutil::example1_schema();
  StallingServer server(schema);
  RemoteBrokerClient client("127.0.0.1", server.port());

  const auto before = std::chrono::steady_clock::now();
  try {
    client.flush(150ms);
    FAIL() << "expected Error{kTimeout}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
  EXPECT_GE(std::chrono::steady_clock::now() - before, 150ms);

  // The deadline abandoned the barrier, not the connection.
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(eventually([&] { return server.flushes_seen() >= 1; }));
}

TEST(FlushDeadline, ALaterFlushSucceedsOnceTheServerCatchesUp) {
  const SchemaPtr schema = testutil::example1_schema();
  StallingServer server(schema, /*answer_from=*/2);
  RemoteBrokerClient client("127.0.0.1", server.port());

  EXPECT_THROW(client.flush(100ms), Error);
  client.flush(5000ms);  // the second barrier is acknowledged
  EXPECT_TRUE(client.connected());
}

TEST(FlushDeadline, GenerousDeadlineBehavesLikeAPlainFlush) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker, {});
  server.start();

  RemoteBrokerClient client("127.0.0.1", server.port());
  std::atomic<int> delivered{0};
  client.subscribe("temperature >= 35",
                   [&](const Notification&) { ++delivered; });
  client.flush(5000ms);
  client.publish("temperature = 40; humidity = 0; radiation = 1", 1);
  client.flush(5000ms);
  EXPECT_EQ(delivered.load(), 1);
}

// ---------------------------------------------------------------------------
// Half-open and slow-loris eviction.

TEST(IdleEviction, HalfOpenClientIsEvictedWhileAHealthyOneKeepsWorking) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  ServerOptions options;
  options.client_idle_timeout = 200ms;
  BrokerServer server(broker, options);
  server.start();

  RemoteBrokerClient healthy("127.0.0.1", server.port());
  std::atomic<int> delivered{0};
  healthy.subscribe("temperature >= 35",
                    [&](const Notification&) { ++delivered; });
  healthy.flush();

  // A connection that completes the handshake and then never starts a
  // frame: the classic half-open peer.
  SocketChannel half_open = SocketChannel::connect_to("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(half_open.read_frame(5000ms).has_value());  // schema
  ASSERT_TRUE(eventually([&] { return server.active_connections() == 2; }));

  // The idle bound evicts it. The healthy client keeps traffic flowing
  // (each flush round-trip restarts its idle clock), so it survives.
  EXPECT_TRUE(eventually([&] {
    healthy.flush();
    return server.active_connections() == 1;
  }));
  healthy.publish("temperature = 40; humidity = 0; radiation = 1", 1);
  healthy.flush();
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_TRUE(healthy.connected());
  EXPECT_TRUE(server.first_error().empty());  // eviction is lifecycle
}

TEST(IdleEviction, SlowLorisPartialFrameIsCutOffByTheReadTimeout) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  ServerOptions options;
  options.timeouts.read = 200ms;        // bounds the mid-frame stall
  options.client_idle_timeout = 1000ms;
  BrokerServer server(broker, options);
  server.start();

  // Drip three bytes of a legitimate frame header, then stall forever.
  SocketChannel loris = SocketChannel::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(loris.read_frame(5000ms).has_value());
  const std::vector<std::uint8_t> whole = wire::frame_flush(1);
  loris.write_bytes(std::span(whole.data(), 3));

  ASSERT_TRUE(eventually([&] { return server.active_connections() == 1; }));
  EXPECT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  EXPECT_TRUE(server.first_error().empty());
}

// ---------------------------------------------------------------------------
// connect_with_retry

TEST(ConnectWithRetry, GivesUpAfterTheAttemptCap) {
  // Grab an ephemeral port and release it: nothing is listening there.
  std::uint16_t dead_port = 0;
  {
    SocketListener probe(0);
    dead_port = probe.port();
  }
  try {
    net::connect_with_retry("127.0.0.1", dead_port, 3, SocketTimeouts{},
                            5ms, 20ms);
    FAIL() << "expected the last dial's Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kState);
  }
}

TEST(ConnectWithRetry, RejectsAZeroAttemptBudget) {
  try {
    net::connect_with_retry("127.0.0.1", 1, 0);
    FAIL() << "expected Error{kInvalidArgument}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(ConnectWithRetry, SucceedsWhenTheListenerAppearsMidBackoff) {
  std::uint16_t port = 0;
  {
    SocketListener probe(0);
    port = probe.port();
  }

  std::thread late_server([port] {
    std::this_thread::sleep_for(120ms);
    SocketListener listener(port);
    std::optional<SocketChannel> accepted = listener.accept(5s);
    EXPECT_TRUE(accepted.has_value());
  });

  SocketChannel channel = net::connect_with_retry(
      "127.0.0.1", port, /*attempts=*/50, SocketTimeouts{}, 10ms, 50ms,
      /*jitter_seed=*/7);
  EXPECT_TRUE(channel.valid());
  late_server.join();
}

}  // namespace
}  // namespace genas
