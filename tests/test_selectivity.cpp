// Tests for attribute selectivity measures A1/A2/A3 (paper Example 3).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/selectivity.hpp"
#include "dist/shapes.hpp"
#include "sim/scenarios.hpp"
#include "test_util.hpp"
#include "tree/expected_cost.hpp"

namespace genas {
namespace {

class SelectivityExample3 : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  ProfileSet profiles_ = testutil::example1_profiles(schema_);
};

TEST_F(SelectivityExample3, ZeroSubdomains) {
  // a1: referenced [-30,-20] ∪ [30,50] -> D_0 = [-19,29], size 49.
  EXPECT_EQ(zero_subdomain(profiles_, 0), IntervalSet({{11, 59}}));
  // a2: referenced [0,5] ∪ [80,100] -> D_0 = [6,79], size 74.
  EXPECT_EQ(zero_subdomain(profiles_, 1), IntervalSet({{6, 79}}));
  // a3: P1/P2/P5 are don't-care on radiation -> D_0 = ∅ (paper: d_0 = 0).
  EXPECT_TRUE(zero_subdomain(profiles_, 2).is_empty());
}

TEST_F(SelectivityExample3, MeasureA1MatchesPaperOrdering) {
  const auto s = attribute_selectivities(profiles_, AttributeMeasure::kA1);
  ASSERT_EQ(s.size(), 3u);
  // Discrete counts: 49/81 ≈ 0.605, 74/101 ≈ 0.733, 0 — the paper's
  // continuous-measure values are 0.625, 0.75, 0; orderings agree.
  EXPECT_NEAR(s[0].selectivity, 49.0 / 81.0, 1e-12);
  EXPECT_NEAR(s[1].selectivity, 74.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(s[2].selectivity, 0.0);
  EXPECT_EQ(s[0].zero_size, 49);
  EXPECT_EQ(s[1].zero_size, 74);
  EXPECT_EQ(s[2].zero_size, 0);

  // Descending: a2, a1, a3 — exactly the paper's reordering.
  EXPECT_EQ(attribute_order(s, OrderDirection::kDescending),
            (std::vector<AttributeId>{1, 0, 2}));
  EXPECT_EQ(attribute_order(s, OrderDirection::kAscending),
            (std::vector<AttributeId>{2, 0, 1}));
  EXPECT_EQ(attribute_order(s, OrderDirection::kNatural),
            (std::vector<AttributeId>{0, 1, 2}));
}

TEST_F(SelectivityExample3, MeasureA2WeightsByEventMass) {
  // Events concentrated inside a1's zero-subdomain make a1 the most
  // selective attribute under A2 even though A1 prefers a2.
  const JointDistribution joint = JointDistribution::independent(
      schema_, {shapes::peak(81, 0.4, 0.3, 0.98),  // mass in [-19,29]
                shapes::percent_peak(101, 0.95, true, 0.1),  // in [90,100]
                shapes::equal(100)});
  const auto s =
      attribute_selectivities(profiles_, AttributeMeasure::kA2, &joint);
  EXPECT_GT(s[0].zero_probability, 0.8);
  EXPECT_LT(s[1].zero_probability, 0.1);
  EXPECT_GT(s[0].selectivity, s[1].selectivity);
  EXPECT_EQ(attribute_order(s, OrderDirection::kDescending)[0], 0u);
}

TEST_F(SelectivityExample3, MeasureA2RequiresDistribution) {
  EXPECT_THROW(attribute_selectivities(profiles_, AttributeMeasure::kA2),
               Error);
  EXPECT_THROW(attribute_selectivities(profiles_, AttributeMeasure::kA3),
               Error);
}

TEST(Selectivity, EmptyProfileSetHasFullZeroSubdomain) {
  const SchemaPtr schema = SchemaBuilder().add_integer("x", 0, 9).build();
  const ProfileSet empty(schema);
  EXPECT_EQ(zero_subdomain(empty, 0).size(), 10);
}

TEST(Selectivity, A3FindsAnOrderAtLeastAsGoodAsAnyFixedOne) {
  auto workload = sim::attribute_scenario(true, sim::EventFamily::kGauss, 60,
                                          24, 3);
  const auto best = best_attribute_order_exhaustive(
      workload.profiles, workload.events, ValueOrder::kNaturalAscending,
      SearchStrategy::kLinear);

  TreeConfig best_config;
  best_config.attribute_order = best;
  best_config.event_distribution = workload.events;
  const double best_cost =
      expected_cost(ProfileTree::build(workload.profiles, best_config),
                    workload.events)
          .ops_per_event;

  // Compare against natural and A1-descending orders.
  const std::vector<std::vector<AttributeId>> rivals = {
      {0, 1, 2, 3, 4},
      attribute_order(
          attribute_selectivities(workload.profiles, AttributeMeasure::kA1),
          OrderDirection::kDescending)};
  for (const auto& order : rivals) {
    TreeConfig config;
    config.attribute_order = order;
    config.event_distribution = workload.events;
    const double cost =
        expected_cost(ProfileTree::build(workload.profiles, config),
                      workload.events)
            .ops_per_event;
    EXPECT_LE(best_cost, cost + 1e-9);
  }
}

TEST(Selectivity, A3GuardsAgainstFactorialBlowup) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 3)
                               .add_integer("b", 0, 3)
                               .build();
  ProfileSet profiles(schema);
  profiles.add(ProfileBuilder(schema).where("a", Op::kEq, 0).build());
  const JointDistribution joint = JointDistribution::independent(
      schema, {shapes::equal(4), shapes::equal(4)});
  EXPECT_THROW(
      best_attribute_order_exhaustive(profiles, joint,
                                      ValueOrder::kNaturalAscending,
                                      SearchStrategy::kLinear, 1),
      Error);
}

TEST(Selectivity, Labels) {
  EXPECT_EQ(to_string(AttributeMeasure::kA1), "A1");
  EXPECT_EQ(to_string(AttributeMeasure::kA3), "A3");
  EXPECT_EQ(to_string(OrderDirection::kDescending), "descending");
}

}  // namespace
}  // namespace genas
