// Tests for workload generation and the TV/TA scenario factories.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/selectivity.hpp"
#include "sim/scenarios.hpp"
#include "sim/workload.hpp"

namespace genas {
namespace {

TEST(Workload, GeneratesRequestedProfileCount) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 99)
                               .add_integer("b", 0, 99)
                               .build();
  ProfileWorkloadOptions options;
  options.count = 500;
  options.dont_care_probability = 0.5;
  options.seed = 4;
  const ProfileSet set = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), options);
  EXPECT_EQ(set.active_count(), 500u);
  // Every profile constrains at least one attribute.
  for (const ProfileId id : set.active_ids()) {
    EXPECT_GE(set.profile(id).constrained_count(), 1u);
  }
}

TEST(Workload, EqualityProfilesFollowTheProfileDistribution) {
  const SchemaPtr schema = SchemaBuilder().add_integer("a", 0, 99).build();
  ProfileWorkloadOptions options;
  options.count = 3000;
  options.seed = 8;
  const ProfileSet set = generate_profiles(
      schema,
      make_profile_distributions(schema, {"95% high"}), options);
  // ~95% of the profile values must be in the top 5% of the domain.
  std::size_t high = 0;
  for (const ProfileId id : set.active_ids()) {
    const auto& accepted = set.profile(id).predicate(0)->accepted();
    if (accepted.intervals()[0].lo >= 95) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / 3000.0, 0.95, 0.03);
}

TEST(Workload, RangeModeProducesRanges) {
  const SchemaPtr schema = SchemaBuilder().add_integer("a", 0, 999).build();
  ProfileWorkloadOptions options;
  options.count = 100;
  options.equality_only = false;
  options.range_width_mean = 0.1;
  options.seed = 6;
  const ProfileSet set = generate_profiles(
      schema, make_profile_distributions(schema, {"equal"}), options);
  std::size_t wide = 0;
  for (const ProfileId id : set.active_ids()) {
    if (set.profile(id).predicate(0)->accepted().size() > 1) ++wide;
  }
  EXPECT_GT(wide, 90u);
}

TEST(Workload, DeterministicUnderSameSeed) {
  const SchemaPtr schema = SchemaBuilder().add_integer("a", 0, 99).build();
  ProfileWorkloadOptions options;
  options.count = 50;
  options.seed = 77;
  const auto dists = make_profile_distributions(schema, {"d13"});
  const ProfileSet s1 = generate_profiles(schema, dists, options);
  const ProfileSet s2 = generate_profiles(schema, dists, options);
  for (const ProfileId id : s1.active_ids()) {
    EXPECT_EQ(s1.profile(id).to_string(), s2.profile(id).to_string());
  }
}

TEST(Workload, Validation) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 9)
                               .add_integer("b", 0, 9)
                               .build();
  ProfileWorkloadOptions options;
  EXPECT_THROW(
      generate_profiles(schema, make_profile_distributions(schema, {"equal"}),
                        [&] {
                          auto bad = options;
                          bad.dont_care_probability = 1.0;
                          return bad;
                        }()),
      Error);
  EXPECT_THROW(generate_profiles(
                   schema, {DiscreteDistribution::uniform(10)}, options),
               Error);  // one distribution missing
  EXPECT_THROW(make_event_distribution(schema, {"equal", "equal", "equal"}),
               Error);  // wrong count
}

TEST(Scenarios, SingleAttributeShapes) {
  const auto w = sim::single_attribute(100, 200, "d37", "equal", 2);
  EXPECT_EQ(w.profiles.active_count(), 200u);
  EXPECT_EQ(w.profiles.schema()->attribute_count(), 1u);
  EXPECT_EQ(w.events.schema(), w.profiles.schema());
  EXPECT_NE(w.label.find("d37"), std::string::npos);
}

TEST(Scenarios, AttributeScenarioSelectivitySpread) {
  const auto wide =
      sim::attribute_scenario(true, sim::EventFamily::kEqual, 400, 60, 3);
  const auto narrow =
      sim::attribute_scenario(false, sim::EventFamily::kEqual, 400, 60, 3);

  const auto spread = [](const ProfileSet& profiles) {
    const auto s = attribute_selectivities(profiles, AttributeMeasure::kA1);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& a : s) {
      lo = std::min(lo, a.selectivity);
      hi = std::max(hi, a.selectivity);
    }
    return hi - lo;
  };
  // TA1 must have a much wider selectivity spread than TA2.
  EXPECT_GT(spread(wide.profiles), spread(narrow.profiles) + 0.2);
}

TEST(Scenarios, RelocatedGaussEventsLandInZeroSubdomains) {
  const auto w = sim::attribute_scenario(
      true, sim::EventFamily::kRelocatedGauss, 400, 60, 3);
  // Profile interest sits high; relocated-Gauss events sit low: most event
  // mass must fall into the zero-subdomain of the most selective attribute.
  const auto s = attribute_selectivities(w.profiles, AttributeMeasure::kA2,
                                         &w.events);
  double best = 0.0;
  for (const auto& a : s) best = std::max(best, a.zero_probability);
  EXPECT_GT(best, 0.8);
}

}  // namespace
}  // namespace genas
