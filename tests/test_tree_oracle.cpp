// The central correctness property: on random workloads, every tree
// configuration (all value orders × all search strategies × attribute
// permutations) matches exactly the same profiles as the naive oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "match/naive_matcher.hpp"
#include "sim/workload.hpp"
#include "test_util.hpp"
#include "tree/profile_tree.hpp"

namespace genas {
namespace {

struct OracleCase {
  ValueOrder order;
  SearchStrategy strategy;
  std::uint64_t seed;
};

class TreeOracle : public ::testing::TestWithParam<OracleCase> {};

JointDistribution random_joint(const SchemaPtr& schema, Rng& rng) {
  std::vector<DiscreteDistribution> marginals;
  for (const Attribute& attribute : schema->attributes()) {
    const std::int64_t d = attribute.domain.size();
    switch (rng.below(4)) {
      case 0: marginals.push_back(shapes::equal(d)); break;
      case 1: marginals.push_back(shapes::gauss(d)); break;
      case 2:
        marginals.push_back(shapes::percent_peak(d, 0.9, rng.chance(0.5)));
        break;
      default: marginals.push_back(shapes::falling(d)); break;
    }
  }
  return JointDistribution::independent(schema, std::move(marginals));
}

TEST_P(TreeOracle, AgreesWithNaiveMatcherOnRandomWorkloads) {
  const OracleCase param = GetParam();
  Rng rng(param.seed);

  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 39)
                               .add_integer("b", -10, 19)
                               .add_integer("c", 0, 24)
                               .build();

  // Random mixed workload: range + equality profiles with don't-cares.
  ProfileWorkloadOptions options;
  options.count = 150;
  options.dont_care_probability = 0.35;
  options.equality_only = rng.chance(0.5);
  options.range_width_mean = 0.15;
  options.seed = param.seed * 7919 + 13;
  std::vector<DiscreteDistribution> profile_dists;
  for (const Attribute& attribute : schema->attributes()) {
    profile_dists.push_back(
        shapes::gauss(attribute.domain.size(), 0.6, 0.25));
  }
  const ProfileSet profiles =
      generate_profiles(schema, profile_dists, options);

  const JointDistribution joint = random_joint(schema, rng);

  // Random attribute permutation as well.
  TreeConfig config;
  config.attribute_order = {0, 1, 2};
  for (std::size_t i = 2; i > 0; --i) {
    std::swap(config.attribute_order[i],
              config.attribute_order[rng.below(i + 1)]);
  }
  config.value_order = param.order;
  config.strategy = param.strategy;
  config.event_distribution = joint;

  const ProfileTree tree = ProfileTree::build(profiles, config);
  const NaiveMatcher oracle(profiles);

  EventSampler sampler(joint, param.seed + 1);
  for (int i = 0; i < 400; ++i) {
    const Event event = sampler.sample();
    const TreeMatch tree_match = tree.match(event);
    const MatchOutcome expected = oracle.match(event);
    std::vector<ProfileId> got;
    if (tree_match.matched != nullptr) got = *tree_match.matched;
    ASSERT_EQ(got, expected.matched) << event.to_string();
    // Cost sanity: at most one full scan per level.
    std::size_t bound = 0;
    for (const auto& node : tree.nodes()) {
      bound = std::max(bound, node.cells.size());
    }
    EXPECT_LE(tree_match.operations, 3 * (bound + 1));
  }
}

std::vector<OracleCase> oracle_cases() {
  std::vector<OracleCase> cases;
  const ValueOrder orders[] = {
      ValueOrder::kNaturalAscending, ValueOrder::kNaturalDescending,
      ValueOrder::kEventProbability, ValueOrder::kProfileProbability,
      ValueOrder::kCombinedProbability};
  const SearchStrategy strategies[] = {
      SearchStrategy::kLinear, SearchStrategy::kBinary,
      SearchStrategy::kInterpolation, SearchStrategy::kHash};
  std::uint64_t seed = 1;
  for (const ValueOrder order : orders) {
    for (const SearchStrategy strategy : strategies) {
      cases.push_back({order, strategy, seed++});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<OracleCase>& info) {
  std::string name = std::string(to_string(info.param.order)) + "_" +
                     std::string(to_string(info.param.strategy));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllOrdersAndStrategies, TreeOracle,
                         ::testing::ValuesIn(oracle_cases()), case_name);

}  // namespace
}  // namespace genas
