// Unit and property tests for Interval and IntervalSet algebra.
#include <gtest/gtest.h>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "profile/interval_set.hpp"

namespace genas {
namespace {

TEST(Interval, DefaultIsEmpty) {
  const Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.size(), 0);
  EXPECT_FALSE(iv.contains(0));
}

TEST(Interval, PointAndSize) {
  const Interval p = Interval::point(7);
  EXPECT_EQ(p.size(), 1);
  EXPECT_TRUE(p.contains(7));
  EXPECT_FALSE(p.contains(6));
  EXPECT_EQ(Interval(3, 9).size(), 7);
}

TEST(Interval, ContainsAndOverlaps) {
  const Interval a(0, 10);
  const Interval b(5, 15);
  const Interval c(11, 20);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.contains(Interval(2, 8)));
  EXPECT_FALSE(a.contains(b));
  EXPECT_TRUE(a.contains(Interval()));  // empty is contained everywhere
}

TEST(Interval, Intersect) {
  EXPECT_EQ(Interval(0, 10).intersect({5, 15}), Interval(5, 10));
  EXPECT_TRUE(Interval(0, 4).intersect({5, 9}).empty());
}

TEST(Interval, AdjacentBefore) {
  EXPECT_TRUE(Interval(0, 4).adjacent_before({5, 9}));
  EXPECT_FALSE(Interval(0, 4).adjacent_before({6, 9}));
  EXPECT_FALSE(Interval(0, 4).adjacent_before({4, 9}));
}

TEST(Interval, ToString) {
  EXPECT_EQ(Interval(2, 5).to_string(), "[2,5]");
  EXPECT_EQ(Interval().to_string(), "[]");
}

TEST(IntervalSet, CanonicalizesOverlapsAndAdjacency) {
  const IntervalSet set({{5, 9}, {0, 4}, {12, 15}, {8, 11}});
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_EQ(set.intervals()[0], Interval(0, 15));
}

TEST(IntervalSet, DropsEmptyIntervals) {
  const IntervalSet set({{3, 2}, {5, 5}});
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_EQ(set.size(), 1);
}

TEST(IntervalSet, ContainsBinarySearch) {
  const IntervalSet set({{0, 3}, {10, 12}, {20, 20}});
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(11));
  EXPECT_TRUE(set.contains(20));
  EXPECT_FALSE(set.contains(4));
  EXPECT_FALSE(set.contains(19));
  EXPECT_FALSE(set.contains(21));
}

TEST(IntervalSet, CoversAndOverlaps) {
  const IntervalSet set({{0, 5}, {10, 15}});
  EXPECT_TRUE(set.covers({1, 4}));
  EXPECT_FALSE(set.covers({4, 11}));  // gap in between
  EXPECT_TRUE(set.overlaps({5, 9}));
  EXPECT_FALSE(set.overlaps({6, 9}));
}

TEST(IntervalSet, UniteIntersectComplementSmall) {
  const IntervalSet a({{0, 5}, {10, 15}});
  const IntervalSet b({{4, 11}});
  EXPECT_EQ(a.unite(b), IntervalSet({{0, 15}}));
  EXPECT_EQ(a.intersect(b), IntervalSet({{4, 5}, {10, 11}}));
  EXPECT_EQ(a.complement({0, 20}), IntervalSet({{6, 9}, {16, 20}}));
  EXPECT_EQ(IntervalSet().complement({0, 3}), IntervalSet({{0, 3}}));
}

// Property: set algebra agrees with the point-wise membership semantics.
class IntervalSetAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

IntervalSet random_set(Rng& rng, DomainIndex universe_hi) {
  std::vector<Interval> parts;
  const std::size_t count = 1 + rng.below(5);
  for (std::size_t i = 0; i < count; ++i) {
    const DomainIndex lo = rng.range(0, universe_hi);
    const DomainIndex hi = rng.range(lo, universe_hi);
    parts.push_back({lo, hi});
  }
  return IntervalSet(std::move(parts));
}

TEST_P(IntervalSetAlgebra, MatchesPointwiseSemantics) {
  Rng rng(GetParam());
  const Interval universe{0, 60};
  const IntervalSet a = random_set(rng, universe.hi);
  const IntervalSet b = random_set(rng, universe.hi);
  const IntervalSet u = a.unite(b);
  const IntervalSet i = a.intersect(b);
  const IntervalSet c = a.complement(universe);
  for (DomainIndex v = universe.lo; v <= universe.hi; ++v) {
    const bool in_a = a.contains(v);
    const bool in_b = b.contains(v);
    EXPECT_EQ(u.contains(v), in_a || in_b) << "v=" << v;
    EXPECT_EQ(i.contains(v), in_a && in_b) << "v=" << v;
    EXPECT_EQ(c.contains(v), !in_a) << "v=" << v;
  }
  // Canonical form: disjoint, non-adjacent, sorted.
  for (std::size_t k = 1; k < u.intervals().size(); ++k) {
    EXPECT_GT(u.intervals()[k].lo, u.intervals()[k - 1].hi + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetAlgebra,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace genas
