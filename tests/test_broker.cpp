// Tests for the ENS broker: subscriptions, delivery, counters, statistics.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  Broker broker_{schema_};
};

TEST_F(BrokerTest, DeliversToMatchingSubscribers) {
  std::vector<SubscriptionId> fired;
  const SubscriptionId hot = broker_.subscribe(
      "temperature >= 35",
      [&](const Notification& n) { fired.push_back(n.subscription); });
  const SubscriptionId wet = broker_.subscribe(
      "humidity >= 90",
      [&](const Notification& n) { fired.push_back(n.subscription); });
  broker_.subscribe("humidity <= 5", [&](const Notification& n) {
    fired.push_back(n.subscription);
  });

  const PublishResult result =
      broker_.publish("temperature = 40; humidity = 95; radiation = 1");
  EXPECT_EQ(result.notified, 2u);
  EXPECT_EQ(testutil::sorted(std::vector<ProfileId>(
                {static_cast<ProfileId>(fired[0]),
                 static_cast<ProfileId>(fired[1])})),
            testutil::sorted({static_cast<ProfileId>(hot),
                              static_cast<ProfileId>(wet)}));
}

TEST_F(BrokerTest, NotificationCarriesTheEvent) {
  Value seen_temp(0);
  broker_.subscribe("temperature >= 35", [&](const Notification& n) {
    seen_temp = n.event.value("temperature");
  });
  broker_.publish("temperature = 42; humidity = 1; radiation = 1");
  EXPECT_EQ(seen_temp.as_int(), 42);
}

TEST_F(BrokerTest, UnsubscribeStopsDelivery) {
  int fired = 0;
  const SubscriptionId id = broker_.subscribe(
      "temperature >= 35", [&](const Notification&) { ++fired; });
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  broker_.unsubscribe(id);
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  EXPECT_EQ(fired, 1);
  EXPECT_THROW(broker_.unsubscribe(id), Error);
  EXPECT_EQ(broker_.subscription_count(), 0u);
}

TEST_F(BrokerTest, CountersAggregate) {
  broker_.subscribe("temperature >= 35", [](const Notification&) {});
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  broker_.publish("temperature = 0; humidity = 0; radiation = 1");  // miss
  const ServiceCounters counters = broker_.counters();
  EXPECT_EQ(counters.events_published, 2u);
  EXPECT_EQ(counters.events_matched, 1u);
  EXPECT_EQ(counters.notifications, 1u);
  EXPECT_GT(counters.operations, 0u);
  EXPECT_DOUBLE_EQ(counters.match_rate(), 0.5);
  EXPECT_GT(counters.ops_per_event(), 0.0);
}

TEST_F(BrokerTest, CallbacksMayResubscribe) {
  // Callbacks run outside the broker lock: re-entrant subscribe is legal.
  int fired = 0;
  broker_.subscribe("temperature >= 35", [&](const Notification&) {
    ++fired;
    if (fired == 1) {
      broker_.subscribe("humidity >= 90", [&](const Notification&) {});
    }
  });
  EXPECT_NO_THROW(
      broker_.publish("temperature = 40; humidity = 0; radiation = 1"));
  EXPECT_EQ(broker_.subscription_count(), 2u);
}

TEST_F(BrokerTest, ProfileStatisticsReflectSubscriptions) {
  broker_.subscribe("humidity >= 99", [](const Notification&) {});
  broker_.subscribe("humidity >= 99", [](const Notification&) {});
  const ProfileStatistics stats = broker_.profile_statistics();
  EXPECT_EQ(stats.constrained_profiles(schema_->id_of("humidity")), 2u);
  EXPECT_DOUBLE_EQ(stats.reference_count(schema_->id_of("humidity"), 99), 2.0);
  EXPECT_DOUBLE_EQ(stats.reference_count(schema_->id_of("humidity"), 42), 0.0);
  EXPECT_EQ(stats.operator_count(Op::kGe), 2u);
}

TEST_F(BrokerTest, ConcurrentPublishersAreSerialized) {
  std::atomic<int> fired{0};
  broker_.subscribe("temperature >= 0", [&](const Notification&) { ++fired; });
  constexpr int kPerThread = 200;
  const auto worker = [&] {
    for (int i = 0; i < kPerThread; ++i) {
      broker_.publish("temperature = 10; humidity = 5; radiation = 1");
    }
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(fired.load(), 2 * kPerThread);
  EXPECT_EQ(broker_.counters().events_published,
            static_cast<std::uint64_t>(2 * kPerThread));
}

TEST_F(BrokerTest, Validation) {
  EXPECT_THROW(broker_.subscribe("temperature >= 35", nullptr), Error);
  EXPECT_THROW(Broker(nullptr), Error);
}

TEST_F(BrokerTest, PublishBatchMatchesSinglePublishes) {
  Broker single(schema_);
  std::vector<std::pair<SubscriptionId, Timestamp>> batch_seen, single_seen;
  for (Broker* broker : {&broker_, &single}) {
    auto* seen = broker == &broker_ ? &batch_seen : &single_seen;
    broker->subscribe("temperature >= 35", [seen](const Notification& n) {
      seen->emplace_back(n.subscription, n.event.time());
    });
    broker->subscribe("humidity >= 90", [seen](const Notification& n) {
      seen->emplace_back(n.subscription, n.event.time());
    });
  }

  std::vector<Event> events;
  for (Timestamp t = 0; t < 8; ++t) {
    events.push_back(Event::from_pairs(
        schema_,
        {{"temperature", 30 + 2 * t}, {"humidity", 88 + t}, {"radiation", 1}},
        t));
  }

  const BatchPublishResult batch = broker_.publish_batch(events);
  std::size_t single_notified = 0;
  std::uint64_t single_operations = 0;
  std::size_t single_matched_events = 0;
  for (const Event& event : events) {
    const PublishResult result = single.publish(event);
    single_notified += result.notified;
    single_operations += result.operations;
    if (result.notified > 0) ++single_matched_events;
  }

  EXPECT_EQ(batch.events, events.size());
  EXPECT_EQ(batch.notified, single_notified);
  EXPECT_EQ(batch.operations, single_operations);
  EXPECT_EQ(batch.matched_events, single_matched_events);
  EXPECT_EQ(batch_seen, single_seen);

  const ServiceCounters counters = broker_.counters();
  EXPECT_EQ(counters.events_published, events.size());
  EXPECT_EQ(counters.notifications, batch.notified);
  EXPECT_EQ(counters.operations, batch.operations);

  EXPECT_EQ(broker_.publish_batch({}).events, 0u);
}

TEST_F(BrokerTest, PublishBatchDrainsNotificationsOutsideLock) {
  // A callback fired from a batch may re-enter the broker (subscribe or
  // even publish another batch) without deadlocking.
  int fired = 0;
  broker_.subscribe("temperature >= 35", [&](const Notification&) {
    if (++fired == 1) {
      broker_.subscribe("humidity >= 90", [](const Notification&) {});
      broker_.publish("temperature = 36; humidity = 0; radiation = 1");
    }
  });
  std::vector<Event> events = {
      Event::from_pairs(schema_, {{"temperature", 40},
                                  {"humidity", 0},
                                  {"radiation", 1}})};
  const BatchPublishResult result = broker_.publish_batch(events);
  EXPECT_EQ(result.notified, 1u);
  EXPECT_EQ(fired, 2);  // re-entrant publish delivered too
  EXPECT_EQ(broker_.subscription_count(), 2u);
}

TEST_F(BrokerTest, PublishBatchWithAdaptiveEngineStillDelivers) {
  EngineOptions options;
  AdaptiveOptions adaptive;
  adaptive.min_observations = 4;
  adaptive.rebuild_cooldown = 4;
  options.adaptive = adaptive;
  Broker broker(schema_, options);
  int fired = 0;
  broker.subscribe("temperature >= 35", [&](const Notification&) { ++fired; });

  std::vector<Event> events;
  for (int i = 0; i < 16; ++i) {
    events.push_back(Event::from_pairs(
        schema_,
        {{"temperature", 40}, {"humidity", i % 100}, {"radiation", 1}}));
  }
  const BatchPublishResult result = broker.publish_batch(events);
  EXPECT_EQ(result.notified, 16u);
  EXPECT_EQ(fired, 16);
  EXPECT_EQ(broker.counters().events_published, 16u);
}

// --- delivery sinks ---------------------------------------------------------

TEST_F(BrokerTest, MultipleDeliverySinksAllObserveAndSetOnlySwapsItsOwn) {
  // Regression: set_delivery_sink used to silently clobber whatever sink was
  // installed — an internal tap could knock out a user sink. Sinks added
  // through add_delivery_sink are independent; set_delivery_sink swaps only
  // the sink it installed itself.
  int user = 0;
  int first_default = 0;
  int second_default = 0;
  broker_.subscribe("temperature >= 35", [](const Notification&) {});

  const SinkId user_sink =
      broker_.add_delivery_sink([&](const Notification&) { ++user; });
  broker_.set_delivery_sink([&](const Notification&) { ++first_default; });

  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  EXPECT_EQ(user, 1);
  EXPECT_EQ(first_default, 1);

  // Explicit swap: replaces the previous set_delivery_sink slot only.
  broker_.set_delivery_sink([&](const Notification&) { ++second_default; });
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  EXPECT_EQ(user, 2);          // survived the swap
  EXPECT_EQ(first_default, 1); // swapped out
  EXPECT_EQ(second_default, 1);

  // Clearing the default slot leaves added sinks installed.
  broker_.set_delivery_sink(nullptr);
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  EXPECT_EQ(user, 3);
  EXPECT_EQ(second_default, 1);

  broker_.remove_delivery_sink(user_sink);
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  EXPECT_EQ(user, 3);
  EXPECT_THROW(broker_.remove_delivery_sink(user_sink), Error);
  EXPECT_THROW(broker_.add_delivery_sink(nullptr), Error);
}

TEST_F(BrokerTest, SinksObserveBatchDeliveries) {
  int sink_batch = 0;
  int sink_added = 0;
  broker_.subscribe("temperature >= 35", [](const Notification&) {});
  broker_.set_delivery_sink([&](const Notification&) { ++sink_batch; });
  broker_.add_delivery_sink([&](const Notification&) { ++sink_added; });

  std::vector<Event> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back(Event::from_pairs(
        schema_, {{"temperature", 40}, {"humidity", i}, {"radiation", 1}}));
  }
  const BatchPublishResult result = broker_.publish_batch(events);
  EXPECT_EQ(result.notified, 4u);
  EXPECT_EQ(sink_batch, 4);
  EXPECT_EQ(sink_added, 4);
}

TEST_F(BrokerTest, BatchSurvivesReentrantSubscribeAndPublishMidDrain) {
  // Regression: publish_batch used to scope its snapshot handle inside the
  // matching block while the drain dereferenced raw pointers into it — a
  // callback that subscribes (bumping the version) and then publishes
  // (refreshing the thread-local cache, the only other owner) freed the
  // snapshot under the remaining deliveries.
  int follower_fired = 0;
  bool reentered = false;
  broker_.subscribe("temperature >= 35", [&](const Notification&) {
    if (reentered) return;
    reentered = true;
    broker_.subscribe("humidity <= 100", [](const Notification&) {});
    broker_.publish("temperature = 10; humidity = 1; radiation = 1");
  });
  broker_.subscribe("temperature >= 30",
                    [&](const Notification&) { ++follower_fired; });

  std::vector<Event> events;
  events.push_back(Event::from_pairs(
      schema_, {{"temperature", 40}, {"humidity", 0}, {"radiation", 1}}));
  const BatchPublishResult result = broker_.publish_batch(events);
  EXPECT_EQ(result.notified, 2u);
  EXPECT_EQ(follower_fired, 1);
  EXPECT_EQ(broker_.subscription_count(), 3u);
}

}  // namespace
}  // namespace genas
