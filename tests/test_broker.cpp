// Tests for the ENS broker: subscriptions, delivery, counters, statistics.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  Broker broker_{schema_};
};

TEST_F(BrokerTest, DeliversToMatchingSubscribers) {
  std::vector<SubscriptionId> fired;
  const SubscriptionId hot = broker_.subscribe(
      "temperature >= 35",
      [&](const Notification& n) { fired.push_back(n.subscription); });
  const SubscriptionId wet = broker_.subscribe(
      "humidity >= 90",
      [&](const Notification& n) { fired.push_back(n.subscription); });
  broker_.subscribe("humidity <= 5", [&](const Notification& n) {
    fired.push_back(n.subscription);
  });

  const PublishResult result =
      broker_.publish("temperature = 40; humidity = 95; radiation = 1");
  EXPECT_EQ(result.notified, 2u);
  EXPECT_EQ(testutil::sorted(std::vector<ProfileId>(
                {static_cast<ProfileId>(fired[0]),
                 static_cast<ProfileId>(fired[1])})),
            testutil::sorted({static_cast<ProfileId>(hot),
                              static_cast<ProfileId>(wet)}));
}

TEST_F(BrokerTest, NotificationCarriesTheEvent) {
  Value seen_temp(0);
  broker_.subscribe("temperature >= 35", [&](const Notification& n) {
    seen_temp = n.event.value("temperature");
  });
  broker_.publish("temperature = 42; humidity = 1; radiation = 1");
  EXPECT_EQ(seen_temp.as_int(), 42);
}

TEST_F(BrokerTest, UnsubscribeStopsDelivery) {
  int fired = 0;
  const SubscriptionId id = broker_.subscribe(
      "temperature >= 35", [&](const Notification&) { ++fired; });
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  broker_.unsubscribe(id);
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  EXPECT_EQ(fired, 1);
  EXPECT_THROW(broker_.unsubscribe(id), Error);
  EXPECT_EQ(broker_.subscription_count(), 0u);
}

TEST_F(BrokerTest, CountersAggregate) {
  broker_.subscribe("temperature >= 35", [](const Notification&) {});
  broker_.publish("temperature = 40; humidity = 0; radiation = 1");
  broker_.publish("temperature = 0; humidity = 0; radiation = 1");  // miss
  const ServiceCounters counters = broker_.counters();
  EXPECT_EQ(counters.events_published, 2u);
  EXPECT_EQ(counters.events_matched, 1u);
  EXPECT_EQ(counters.notifications, 1u);
  EXPECT_GT(counters.operations, 0u);
  EXPECT_DOUBLE_EQ(counters.match_rate(), 0.5);
  EXPECT_GT(counters.ops_per_event(), 0.0);
}

TEST_F(BrokerTest, CallbacksMayResubscribe) {
  // Callbacks run outside the broker lock: re-entrant subscribe is legal.
  int fired = 0;
  broker_.subscribe("temperature >= 35", [&](const Notification&) {
    ++fired;
    if (fired == 1) {
      broker_.subscribe("humidity >= 90", [&](const Notification&) {});
    }
  });
  EXPECT_NO_THROW(
      broker_.publish("temperature = 40; humidity = 0; radiation = 1"));
  EXPECT_EQ(broker_.subscription_count(), 2u);
}

TEST_F(BrokerTest, ProfileStatisticsReflectSubscriptions) {
  broker_.subscribe("humidity >= 99", [](const Notification&) {});
  broker_.subscribe("humidity >= 99", [](const Notification&) {});
  const ProfileStatistics stats = broker_.profile_statistics();
  EXPECT_EQ(stats.constrained_profiles(schema_->id_of("humidity")), 2u);
  EXPECT_DOUBLE_EQ(stats.reference_count(schema_->id_of("humidity"), 99), 2.0);
  EXPECT_DOUBLE_EQ(stats.reference_count(schema_->id_of("humidity"), 42), 0.0);
  EXPECT_EQ(stats.operator_count(Op::kGe), 2u);
}

TEST_F(BrokerTest, ConcurrentPublishersAreSerialized) {
  std::atomic<int> fired{0};
  broker_.subscribe("temperature >= 0", [&](const Notification&) { ++fired; });
  constexpr int kPerThread = 200;
  const auto worker = [&] {
    for (int i = 0; i < kPerThread; ++i) {
      broker_.publish("temperature = 10; humidity = 5; radiation = 1");
    }
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(fired.load(), 2 * kPerThread);
  EXPECT_EQ(broker_.counters().events_published,
            static_cast<std::uint64_t>(2 * kPerThread));
}

TEST_F(BrokerTest, Validation) {
  EXPECT_THROW(broker_.subscribe("temperature >= 35", nullptr), Error);
  EXPECT_THROW(Broker(nullptr), Error);
}

}  // namespace
}  // namespace genas
