// Tests for the closed-form response-time model (Eq. 2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/analytical.hpp"

namespace genas {
namespace {

/// Example 2 cells with their event probabilities.
std::vector<ModelCell> example2_cells() {
  return {
      {{0, 10}, 0.02, 1.0 / 3.0, true},    // x1 = [-30,-20]
      {{11, 59}, 0.17, 0.0, false},        // x0 (zero subdomain)
      {{60, 64}, 0.01, 1.0 / 3.0, true},   // x2 = [30,35)
      {{65, 80}, 0.80, 1.0 / 3.0, true},   // x3 = [35,50]
  };
}

TEST(Analytical, Example2EventOrderExpectation) {
  // Paper: E(X) = 0.02*2 + 0.01*3 + 0.8*1 = 0.87, R0 = 2*0.17 = 0.34,
  // R = 1.21.
  const ResponseTime rt = response_time(
      example2_cells(), ValueOrder::kEventProbability, SearchStrategy::kLinear);
  EXPECT_NEAR(rt.expectation, 0.87, 1e-12);
  EXPECT_NEAR(rt.r0, 0.34, 1e-12);
  EXPECT_NEAR(rt.total(), 1.21, 1e-12);
}

TEST(Analytical, Example2BinarySearch) {
  // Paper: E(X) = 0.01*1 + 0.02*2 + 0.8*2 = 1.65, R0 = 2*0.17 = 0.34,
  // R = 1.99.
  const ResponseTime rt = response_time(example2_cells(),
                                        ValueOrder::kNaturalAscending,
                                        SearchStrategy::kBinary);
  EXPECT_NEAR(rt.expectation, 1.65, 1e-12);
  EXPECT_NEAR(rt.r0, 0.34, 1e-12);
  EXPECT_NEAR(rt.total(), 1.99, 1e-12);
}

TEST(Analytical, Example2NaturalOrder) {
  // Natural ascending scan: x1 cost 1, x2 cost 2, x3 cost 3; x0 stops at x2.
  const ResponseTime rt = response_time(example2_cells(),
                                        ValueOrder::kNaturalAscending,
                                        SearchStrategy::kLinear);
  EXPECT_NEAR(rt.expectation, 0.02 * 1 + 0.01 * 2 + 0.8 * 3, 1e-12);
  EXPECT_NEAR(rt.r0, 0.17 * 2, 1e-12);
}

TEST(Analytical, EventOrderNeverWorseThanNaturalHere) {
  const auto cells = example2_cells();
  const double event_order =
      response_time(cells, ValueOrder::kEventProbability,
                    SearchStrategy::kLinear)
          .total();
  const double natural =
      response_time(cells, ValueOrder::kNaturalAscending,
                    SearchStrategy::kLinear)
          .total();
  EXPECT_LT(event_order, natural);
}

TEST(Analytical, CombinedOrderUsesBothMasses) {
  // Give x2 enormous profile interest: V3 must rank it before x1 even
  // though its event probability is lower.
  std::vector<ModelCell> cells = example2_cells();
  cells[2].profile_mass = 50.0;
  const ResponseTime v3 = response_time(
      cells, ValueOrder::kCombinedProbability, SearchStrategy::kLinear);
  // V3 keys: x2 = 0.01*50 = 0.5 first, x3 = 0.8/3 ≈ 0.267 second, x1 last.
  EXPECT_NEAR(v3.expectation, 0.01 * 1 + 0.8 * 2 + 0.02 * 3, 1e-12);
}

TEST(Analytical, ProfileOrderIgnoresEventMass) {
  std::vector<ModelCell> cells = example2_cells();
  cells[0].profile_mass = 3.0;  // x1 most requested by profiles
  cells[2].profile_mass = 2.0;
  cells[3].profile_mass = 1.0;
  const ResponseTime v2 = response_time(
      cells, ValueOrder::kProfileProbability, SearchStrategy::kLinear);
  // Scan order x1, x2, x3 regardless of P_e.
  EXPECT_NEAR(v2.expectation, 0.02 * 1 + 0.01 * 2 + 0.8 * 3, 1e-12);
}

TEST(Analytical, BinaryThreshold) {
  // r0 = log2(2p−1): p=3 -> log2(5) ≈ 2.32.
  EXPECT_NEAR(binary_threshold(3), std::log2(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(binary_threshold(0), 0.0);
  // The paper's break-even rule on Example 2: E_V1 = 0.87 < 2.32 ⇒ the
  // event order must beat binary search overall.
  const auto cells = example2_cells();
  const double v1 = response_time(cells, ValueOrder::kEventProbability,
                                  SearchStrategy::kLinear)
                        .total();
  const double binary = response_time(cells, ValueOrder::kNaturalAscending,
                                       SearchStrategy::kBinary)
                            .total();
  EXPECT_LT(v1, binary);
}

TEST(Analytical, RequiresCells) {
  EXPECT_THROW(response_time({}, ValueOrder::kNaturalAscending,
                             SearchStrategy::kLinear),
               Error);
}

}  // namespace
}  // namespace genas
