// Index-vs-sweep oracle for the composite detector's per-leaf dispatch
// index: randomized expression populations crossed with randomized stimulus
// streams (including churn and re-entrant mutation) must fire the identical
// sequence with the index on (O(affected) dispatch, the default) and off
// (the O(subscriptions) sweep kept as the behavioral baseline). Also covers
// the incremental index maintenance paths directly: slot reuse after
// removal, deferred mutation inside callbacks, and duplicate leaves.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "ens/composite.hpp"

namespace genas {
namespace {

/// Deterministic generator (no std::random: identical streams everywhere).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2862933555777941757ull + 1) {}

  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 11;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

constexpr ProfileId kProfilePool = 10;

/// Random expression over profile ids [1, kProfilePool]; depth <= 3.
CompositeExprPtr random_expr(Lcg& rng, int depth = 0) {
  if (depth >= 3 || rng.below(100) < 35) {
    return primitive(static_cast<ProfileId>(1 + rng.below(kProfilePool)));
  }
  const Timestamp window = static_cast<Timestamp>(1 + rng.below(20));
  switch (rng.below(4)) {
    case 0:
      return seq(random_expr(rng, depth + 1), random_expr(rng, depth + 1),
                 window);
    case 1:
      return conj(random_expr(rng, depth + 1), random_expr(rng, depth + 1),
                  window);
    case 2:
      return disj(random_expr(rng, depth + 1), random_expr(rng, depth + 1));
    default:
      return neg(random_expr(rng, depth + 1), random_expr(rng, depth + 1),
                 static_cast<Timestamp>(rng.below(20)));
  }
}

/// One detector pair fed identically; `fired` records (label, time) in
/// callback order, so the comparison asserts order, not just the multiset.
struct DetectorPair {
  CompositeDetector with_index;
  CompositeDetector swept;
  std::vector<std::pair<int, Timestamp>> fired_index;
  std::vector<std::pair<int, Timestamp>> fired_sweep;
  std::vector<std::pair<CompositeId, CompositeId>> live;  // parallel handles

  DetectorPair() { swept.set_use_index(false); }

  void add(int label, const CompositeExprPtr& expr) {
    const CompositeId a = with_index.add(
        expr, [this, label](const CompositeFiring& f) {
          fired_index.emplace_back(label, f.time);
        });
    const CompositeId b =
        swept.add(expr, [this, label](const CompositeFiring& f) {
          fired_sweep.emplace_back(label, f.time);
        });
    live.emplace_back(a, b);
  }

  void remove_at(std::size_t position) {
    with_index.remove(live[position].first);
    swept.remove(live[position].second);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(position));
  }

  void feed(std::span<const ProfileId> profiles, Timestamp time) {
    with_index.on_event(profiles, time);
    swept.on_event(profiles, time);
  }
};

TEST(CompositeIndexOracle, RandomizedStreamsFireIdentically) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Lcg rng(seed);
    DetectorPair pair;
    int next_label = 0;
    for (int i = 0; i < 24; ++i) pair.add(next_label++, random_expr(rng));

    Timestamp now = 0;
    for (int instant = 0; instant < 600; ++instant) {
      // Mostly increasing time with occasional out-of-order dips (both
      // detectors share the out-of-order contract, so they must still
      // agree exactly).
      now += static_cast<Timestamp>(rng.below(4));
      const Timestamp time =
          rng.below(10) == 0 ? now - static_cast<Timestamp>(rng.below(8))
                             : now;
      ProfileId stimuli[3];
      const std::size_t count = 1 + rng.below(3);
      for (std::size_t s = 0; s < count; ++s) {
        stimuli[s] = static_cast<ProfileId>(1 + rng.below(kProfilePool));
      }
      pair.feed({stimuli, count}, time);

      // Churn: removals exercise slot tombstoning + bucket unindexing,
      // additions exercise freelist reuse while sweeps are not running.
      if (instant % 40 == 17 && !pair.live.empty()) {
        pair.remove_at(rng.below(pair.live.size()));
        pair.add(next_label++, random_expr(rng));
      }
    }

    ASSERT_FALSE(pair.fired_index.empty()) << "seed " << seed;
    EXPECT_EQ(pair.fired_index, pair.fired_sweep) << "seed " << seed;
  }
}

/// An entry that, on every firing, removes itself and re-registers a
/// replacement from inside the callback — the deferred add/remove path,
/// driven identically in one detector.
struct SelfReplacing {
  CompositeDetector& detector;
  std::vector<std::pair<int, Timestamp>>& out;
  CompositeId current = 0;
  int generation = 0;

  void install() {
    ++generation;
    current = detector.add(
        disj(primitive(1), primitive(3)), [this](const CompositeFiring& f) {
          out.emplace_back(-generation, f.time);
          if (generation < 9) {
            detector.remove(current);  // deferred: we are inside the sweep
            install();                 // deferred add, fresh slot or reuse
          }
        });
  }
};

TEST(CompositeIndexOracle, ReentrantMutationFromCallbacksStaysIdentical) {
  // Both detectors carry a self-replacing entry mutating its own detector
  // from inside the callback, plus a random settled population; the fired
  // streams (labels of the self-replacer encode its generation) must stay
  // exactly identical.
  Lcg rng(99);
  DetectorPair pair;
  SelfReplacing index_side{pair.with_index, pair.fired_index};
  SelfReplacing sweep_side{pair.swept, pair.fired_sweep};
  index_side.install();
  sweep_side.install();
  for (int i = 0; i < 10; ++i) pair.add(i, random_expr(rng));

  for (Timestamp t = 0; t < 200; ++t) {
    ProfileId stimulus = static_cast<ProfileId>(1 + rng.below(kProfilePool));
    pair.feed({&stimulus, 1}, t);
  }
  ASSERT_FALSE(pair.fired_index.empty());
  EXPECT_EQ(pair.fired_index, pair.fired_sweep);
  EXPECT_GT(index_side.generation, 1);
  EXPECT_EQ(index_side.generation, sweep_side.generation);
}

TEST(CompositeIndexOracle, DuplicateLeavesDispatchOnce) {
  // A leaf duplicated inside one expression must evaluate its entry once
  // per instant (not once per duplicate) with the index on — firing twice
  // would diverge from the sweep.
  CompositeDetector detector;
  std::vector<Timestamp> fired;
  detector.add(disj(primitive(1), primitive(1)),
               [&](const CompositeFiring& f) { fired.push_back(f.time); });
  detector.on_match(1, 5);
  EXPECT_EQ(fired, (std::vector<Timestamp>{5}));

  // Same through an operator that arms state: conj(p2, p2) completes off
  // the single simultaneous stimulus (both operands arm at once),
  // identically in both modes. seq(p2, p2) by contrast can never fire —
  // the left operand re-arms simultaneously, and "then" is strict.
  CompositeDetector swept;
  swept.set_use_index(false);
  std::vector<Timestamp> fired_conj_index;
  std::vector<Timestamp> fired_conj_sweep;
  std::vector<Timestamp> fired_seq;
  detector.add(conj(primitive(2), primitive(2), 10),
               [&](const CompositeFiring& f) {
                 fired_conj_index.push_back(f.time);
               });
  swept.add(conj(primitive(2), primitive(2), 10),
            [&](const CompositeFiring& f) {
              fired_conj_sweep.push_back(f.time);
            });
  detector.add(seq(primitive(2), primitive(2), 10),
               [&](const CompositeFiring& f) { fired_seq.push_back(f.time); });
  for (const Timestamp t : {1, 3, 20, 40, 41}) {
    detector.on_match(2, t);
    swept.on_match(2, t);
  }
  EXPECT_EQ(fired_conj_index, fired_conj_sweep);
  EXPECT_EQ(fired_conj_index, (std::vector<Timestamp>{1, 3, 20, 40, 41}));
  EXPECT_TRUE(fired_seq.empty());
}

TEST(CompositeIndexOracle, SlotReuseKeepsRegistrationOrder) {
  // Freelisted slots are reused out of id order; callback order within one
  // instant must still be registration order in both modes.
  DetectorPair pair;
  for (int i = 0; i < 6; ++i) {
    pair.add(i, disj(primitive(1), primitive(2)));
  }
  pair.remove_at(1);
  pair.remove_at(3);  // originally label 4
  pair.add(100, disj(primitive(1), primitive(3)));  // reuses a freed slot
  pair.add(101, disj(primitive(2), primitive(3)));  // reuses the other

  ProfileId both[] = {1, 2};
  pair.feed(both, 7);
  ASSERT_FALSE(pair.fired_index.empty());
  EXPECT_EQ(pair.fired_index, pair.fired_sweep);
}

}  // namespace
}  // namespace genas
