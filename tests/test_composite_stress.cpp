// Concurrency stress for composite subscriptions, run under ThreadSanitizer
// in CI: concurrent publishers drive a broker (and a mesh) while composite
// subscriptions churn and flushes race the ingest path. Assertions are
// liveness/accounting sanity — the real check is TSan finding no races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "mesh/mesh.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

Event stress_event(const SchemaPtr& schema, std::uint64_t i) {
  Event event = Event::from_pairs(
      schema, {{"temperature", static_cast<std::int64_t>(i * 13 % 81) - 30},
               {"humidity", static_cast<std::int64_t>(i * 29 % 101)},
               {"radiation", static_cast<std::int64_t>(i * 17 % 100) + 1}});
  event.set_time(static_cast<Timestamp>(i));
  return event;
}

TEST(CompositeStress, ConcurrentPublishersWithCompositeChurn) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  broker.set_composite_skew(1 << 16);

  std::atomic<std::uint64_t> firings{0};
  const CompositeCallback on_fire = [&](const CompositeFiring&) {
    firings.fetch_add(1, std::memory_order_relaxed);
  };
  // A stable composite that lives through the whole run.
  broker.subscribe_composite(
      "seq({temperature >= 20}, {humidity >= 60}, w=1000)", on_fire);
  // Plain subscription sharing the broker.
  std::atomic<std::uint64_t> plain{0};
  broker.subscribe("radiation >= 50", [&](const Notification&) {
    plain.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kPublishers = 4;
  constexpr std::uint64_t kEventsPerThread = 400;
  std::atomic<bool> stop{false};

  std::thread churner([&] {
    // Composite subscriptions come and go while publishes are in flight.
    while (!stop.load(std::memory_order_relaxed)) {
      const CompositeId id = broker.subscribe_composite(
          "conj({temperature >= 0}, {radiation >= 30}, w=500)", on_fire);
      broker.flush_composites();
      broker.unsubscribe_composite(id);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> publishers;
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&, t] {
      std::vector<Event> batch;
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        const std::uint64_t n =
            static_cast<std::uint64_t>(t) * kEventsPerThread + i;
        if (i % 8 == 0) {
          batch.clear();
          for (std::uint64_t b = 0; b < 4; ++b) {
            batch.push_back(stress_event(schema, n + b));
          }
          broker.publish_batch(batch);
        } else {
          broker.publish(stress_event(schema, n));
        }
      }
    });
  }
  for (std::thread& thread : publishers) thread.join();
  stop.store(true);
  churner.join();

  // Deterministic completion after the storm: one A then one B, newer than
  // every stressed timestamp, then a full flush.
  Event a = Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 0}, {"radiation", 1}});
  a.set_time(1'000'000);
  Event b = Event::from_pairs(
      schema, {{"temperature", 0}, {"humidity", 90}, {"radiation", 1}});
  b.set_time(1'000'001);
  broker.publish(a);
  broker.publish(b);
  broker.flush_composites();

  EXPECT_GT(plain.load(), 0u);
  EXPECT_EQ(broker.composite_count(), 1u);
  EXPECT_EQ(broker.subscription_count(), 1u);
  EXPECT_GT(firings.load(), 0u);
}

TEST(CompositeStress, WatermarkTickerRacesPublishersAndSharedLeafChurn) {
  // The advance_watermark tick and the refcounted leaf-dedup tables under
  // concurrent load: publishers drive ingest, two churners subscribe and
  // unsubscribe composites sharing EQUAL leaf profiles (the refcount path
  // races on every iteration), and a ticker thread advances the watermark
  // (which also garbage-collects armed detector state) while reading the
  // buffered count. Assertions are accounting sanity; the real check is
  // TSan finding no races.
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  broker.set_composite_skew(1 << 10);

  std::atomic<std::uint64_t> firings{0};
  const CompositeCallback on_fire = [&](const CompositeFiring&) {
    firings.fetch_add(1, std::memory_order_relaxed);
  };
  // Stable composite whose leaves the churners' composites duplicate.
  broker.subscribe_composite(
      "seq({temperature >= 20}, {humidity >= 60}, w=5000)", on_fire);

  constexpr int kPublishers = 3;
  constexpr std::uint64_t kEventsPerThread = 400;
  std::atomic<bool> stop{false};

  std::vector<std::thread> churners;
  for (int c = 0; c < 2; ++c) {
    churners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Equal leaf profiles to the stable composite AND to the sibling
        // churner: every subscribe/unsubscribe exercises the shared
        // refcount table.
        const CompositeId id = broker.subscribe_composite(
            "conj({temperature >= 20}, {humidity >= 60}, w=500)", on_fire);
        broker.unsubscribe_composite(id);
        std::this_thread::yield();
      }
    });
  }

  std::thread ticker([&] {
    Timestamp now = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      broker.advance_watermark(now);
      now += 100;
      (void)broker.composite_buffered();
      (void)broker.composite_leaf_count();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> publishers;
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        const std::uint64_t n =
            static_cast<std::uint64_t>(t) * kEventsPerThread + i;
        broker.publish(stress_event(schema, n));
      }
    });
  }
  for (std::thread& thread : publishers) thread.join();
  stop.store(true);
  for (std::thread& thread : churners) thread.join();
  ticker.join();

  // Deterministic completion after the storm, then a tick far in the
  // future instead of a flush — advance_watermark alone must surface it.
  Event a = Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 0}, {"radiation", 1}});
  a.set_time(2'000'000);
  Event b = Event::from_pairs(
      schema, {{"temperature", 0}, {"humidity", 90}, {"radiation", 1}});
  b.set_time(2'000'001);
  broker.publish(a);
  broker.publish(b);
  broker.advance_watermark(3'000'000);
  EXPECT_GT(firings.load(), 0u);
  EXPECT_EQ(broker.composite_count(), 1u);
  // Only the stable composite's two distinct leaves remain registered.
  EXPECT_EQ(broker.composite_leaf_count(), 2u);
  EXPECT_EQ(broker.composite_buffered(), 0u);
}

TEST(CompositeStress, MeshCompositeChurnUnderConcurrentPublishers) {
  const SchemaPtr schema = testutil::example1_schema();
  mesh::MeshOptions options;
  options.mode = net::RoutingMode::kRoutingCovered;
  options.mailbox_capacity = 64;  // force backpressure + outbox staging
  options.auto_advance_watermark = true;  // workers tick per drained batch
  mesh::MeshNetwork mesh(schema, options);
  for (int i = 0; i < 4; ++i) mesh.add_node();
  mesh.connect(0, 1);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  mesh.start();

  std::atomic<std::uint64_t> firings{0};
  const mesh::MeshCompositeCallback on_fire =
      [&](net::NodeId, SubscriptionId, Timestamp) {
        firings.fetch_add(1, std::memory_order_relaxed);
      };
  mesh.subscribe_composite(
      3, "seq({temperature >= 20}, {humidity >= 60}, w=1000)", on_fire);
  std::atomic<std::uint64_t> plain{0};
  mesh.subscribe(2, "radiation >= 50",
                 [&](net::NodeId, SubscriptionId, const Event&) {
                   plain.fetch_add(1, std::memory_order_relaxed);
                 });
  mesh.wait_idle();

  constexpr int kPublishers = 3;
  constexpr std::uint64_t kEventsPerThread = 300;
  std::atomic<bool> stop{false};

  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const SubscriptionId key = mesh.subscribe_composite(
          1, "disj({temperature >= 45}, {humidity >= 95})", on_fire);
      mesh.unsubscribe(key);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> publishers;
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        const std::uint64_t n =
            static_cast<std::uint64_t>(t) * kEventsPerThread + i;
        mesh.publish(n % 4, stress_event(schema, n));
      }
    });
  }
  for (std::thread& thread : publishers) thread.join();
  stop.store(true);
  churner.join();

  // Deterministic completion after the storm (see the broker variant).
  Event a = Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 0}, {"radiation", 1}});
  a.set_time(1'000'000);
  Event b = Event::from_pairs(
      schema, {{"temperature", 0}, {"humidity", 90}, {"radiation", 1}});
  b.set_time(1'000'001);
  mesh.publish(0, std::move(a));
  mesh.publish(0, std::move(b));
  mesh.wait_idle();
  mesh.flush_composites();
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
  EXPECT_GT(plain.load(), 0u);
  EXPECT_GT(firings.load(), 0u);
}

TEST(CompositeStress, ShutdownRacesCompositeSubscribe) {
  // Subscribing composites while another thread shuts the mesh down must
  // either succeed or throw Error{kState} — never crash or deadlock.
  const SchemaPtr schema = testutil::example1_schema();
  for (int round = 0; round < 8; ++round) {
    mesh::MeshOptions options;
    mesh::MeshNetwork mesh(schema, options);
    mesh.add_node();
    mesh.add_node();
    mesh.connect(0, 1);
    mesh.start();

    std::thread subscriber([&] {
      for (int i = 0; i < 50; ++i) {
        try {
          mesh.subscribe_composite(
              i % 2, "conj({temperature >= 0}, {humidity >= 0}, w=10)",
              [](net::NodeId, SubscriptionId, Timestamp) {});
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kState);
          break;
        }
      }
    });
    mesh.shutdown();
    subscriber.join();
    EXPECT_EQ(mesh.first_error(), "");
  }
}

}  // namespace
}  // namespace genas