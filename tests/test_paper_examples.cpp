// Integration tests reproducing the paper's worked Examples 2–4 end to end
// (these are the paper's numeric "tables"; EXPERIMENTS.md records the
// correspondence).
#include <gtest/gtest.h>

#include "core/ordering_policy.hpp"
#include "dist/shapes.hpp"
#include "test_util.hpp"
#include "tree/expected_cost.hpp"

namespace genas {
namespace {

/// Event distribution used across Examples 2–4: per-attribute bucket masses
/// from Example 2 (temperature) and Example 3 (humidity, radiation), spread
/// uniformly inside each bucket.
JointDistribution example3_distribution(const SchemaPtr& schema) {
  // temperature [-30,50] -> indices [0,80]
  std::vector<double> t(81, 0.0);
  const auto spread = [](std::vector<double>& w, DomainIndex lo,
                         DomainIndex hi, double mass) {
    for (DomainIndex v = lo; v <= hi; ++v) {
      w[static_cast<std::size_t>(v)] =
          mass / static_cast<double>(hi - lo + 1);
    }
  };
  spread(t, 0, 10, 0.02);   // [-30,-20]: 2%
  spread(t, 11, 59, 0.17);  // (-20,30): 17%
  spread(t, 60, 64, 0.01);  // [30,35): 1%
  spread(t, 65, 80, 0.80);  // [35,50]: 80%

  // humidity [0,100]: [0,30):5%, [30,80):60%, [80,90):25%, [90,100]:10%
  std::vector<double> h(101, 0.0);
  spread(h, 0, 29, 0.05);
  spread(h, 30, 79, 0.60);
  spread(h, 80, 89, 0.25);
  spread(h, 90, 100, 0.10);

  // radiation [1,100] -> indices [0,99]:
  // [0,35):90%, [35,40):5%, [40,50):2%, [50,100]:3%
  std::vector<double> r(100, 0.0);
  spread(r, 0, 33, 0.90);   // values 1..34
  spread(r, 34, 38, 0.05);  // 35..39
  spread(r, 39, 48, 0.02);  // 40..49
  spread(r, 49, 99, 0.03);  // 50..100
  return JointDistribution::independent(
      schema, {DiscreteDistribution::from_weights(t),
               DiscreteDistribution::from_weights(h),
               DiscreteDistribution::from_weights(r)});
}

class PaperExamples : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  ProfileSet profiles_ = testutil::example1_profiles(schema_);
  JointDistribution joint_ = example3_distribution(schema_);

  double cost(const OrderingPolicy& policy) {
    return expected_cost(build_tree(profiles_, policy, joint_), joint_)
        .ops_per_event;
  }
};

TEST_F(PaperExamples, Example3AttributeReorderingReducesExpectedCost) {
  // Paper: natural order E = 3.371; A1-descending (a2 first) E = 1.91 —
  // a ~43% reduction. Our discrete model must show the same effect: the
  // reordered tree clearly beats the natural one.
  OrderingPolicy natural;
  natural.value_order = ValueOrder::kNaturalAscending;

  OrderingPolicy a1_desc = natural;
  a1_desc.attribute_measure = AttributeMeasure::kA1;
  a1_desc.direction = OrderDirection::kDescending;

  const double e_natural = cost(natural);
  const double e_reordered = cost(a1_desc);
  EXPECT_LT(e_reordered, e_natural);
  EXPECT_LT(e_reordered / e_natural, 0.85);  // substantial, as in the paper
}

TEST_F(PaperExamples, Example3A2AgreesWithA1Here) {
  // Paper: "Reordering based on Measure A2 ... leads to the same result."
  OrderingPolicy a1;
  a1.attribute_measure = AttributeMeasure::kA1;
  OrderingPolicy a2;
  a2.attribute_measure = AttributeMeasure::kA2;
  const TreeConfig c1 = make_tree_config(profiles_, a1, joint_);
  const TreeConfig c2 = make_tree_config(profiles_, a2, joint_);
  EXPECT_EQ(c1.attribute_order, c2.attribute_order);
  EXPECT_EQ(c1.attribute_order, (std::vector<AttributeId>{1, 0, 2}));
}

TEST_F(PaperExamples, Example4CombinedReorderingIsBestOfAll) {
  // Paper Example 4: V1 + A2 yields E = 1.08, better than attribute
  // reordering alone (1.91) and than binary search on the reordered tree
  // (1.616). We assert the same ranking.
  OrderingPolicy natural;

  OrderingPolicy a2_only;
  a2_only.attribute_measure = AttributeMeasure::kA2;

  OrderingPolicy v1_a2 = a2_only;
  v1_a2.value_order = ValueOrder::kEventProbability;

  OrderingPolicy binary_a2 = a2_only;
  binary_a2.strategy = SearchStrategy::kBinary;

  const double e_natural = cost(natural);
  const double e_a2 = cost(a2_only);
  const double e_v1_a2 = cost(v1_a2);
  const double e_binary_a2 = cost(binary_a2);

  EXPECT_LT(e_v1_a2, e_a2);        // value reordering helps further
  EXPECT_LT(e_v1_a2, e_binary_a2); // and beats binary on the same tree
  EXPECT_LT(e_a2, e_natural);
}

TEST_F(PaperExamples, A3BeatsOrTiesA2OnTheToyWorkload) {
  OrderingPolicy a2;
  a2.attribute_measure = AttributeMeasure::kA2;
  OrderingPolicy a3;
  a3.attribute_measure = AttributeMeasure::kA3;
  EXPECT_LE(cost(a3), cost(a2) + 1e-9);
}

}  // namespace
}  // namespace genas
