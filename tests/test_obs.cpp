// Tests for the observability layer: registry counter/gauge/histogram
// oracles (multi-threaded totals equal a serial recount), trace-sampled
// event-path latencies bounded by the wall-clock envelope, the
// kStatsRequest/kStatsSnapshot wire frames (round trip plus the same
// truncation/byte-flip hostility every other frame gets), the Prometheus
// exposition shape, and the end-to-end scrape path: BrokerServer serves a
// snapshot to RemoteBrokerClient::stats() with broker, composite, and
// socket metrics in it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ens/broker.hpp"
#include "mesh/mesh.hpp"
#include "net/broker_server.hpp"
#include "net/remote_client.hpp"
#include "net/socket_channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"
#include "wire/codec.hpp"

namespace genas {
namespace {

using Frame = std::vector<std::uint8_t>;

bool eventually(const std::function<bool()>& condition,
                std::chrono::milliseconds budget =
                    std::chrono::milliseconds{5000}) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  return condition();
}

void expect_parse_failure(const Frame& frame, const std::string& context) {
  try {
    wire::decode_message(frame, nullptr);
    FAIL() << context << ": malformed frame decoded without error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse) << context << ": " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Registry oracle: concurrent totals equal the serial recount.

TEST(ObsRegistry, ConcurrentCountersAndHistogramsMatchSerialRecount) {
  obs::Registry registry;
  obs::Counter counter = registry.counter("ops_total");
  obs::Gauge gauge = registry.gauge("depth");
  const std::uint64_t bounds[] = {10, 100, 1000};
  obs::Histogram histogram = registry.histogram("latency", bounds);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        counter.add(1 + (i % 3));          // serial recount: sum of 1,2,3,...
        histogram.observe((t * 131 + i * 7) % 2000);
        gauge.update_max(static_cast<std::int64_t>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Serial recount of exactly the same sequence of operations.
  std::uint64_t expected_count = 0;
  std::uint64_t expected_sum = 0;
  std::uint64_t expected_buckets[4] = {0, 0, 0, 0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      expected_count += 1 + (i % 3);
      const std::uint64_t v = (t * 131 + i * 7) % 2000;
      expected_sum += v;
      if (v <= 10) ++expected_buckets[0];
      else if (v <= 100) ++expected_buckets[1];
      else if (v <= 1000) ++expected_buckets[2];
      else ++expected_buckets[3];
    }
  }

  EXPECT_EQ(counter.value(), expected_count);
  EXPECT_EQ(gauge.value(),
            static_cast<std::int64_t>(kPerThread - 1));

  const obs::StatsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.value("ops_total"),
            static_cast<std::int64_t>(expected_count));
  const obs::MetricSnapshot* hist = snapshot.find("latency");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->counts.size(), 4u);  // 3 bounds + the implicit +Inf
  EXPECT_EQ(hist->count(), kThreads * kPerThread);
  EXPECT_EQ(hist->sum, expected_sum);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(hist->counts[b], expected_buckets[b]) << "bucket " << b;
  }
}

TEST(ObsRegistry, KindAndBucketMismatchesThrow) {
  obs::Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  const std::uint64_t bounds[] = {1, 2};
  EXPECT_THROW(registry.histogram("x", bounds), Error);

  registry.histogram("h", bounds);
  const std::uint64_t other[] = {1, 3};
  EXPECT_THROW(registry.histogram("h", other), Error);
  EXPECT_NO_THROW(registry.histogram("h", bounds));  // identical re-register

  const std::uint64_t unsorted[] = {5, 3};
  EXPECT_THROW(registry.histogram("bad", unsorted), Error);
  const std::uint64_t duplicate[] = {3, 3};
  EXPECT_THROW(registry.histogram("dup", duplicate), Error);
  EXPECT_THROW(registry.histogram("empty", {}), Error);
  std::vector<std::uint64_t> too_many(obs::kMaxHistogramBuckets + 1);
  for (std::size_t i = 0; i < too_many.size(); ++i) too_many[i] = i + 1;
  EXPECT_THROW(registry.histogram("wide", too_many), Error);
}

TEST(ObsRegistry, LabelsDecorateAndMergeAcrossRegistries) {
  obs::Registry node0("node=\"0\"");
  obs::Registry node1("node=\"1\"");
  node0.counter("genas_x_total").add(3);
  node1.counter("genas_x_total").add(5);
  // A name that already carries labels gets the registry labels prepended.
  node0.counter("genas_y_total{peer=\"7\"}").add(11);

  obs::StatsSnapshot merged = node0.snapshot();
  merged.merge(node1.snapshot());
  EXPECT_EQ(merged.value("genas_x_total{node=\"0\"}"), 3);
  EXPECT_EQ(merged.value("genas_x_total{node=\"1\"}"), 5);
  EXPECT_EQ(merged.value("genas_y_total{node=\"0\",peer=\"7\"}"), 11);
}

TEST(ObsRegistry, QuantileInterpolatesWithinBuckets) {
  obs::Registry registry;
  const std::uint64_t bounds[] = {100, 200, 400};
  obs::Histogram histogram = registry.histogram("q", bounds);
  for (int i = 0; i < 100; ++i) histogram.observe(50);    // (0, 100]
  for (int i = 0; i < 100; ++i) histogram.observe(150);   // (100, 200]
  const obs::StatsSnapshot snapshot = registry.snapshot();
  const obs::MetricSnapshot* snap = snapshot.find("q");
  ASSERT_NE(snap, nullptr);
  // p25 sits mid-first-bucket, p75 mid-second; p100 at the top of the
  // highest occupied bucket.
  EXPECT_NEAR(obs::quantile(*snap, 0.25), 50.0, 1.0);
  EXPECT_NEAR(obs::quantile(*snap, 0.75), 150.0, 1.0);
  EXPECT_NEAR(obs::quantile(*snap, 1.0), 200.0, 1.0);
  EXPECT_EQ(obs::quantile(obs::MetricSnapshot{}, 0.5), 0.0);
}

TEST(ObsTrace, SamplerHonorsPeriod) {
  obs::TraceSampler off(0);
  std::uint32_t countdown = 0;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(off.sample(countdown));

  obs::TraceSampler every(1);
  countdown = 0;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(every.sample(countdown));

  obs::TraceSampler fourth(4);
  countdown = 0;
  int sampled = 0;
  for (int i = 0; i < 400; ++i) sampled += fourth.sample(countdown) ? 1 : 0;
  EXPECT_EQ(sampled, 100);
}

// ---------------------------------------------------------------------------
// Broker instrumentation: counters agree with the service counters, and
// trace-sampled latencies fit inside the wall-clock envelope of the run.

TEST(ObsBroker, MetricsAgreeWithServiceCounters) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  std::atomic<int> notified{0};
  broker.subscribe("temperature >= 35",
                   [&](const Notification&) { ++notified; });

  for (int i = 0; i < 50; ++i) {
    broker.publish("temperature = " + std::to_string(i % 50) +
                   "; humidity = 50; radiation = 1");
  }

  const ServiceCounters counters = broker.counters();
  const obs::StatsSnapshot snapshot = broker.metrics().snapshot();
  EXPECT_EQ(snapshot.value("genas_broker_events_published_total"), 50);
  EXPECT_EQ(
      static_cast<std::uint64_t>(
          snapshot.value("genas_broker_events_published_total")),
      counters.events_published);
  EXPECT_EQ(static_cast<std::uint64_t>(
                snapshot.value("genas_broker_notifications_total")),
            counters.notifications);
  EXPECT_EQ(snapshot.value("genas_broker_notifications_total"),
            notified.load());
  EXPECT_GT(snapshot.value("genas_broker_filter_operations_total"), 0);
}

TEST(ObsBroker, SampledLatenciesFitTheWallClockEnvelope) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  broker.set_trace_period(1);  // trace every publish
  broker.subscribe("temperature >= 0", [](const Notification&) {});

  const std::uint64_t start = obs::now_ns();
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    broker.publish("temperature = 10; humidity = 1; radiation = 1");
  }
  const std::uint64_t elapsed = obs::now_ns() - start;

  const obs::StatsSnapshot snapshot = broker.metrics().snapshot();
  const obs::MetricSnapshot* match =
      snapshot.find("genas_broker_match_latency_ns");
  const obs::MetricSnapshot* delivery =
      snapshot.find("genas_broker_delivery_latency_ns");
  ASSERT_NE(match, nullptr);
  ASSERT_NE(delivery, nullptr);
  EXPECT_EQ(match->count(), static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(delivery->count(), static_cast<std::uint64_t>(kEvents));
  // Each sampled interval is a disjoint slice of the publish loop, so the
  // sums cannot exceed the loop's wall-clock envelope.
  EXPECT_LE(match->sum, elapsed);
  EXPECT_LE(delivery->sum, elapsed);
  EXPECT_GE(delivery->sum, match->sum);  // delivery spans match
}

TEST(ObsBroker, CompositeMetricsTrackDetection) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  broker.set_trace_period(1);
  broker.set_composite_skew(10);
  std::atomic<int> fired{0};
  broker.subscribe_composite(
      "seq({temperature >= 40}, {humidity >= 90}, w=100)",
      [&](const CompositeFiring&) { ++fired; });

  const std::uint64_t start = obs::now_ns();
  broker.publish("temperature = 45; humidity = 10; radiation = 1", 10);
  broker.publish("temperature = 0; humidity = 95; radiation = 1", 20);
  broker.flush_composites();
  const std::uint64_t elapsed = obs::now_ns() - start;
  ASSERT_EQ(fired.load(), 1);

  const obs::StatsSnapshot snapshot = broker.metrics().snapshot();
  EXPECT_EQ(snapshot.value("genas_composite_firings_total"), 1);
  const obs::MetricSnapshot* latency =
      snapshot.find("genas_composite_firing_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->count(), 1u);
  EXPECT_LE(latency->sum, elapsed);

  // The reorder gauge saw the buffered instants; after the flush it is 0.
  EXPECT_EQ(snapshot.value("genas_composite_reorder_depth"), 0);
}

// ---------------------------------------------------------------------------
// Wire frames: kStatsRequest / kStatsSnapshot round trips and hostility.

obs::StatsSnapshot sample_snapshot() {
  obs::Registry registry("node=\"2\"");
  registry.counter("genas_a_total").add(12345678901ULL);
  registry.gauge("genas_depth").set(-42);
  const std::uint64_t bounds[] = {512, 1024, 4096};
  obs::Histogram h = registry.histogram("genas_lat_ns", bounds);
  for (std::uint64_t v : {100ULL, 600ULL, 600ULL, 2000ULL, 1000000ULL}) {
    h.observe(v);
  }
  return registry.snapshot();
}

TEST(ObsWire, StatsRequestRoundTrip) {
  const Frame frame = wire::frame_stats_request();
  wire::Message decoded = wire::decode_message(frame, nullptr);
  EXPECT_TRUE(std::holds_alternative<wire::StatsRequestMsg>(decoded));
}

TEST(ObsWire, StatsSnapshotRoundTripPreservesEveryMetric) {
  const obs::StatsSnapshot original = sample_snapshot();
  const Frame frame = wire::frame_stats_snapshot(original);
  wire::Message decoded = wire::decode_message(frame, nullptr);
  auto* msg = std::get_if<wire::StatsSnapshotMsg>(&decoded);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->stats, original);

  // The empty snapshot survives too.
  const Frame empty = wire::frame_stats_snapshot(obs::StatsSnapshot{});
  wire::Message decoded_empty = wire::decode_message(empty, nullptr);
  auto* empty_msg = std::get_if<wire::StatsSnapshotMsg>(&decoded_empty);
  ASSERT_NE(empty_msg, nullptr);
  EXPECT_TRUE(empty_msg->stats.metrics.empty());
}

TEST(ObsWire, TruncatedStatsSnapshotIsRejected) {
  const Frame frame = wire::frame_stats_snapshot(sample_snapshot());
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const Frame truncated(frame.begin(),
                          frame.begin() + static_cast<std::ptrdiff_t>(cut));
    expect_parse_failure(truncated, "truncated at " + std::to_string(cut));
  }
  Frame trailing = frame;
  trailing.push_back(0);
  expect_parse_failure(trailing, "trailing garbage");
}

TEST(ObsWire, ByteFlippedStatsSnapshotNeverCrashes) {
  const Frame frame = wire::frame_stats_snapshot(sample_snapshot());
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    Frame corrupted = frame;
    const std::size_t at = rng.below(corrupted.size());
    corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      (void)wire::decode_message(corrupted, nullptr);
      // Some flips only change values; decoding successfully is fine.
    } catch (const Error&) {
      // Rejection is fine too — anything but a crash or hang.
    }
  }
}

TEST(ObsWire, HostileBucketShapesAreRejected) {
  // Hand-build a snapshot whose counts do not match bounds + 1: the
  // encoder refuses it, so a frame with that shape can only come from a
  // hostile peer — and the decoder's shape checks reject mutations of a
  // valid frame (covered by the byte-flip sweep above). Here: encoder
  // guard.
  obs::StatsSnapshot bad;
  obs::MetricSnapshot m;
  m.name = "h";
  m.kind = obs::MetricKind::kHistogram;
  m.bounds = {1, 2, 3};
  m.counts = {1, 1};  // must be bounds.size() + 1 == 4
  bad.metrics.push_back(std::move(m));
  EXPECT_THROW(wire::frame_stats_snapshot(bad), Error);
}

// ---------------------------------------------------------------------------
// Prometheus exposition: parseable shape, one # TYPE per base name,
// histogram expansion with merged le labels.

TEST(ObsRender, PrometheusExpositionIsWellFormed) {
  const std::string text = obs::render_prometheus(sample_snapshot());
  std::istringstream lines(text);
  std::string line;
  std::size_t type_lines = 0;
  std::size_t sample_lines = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines;
      std::istringstream fields(line);
      std::string hash, type, name, kind;
      fields >> hash >> type >> name >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      continue;
    }
    // Sample line: <name>[{labels}] <integer value>.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(name.empty()) << line;
    EXPECT_NO_THROW((void)std::stoll(value)) << line;
    ++sample_lines;
  }
  EXPECT_EQ(type_lines, 3u);  // one per base name
  // counter + gauge + (4 buckets + sum + count) histogram lines.
  EXPECT_EQ(sample_lines, 8u);
  EXPECT_NE(text.find("genas_lat_ns_bucket{node=\"2\",le=\"+Inf\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("genas_a_total{node=\"2\"} 12345678901"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Mesh snapshot: per-node broker registries merge without collisions, and
// the worker counters surface as labeled metrics.

TEST(ObsMesh, StatsSnapshotMergesNodesAndLinks) {
  const SchemaPtr schema = testutil::example1_schema();
  mesh::MeshOptions options;
  options.trace_period = 1;
  mesh::MeshNetwork net(schema, options);
  const net::NodeId a = net.add_node();
  const net::NodeId b = net.add_node();
  net.connect(a, b);
  net.start();

  std::atomic<int> delivered{0};
  net.subscribe(b, "temperature >= 0",
                [&](net::NodeId, SubscriptionId, const Event&) {
                  ++delivered;
                });
  net.wait_idle();
  for (int i = 0; i < 10; ++i) {
    net.publish(a, parse_event(schema,
                               "temperature = 10; humidity = 1; radiation = 1",
                               i));
  }
  net.wait_idle();
  ASSERT_EQ(delivered.load(), 10);

  const obs::StatsSnapshot snapshot = net.stats_snapshot();
  EXPECT_EQ(snapshot.value("genas_mesh_events_published_total{node=\"0\"}"),
            10);
  EXPECT_EQ(snapshot.value("genas_mesh_deliveries_total{node=\"1\"}"), 10);
  EXPECT_EQ(snapshot.value(
                "genas_mesh_link_event_messages_total{node=\"0\",peer=\"1\"}"),
            10);
  // Per-node broker registries carry the node label.
  EXPECT_EQ(
      snapshot.value("genas_broker_events_published_total{node=\"0\"}"), 10);
  EXPECT_EQ(snapshot.value("genas_broker_notifications_total{node=\"1\"}"),
            10);
  // The ingress mailbox saw at least one queued message.
  EXPECT_GE(snapshot.value("genas_mesh_mailbox_depth_highwater{node=\"0\"}"),
            1);
  // Trace period 1: every publish was stamped and timed across the hop.
  const obs::MetricSnapshot* wait =
      snapshot.find("genas_mesh_ingress_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count(), 10u);
  const obs::MetricSnapshot* route =
      snapshot.find("genas_mesh_publish_to_route_ns");
  ASSERT_NE(route, nullptr);
  EXPECT_GE(route->count(), 1u);
  net.shutdown();
  EXPECT_EQ(net.first_error(), "");
}

// ---------------------------------------------------------------------------
// Server: per-category error counters, and the remote scrape end to end.

TEST(ObsServer, CorruptClientIncrementsParseErrorExactlyOnce) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  net::BrokerServer server(broker);
  server.start();

  net::SocketChannel raw =
      net::SocketChannel::connect_to("127.0.0.1", server.port());
  std::optional<Frame> handshake = raw.read_frame();
  ASSERT_TRUE(handshake.has_value());

  const std::vector<std::uint8_t> garbage(32, 0xFF);
  raw.write_bytes(garbage);

  const auto parse_errors = [&] {
    return server.metrics().snapshot().value(
        "genas_server_errors_total{category=\"parse\"}");
  };
  ASSERT_TRUE(eventually([&] { return parse_errors() == 1; }));
  ASSERT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  EXPECT_EQ(parse_errors(), 1);  // exactly once per dropped connection
  EXPECT_EQ(server.metrics().snapshot().value(
                "genas_server_errors_total{category=\"protocol\"}"),
            0);
  EXPECT_NE(server.first_error(), "");
  server.stop();
}

TEST(ObsServer, RemoteStatsScrapeSeesBrokerCompositeAndSocketMetrics) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  broker.set_composite_skew(10);
  net::BrokerServer server(broker);
  server.start();

  net::RemoteBrokerClient client("127.0.0.1", server.port());
  std::atomic<int> delivered{0};
  client.subscribe("temperature >= 35",
                   [&](const Notification&) { ++delivered; });
  std::atomic<int> fired{0};
  client.subscribe_composite(
      "seq({temperature >= 40}, {humidity >= 90}, w=100)",
      [&](const CompositeFiring&) { ++fired; });
  client.publish("temperature = 45; humidity = 10; radiation = 1", 10);
  client.publish("temperature = 20; humidity = 95; radiation = 1", 20);
  client.flush();
  ASSERT_EQ(delivered.load(), 1);
  ASSERT_EQ(fired.load(), 1);

  const obs::StatsSnapshot snapshot = client.stats();
  // Broker metrics.
  EXPECT_EQ(snapshot.value("genas_broker_events_published_total"), 2);
  // 1 plain delivery + 2 composite leaf matches feeding the detector.
  EXPECT_EQ(snapshot.value("genas_broker_notifications_total"), 3);
  // Composite metrics.
  EXPECT_EQ(snapshot.value("genas_composite_firings_total"), 1);
  // Socket/server metrics.
  EXPECT_EQ(snapshot.value("genas_server_connections_total"), 1);
  EXPECT_EQ(snapshot.value("genas_server_active_connections"), 1);
  EXPECT_GT(snapshot.value("genas_server_frames_read_total"), 0);
  EXPECT_GT(snapshot.value("genas_server_bytes_written_total"), 0);
  const obs::MetricSnapshot* flush_latency =
      snapshot.find("genas_server_flush_barrier_ns");
  ASSERT_NE(flush_latency, nullptr);
  EXPECT_EQ(flush_latency->count(), 1u);

  // A second scrape still works (request/reply pairing holds up).
  const obs::StatsSnapshot again = client.stats();
  EXPECT_GE(again.value("genas_server_frames_read_total"),
            snapshot.value("genas_server_frames_read_total"));

  client.close();
  server.stop();
  EXPECT_EQ(server.first_error(), "");
}

}  // namespace
}  // namespace genas
