// Round-trip property tests: format_profile / format_event output must
// re-parse to semantically identical objects on random workloads.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/sampler.hpp"
#include "profile/parser.hpp"
#include "sim/workload.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

bool same_accepted_sets(const Profile& a, const Profile& b) {
  const Schema& schema = *a.schema();
  for (AttributeId id = 0; id < schema.attribute_count(); ++id) {
    const Predicate* pa = a.predicate(id);
    const Predicate* pb = b.predicate(id);
    if ((pa == nullptr) != (pb == nullptr)) return false;
    if (pa != nullptr && !(pa->accepted() == pb->accepted())) return false;
  }
  return true;
}

TEST(FormatRoundTrip, HandWrittenProfiles) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<std::string> expressions = {
      "temperature >= 35 && humidity >= 90",
      "temperature in [-30, -20]",
      "radiation not in [35, 50]",
      "humidity in {1, 5, 9}",
      "humidity != 50",
      "*",
  };
  for (const std::string& text : expressions) {
    const Profile original = parse_profile(schema, text);
    const std::string rendered = format_profile(original);
    const Profile reparsed = parse_profile(schema, rendered);
    EXPECT_TRUE(same_accepted_sets(original, reparsed))
        << text << " -> " << rendered;
  }
}

TEST(FormatRoundTrip, CategoricalProfiles) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_categorical("color", {"red", "green",
                                                          "blue", "cyan"})
                               .add_integer("n", 0, 9)
                               .build();
  const std::vector<std::string> expressions = {
      "color = green",
      "color != red",                 // renders as a point set
      "color in {red, blue}",
      "color = cyan && n in [2, 5]",
  };
  for (const std::string& text : expressions) {
    const Profile original = parse_profile(schema, text);
    const std::string rendered = format_profile(original);
    const Profile reparsed = parse_profile(schema, rendered);
    EXPECT_TRUE(same_accepted_sets(original, reparsed))
        << text << " -> " << rendered;
  }
}

class FormatRoundTripProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatRoundTripProperty, RandomProfilesRoundTrip) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", -20, 20)
                               .add_integer("b", 0, 99)
                               .add_integer("c", 5, 34)
                               .build();
  ProfileWorkloadOptions options;
  options.count = 60;
  options.dont_care_probability = 0.4;
  options.equality_only = GetParam() % 2 == 0;
  options.range_width_mean = 0.2;
  options.seed = GetParam();
  const ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), options);
  for (const ProfileId id : profiles.active_ids()) {
    const Profile& original = profiles.profile(id);
    const Profile reparsed =
        parse_profile(schema, format_profile(original));
    EXPECT_TRUE(same_accepted_sets(original, reparsed))
        << format_profile(original);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FormatRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(FormatRoundTrip, EventsRoundTripExactly) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("x", -5, 5)
                               .add_categorical("s", {"on", "off"})
                               .add_real("r", 0.0, 1.0, 0.25)
                               .build();
  const JointDistribution joint = JointDistribution::independent(
      schema, {DiscreteDistribution::uniform(11),
               DiscreteDistribution::uniform(2),
               DiscreteDistribution::uniform(5)});
  EventSampler sampler(joint, 5);
  for (int i = 0; i < 200; ++i) {
    const Event original = sampler.sample();
    const Event reparsed = parse_event(schema, format_event(original));
    EXPECT_EQ(reparsed.indices(), original.indices())
        << format_event(original);
  }
}

}  // namespace
}  // namespace genas
