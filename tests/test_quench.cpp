// Tests for Elvin-style quenching (provider-side interest queries).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ens/quench.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class QuenchTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  ProfileSet profiles_ = testutil::example1_profiles(schema_);
  Quencher quencher_{profiles_};
};

TEST_F(QuenchTest, UnrestrictedSpaceAlwaysInteresting) {
  EXPECT_TRUE(quencher_.any_interest(EventSpace(schema_)));
  EXPECT_EQ(quencher_.interested(EventSpace(schema_)).size(), 5u);
}

TEST_F(QuenchTest, ZeroSubdomainRegionHasNoInterest) {
  // Temperatures strictly inside (-20, 30): no profile accepts them.
  EventSpace space(schema_);
  space.restrict("temperature", IntervalSet({{11, 59}}));  // index space
  EXPECT_FALSE(quencher_.any_interest(space));
  EXPECT_TRUE(quencher_.interested(space).empty());
}

TEST_F(QuenchTest, SingleValueRestriction) {
  EventSpace space(schema_);
  space.restrict_value("temperature", -25);
  // Only P4 covers [-30,-20].
  EXPECT_EQ(quencher_.interested(space), (std::vector<ProfileId>{3}));
}

TEST_F(QuenchTest, ConjunctionAcrossAttributesPrunes) {
  // Hot temperatures but bone-dry air: P1/P2/P3 need humidity >= 90,
  // P5 >= 80, P4 needs cold temperatures -> nobody is interested.
  EventSpace space(schema_);
  space.restrict_value("temperature", 40);
  space.restrict("humidity", IntervalSet({{10, 50}}));
  EXPECT_FALSE(quencher_.any_interest(space));

  // Raising the humidity band to reach 80 revives P5.
  EventSpace space2(schema_);
  space2.restrict_value("temperature", 40);
  space2.restrict("humidity", IntervalSet({{10, 80}}));
  EXPECT_EQ(quencher_.interested(space2), (std::vector<ProfileId>{4}));
}

TEST_F(QuenchTest, RebuildTracksProfileChanges) {
  ProfileSet set(schema_);
  Quencher quencher(set);
  EventSpace space(schema_);
  EXPECT_FALSE(quencher.any_interest(space));  // no profiles at all

  set.add(ProfileBuilder(schema_).where("radiation", Op::kGe, 90).build());
  quencher.rebuild(set);
  EXPECT_TRUE(quencher.any_interest(space));
}

TEST_F(QuenchTest, Validation) {
  EventSpace space(schema_);
  EXPECT_THROW(space.restrict("temperature", IntervalSet()), Error);
  EXPECT_THROW(space.restrict("temperature", IntervalSet({{0, 200}})), Error);
  EXPECT_THROW(space.restrict("bogus", IntervalSet({{0, 1}})), Error);

  const SchemaPtr other = testutil::example1_schema();
  EXPECT_THROW(quencher_.any_interest(EventSpace(other)), Error);
}

}  // namespace
}  // namespace genas
