// Tests for the profile covering (subsumption) relation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "profile/covering.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class CoveringTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();

  Profile parse(std::string_view text) {
    return parse_profile(schema_, text);
  }
};

TEST_F(CoveringTest, WiderRangeCoversNarrower) {
  EXPECT_TRUE(covers(parse("temperature >= 30"), parse("temperature >= 35")));
  EXPECT_FALSE(covers(parse("temperature >= 35"), parse("temperature >= 30")));
}

TEST_F(CoveringTest, DontCareCoversEverything) {
  EXPECT_TRUE(covers(parse("*"), parse("temperature >= 35")));
  EXPECT_FALSE(covers(parse("temperature >= 35"), parse("*")));
  EXPECT_TRUE(covers(parse("*"), parse("*")));
}

TEST_F(CoveringTest, ConjunctionsCoverAttributeWise) {
  const Profile general = parse("temperature >= 30 && humidity >= 80");
  const Profile specific = parse("temperature >= 35 && humidity >= 90");
  EXPECT_TRUE(covers(general, specific));
  EXPECT_FALSE(covers(specific, general));

  // Extra constraint on the specific side still covered; the reverse not.
  const Profile tighter =
      parse("temperature >= 35 && humidity >= 90 && radiation in [40,50]");
  EXPECT_TRUE(covers(general, tighter));
  EXPECT_FALSE(covers(tighter, general));
}

TEST_F(CoveringTest, DisjointRangesDoNotCover) {
  EXPECT_FALSE(
      covers(parse("temperature <= -20"), parse("temperature >= 30")));
}

TEST_F(CoveringTest, CoveringIsSemanticallySound) {
  // Property: covers(A, B) implies every matching event of B matches A.
  const std::vector<Profile> profiles = {
      parse("temperature >= 30"),
      parse("temperature >= 35 && humidity >= 90"),
      parse("humidity >= 80"),
      parse("radiation in [40, 100]"),
      parse("*"),
      parse("temperature in [-30,-20] && humidity <= 5"),
  };
  for (const Profile& a : profiles) {
    for (const Profile& b : profiles) {
      if (!covers(a, b)) continue;
      for (std::int64_t t : {-30, -25, 0, 30, 35, 50}) {
        for (std::int64_t h : {0, 5, 80, 90, 100}) {
          for (std::int64_t r : {1, 40, 100}) {
            const Event e = Event::from_pairs(
                schema_,
                {{"temperature", t}, {"humidity", h}, {"radiation", r}});
            if (b.matches(e)) {
              EXPECT_TRUE(a.matches(e))
                  << a.to_string() << " claimed to cover " << b.to_string();
            }
          }
        }
      }
    }
  }
}

TEST_F(CoveringTest, CoveringSubsetKeepsMostGeneral) {
  const std::vector<Profile> profiles = {
      parse("temperature >= 35"),              // covered by #2
      parse("temperature >= 35 && humidity >= 90"),  // covered by #0 and #2
      parse("temperature >= 30"),              // most general
      parse("radiation in [40, 50]"),          // independent
  };
  const auto kept = covering_subset(profiles);
  EXPECT_EQ(kept, (std::vector<std::size_t>{2, 3}));
}

TEST_F(CoveringTest, EquivalentProfilesKeepFirst) {
  const std::vector<Profile> profiles = {
      parse("temperature >= 35"),
      parse("temperature in [35, 50]"),  // same accepted set
  };
  const auto kept = covering_subset(profiles);
  EXPECT_EQ(kept, (std::vector<std::size_t>{0}));
}

TEST_F(CoveringTest, SchemaMismatchRejected) {
  const SchemaPtr other = testutil::example1_schema();
  EXPECT_THROW(
      covers(parse("*"), parse_profile(other, "temperature >= 35")), Error);
}

}  // namespace
}  // namespace genas
