// Unit tests for Predicate normalization, Profile, and ProfileSet.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  AttributeId temp_ = schema_->id_of("temperature");
};

TEST_F(PredicateTest, EqualityNormalization) {
  const Predicate p = Predicate::make(*schema_, temp_, Op::kEq, 35);
  EXPECT_EQ(p.accepted(), IntervalSet::point(65));  // 35 - (-30)
  EXPECT_TRUE(p.matches_index(65));
  EXPECT_FALSE(p.matches_index(64));
}

TEST_F(PredicateTest, InequalityTranslatesToRanges) {
  // Paper §3: "inequality tests can be translated to range tests".
  const Predicate p = Predicate::make(*schema_, temp_, Op::kNe, -30);
  EXPECT_EQ(p.accepted(), IntervalSet({{1, 80}}));
  const Predicate q = Predicate::make(*schema_, temp_, Op::kNe, 0);
  EXPECT_EQ(q.accepted(), IntervalSet({{0, 29}, {31, 80}}));
}

TEST_F(PredicateTest, OrderingOperators) {
  EXPECT_EQ(Predicate::make(*schema_, temp_, Op::kGe, 30).accepted(),
            IntervalSet({{60, 80}}));
  EXPECT_EQ(Predicate::make(*schema_, temp_, Op::kGt, 30).accepted(),
            IntervalSet({{61, 80}}));
  EXPECT_EQ(Predicate::make(*schema_, temp_, Op::kLe, -20).accepted(),
            IntervalSet({{0, 10}}));
  EXPECT_EQ(Predicate::make(*schema_, temp_, Op::kLt, -20).accepted(),
            IntervalSet({{0, 9}}));
}

TEST_F(PredicateTest, RangeAndOutside) {
  const Predicate between =
      Predicate::make_range(*schema_, temp_, Op::kBetween, -30, -20);
  EXPECT_EQ(between.accepted(), IntervalSet({{0, 10}}));
  const Predicate outside =
      Predicate::make_range(*schema_, temp_, Op::kOutside, -30, -20);
  EXPECT_EQ(outside.accepted(), IntervalSet({{11, 80}}));
}

TEST_F(PredicateTest, SetContainment) {
  const Predicate p = Predicate::make_in(*schema_, temp_, {0, 2, 1, 50});
  EXPECT_EQ(p.accepted(), IntervalSet({{30, 32}, {80, 80}}));
}

TEST_F(PredicateTest, RejectsEmptyAcceptedSet) {
  // a < domain minimum accepts nothing.
  EXPECT_THROW(Predicate::make(*schema_, temp_, Op::kLt, -30), Error);
  EXPECT_THROW(Predicate::make(*schema_, temp_, Op::kGt, 50), Error);
}

TEST_F(PredicateTest, RejectsBadRangesAndKinds) {
  EXPECT_THROW(Predicate::make_range(*schema_, temp_, Op::kBetween, 10, 5),
               Error);
  EXPECT_THROW(Predicate::make(*schema_, temp_, Op::kBetween, 5), Error);
  EXPECT_THROW(Predicate::make_in(*schema_, temp_, {}), Error);

  const SchemaPtr cat_schema =
      SchemaBuilder().add_categorical("color", {"r", "g", "b"}).build();
  EXPECT_THROW(
      Predicate::make(*cat_schema, 0, Op::kLt, Value("g")), Error);
  EXPECT_NO_THROW(Predicate::make(*cat_schema, 0, Op::kEq, Value("g")));
}

TEST(Profile, MatchesEventDirectly) {
  const SchemaPtr schema = testutil::example1_schema();
  const ProfileSet set = testutil::example1_profiles(schema);
  // The paper's running example event (30, 90, 2) matches P2 and P5.
  const Event event = Event::from_pairs(
      schema, {{"temperature", 30}, {"humidity", 90}, {"radiation", 2}});
  std::vector<ProfileId> matched;
  for (const ProfileId id : set.active_ids()) {
    if (set.profile(id).matches(event)) matched.push_back(id);
  }
  EXPECT_EQ(matched, (std::vector<ProfileId>{1, 4}));  // P2, P5
}

TEST(Profile, DontCareBookkeeping) {
  const SchemaPtr schema = testutil::example1_schema();
  const Profile p = ProfileBuilder(schema)
                        .where("temperature", Op::kGe, 35)
                        .build();
  EXPECT_FALSE(p.is_dont_care(0));
  EXPECT_TRUE(p.is_dont_care(1));
  EXPECT_TRUE(p.is_dont_care(2));
  EXPECT_EQ(p.constrained_count(), 1u);
  EXPECT_EQ(p.predicate(1), nullptr);
  ASSERT_NE(p.predicate(0), nullptr);
}

TEST(Profile, BuilderRejectsDoubleConstraint) {
  const SchemaPtr schema = testutil::example1_schema();
  ProfileBuilder builder(schema);
  builder.where("temperature", Op::kGe, 35);
  EXPECT_THROW(builder.where("temperature", Op::kLe, 40), Error);
}

TEST(Profile, MatchAllProfileIsAllowed) {
  const SchemaPtr schema = testutil::example1_schema();
  const Profile p = ProfileBuilder(schema).build();
  EXPECT_EQ(p.constrained_count(), 0u);
  EXPECT_TRUE(p.matches(Event::from_indices(schema, {0, 0, 0})));
  EXPECT_NE(p.to_string().find('*'), std::string::npos);
}

TEST(ProfileSet, LifecycleAndVersioning) {
  const SchemaPtr schema = testutil::example1_schema();
  ProfileSet set(schema);
  EXPECT_EQ(set.active_count(), 0u);
  const std::uint64_t v0 = set.version();

  const ProfileId a =
      set.add(ProfileBuilder(schema).where("humidity", Op::kGe, 50).build());
  const ProfileId b =
      set.add(ProfileBuilder(schema).where("humidity", Op::kLe, 10).build());
  EXPECT_EQ(set.active_count(), 2u);
  EXPECT_GT(set.version(), v0);
  EXPECT_EQ(set.active_ids(), (std::vector<ProfileId>{a, b}));

  set.remove(a);
  EXPECT_EQ(set.active_count(), 1u);
  EXPECT_FALSE(set.is_active(a));
  EXPECT_TRUE(set.is_active(b));
  EXPECT_THROW(set.remove(a), Error);       // double remove
  EXPECT_THROW(set.remove(99), Error);      // unknown id
  EXPECT_THROW(set.profile(99), Error);

  // Ids are stable and never reused.
  const ProfileId c =
      set.add(ProfileBuilder(schema).where("radiation", Op::kEq, 1).build());
  EXPECT_NE(c, a);
  EXPECT_EQ(set.capacity(), 3u);
}

TEST(ProfileSet, RejectsForeignSchema) {
  const SchemaPtr s1 = testutil::example1_schema();
  const SchemaPtr s2 = testutil::example1_schema();  // distinct instance
  ProfileSet set(s1);
  EXPECT_THROW(
      set.add(ProfileBuilder(s2).where("humidity", Op::kGe, 1).build()),
      Error);
}

}  // namespace
}  // namespace genas
